//! The diagnostics engine: stable codes, severities, spans, and the text
//! and JSON renderers shared by every lint in the workspace.

use std::fmt;

/// How bad a diagnostic is. `Error` means the input is rejected (the CLI
/// exits nonzero); `Warning` flags something that will bite at runtime
/// (e.g. a chase that cannot terminate); `Info` is classification.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Classification and advice; never blocks.
    Info,
    /// Suspicious or runtime-dangerous; does not block.
    Warning,
    /// The input is rejected.
    Error,
}

impl Severity {
    /// Lowercase name used in both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable lint codes. Codes are append-only: a released code never
/// changes meaning, and retired codes are not reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[allow(missing_docs)] // each code is documented by `title`
pub enum Code {
    Qi001,
    Qi002,
    Qi003,
    Qi004,
    Qi005,
    Qi006,
    Qi007,
    Qi008,
    Qi009,
    Qi010,
    Qi011,
    Qi012,
    Qi013,
    Qi014,
    Qi015,
    Qi016,
}

impl Code {
    /// Every code, in order — used by the catalog table and tests.
    pub const ALL: [Code; 16] = [
        Code::Qi001,
        Code::Qi002,
        Code::Qi003,
        Code::Qi004,
        Code::Qi005,
        Code::Qi006,
        Code::Qi007,
        Code::Qi008,
        Code::Qi009,
        Code::Qi010,
        Code::Qi011,
        Code::Qi012,
        Code::Qi013,
        Code::Qi014,
        Code::Qi015,
        Code::Qi016,
    ];

    /// The stable code string, e.g. `"QI003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Qi001 => "QI001",
            Code::Qi002 => "QI002",
            Code::Qi003 => "QI003",
            Code::Qi004 => "QI004",
            Code::Qi005 => "QI005",
            Code::Qi006 => "QI006",
            Code::Qi007 => "QI007",
            Code::Qi008 => "QI008",
            Code::Qi009 => "QI009",
            Code::Qi010 => "QI010",
            Code::Qi011 => "QI011",
            Code::Qi012 => "QI012",
            Code::Qi013 => "QI013",
            Code::Qi014 => "QI014",
            Code::Qi015 => "QI015",
            Code::Qi016 => "QI016",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::Qi001
            | Code::Qi002
            | Code::Qi003
            | Code::Qi004
            | Code::Qi005
            | Code::Qi008
            | Code::Qi010 => Severity::Error,
            Code::Qi007 | Code::Qi011 | Code::Qi014 | Code::Qi015 | Code::Qi016 => {
                Severity::Warning
            }
            Code::Qi006 | Code::Qi009 | Code::Qi012 | Code::Qi013 => Severity::Info,
        }
    }

    /// One-line description for the lint catalog.
    pub fn title(self) -> &'static str {
        match self {
            Code::Qi001 => "malformed mapping-file line",
            Code::Qi002 => "dependency parse error",
            Code::Qi003 => "unknown relation",
            Code::Qi004 => "arity mismatch",
            Code::Qi005 => "ill-formed dependency (safety condition violated)",
            Code::Qi006 => "body variable used only once and never exported",
            Code::Qi007 => "existential variable reused across disjuncts",
            Code::Qi008 => "statically unsatisfiable inequality",
            Code::Qi009 => "inequality clique needs more constants than small instances have",
            Code::Qi010 => "relation used on the wrong side of the mapping",
            Code::Qi011 => "target tgds are not weakly acyclic",
            Code::Qi012 => "mapping is not LAV",
            Code::Qi013 => "mapping is not full",
            Code::Qi014 => "constant propagation fails: the mapping has no inverse",
            Code::Qi015 => "subset property fails on a bounded universe: not quasi-invertible",
            Code::Qi016 => "duplicate dependency",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A 1-based source location in a mapping file: line, column, and the
/// byte length of the offending token (0 when the diagnostic points at a
/// position rather than a token).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
    /// Token length in bytes.
    pub len: usize,
}

/// One finding: a stable code (which fixes the severity), a message, and
/// an optional source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: Code,
    /// Human-readable, single-line message.
    pub message: String,
    /// Where in the mapping file, when the lint knows.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Build a spanless diagnostic.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            message: message.into(),
            span: None,
        }
    }

    /// Attach a span.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// The severity (fixed by the code).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// Render as one `file:line:col: severity[CODE]: message` line.
    pub fn render_text(&self, path: &str) -> String {
        let loc = match self.span {
            Some(s) => format!("{path}:{}:{}", s.line, s.col),
            None => path.to_owned(),
        };
        format!(
            "{loc}: {}[{}]: {}",
            self.severity().as_str(),
            self.code,
            self.message
        )
    }

    /// Render as a JSON object (one line, stable key order).
    pub fn render_json(&self, path: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let _ = write!(out, "\"file\":\"{}\"", escape_json(path));
        let _ = write!(out, ",\"code\":\"{}\"", self.code);
        let _ = write!(out, ",\"severity\":\"{}\"", self.severity());
        let _ = write!(out, ",\"message\":\"{}\"", escape_json(&self.message));
        match self.span {
            Some(s) => {
                let _ = write!(
                    out,
                    ",\"line\":{},\"col\":{},\"len\":{}",
                    s.line, s.col, s.len
                );
            }
            None => out.push_str(",\"line\":null,\"col\":null,\"len\":null"),
        }
        out.push('}');
        out
    }
}

/// An ordered collection of diagnostics with the two renderers.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    /// The findings, in emission order (file order, then lint order).
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Append one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Append many.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.items.extend(ds);
    }

    /// Any `Error`-severity finding?
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity() == Severity::Error)
    }

    /// Count findings at `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.items.iter().filter(|d| d.severity() == sev).count()
    }

    /// Is the collection empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// The human rendering: one line per finding plus a summary line.
    pub fn render_text(&self, path: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render_text(path));
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{path}: {} error(s), {} warning(s), {} info(s)",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }

    /// The machine rendering: a single JSON document.
    pub fn render_json(&self, path: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"diagnostics\":[\n");
        for (i, d) in self.items.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&d.render_json(path));
            if i + 1 < self.items.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "],\"summary\":{{\"errors\":{},\"warnings\":{},\"infos\":{}}}}}",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        );
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::ALL.len(), 16);
        for (i, c) in Code::ALL.iter().enumerate() {
            assert_eq!(c.as_str(), format!("QI{:03}", i + 1));
        }
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn text_and_json_render() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::new(Code::Qi003, "unknown source relation `Z`").with_span(Span {
                line: 3,
                col: 6,
                len: 1,
            }),
        );
        ds.push(Diagnostic::new(Code::Qi012, "mapping is not LAV"));
        let text = ds.render_text("m.qim");
        assert!(text.contains("m.qim:3:6: error[QI003]: unknown source relation `Z`"));
        assert!(text.contains("m.qim: 1 error(s), 0 warning(s), 1 info(s)"));
        let json = ds.render_json("m.qim");
        assert!(json.contains("\"code\":\"QI003\""));
        assert!(json.contains("\"line\":3,\"col\":6,\"len\":1"));
        assert!(json.contains("\"line\":null"));
        assert!(json.contains("\"summary\":{\"errors\":1,\"warnings\":0,\"infos\":1}"));
        assert!(ds.has_errors());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

//! The dependency graph of a set of (target) tgds — predicate positions,
//! regular vs. special edges — weak acyclicity, and the **termination
//! certificate** whose rank-derived bound replaces the chase's magic
//! step budget.
//!
//! Definitions follow Fagin–Kolaitis–Miller–Popa (TCS'05, the paper's
//! reference \[4\]): nodes are *positions* `(R, i)`; for every tgd and
//! every body occurrence of a universal variable `x` at position `p`,
//!
//! * a **regular** edge goes from `p` to every head position holding `x`;
//! * a **special** edge goes from `p` to every head position holding an
//!   existential variable, provided `x` occurs somewhere in the head.
//!
//! The tgds are *weakly acyclic* iff no cycle goes through a special
//! edge — the classical sufficient condition for chase termination.
//!
//! ## The certificate
//!
//! When the graph is weakly acyclic, every position `p` has a finite
//! **rank**: the maximum number of special edges on any path ending in
//! `p`. Ranks witness termination *quantitatively*: values of rank-0
//! positions are values of the input instance; a fresh null landing in a
//! rank-`r` position is manufactured from values of rank `< r`. Starting
//! from `n` distinct input values, the number of distinct values that
//! can ever occupy rank-≤-`i` positions obeys
//!
//! ```text
//! Q₀ = n,    Qᵢ₊₁ = Qᵢ + Σ_t  e_t · Qᵢ^{f_t}
//! ```
//!
//! where `t` ranges over the tgds, `e_t` counts `t`'s existential
//! variables and `f_t` its frontier (body variables shared with the
//! head): a firing is determined by its frontier assignment (the
//! restricted chase fires a tgd at most once per frontier assignment,
//! since a second firing finds the head already satisfied), and each
//! firing mints at most `e_t` fresh values. With `V = Q_maxrank` total
//! values, at most `F = Σ_R V^{arity(R)}` distinct facts exist, so the
//! chase performs at most `F` tgd firings between egd merges, and at
//! most `V` egd merges in total (each merge retires one value forever) —
//! the step budget `F·(V+1) + V` of [`TerminationCertificate::step_budget`].
//! All arithmetic saturates at `usize::MAX`; a saturated budget is still
//! sound (weak acyclicity alone guarantees termination).

use crate::diag::{Code, Diagnostic};
use qi_lang::{Tgd, Var};
use qi_schema::{RelId, Schema};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A predicate position: a relation and a 0-based column.
pub type Position = (RelId, usize);

/// The dependency graph of a set of tgds (usually target tgds, where
/// source and target schema coincide).
#[derive(Clone, Debug, Default)]
pub struct DependencyGraph {
    /// Regular edges (adjacency, deterministic order).
    pub regular: BTreeMap<Position, BTreeSet<Position>>,
    /// Special edges.
    pub special: BTreeMap<Position, BTreeSet<Position>>,
    /// The head-side schema, used to render position names.
    schema: Option<Schema>,
}

impl DependencyGraph {
    /// Build the graph of `tgds`.
    pub fn new(tgds: &[Tgd]) -> Self {
        let mut g = DependencyGraph {
            schema: tgds.first().map(|t| t.target.clone()),
            ..DependencyGraph::default()
        };
        for tgd in tgds {
            let mut body_pos: BTreeMap<&Var, Vec<Position>> = BTreeMap::new();
            for atom in &tgd.body {
                for (p, v) in atom.args.iter().enumerate() {
                    body_pos.entry(v).or_default().push((atom.rel, p));
                }
            }
            let head_universals: BTreeSet<&Var> = tgd
                .head
                .iter()
                .flat_map(|a| a.args.iter())
                .filter(|v| !tgd.exists.contains(v))
                .collect();
            for atom in &tgd.head {
                for (p, v) in atom.args.iter().enumerate() {
                    let head_node = (atom.rel, p);
                    if tgd.exists.contains(v) {
                        for hv in &head_universals {
                            if let Some(sources) = body_pos.get(*hv) {
                                for &src in sources {
                                    g.special.entry(src).or_default().insert(head_node);
                                }
                            }
                        }
                    } else if let Some(sources) = body_pos.get(v) {
                        for &src in sources {
                            g.regular.entry(src).or_default().insert(head_node);
                        }
                    }
                }
            }
        }
        g
    }

    /// All nodes that occur in some edge, in deterministic order.
    pub fn nodes(&self) -> BTreeSet<Position> {
        let mut nodes = BTreeSet::new();
        for (u, vs) in self.regular.iter().chain(self.special.iter()) {
            nodes.insert(*u);
            nodes.extend(vs.iter().copied());
        }
        nodes
    }

    fn successors(&self, n: Position) -> impl Iterator<Item = Position> + '_ {
        self.regular
            .get(&n)
            .into_iter()
            .flatten()
            .chain(self.special.get(&n).into_iter().flatten())
            .copied()
    }

    /// Weak acyclicity: no cycle through a special edge.
    pub fn is_weakly_acyclic(&self) -> bool {
        self.special_cycle().is_none()
    }

    /// A witness cycle through a special edge, as a position path whose
    /// first and last elements coincide — `None` iff weakly acyclic.
    ///
    /// The first hop of the returned path is the special edge.
    pub fn special_cycle(&self) -> Option<Vec<Position>> {
        for (&u, targets) in &self.special {
            for &w in targets {
                // Does w reach u? BFS with parents for path recovery.
                if let Some(path) = self.path(w, u) {
                    let mut cycle = vec![u];
                    cycle.extend(path);
                    return Some(cycle);
                }
            }
        }
        None
    }

    /// Shortest path `from →* to` over all edges (inclusive of both
    /// endpoints), or `None`.
    fn path(&self, from: Position, to: Position) -> Option<Vec<Position>> {
        let mut parent: BTreeMap<Position, Position> = BTreeMap::new();
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        seen.insert(from);
        while let Some(n) = queue.pop_front() {
            if n == to {
                let mut path = vec![to];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            for next in self.successors(n) {
                if seen.insert(next) {
                    parent.insert(next, n);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Human name of a position, e.g. `E.2` (1-based column).
    pub fn position_name(&self, p: Position) -> String {
        match &self.schema {
            Some(s) if p.0.index() < s.len() => format!("{}.{}", s.sym(p.0).name, p.1 + 1),
            _ => format!("#{}.{}", p.0 .0, p.1 + 1),
        }
    }

    /// Render a position path as `E.2 ~> E.1 -> E.2` (`~>` marks a
    /// special edge).
    pub fn render_path(&self, path: &[Position]) -> String {
        let mut out = String::new();
        for (i, &p) in path.iter().enumerate() {
            if i > 0 {
                let prev = path[i - 1];
                let is_special = self.special.get(&prev).is_some_and(|s| s.contains(&p));
                out.push_str(if is_special { " ~> " } else { " -> " });
            }
            out.push_str(&self.position_name(p));
        }
        out
    }

    /// Per-position ranks: the maximum number of special edges on any
    /// path ending at the position. `None` when not weakly acyclic
    /// (ranks would diverge).
    pub fn ranks(&self) -> Option<BTreeMap<Position, usize>> {
        if !self.is_weakly_acyclic() {
            return None;
        }
        let nodes = self.nodes();
        let mut rank: BTreeMap<Position, usize> = nodes.iter().map(|&n| (n, 0)).collect();
        // Monotone relaxation; converges within |nodes| rounds on a
        // weakly acyclic graph (ranks are bounded by #special edges).
        for _ in 0..=nodes.len() {
            let mut changed = false;
            for &u in &nodes {
                let ru = rank[&u];
                if let Some(vs) = self.regular.get(&u) {
                    for v in vs {
                        if rank[v] < ru {
                            rank.insert(*v, ru);
                            changed = true;
                        }
                    }
                }
                if let Some(vs) = self.special.get(&u) {
                    for v in vs {
                        if rank[v] < ru + 1 {
                            rank.insert(*v, ru + 1);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Some(rank);
            }
        }
        // Unreachable for weakly acyclic graphs; be safe anyway.
        None
    }

    /// The termination certificate, or `None` when not weakly acyclic.
    pub fn certificate(&self, tgds: &[Tgd]) -> Option<TerminationCertificate> {
        let ranks = self.ranks()?;
        let max_rank = ranks.values().copied().max().unwrap_or(0);
        let tgd_shape = tgds
            .iter()
            .map(|t| (t.exists.len(), t.frontier().len()))
            .collect();
        let rel_arities = match tgds.first().map(|t| &t.target) {
            Some(schema) => schema.rel_ids().map(|r| schema.arity(r)).collect(),
            None => Vec::new(),
        };
        Some(TerminationCertificate {
            ranks,
            max_rank,
            tgd_shape,
            rel_arities,
        })
    }
}

/// Weak acyclicity of a set of target tgds (FKMP): no cycle of the
/// dependency graph goes through a special edge. This is the classical
/// sufficient condition for termination of the target chase.
pub fn is_weakly_acyclic(target_tgds: &[Tgd]) -> bool {
    DependencyGraph::new(target_tgds).is_weakly_acyclic()
}

/// The QI011 warning for non-weakly-acyclic target tgds, naming the
/// offending cycle — `None` when the tgds are weakly acyclic.
pub fn weak_acyclicity_diagnostic(target_tgds: &[Tgd]) -> Option<Diagnostic> {
    let g = DependencyGraph::new(target_tgds);
    let cycle = g.special_cycle()?;
    Some(Diagnostic::new(
        Code::Qi011,
        format!(
            "target tgds are not weakly acyclic: the dependency graph has a cycle \
             through a special edge: {}; the chase may not terminate and will run \
             under a fallback step budget",
            g.render_path(&cycle)
        ),
    ))
}

/// A quantitative witness of chase termination for a weakly acyclic set
/// of target tgds. See the module docs for the bound derivation.
#[derive(Clone, Debug)]
pub struct TerminationCertificate {
    /// Rank of every position that occurs in the dependency graph
    /// (positions outside the graph have rank 0).
    pub ranks: BTreeMap<Position, usize>,
    /// The largest rank.
    pub max_rank: usize,
    /// `(existentials, frontier size)` of each certified tgd.
    pub tgd_shape: Vec<(usize, usize)>,
    /// Arities of the head-side schema's relations.
    pub rel_arities: Vec<usize>,
}

fn sat_pow(base: usize, exp: usize) -> usize {
    let mut acc = 1usize;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

impl TerminationCertificate {
    /// An upper bound on the number of distinct values (constants and
    /// nulls) in any chase state, starting from `n` distinct values.
    pub fn value_bound(&self, n: usize) -> usize {
        let mut q = n.max(1);
        for _ in 0..self.max_rank {
            let mut fresh = 0usize;
            for &(e, f) in &self.tgd_shape {
                fresh = fresh.saturating_add(e.saturating_mul(sat_pow(q, f)));
            }
            q = q.saturating_add(fresh);
        }
        q
    }

    /// An upper bound on the number of distinct facts in any chase
    /// state, starting from `n` distinct values.
    pub fn fact_bound(&self, n: usize) -> usize {
        let v = self.value_bound(n);
        self.rel_arities
            .iter()
            .fold(0usize, |acc, &a| acc.saturating_add(sat_pow(v, a)))
    }

    /// The step budget (tgd firings + egd repairs) the target chase can
    /// consume before termination, starting from `n` distinct values:
    /// `F·(V+1) + V` for `V = value_bound(n)`, `F = fact_bound(n)`.
    pub fn step_budget(&self, n: usize) -> usize {
        let v = self.value_bound(n);
        let f = self.fact_bound(n);
        f.saturating_mul(v.saturating_add(1)).saturating_add(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_tgd;

    fn t_schema() -> Schema {
        Schema::parse("E/2 D/1").unwrap()
    }

    #[test]
    fn classic_examples_classify() {
        let t = t_schema();
        let bad = parse_tgd(&t, &t, "E(x,y) -> exists z . E(y,z)").unwrap();
        assert!(!is_weakly_acyclic(std::slice::from_ref(&bad)));
        let good = parse_tgd(&t, &t, "E(x,y) -> D(x)").unwrap();
        assert!(is_weakly_acyclic(std::slice::from_ref(&good)));
        let gen = parse_tgd(&t, &t, "D(x) -> exists y . E(x,y)").unwrap();
        assert!(is_weakly_acyclic(&[good, gen.clone()]));
        let bad2 = parse_tgd(&t, &t, "E(x,y) -> D(y)").unwrap();
        assert!(!is_weakly_acyclic(&[bad2, gen]));
    }

    #[test]
    fn special_cycle_is_named() {
        let t = t_schema();
        let bad = parse_tgd(&t, &t, "E(x,y) -> exists z . E(y,z)").unwrap();
        let d = weak_acyclicity_diagnostic(std::slice::from_ref(&bad)).expect("diagnostic");
        assert_eq!(d.code, Code::Qi011);
        // The E.2 ~> E.2 special self-loop is named.
        assert!(d.message.contains("E.2"), "{}", d.message);
        assert!(d.message.contains("~>"), "{}", d.message);
        let good = parse_tgd(&t, &t, "E(x,y) -> D(x)").unwrap();
        assert!(weak_acyclicity_diagnostic(std::slice::from_ref(&good)).is_none());
    }

    #[test]
    fn ranks_track_special_depth() {
        // D(x) -> ∃y E(x,y): D.1 -> E.1 regular, D.1 ~> E.2 special.
        let t = t_schema();
        let gen = parse_tgd(&t, &t, "D(x) -> exists y . E(x,y)").unwrap();
        let copy = parse_tgd(&t, &t, "E(x,y) -> D(x)").unwrap();
        let tgds = [copy, gen];
        let g = DependencyGraph::new(&tgds);
        let ranks = g.ranks().expect("weakly acyclic");
        let e = t.rel("E").unwrap();
        let d = t.rel("D").unwrap();
        assert_eq!(ranks[&(d, 0)], 0);
        assert_eq!(ranks[&(e, 0)], 0);
        assert_eq!(ranks[&(e, 1)], 1);
        let cert = g.certificate(&tgds).unwrap();
        assert_eq!(cert.max_rank, 1);
        // One tgd with one existential and frontier {x}; from n=2 values:
        // Q1 = 2 + 1·2 = 4.
        assert_eq!(cert.value_bound(2), 4);
        // F = V^2 + V = 20; budget = 20·5 + 4.
        assert_eq!(cert.fact_bound(2), 20);
        assert_eq!(cert.step_budget(2), 104);
    }

    #[test]
    fn full_tgds_have_rank_zero_certificates() {
        let t = t_schema();
        let trans = parse_tgd(&t, &t, "E(x,y) & E(y,z) -> E(x,z)").unwrap();
        let tgds = [trans];
        let g = DependencyGraph::new(&tgds);
        let cert = g.certificate(&tgds).unwrap();
        assert_eq!(cert.max_rank, 0);
        // No fresh values: V = n.
        assert_eq!(cert.value_bound(5), 5);
        assert_eq!(cert.fact_bound(5), 30);
    }

    #[test]
    fn saturating_bounds_do_not_overflow() {
        let t = Schema::parse("R/8").unwrap();
        let big = parse_tgd(
            &t,
            &t,
            "R(a,b,c,d,e,f,g,h) -> exists i . R(b,c,d,e,f,g,h,i)",
        );
        // This one is *not* weakly acyclic (special self-loops), so force
        // a certificate through a harmless variant instead.
        assert!(big.is_ok());
        let wide = parse_tgd(&t, &t, "R(a,b,c,d,e,f,g,h) -> R(a,a,a,a,a,a,a,a)").unwrap();
        let tgds = [wide];
        let cert = DependencyGraph::new(&tgds).certificate(&tgds).unwrap();
        assert_eq!(cert.step_budget(usize::MAX), usize::MAX);
    }

    #[test]
    fn empty_tgds_are_trivially_acyclic() {
        assert!(is_weakly_acyclic(&[]));
        let g = DependencyGraph::new(&[]);
        let cert = g.certificate(&[]).unwrap();
        assert_eq!(cert.value_bound(3), 3);
        assert_eq!(cert.fact_bound(3), 0);
    }
}

//! # qi-analyze — static analysis for schema mappings
//!
//! A pre-flight pass over parsed mappings that runs *before* any chase
//! or inversion: every syntactic side condition the paper's algorithms
//! rely on, checked once, reported uniformly.
//!
//! Three pieces:
//!
//! * a **diagnostics engine** ([`diag`]) with stable codes
//!   (`QI001`–`QI016`), fixed severities, source spans, and text + JSON
//!   renderers — the single vocabulary for every precondition failure in
//!   the workspace (the `qimap lint` subcommand, `qimap check`, and the
//!   rejection errors of `qi-core`'s algorithms all speak it);
//! * the **dependency graph** ([`graph`]): predicate positions, regular
//!   vs. special edges, weak acyclicity (moved here from `qi-chase`,
//!   which keeps a deprecated re-export), witness cycles for the QI011
//!   warning, and the [`TerminationCertificate`] whose per-position
//!   ranks induce a polynomial chase-size bound — `qi-chase` derives its
//!   target-chase step budget from it instead of a magic constant;
//! * the **mapping-file front end** ([`mapfile`]) and the **lint pass**
//!   ([`lints`]): parse the `source:`/`target:`/`tgd:` format with
//!   line/column spans, resolve against the declared schemas, and run
//!   ~a dozen lints from undeclared relations to fragment
//!   classification. [`analyze_text`] never fails; problems come back as
//!   diagnostics.
//!
//! ## Lint catalog
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | QI001 | error | malformed mapping-file line |
//! | QI002 | error | dependency parse error |
//! | QI003 | error | unknown relation |
//! | QI004 | error | arity mismatch |
//! | QI005 | error | ill-formed dependency (safety condition violated) |
//! | QI006 | info | body variable used only once and never exported |
//! | QI007 | warning | existential variable reused across disjuncts |
//! | QI008 | error | statically unsatisfiable inequality |
//! | QI009 | info | inequality clique exceeds small constant sets |
//! | QI010 | error | relation used on the wrong side of the mapping |
//! | QI011 | warning | target tgds not weakly acyclic (witness cycle named) |
//! | QI012 | info | mapping is not LAV (breaking atom named) |
//! | QI013 | info | mapping is not full (breaking existential named) |
//! | QI014 | warning | constant propagation fails — no inverse (qi-core) |
//! | QI015 | warning | subset property fails on bounded universe (qi-core) |
//! | QI016 | warning | duplicate dependency |
//!
//! QI014/QI015 are *semantic* lints: they need the chase, so they are
//! emitted by `qi-core` — through the same [`Diagnostic`] type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Curated pedantic subset (CI runs clippy with `-D warnings`, so every
// `warn` here is enforced). The allows are deliberate: `#[must_use]`
// annotations on every getter add noise without catching bugs in this
// crate, panics documented below are internal invariants, and nested
// recursion helpers read best next to their only call site.
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::items_after_statements,
    clippy::too_many_lines,
    clippy::module_name_repetitions
)]

pub mod diag;
pub mod graph;
pub mod lints;
pub mod mapfile;

pub use diag::{Code, Diagnostic, Diagnostics, Severity, Span};
pub use graph::{
    is_weakly_acyclic, weak_acyclicity_diagnostic, DependencyGraph, Position,
    TerminationCertificate,
};
pub use lints::{lint_classification, not_full_diagnostic, not_lav_diagnostic};
pub use mapfile::{analyze_text, Analysis, MappingParts};

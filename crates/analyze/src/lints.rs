//! The lint pass over *resolved* dependencies: style and semantics
//! problems that schema resolution alone cannot catch, plus the
//! LAV/full fragment classification the paper's theorems hinge on.

use crate::diag::{Code, Diagnostic};
use qi_lang::{DisjTgd, Tgd, Var};
use std::collections::BTreeMap;

/// Lints that apply to any set of plain tgds: QI006 (a body variable
/// used only once and never exported) and QI016 (duplicates).
pub fn lint_tgds(kind: &str, tgds: &[Tgd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for tgd in tgds {
        let mut occurrences: BTreeMap<&Var, usize> = BTreeMap::new();
        for atom in &tgd.body {
            for v in &atom.args {
                *occurrences.entry(v).or_default() += 1;
            }
        }
        let head_vars = tgd.head_vars();
        for (v, n) in occurrences {
            if n == 1 && !head_vars.contains(v) {
                out.push(Diagnostic::new(
                    Code::Qi006,
                    format!(
                        "in {kind} `{tgd}`: body variable `{v}` occurs only once and is \
                         never used in the conclusion (it only asserts non-emptiness of \
                         that column)"
                    ),
                ));
            }
        }
    }
    out.extend(duplicates(kind, tgds));
    out
}

/// Lints over reverse (disjunctive) dependencies: QI007 (existential
/// reused across disjuncts), QI009 (inequality cliques that small
/// constant sets cannot satisfy), QI016 (duplicates).
pub fn lint_reverse(deps: &[DisjTgd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for dep in deps {
        // QI007: the same existential name quantified in several
        // disjuncts. Scopes are independent, so this is legal but reads
        // as if the disjuncts shared a witness.
        let mut counts: BTreeMap<&Var, usize> = BTreeMap::new();
        for d in &dep.disjuncts {
            for v in &d.exists {
                *counts.entry(v).or_default() += 1;
            }
        }
        for (v, n) in counts {
            if n > 1 {
                out.push(Diagnostic::new(
                    Code::Qi007,
                    format!(
                        "in `{dep}`: existential variable `{v}` is quantified in {n} \
                         disjuncts; the scopes are independent — rename for clarity"
                    ),
                ));
            }
        }
        // QI009: a clique of pairwise inequalities over constant-guarded
        // variables needs as many distinct constants as the clique has
        // members — premises with a k-clique are vacuously false on
        // instances with < k distinct constants (the bounded checks in
        // `qimap check` use 2).
        let clique = max_neq_clique(dep);
        if clique.len() >= 3 {
            let names: Vec<String> = clique.iter().map(|v| format!("`{v}`")).collect();
            out.push(Diagnostic::new(
                Code::Qi009,
                format!(
                    "in `{dep}`: the inequalities force {} pairwise-distinct constants \
                     ({}); the premise is unsatisfiable on instances with fewer than {} \
                     distinct constants, so bounded two-constant checks never exercise it",
                    clique.len(),
                    names.join(", "),
                    clique.len()
                ),
            ));
        }
    }
    // QI016 on the rendered text.
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for dep in deps {
        let text = dep.to_string();
        match seen.get(&text) {
            Some(_) => out.push(Diagnostic::new(
                Code::Qi016,
                format!("duplicate reverse dependency: `{text}`"),
            )),
            None => {
                seen.insert(text, 1);
            }
        }
    }
    out
}

/// The LAV/full classification (QI012/QI013), naming the exact atom or
/// variable that breaks the fragment. These drive which of the paper's
/// theorems apply: LAV mappings are always quasi-invertible
/// (Proposition 3.11) with a quasi-inverse free of constants and
/// inequalities (Theorem 4.10); full mappings get full disjunctive
/// quasi-inverses (Theorem 4.9).
pub fn lint_classification(tgds: &[Tgd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(not_lav_diagnostic(tgds));
    out.extend(not_full_diagnostic(tgds));
    out
}

/// QI012 when the mapping is not LAV, naming the breaking atom.
pub fn not_lav_diagnostic(tgds: &[Tgd]) -> Option<Diagnostic> {
    let tgd = tgds.iter().find(|t| !t.is_lav())?;
    let breaking = tgd.body[1].display(&tgd.source).to_string();
    Some(Diagnostic::new(
        Code::Qi012,
        format!(
            "mapping is not LAV: tgd `{tgd}` has {} body atoms (first extra atom: \
             `{breaking}`); Proposition 3.11 (LAV ⇒ quasi-invertible) does not apply — \
             quasi-invertibility depends on the subset property (Theorem 3.9)",
            tgd.body.len()
        ),
    ))
}

/// QI013 when the mapping is not full, naming the breaking existential.
pub fn not_full_diagnostic(tgds: &[Tgd]) -> Option<Diagnostic> {
    let tgd = tgds.iter().find(|t| !t.is_full())?;
    let v = &tgd.exists[0];
    let atom = tgd
        .head
        .iter()
        .find(|a| a.args.contains(v))
        .expect("existential occurs in some head atom")
        .display(&tgd.target)
        .to_string();
    Some(Diagnostic::new(
        Code::Qi013,
        format!(
            "mapping is not full: tgd `{tgd}` existentially quantifies `{v}` \
             (in head atom `{atom}`); the full-fragment results (Theorems 4.9/4.11) \
             do not apply"
        ),
    ))
}

/// QI016 duplicate detection over rendered dependency text.
fn duplicates(kind: &str, tgds: &[Tgd]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for tgd in tgds {
        let text = tgd.to_string();
        match seen.get(&text) {
            Some(_) => out.push(Diagnostic::new(
                Code::Qi016,
                format!("duplicate {kind}: `{text}`"),
            )),
            None => {
                seen.insert(text, 1);
            }
        }
    }
    out
}

/// The largest clique of the inequality graph restricted to
/// constant-guarded variables, found by exact search (the graphs are
/// tiny; capped at 24 vertices — beyond that a greedy lower bound is
/// returned, which can only under-report).
fn max_neq_clique(dep: &DisjTgd) -> Vec<Var> {
    let vars: Vec<&Var> = dep.constant.iter().take(24).collect();
    let index = |v: &Var| vars.iter().position(|w| **w == *v);
    let mut adj = vec![0u32; vars.len()];
    for (a, b) in &dep.neq {
        if let (Some(i), Some(j)) = (index(a), index(b)) {
            adj[i] |= 1 << j;
            adj[j] |= 1 << i;
        }
    }
    let mut best: u32 = 0;
    // Depth-first expansion over candidate sets.
    fn grow(adj: &[u32], clique: u32, cand: u32, best: &mut u32) {
        if cand == 0 {
            if clique.count_ones() > best.count_ones() {
                *best = clique;
            }
            return;
        }
        if clique.count_ones() + cand.count_ones() <= best.count_ones() {
            return; // cannot beat the incumbent
        }
        let mut rest = cand;
        while rest != 0 {
            let v = rest.trailing_zeros();
            rest &= rest - 1;
            grow(
                adj,
                clique | (1 << v),
                cand & adj[v as usize] & !((1 << (v + 1)) - 1),
                best,
            );
        }
        if clique.count_ones() > best.count_ones() {
            *best = clique;
        }
    }
    grow(&adj, 0, (1u32 << vars.len()).wrapping_sub(1), &mut best);
    (0..vars.len())
        .filter(|&i| best & (1 << i) != 0)
        .map(|i| vars[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::{parse_disj_tgd, parse_tgd};
    use qi_schema::Schema;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse("P/3 R/2").unwrap(),
            Schema::parse("Q/2 S/1").unwrap(),
        )
    }

    #[test]
    fn unused_body_variable_flags() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y,z) -> Q(x,y)").unwrap();
        let ds = lint_tgds("s-t tgd", std::slice::from_ref(&tgd));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Qi006);
        assert!(ds[0].message.contains("`z`"), "{}", ds[0].message);
        // A join variable is not flagged, even if unexported.
        let tgd = parse_tgd(&s, &t, "P(x,y,z) & R(z,w) -> Q(x,y)").unwrap();
        let ds = lint_tgds("s-t tgd", std::slice::from_ref(&tgd));
        assert_eq!(ds.iter().filter(|d| d.message.contains("`z`")).count(), 0);
        // (w is still a singleton.)
        assert_eq!(ds.iter().filter(|d| d.message.contains("`w`")).count(), 1);
    }

    #[test]
    fn duplicates_flag_second_occurrence() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y,z) -> Q(x,y) & S(z)").unwrap();
        let ds = lint_tgds("s-t tgd", &[tgd.clone(), tgd]);
        let dups: Vec<_> = ds.iter().filter(|d| d.code == Code::Qi016).collect();
        assert_eq!(dups.len(), 1);
    }

    #[test]
    fn classification_names_breaking_parts() {
        let (s, t) = schemas();
        let gav = parse_tgd(&s, &t, "P(x,y,z) & R(z,w) -> Q(x,w)").unwrap();
        let d = not_lav_diagnostic(std::slice::from_ref(&gav)).expect("not LAV");
        assert_eq!(d.code, Code::Qi012);
        assert!(d.message.contains("R(z,w)"), "{}", d.message);
        let lav = parse_tgd(&s, &t, "P(x,y,z) -> exists w . Q(x,w)").unwrap();
        assert!(not_lav_diagnostic(std::slice::from_ref(&lav)).is_none());
        let d = not_full_diagnostic(std::slice::from_ref(&lav)).expect("not full");
        assert_eq!(d.code, Code::Qi013);
        assert!(d.message.contains("`w`"), "{}", d.message);
        assert!(d.message.contains("Q(x,w)"), "{}", d.message);
        assert!(not_full_diagnostic(std::slice::from_ref(&gav)).is_none());
    }

    #[test]
    fn existential_reuse_across_disjuncts() {
        let (s, t) = schemas();
        let dep =
            parse_disj_tgd(&t, &s, "Q(x,y) -> exists u . R(x,u) | exists u . R(u,y)").unwrap();
        let ds = lint_reverse(std::slice::from_ref(&dep));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Qi007);
        assert!(ds[0].message.contains("`u`"));
    }

    #[test]
    fn inequality_clique_flags_at_three() {
        let (s, t) = schemas();
        // Three pairwise-distinct constants.
        let dep = parse_disj_tgd(
            &t,
            &s,
            "Q(x,y) & Q(y,z) & const(x) & const(y) & const(z) & \
             x != y & y != z & x != z -> R(x,z)",
        )
        .unwrap();
        let ds = lint_reverse(std::slice::from_ref(&dep));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Qi009);
        assert!(ds[0].message.contains('3'), "{}", ds[0].message);
        // A single inequality is fine.
        let dep =
            parse_disj_tgd(&t, &s, "Q(x,y) & const(x) & const(y) & x != y -> R(x,y)").unwrap();
        assert!(lint_reverse(std::slice::from_ref(&dep)).is_empty());
    }
}

//! The mapping-file front end: parse the `source:`/`target:`/`tgd:` line
//! format with **source spans**, resolve dependencies against the
//! declared schemas, and collect every problem as a [`Diagnostic`]
//! instead of bailing at the first error.
//!
//! ## File format
//!
//! ```text
//! # comment lines start with '#'
//! source: Emp/3
//! target: WorksIn/2 LocatedIn/2
//! tgd: Emp(n,d,c) -> WorksIn(n,d) & LocatedIn(d,c)
//! # optional target dependencies:
//! target-tgd: WorksIn(n,d) & WorksIn(n,e) -> WorksIn(n,d)
//! egd: LocatedIn(d,c1) & LocatedIn(d,c2) -> c1 = c2
//! # optional reverse (target-to-source) dependencies, the language of
//! # quasi-inverses — disjunction, const() guards and inequalities:
//! reverse: WorksIn(n,d) & const(n) -> exists c . Emp(n,d,c)
//! ```

use crate::diag::{Code, Diagnostic, Diagnostics, Span};
use crate::graph::{weak_acyclicity_diagnostic, DependencyGraph, TerminationCertificate};
use crate::lints;
use qi_lang::{
    parse_raw_dependency, Atom, DisjTgd, Disjunct, Egd, LangError, RawAtom, RawConclusion, RawLit,
    SpannedIdent, TextSpan, Tgd,
};
use qi_schema::Schema;

/// The dependencies recovered from a mapping file. Every field is "best
/// effort": a dependency that failed to resolve is simply absent (its
/// problems are in the diagnostics).
#[derive(Clone, Debug, Default)]
pub struct MappingParts {
    /// The declared source schema.
    pub source: Option<Schema>,
    /// The declared target schema.
    pub target: Option<Schema>,
    /// Source-to-target tgds (`tgd:` lines).
    pub st_tgds: Vec<Tgd>,
    /// Target tgds (`target-tgd:` lines).
    pub target_tgds: Vec<Tgd>,
    /// Target egds (`egd:` lines).
    pub egds: Vec<Egd>,
    /// Reverse target-to-source dependencies (`reverse:` lines).
    pub reverse: Vec<DisjTgd>,
}

/// The result of analyzing a mapping file: recovered parts, the full
/// diagnostic list, and — when the target tgds are weakly acyclic — the
/// termination certificate.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// What resolved.
    pub parts: MappingParts,
    /// Everything the analyzer found, in deterministic order.
    pub diagnostics: Diagnostics,
    /// Termination certificate for the target tgds (`None` when there
    /// are none or they are not weakly acyclic).
    pub certificate: Option<TerminationCertificate>,
}

/// Where a dependency line sits in the file; converts parser byte spans
/// into file line/column spans.
#[derive(Clone, Copy)]
struct LineCtx {
    /// 1-based line number.
    line: usize,
    /// 1-based column of the first byte of the value text.
    value_col: usize,
}

impl LineCtx {
    fn span(&self, ts: TextSpan) -> Span {
        Span {
            line: self.line,
            col: self.value_col + ts.start,
            len: ts.len(),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum DepKind {
    St,
    Target,
    Egd,
    Reverse,
}

impl DepKind {
    fn describe(self) -> &'static str {
        match self {
            DepKind::St => "s-t tgd",
            DepKind::Target => "target tgd",
            DepKind::Egd => "egd",
            DepKind::Reverse => "reverse dependency",
        }
    }
}

/// Analyze a mapping file: structure, schema resolution, per-dependency
/// lints, classification, and chase-termination analysis. Never fails —
/// problems become diagnostics, and [`Diagnostics::has_errors`] tells
/// whether the file is usable.
pub fn analyze_text(text: &str) -> Analysis {
    let mut diags = Diagnostics::new();
    let mut parts = MappingParts::default();
    let mut deps: Vec<(DepKind, LineCtx, String)> = Vec::new();
    let mut seen_source = false;
    let mut seen_target = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let line_span = Span {
            line: line_no,
            col: 1 + (raw.len() - raw.trim_start().len()),
            len: trimmed.len(),
        };
        let Some(colon) = raw.find(':') else {
            diags.push(Diagnostic::new(Code::Qi001, "expected `key: value`").with_span(line_span));
            continue;
        };
        let key = raw[..colon].trim();
        let value = &raw[colon + 1..];
        let ctx = LineCtx {
            line: line_no,
            value_col: colon + 2,
        };
        match key {
            "source" | "target" => {
                let is_source = key == "source";
                let already = if is_source { seen_source } else { seen_target };
                if already {
                    diags.push(
                        Diagnostic::new(Code::Qi001, format!("duplicate `{key}:` line"))
                            .with_span(line_span),
                    );
                    continue;
                }
                match Schema::parse(value.trim()) {
                    Ok(s) => {
                        if is_source {
                            parts.source = Some(s);
                            seen_source = true;
                        } else {
                            parts.target = Some(s);
                            seen_target = true;
                        }
                    }
                    Err(e) => {
                        diags.push(
                            Diagnostic::new(Code::Qi001, format!("invalid `{key}:` schema: {e}"))
                                .with_span(line_span),
                        );
                        // Mark as seen so a later duplicate still flags.
                        if is_source {
                            seen_source = true;
                        } else {
                            seen_target = true;
                        }
                    }
                }
            }
            "tgd" => deps.push((DepKind::St, ctx, value.to_owned())),
            "target-tgd" => deps.push((DepKind::Target, ctx, value.to_owned())),
            "egd" => deps.push((DepKind::Egd, ctx, value.to_owned())),
            "reverse" => deps.push((DepKind::Reverse, ctx, value.to_owned())),
            other => diags.push(
                Diagnostic::new(
                    Code::Qi001,
                    format!(
                        "unknown key `{other}` (expected source/target/tgd/target-tgd/egd/reverse)"
                    ),
                )
                .with_span(line_span),
            ),
        }
    }

    if parts.source.is_none() && !seen_source {
        diags.push(Diagnostic::new(Code::Qi001, "missing `source:` line"));
    }
    if parts.target.is_none() && !seen_target {
        diags.push(Diagnostic::new(Code::Qi001, "missing `target:` line"));
    }
    if !deps.iter().any(|(k, _, _)| *k == DepKind::St) {
        diags.push(Diagnostic::new(Code::Qi001, "no `tgd:` lines"));
    }

    if let (Some(source), Some(target)) = (parts.source.clone(), parts.target.clone()) {
        for (kind, ctx, value) in &deps {
            resolve_dependency(*kind, *ctx, value, &source, &target, &mut parts, &mut diags);
        }
    }

    // Per-set lints and classification.
    diags.extend(lints::lint_tgds("s-t tgd", &parts.st_tgds));
    diags.extend(lints::lint_tgds("target tgd", &parts.target_tgds));
    diags.extend(lints::lint_reverse(&parts.reverse));
    diags.extend(lints::lint_classification(&parts.st_tgds));

    // Chase-termination analysis of the target tgds.
    let mut certificate = None;
    if !parts.target_tgds.is_empty() {
        match weak_acyclicity_diagnostic(&parts.target_tgds) {
            Some(d) => diags.push(d),
            None => {
                certificate =
                    DependencyGraph::new(&parts.target_tgds).certificate(&parts.target_tgds);
            }
        }
    }

    Analysis {
        parts,
        diagnostics: diags,
        certificate,
    }
}

/// Resolve one dependency line, pushing the constructed value into
/// `parts` on success and diagnostics on failure.
fn resolve_dependency(
    kind: DepKind,
    ctx: LineCtx,
    value: &str,
    source: &Schema,
    target: &Schema,
    parts: &mut MappingParts,
    diags: &mut Diagnostics,
) {
    let raw = match parse_raw_dependency(value) {
        Ok(raw) => raw,
        Err(e) => {
            let mut d = Diagnostic::new(
                Code::Qi002,
                format!(
                    "cannot parse {}: {}",
                    kind.describe(),
                    strip_span_suffix(&e)
                ),
            );
            if let Some(ts) = e.span() {
                d = d.with_span(ctx.span(ts));
            }
            diags.push(d);
            return;
        }
    };
    match kind {
        DepKind::St => {
            if let Some(tgd) = resolve_plain_tgd(kind, ctx, raw, source, target, diags) {
                parts.st_tgds.push(tgd);
            }
        }
        DepKind::Target => {
            if let Some(tgd) = resolve_plain_tgd(kind, ctx, raw, target, target, diags) {
                parts.target_tgds.push(tgd);
            }
        }
        DepKind::Egd => {
            let RawConclusion::Equalities(eqs) = raw.conclusion else {
                diags.push(
                    Diagnostic::new(
                        Code::Qi005,
                        "an egd conclusion must be a conjunction of equalities `x = y`",
                    )
                    .with_span(ctx.span(raw.arrow)),
                );
                return;
            };
            let Some(body) = resolve_atoms_only(
                raw.premise,
                target,
                "target",
                Some((source, "source")),
                kind,
                ctx,
                diags,
            ) else {
                return;
            };
            let equalities = eqs.iter().map(|(a, b)| (a.var(), b.var())).collect();
            match Egd::new(target.clone(), body, equalities) {
                Ok(egd) => parts.egds.push(egd),
                Err(e) => diags.push(ill_formed(kind, ctx, &e)),
            }
        }
        DepKind::Reverse => {
            let RawConclusion::Disjuncts(raw_disjuncts) = raw.conclusion else {
                diags.push(
                    Diagnostic::new(
                        Code::Qi005,
                        "a reverse dependency's conclusion must be a disjunction of conjunctions",
                    )
                    .with_span(ctx.span(raw.arrow)),
                );
                return;
            };
            let mut ok = true;
            let mut body = Vec::new();
            let mut constant = Vec::new();
            let mut neq = Vec::new();
            for lit in raw.premise {
                match lit {
                    RawLit::Atom(a) => {
                        match resolve_atom(
                            &a,
                            target,
                            "target",
                            Some((source, "source")),
                            ctx,
                            diags,
                        ) {
                            Some(atom) => body.push(atom),
                            None => ok = false,
                        }
                    }
                    RawLit::Const(v) => constant.push(v.var()),
                    RawLit::Neq(a, b) => {
                        if a.name == b.name {
                            diags.push(
                                Diagnostic::new(
                                    Code::Qi008,
                                    format!(
                                        "inequality `{} != {}` is reflexive and can never hold",
                                        a.name, b.name
                                    ),
                                )
                                .with_span(ctx.span(TextSpan::new(a.span.start, b.span.end))),
                            );
                            ok = false;
                        } else {
                            neq.push((a.var(), b.var()));
                        }
                    }
                }
            }
            let mut disjuncts = Vec::new();
            for d in raw_disjuncts {
                let Some(atoms) = resolve_atoms_only(
                    d.lits,
                    source,
                    "source",
                    Some((target, "target")),
                    kind,
                    ctx,
                    diags,
                ) else {
                    ok = false;
                    continue;
                };
                disjuncts.push(Disjunct {
                    exists: d.exists.iter().map(SpannedIdent::var).collect(),
                    atoms,
                });
            }
            if !ok {
                return;
            }
            match DisjTgd::new(
                target.clone(),
                source.clone(),
                body,
                constant,
                neq,
                disjuncts,
            ) {
                Ok(dep) => parts.reverse.push(dep),
                Err(e) => diags.push(ill_formed(kind, ctx, &e)),
            }
        }
    }
}

/// Resolve a plain (non-disjunctive, guard-free) tgd.
fn resolve_plain_tgd(
    kind: DepKind,
    ctx: LineCtx,
    raw: qi_lang::RawDependency,
    premise_schema: &Schema,
    head_schema: &Schema,
    diags: &mut Diagnostics,
) -> Option<Tgd> {
    let RawConclusion::Disjuncts(mut disjuncts) = raw.conclusion else {
        diags.push(
            Diagnostic::new(
                Code::Qi005,
                format!(
                    "a {} conclusion must be a conjunction of atoms",
                    kind.describe()
                ),
            )
            .with_span(ctx.span(raw.arrow)),
        );
        return None;
    };
    if disjuncts.len() > 1 {
        diags.push(
            Diagnostic::new(
                Code::Qi005,
                format!(
                    "disjunction is not allowed in a {} (use a `reverse:` line for \
                     disjunctive dependencies)",
                    kind.describe()
                ),
            )
            .with_span(ctx.span(raw.arrow)),
        );
        return None;
    }
    let d = disjuncts.pop().expect("at least one disjunct");
    let (premise_side, head_side, other) = match kind {
        DepKind::St => ("source", "target", true),
        _ => ("target", "target", false),
    };
    let premise_other = if other {
        Some((head_schema, head_side))
    } else {
        None
    };
    let body = resolve_atoms_only(
        raw.premise,
        premise_schema,
        premise_side,
        premise_other,
        kind,
        ctx,
        diags,
    )?;
    let head_other = if other {
        Some((premise_schema, premise_side))
    } else {
        None
    };
    let head = resolve_atoms_only(d.lits, head_schema, head_side, head_other, kind, ctx, diags)?;
    match Tgd::new(
        premise_schema.clone(),
        head_schema.clone(),
        body,
        d.exists.iter().map(SpannedIdent::var).collect(),
        head,
    ) {
        Ok(tgd) => Some(tgd),
        Err(e) => {
            diags.push(ill_formed(kind, ctx, &e));
            None
        }
    }
}

/// Resolve literals that must all be relational atoms (guards and
/// inequalities are QI005 here). `None` when anything failed.
fn resolve_atoms_only(
    lits: Vec<RawLit>,
    schema: &Schema,
    side: &str,
    other: Option<(&Schema, &str)>,
    kind: DepKind,
    ctx: LineCtx,
    diags: &mut Diagnostics,
) -> Option<Vec<Atom>> {
    let mut atoms = Vec::new();
    let mut ok = true;
    for lit in lits {
        match lit {
            RawLit::Atom(raw) => match resolve_atom(&raw, schema, side, other, ctx, diags) {
                Some(a) => atoms.push(a),
                None => ok = false,
            },
            RawLit::Const(v) => {
                diags.push(
                    Diagnostic::new(
                        Code::Qi005,
                        format!(
                            "`const({})` guards are not allowed in a {} \
                             (only `reverse:` dependencies may use them)",
                            v.name,
                            kind.describe()
                        ),
                    )
                    .with_span(ctx.span(v.span)),
                );
                ok = false;
            }
            RawLit::Neq(a, b) => {
                diags.push(
                    Diagnostic::new(
                        Code::Qi005,
                        format!(
                            "inequality `{} != {}` is not allowed in a {} \
                             (only `reverse:` dependencies may use inequalities)",
                            a.name,
                            b.name,
                            kind.describe()
                        ),
                    )
                    .with_span(ctx.span(TextSpan::new(a.span.start, b.span.end))),
                );
                ok = false;
            }
        }
    }
    ok.then_some(atoms)
}

/// Resolve one atom against `schema`; emits QI003/QI004/QI010.
fn resolve_atom(
    raw: &RawAtom,
    schema: &Schema,
    side: &str,
    other: Option<(&Schema, &str)>,
    ctx: LineCtx,
    diags: &mut Diagnostics,
) -> Option<Atom> {
    let Some(rel) = schema.rel(&raw.name.name) else {
        let d = match other.and_then(|(o, oname)| o.rel(&raw.name.name).map(|_| oname)) {
            Some(oname) => Diagnostic::new(
                Code::Qi010,
                format!(
                    "`{}` is a {oname} relation but appears on the {side} side",
                    raw.name.name
                ),
            ),
            None => Diagnostic::new(
                Code::Qi003,
                format!("unknown {side} relation `{}`", raw.name.name),
            ),
        };
        diags.push(d.with_span(ctx.span(raw.name.span)));
        return None;
    };
    let arity = schema.arity(rel);
    if raw.args.len() != arity {
        diags.push(
            Diagnostic::new(
                Code::Qi004,
                format!(
                    "relation `{}` has arity {arity} but is used with {} argument(s)",
                    raw.name.name,
                    raw.args.len()
                ),
            )
            .with_span(ctx.span(raw.name.span)),
        );
        return None;
    }
    Some(Atom::new(
        rel,
        raw.args.iter().map(SpannedIdent::var).collect(),
    ))
}

fn ill_formed(kind: DepKind, ctx: LineCtx, e: &LangError) -> Diagnostic {
    Diagnostic::new(
        Code::Qi005,
        format!("ill-formed {}: {}", kind.describe(), e),
    )
    .with_span(Span {
        line: ctx.line,
        col: ctx.value_col,
        len: 0,
    })
}

/// `LangError`'s Display appends `(at byte N)` for spanned errors; the
/// analyzer reports file line/col instead, so drop the suffix.
fn strip_span_suffix(e: &LangError) -> String {
    let s = e.to_string();
    let s = s.strip_prefix("parse error: ").unwrap_or(&s);
    match s.rfind(" (at byte ") {
        Some(i) => s[..i].to_owned(),
        None => s.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    const DECOMP: &str = "\
# the paper's Decomposition mapping
source: P/3
target: Q/2 R/2
tgd: P(x,y,z) -> Q(x,y) & R(y,z)
";

    #[test]
    fn clean_file_has_only_classification() {
        let a = analyze_text(DECOMP);
        assert!(!a.diagnostics.has_errors(), "{:?}", a.diagnostics);
        assert_eq!(a.parts.st_tgds.len(), 1);
        // Not full (z is dropped? no — decomposition is full and LAV).
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    }

    #[test]
    fn unknown_relation_is_spanned() {
        let text = "source: P/2\ntarget: Q/1\ntgd: Z(x,y) -> Q(x)\n";
        let a = analyze_text(text);
        let d = &a.diagnostics.items[0];
        assert_eq!(d.code, Code::Qi003);
        let s = d.span.expect("span");
        assert_eq!((s.line, s.col, s.len), (3, 6, 1));
        assert!(a.parts.st_tgds.is_empty());
    }

    #[test]
    fn wrong_side_relation_is_qi010() {
        let text = "source: P/2\ntarget: Q/1\ntgd: Q(x) -> Q(x)\n";
        let a = analyze_text(text);
        let d = &a.diagnostics.items[0];
        assert_eq!(d.code, Code::Qi010);
        assert!(d.message.contains("target relation"), "{}", d.message);
    }

    #[test]
    fn arity_mismatch_is_qi004() {
        let text = "source: P/2\ntarget: Q/1\ntgd: P(x,y,z) -> Q(x)\n";
        let a = analyze_text(text);
        assert_eq!(a.diagnostics.items[0].code, Code::Qi004);
        assert!(a.diagnostics.items[0].message.contains("arity 2"));
    }

    #[test]
    fn parse_error_is_qi002_with_position() {
        let text = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> \n";
        let a = analyze_text(text);
        let d = &a.diagnostics.items[0];
        assert_eq!(d.code, Code::Qi002);
        assert!(!d.message.contains("at byte"), "{}", d.message);
        assert!(d.span.is_some());
    }

    #[test]
    fn structural_errors() {
        let a = analyze_text("");
        assert_eq!(a.diagnostics.len(), 3); // no source, no target, no tgds
        assert!(a.diagnostics.has_errors());
        let a = analyze_text("source: P/1\nsource: P/1\ntarget: Q/1\ntgd: P(x) -> Q(x)\n");
        assert!(a
            .diagnostics
            .items
            .iter()
            .any(|d| d.message.contains("duplicate `source:`")));
        let a = analyze_text("bogus: x\nsource: P/1\ntarget: Q/1\ntgd: P(x) -> Q(x)\n");
        assert!(a.diagnostics.items[0].message.contains("unknown key"));
        let a = analyze_text("source P/1\n");
        assert!(a.diagnostics.items[0].message.contains("key: value"));
    }

    #[test]
    fn reverse_lines_resolve_disjunctive_deps() {
        let text = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> Q(x)\n\
                    reverse: Q(x) & const(x) -> exists y . P(x,y)\n";
        let a = analyze_text(text);
        assert!(!a.diagnostics.has_errors(), "{:?}", a.diagnostics);
        assert_eq!(a.parts.reverse.len(), 1);
        assert!(a.parts.reverse[0].has_constants());
    }

    #[test]
    fn reflexive_inequality_is_qi008() {
        let text = "source: P/2\ntarget: Q/2\ntgd: P(x,y) -> Q(x,y)\n\
                    reverse: Q(x,y) & x != x -> P(x,y)\n";
        let a = analyze_text(text);
        assert!(a
            .diagnostics
            .items
            .iter()
            .any(|d| d.code == Code::Qi008 && d.severity() == Severity::Error));
        assert!(a.parts.reverse.is_empty());
    }

    #[test]
    fn guards_outside_reverse_are_qi005() {
        let text = "source: P/2\ntarget: Q/1\ntgd: P(x,y) & const(x) -> Q(x)\n";
        let a = analyze_text(text);
        assert_eq!(a.diagnostics.items[0].code, Code::Qi005);
        let text = "source: P/2\ntarget: Q/1\ntgd: P(x,y) & x != y -> Q(x)\n";
        let a = analyze_text(text);
        assert_eq!(a.diagnostics.items[0].code, Code::Qi005);
    }

    #[test]
    fn non_weakly_acyclic_target_deps_warn_with_cycle() {
        let text = "source: S0/1\ntarget: E/2\ntgd: S0(x) -> exists y . E(x,y)\n\
                    target-tgd: E(x,y) -> exists z . E(y,z)\n";
        let a = analyze_text(text);
        let qi011: Vec<_> = a
            .diagnostics
            .items
            .iter()
            .filter(|d| d.code == Code::Qi011)
            .collect();
        assert_eq!(qi011.len(), 1);
        assert!(qi011[0].message.contains("E.2"), "{}", qi011[0].message);
        assert!(a.certificate.is_none());
        assert!(!a.diagnostics.has_errors());
    }

    #[test]
    fn weakly_acyclic_target_deps_get_a_certificate() {
        let text = "source: E0/2\ntarget: E/2\ntgd: E0(x,y) -> E(x,y)\n\
                    target-tgd: E(x,y) & E(y,z) -> E(x,z)\n";
        let a = analyze_text(text);
        assert!(!a.diagnostics.has_errors());
        let cert = a.certificate.expect("certificate");
        assert_eq!(cert.max_rank, 0);
        assert_eq!(cert.value_bound(4), 4);
    }
}

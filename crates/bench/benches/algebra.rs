//! E20 — the mapping algebra as a benchmark: maximum-recovery
//! construction, forward containment, and reverse containment, with the
//! executor counters (chase tasks, hom-cache hits/misses) carried into
//! the BENCH JSON so cache behaviour stays observable.

use qi_bench::{measure, Record};
use qi_core::{
    mapping_contains_with_stats, maximum_recovery_with_stats, reverse_contains_with_stats,
    QuasiInverseOptions, SchemaMapping,
};
use qi_exec::{set_global_threads, Budget};
use qi_workloads::families::{decomposition_k, union_n};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

/// Worker counts swept by the containment benches (0 = auto).
const THREAD_SWEEP: [usize; 2] = [1, 4];

fn bench_maximum_recovery() {
    // Decomposition_k: one tgd splitting a (k+1)-ary fact into k binary
    // projections — the MinGen search and the guard machinery both grow
    // with k. (k = 4 already blows past multi-GB candidate frontiers, so
    // the sweep stops at 3.)
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let mut stats = None;
        let s = measure(MIN_ITERS, MIN_TIME, || {
            let (rev, st) = maximum_recovery_with_stats(&m, &QuasiInverseOptions::default())
                .expect("bench recovery must succeed");
            stats = Some((rev.deps.len(), st));
            rev
        });
        let (deps, st) = stats.expect("measure ran at least once");
        Record::new("algebra/maximum-recovery")
            .int("param", k as u64)
            .int("deps", deps as u64)
            .int("tasks", st.tasks)
            .int("cache_hits", st.hom_cache_hits)
            .int("cache_misses", st.hom_cache_misses)
            .sample(s)
            .emit();
    }
}

fn bench_forward_containment() {
    // union_n ⊑ union_(n/2): every outer tgd must be chased and checked;
    // the weak side contains the strong side, so the scan never exits
    // early.
    for n in [4usize, 8, 16] {
        let strong = union_n(n);
        let weak = SchemaMapping::new(
            strong.source.clone(),
            strong.target.clone(),
            strong.tgds[..n / 2].to_vec(),
        )
        .expect("prefix of a valid mapping stays valid");
        for threads in THREAD_SWEEP {
            set_global_threads(threads);
            let mut stats = None;
            let s = measure(MIN_ITERS, MIN_TIME, || {
                let (v, st) = mapping_contains_with_stats(&weak, &strong, &Budget::unlimited())
                    .expect("bench containment must succeed");
                assert!(v.holds());
                stats = Some(st);
                v
            });
            let st = stats.expect("measure ran at least once");
            Record::new("algebra/forward-containment")
                .int("param", n as u64)
                .int("threads", threads as u64)
                .int("tasks", st.tasks)
                .sample(s)
                .emit();
        }
        set_global_threads(0);
    }
}

fn bench_reverse_containment() {
    // Reverse containment of a maximum recovery against itself: the
    // equality-type enumeration runs over fully guarded premises, so
    // only the discrete partition survives — the common (cheap) case on
    // algorithm output.
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let (rev, _) = maximum_recovery_with_stats(&m, &QuasiInverseOptions::default())
            .expect("bench recovery must succeed");
        for threads in THREAD_SWEEP {
            set_global_threads(threads);
            let mut stats = None;
            let s = measure(MIN_ITERS, MIN_TIME, || {
                let (v, st) = reverse_contains_with_stats(&rev, &rev, &Budget::unlimited())
                    .expect("bench reverse containment must succeed");
                assert!(v.holds());
                stats = Some(st);
                v
            });
            let st = stats.expect("measure ran at least once");
            Record::new("algebra/reverse-containment")
                .int("param", k as u64)
                .int("threads", threads as u64)
                .int("deps", rev.deps.len() as u64)
                .int("tasks", st.tasks)
                .sample(s)
                .emit();
        }
        set_global_threads(0);
    }
}

fn main() {
    bench_maximum_recovery();
    bench_forward_containment();
    bench_reverse_containment();
}

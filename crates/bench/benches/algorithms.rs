//! E3 — the exponential-time algorithms of Theorems 4.1 and 5.1.
//!
//! * `QuasiInverse` on the k-ary decomposition family: `Σ*` enumerates
//!   the Bell-number `B(k)` complete descriptions of the frontier, and
//!   each triggers a MinGen search — the measured curve should grow
//!   super-polynomially in `k`.
//! * `Inverse` on the arity-m copy family: `B(m)` prime atoms, each
//!   chased — same expected shape.
//! * `MinGen` in isolation on a join-chain premise (search over candidate
//!   conjunctions bounded by Lemma 4.4's `s1·s2`), including the
//!   sequential-vs-parallel candidate-evaluation sweep.
//! * `QuasiInverse` on the n-way union family: disjunction width grows
//!   linearly, `Σ*` stays flat — a contrast series that should stay
//!   nearly linear.

use qi_bench::{measure, Record, THREAD_SWEEP};
use qi_core::{
    inverse, min_gen, min_gen_with_stats, quasi_inverse, MinGenOptions, QuasiInverseOptions,
};
use qi_exec::Parallelism;
use qi_lang::{Atom, Var};
use qi_workloads::families::{chain_join_j, copy_arity, decomposition_k, union_n};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

fn bench_quasi_inverse_decomposition() {
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap()
        });
        Record::new("algorithms/quasi-inverse-decomposition-k")
            .int("param", k as u64)
            .sample(s)
            .emit();
    }
}

fn bench_quasi_inverse_union() {
    for n in [2usize, 4, 8, 12] {
        let m = union_n(n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap()
        });
        Record::new("algorithms/quasi-inverse-union-n")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_inverse_copy() {
    for m_arity in [2usize, 4, 6, 8] {
        let m = copy_arity(m_arity);
        let s = measure(MIN_ITERS, MIN_TIME, || inverse(&m).unwrap().unwrap());
        Record::new("algorithms/inverse-copy-arity-m")
            .int("param", m_arity as u64)
            .sample(s)
            .emit();
    }
}

fn mingen_inputs(j: usize) -> (qi_core::SchemaMapping, Vec<Atom>, Vec<Var>) {
    let m = chain_join_j(j);
    let psi = vec![Atom::parse_parts(&m.target, "T", &["x0", &format!("x{j}")]).unwrap()];
    let x: Vec<Var> = vec![Var::new("x0"), Var::new(&format!("x{j}"))];
    (m, psi, x)
}

fn bench_mingen_chain() {
    for j in [1usize, 2, 3] {
        let (m, psi, x) = mingen_inputs(j);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap()
        });
        Record::new("algorithms/mingen-join-chain-j")
            .int("param", j as u64)
            .sample(s)
            .emit();
    }
}

fn bench_mingen_thread_sweep() {
    // Sequential vs parallel candidate evaluation on the deepest chain.
    // The generator set is bit-identical at every point of the sweep
    // (asserted here and locked down in tests/determinism.rs).
    let (m, psi, x) = mingen_inputs(3);
    let baseline = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
    for threads in THREAD_SWEEP {
        let options = MinGenOptions {
            parallelism: Parallelism::fixed(threads),
            ..Default::default()
        };
        let out = min_gen_with_stats(&m, &psi, &x, &options).unwrap();
        assert_eq!(out.generators, baseline, "parallel MinGen must be exact");
        let s = measure(MIN_ITERS, MIN_TIME, || {
            min_gen_with_stats(&m, &psi, &x, &options).unwrap()
        });
        Record::new("algorithms/mingen-threads-sweep")
            .int("threads", threads as u64)
            .int("candidates_tested", out.candidates_tested as u64)
            .int("workers", out.stats.workers as u64)
            .int("tasks", out.stats.tasks)
            .num("utilization", out.stats.utilization())
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_quasi_inverse_decomposition();
    bench_quasi_inverse_union();
    bench_inverse_copy();
    bench_mingen_chain();
    bench_mingen_thread_sweep();
}

//! E3 — the exponential-time algorithms of Theorems 4.1 and 5.1.
//!
//! * `QuasiInverse` on the k-ary decomposition family: `Σ*` enumerates
//!   the Bell-number `B(k)` complete descriptions of the frontier, and
//!   each triggers a MinGen search — the measured curve should grow
//!   super-polynomially in `k`.
//! * `Inverse` on the arity-m copy family: `B(m)` prime atoms, each
//!   chased — same expected shape.
//! * `MinGen` in isolation on a join-chain premise (search over candidate
//!   conjunctions bounded by Lemma 4.4's `s1·s2`).
//! * `QuasiInverse` on the n-way union family: disjunction width grows
//!   linearly, `Σ*` stays flat — a contrast series that should stay
//!   nearly linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::{inverse, min_gen, quasi_inverse, MinGenOptions, QuasiInverseOptions};
use qi_lang::{Atom, Var};
use qi_workloads::families::{chain_join_j, copy_arity, decomposition_k, union_n};
use std::hint::black_box;
use std::time::Duration;

fn bench_quasi_inverse_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/quasi-inverse-decomposition-k");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_quasi_inverse_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/quasi-inverse-union-n");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for n in [2usize, 4, 8, 12] {
        let m = union_n(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap()))
        });
    }
    group.finish();
}

fn bench_inverse_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/inverse-copy-arity-m");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for m_arity in [2usize, 4, 6, 8] {
        let m = copy_arity(m_arity);
        group.bench_with_input(BenchmarkId::from_parameter(m_arity), &m_arity, |b, _| {
            b.iter(|| black_box(inverse(&m).unwrap().unwrap()))
        });
    }
    group.finish();
}

fn bench_mingen_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms/mingen-join-chain-j");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    for j in [1usize, 2, 3] {
        let m = chain_join_j(j);
        let psi = vec![Atom::parse_parts(&m.target, "T", &["x0", &format!("x{j}")]).unwrap()];
        let x: Vec<Var> = vec![Var::new("x0"), Var::new(&format!("x{j}"))];
        group.bench_with_input(BenchmarkId::from_parameter(j), &j, |b, _| {
            b.iter(|| {
                black_box(min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_quasi_inverse_decomposition,
    bench_quasi_inverse_union,
    bench_inverse_copy,
    bench_mingen_chain
);
criterion_main!(benches);

//! E17 — static-analyzer throughput.
//!
//! `qi_analyze::analyze_text` runs the whole front end — parse, schema
//! checks, the lint battery, and the weak-acyclicity certificate — so
//! its cost per mapping file is the cost of `qimap lint`. The batch is
//! random mappings of growing size (rendered to mapping-file text via
//! `mapping_file_text`), and the reported rates are mappings/sec and
//! lints/sec so regressions in either the parser or an individual lint
//! show up as a throughput drop.

use qi_analyze::analyze_text;
use qi_bench::{measure, Record};
use qi_workloads::mapping_file_text;
use qi_workloads::random::{random_mapping, rng, MappingParams};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;
const BATCH: usize = 64;

fn batch_texts(params: &MappingParams) -> Vec<String> {
    let mut r = rng(7);
    (0..BATCH)
        .map(|_| mapping_file_text(&random_mapping(&mut r, params)))
        .collect()
}

fn bench_lint_throughput() {
    for (label, params) in [
        (
            "lav-full",
            MappingParams {
                lav: true,
                full: true,
                ..Default::default()
            },
        ),
        ("default", MappingParams::default()),
        (
            "wide",
            MappingParams {
                n_source_rels: 6,
                n_target_rels: 6,
                n_tgds: 12,
                max_arity: 4,
                max_body_atoms: 3,
                max_head_atoms: 3,
                ..Default::default()
            },
        ),
    ] {
        let texts = batch_texts(&params);
        let total_lints: usize = texts
            .iter()
            .map(|t| analyze_text(t).diagnostics.items.len())
            .sum();
        let s = measure(MIN_ITERS, MIN_TIME, || {
            texts
                .iter()
                .map(|t| analyze_text(t).diagnostics.items.len())
                .sum::<usize>()
        });
        let secs_per_batch = s.mean_ns() / 1e9;
        Record::new("analyze/lint-throughput")
            .str("shape", label)
            .int("mappings", BATCH as u64)
            .int("lints", total_lints as u64)
            .num("mappings_per_sec", BATCH as f64 / secs_per_batch)
            .num("lints_per_sec", total_lints as f64 / secs_per_batch)
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_lint_throughput();
}

//! E10 — chase substrate scaling.
//!
//! Wall-clock of `chase_Σ(I)` as the source instance grows, for three
//! mapping shapes (LAV decomposition, n-way union, a 3-way join premise),
//! plus the restricted-vs-oblivious ablation (the restricted chase pays a
//! satisfaction probe per trigger; the oblivious one inserts blindly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_chase::{chase, chase_oblivious};
use qi_workloads::families::{
    chain_join_j, decomposition_instance, decomposition_k, graph_instance, union_instance,
    union_n,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_decomposition(c: &mut Criterion) {
    let m = decomposition_k(3);
    let mut group = c.benchmark_group("chase/decomposition3");
    group.measurement_time(Duration::from_secs(3));
    for n in [10usize, 40, 160, 640] {
        let i = decomposition_instance(&m, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(chase(&m.tgds, &i, &m.target).unwrap().instance))
        });
    }
    group.finish();
}

fn bench_union(c: &mut Criterion) {
    let m = union_n(4);
    let mut group = c.benchmark_group("chase/union4");
    group.measurement_time(Duration::from_secs(3));
    for n in [16usize, 64, 256, 1024] {
        let i = union_instance(&m, n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(chase(&m.tgds, &i, &m.target).unwrap().instance))
        });
    }
    group.finish();
}

fn bench_join_premise(c: &mut Criterion) {
    // Three-way join premise over overlapping graph relations: trigger
    // enumeration is the dominant cost.
    let m = chain_join_j(3);
    let mut group = c.benchmark_group("chase/join3");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    for n in [10usize, 20, 40, 80] {
        let mut i = qi_schema::Instance::new(m.source.clone());
        for rel in ["A1", "A2", "A3"] {
            let g = graph_instance(&m, rel, n);
            i = i.union(&g).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(chase(&m.tgds, &i, &m.target).unwrap().instance))
        });
    }
    group.finish();
}

fn bench_restricted_vs_oblivious(c: &mut Criterion) {
    let m = decomposition_k(3);
    let i = decomposition_instance(&m, 200);
    let mut group = c.benchmark_group("chase/ablation-restricted-vs-oblivious");
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("restricted", |b| {
        b.iter(|| black_box(chase(&m.tgds, &i, &m.target).unwrap().instance))
    });
    group.bench_function("oblivious", |b| {
        b.iter(|| black_box(chase_oblivious(&m.tgds, &i, &m.target).unwrap().instance))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decomposition,
    bench_union,
    bench_join_premise,
    bench_restricted_vs_oblivious
);
criterion_main!(benches);

//! E10 — chase substrate scaling.
//!
//! Wall-clock of `chase_Σ(I)` as the source instance grows, for three
//! mapping shapes (LAV decomposition, n-way union, a 3-way join premise),
//! the restricted-vs-oblivious ablation, and the sequential-vs-parallel
//! trigger-enumeration sweep (per-stage counters included in the JSON).

use qi_bench::{measure, Record, THREAD_SWEEP};
use qi_chase::{
    chase, chase_oblivious, chase_with_options, chase_with_target_deps_stats, ChaseOptions,
    ChaseStrategy, ExchangeSetting, TargetChaseOptions, TargetChaseResult,
};
use qi_exec::Parallelism;
use qi_lang::parse_tgd;
use qi_schema::{Instance, Schema};
use qi_workloads::families::{
    chain_join_j, decomposition_instance, decomposition_k, graph_instance, union_instance, union_n,
};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 5;

fn bench_decomposition() {
    let m = decomposition_k(3);
    for n in [10usize, 40, 160, 640] {
        let i = decomposition_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/decomposition3")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_union() {
    let m = union_n(4);
    for n in [16usize, 64, 256, 1024] {
        let i = union_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/union4")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn join3_instance(m: &qi_core::SchemaMapping, n: usize) -> qi_schema::Instance {
    let mut i = qi_schema::Instance::new(m.source.clone());
    for rel in ["A1", "A2", "A3"] {
        let g = graph_instance(m, rel, n);
        i = i.union(&g).unwrap();
    }
    i
}

fn bench_join_premise() {
    // Three-way join premise over overlapping graph relations: trigger
    // enumeration is the dominant cost.
    let m = chain_join_j(3);
    for n in [10usize, 20, 40, 80] {
        let i = join3_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/join3")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_restricted_vs_oblivious() {
    let m = decomposition_k(3);
    let i = decomposition_instance(&m, 200);
    for (variant, oblivious) in [("restricted", false), ("oblivious", true)] {
        let s = measure(MIN_ITERS, MIN_TIME, || {
            if oblivious {
                chase_oblivious(&m.tgds, &i, &m.target).unwrap().instance
            } else {
                chase(&m.tgds, &i, &m.target).unwrap().instance
            }
        });
        Record::new("chase/ablation-restricted-vs-oblivious")
            .str("variant", variant)
            .sample(s)
            .emit();
    }
}

fn bench_thread_sweep() {
    // Sequential vs parallel trigger enumeration. The executor fans out
    // per tgd, so the workload is a 9-tgd mapping (every ordered pair of
    // graph relations joined) over overlapping random graphs — each task
    // is a genuine join. The chased instance is bit-identical at every
    // point of the sweep (asserted here and locked down in
    // tests/determinism.rs).
    let rels = ["A1", "A2", "A3"];
    let tgds: Vec<String> = rels
        .iter()
        .enumerate()
        .flat_map(|(i, a)| {
            rels.iter()
                .enumerate()
                .map(move |(j, b)| format!("{a}(x,y) & {b}(y,z) -> T{i}{j}(x,z)"))
        })
        .collect();
    let tgd_refs: Vec<&str> = tgds.iter().map(String::as_str).collect();
    let targets: Vec<String> = (0..rels.len())
        .flat_map(|i| (0..rels.len()).map(move |j| format!("T{i}{j}/2")))
        .collect();
    let m = qi_core::SchemaMapping::parse("A1/2 A2/2 A3/2", &targets.join(" "), &tgd_refs).unwrap();
    let i = join3_instance(&m, 60);
    let baseline = chase(&m.tgds, &i, &m.target).unwrap().instance;
    for threads in THREAD_SWEEP {
        let options = ChaseOptions {
            parallelism: Parallelism::fixed(threads),
            ..Default::default()
        };
        let out = chase_with_options(&m.tgds, &i, &m.target, options.clone()).unwrap();
        assert_eq!(out.instance, baseline, "parallel chase must be exact");
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase_with_options(&m.tgds, &i, &m.target, options.clone())
                .unwrap()
                .instance
        });
        Record::new("chase/threads-sweep-9tgd-join")
            .int("threads", threads as u64)
            .int("triggers", out.triggers as u64)
            .int("fired", out.fired as u64)
            .int("workers", out.stats.workers as u64)
            .int("tasks", out.stats.tasks)
            .num("utilization", out.stats.utilization())
            .sample(s)
            .emit();
    }
}

fn bench_seminaive() {
    // E18 — naive vs semi-naive trigger enumeration on the iterated
    // target chase. Transitive closure over a chain is the canonical
    // iterating workload: path lengths double each round, so the naive
    // strategy re-enumerates an ever-growing join from scratch while the
    // semi-naive rounds touch only the previous round's delta. The
    // solution is byte-identical either way (asserted here and locked
    // down in tests/match_oracle.rs).
    let s = Schema::parse("E0/2").unwrap();
    let t = Schema::parse("E/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "E0(x,y) -> E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "E(x,y) & E(y,z) -> E(x,z)").unwrap()],
        egds: vec![],
    };
    for n in [16usize, 48] {
        let mut i = Instance::new(s.clone());
        let rel = s.rel("E0").unwrap();
        for k in 0..n {
            i.insert(
                rel,
                vec![
                    qi_schema::Value::constant(&format!("v{k:03}")),
                    qi_schema::Value::constant(&format!("v{:03}", k + 1)),
                ],
            )
            .unwrap();
        }
        let options = |strategy| TargetChaseOptions {
            max_steps: Some(5_000_000),
            strategy,
            parallelism: Parallelism::auto(),
            ..Default::default()
        };
        let run =
            |strategy| chase_with_target_deps_stats(&setting, &i, &t, options(strategy)).unwrap();
        let (naive_result, _) = run(ChaseStrategy::Naive);
        let (semi_result, _) = run(ChaseStrategy::SemiNaive);
        assert_eq!(naive_result, semi_result, "strategies must be exact");
        for (variant, strategy) in [
            ("naive", ChaseStrategy::Naive),
            ("semi-naive", ChaseStrategy::SemiNaive),
        ] {
            let (_, stats) = run(strategy);
            let sample = measure(MIN_ITERS, MIN_TIME, || match run(strategy).0 {
                TargetChaseResult::Solution(u) => u,
                TargetChaseResult::Failed { .. } => unreachable!("no egds"),
            });
            Record::new("chase/strategy-closure-chain")
                .str("variant", variant)
                .int("param", n as u64)
                .int("steps", stats.steps as u64)
                .int("rounds", stats.exec.rounds)
                .int("triggers_enumerated", stats.exec.triggers_enumerated)
                .int("triggers_fired", stats.exec.triggers_fired)
                .int("postings_reused", stats.exec.postings_reused)
                .int("postings_rebuilt", stats.exec.postings_rebuilt)
                .int("delta_facts", stats.exec.delta_facts)
                .sample(sample)
                .emit();
        }
    }
}

fn bench_budget_overhead() {
    // Cooperative budget checks on the hot path: chase the decomposition
    // workload unlimited vs. under an ample (never-tripping) budget. The
    // result is bit-identical either way — the budget only adds atomic
    // counter traffic — and the charged counters land in the JSON so the
    // overhead and the workload's resource shape are both visible.
    let m = decomposition_k(3);
    let i = decomposition_instance(&m, 200);
    let baseline = chase(&m.tgds, &i, &m.target).unwrap().instance;
    for (variant, budget) in [
        ("unlimited", qi_exec::Budget::unlimited()),
        (
            "ample",
            qi_exec::Budget::unlimited()
                .with_max_tasks(u64::MAX / 2)
                .with_max_facts(u64::MAX / 2),
        ),
    ] {
        let options = || ChaseOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        let out = chase_with_options(&m.tgds, &i, &m.target, options()).unwrap();
        assert_eq!(out.instance, baseline, "budget must not change the chase");
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase_with_options(&m.tgds, &i, &m.target, options())
                .unwrap()
                .instance
        });
        Record::new("chase/budget-overhead")
            .str("variant", variant)
            .int("tasks_charged", budget.tasks_charged())
            .int("facts_charged", budget.facts_charged())
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_decomposition();
    bench_union();
    bench_join_premise();
    bench_restricted_vs_oblivious();
    bench_thread_sweep();
    bench_seminaive();
    bench_budget_overhead();
}

//! E10 — chase substrate scaling.
//!
//! Wall-clock of `chase_Σ(I)` as the source instance grows, for three
//! mapping shapes (LAV decomposition, n-way union, a 3-way join premise),
//! the restricted-vs-oblivious ablation, and the sequential-vs-parallel
//! trigger-enumeration sweep (per-stage counters included in the JSON).

use qi_bench::{measure, Record, THREAD_SWEEP};
use qi_chase::{chase, chase_oblivious, chase_with_options, ChaseOptions};
use qi_exec::Parallelism;
use qi_workloads::families::{
    chain_join_j, decomposition_instance, decomposition_k, graph_instance, union_instance, union_n,
};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 5;

fn bench_decomposition() {
    let m = decomposition_k(3);
    for n in [10usize, 40, 160, 640] {
        let i = decomposition_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/decomposition3")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_union() {
    let m = union_n(4);
    for n in [16usize, 64, 256, 1024] {
        let i = union_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/union4")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn join3_instance(m: &qi_core::SchemaMapping, n: usize) -> qi_schema::Instance {
    let mut i = qi_schema::Instance::new(m.source.clone());
    for rel in ["A1", "A2", "A3"] {
        let g = graph_instance(m, rel, n);
        i = i.union(&g).unwrap();
    }
    i
}

fn bench_join_premise() {
    // Three-way join premise over overlapping graph relations: trigger
    // enumeration is the dominant cost.
    let m = chain_join_j(3);
    for n in [10usize, 20, 40, 80] {
        let i = join3_instance(&m, n);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase(&m.tgds, &i, &m.target).unwrap().instance
        });
        Record::new("chase/join3")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_restricted_vs_oblivious() {
    let m = decomposition_k(3);
    let i = decomposition_instance(&m, 200);
    for (variant, oblivious) in [("restricted", false), ("oblivious", true)] {
        let s = measure(MIN_ITERS, MIN_TIME, || {
            if oblivious {
                chase_oblivious(&m.tgds, &i, &m.target).unwrap().instance
            } else {
                chase(&m.tgds, &i, &m.target).unwrap().instance
            }
        });
        Record::new("chase/ablation-restricted-vs-oblivious")
            .str("variant", variant)
            .sample(s)
            .emit();
    }
}

fn bench_thread_sweep() {
    // Sequential vs parallel trigger enumeration. The executor fans out
    // per tgd, so the workload is a 9-tgd mapping (every ordered pair of
    // graph relations joined) over overlapping random graphs — each task
    // is a genuine join. The chased instance is bit-identical at every
    // point of the sweep (asserted here and locked down in
    // tests/determinism.rs).
    let rels = ["A1", "A2", "A3"];
    let tgds: Vec<String> = rels
        .iter()
        .enumerate()
        .flat_map(|(i, a)| {
            rels.iter()
                .enumerate()
                .map(move |(j, b)| format!("{a}(x,y) & {b}(y,z) -> T{i}{j}(x,z)"))
        })
        .collect();
    let tgd_refs: Vec<&str> = tgds.iter().map(String::as_str).collect();
    let targets: Vec<String> = (0..rels.len())
        .flat_map(|i| (0..rels.len()).map(move |j| format!("T{i}{j}/2")))
        .collect();
    let m = qi_core::SchemaMapping::parse("A1/2 A2/2 A3/2", &targets.join(" "), &tgd_refs).unwrap();
    let i = join3_instance(&m, 60);
    let baseline = chase(&m.tgds, &i, &m.target).unwrap().instance;
    for threads in THREAD_SWEEP {
        let options = ChaseOptions {
            parallelism: Parallelism::fixed(threads),
        };
        let out = chase_with_options(&m.tgds, &i, &m.target, options).unwrap();
        assert_eq!(out.instance, baseline, "parallel chase must be exact");
        let s = measure(MIN_ITERS, MIN_TIME, || {
            chase_with_options(&m.tgds, &i, &m.target, options)
                .unwrap()
                .instance
        });
        Record::new("chase/threads-sweep-9tgd-join")
            .int("threads", threads as u64)
            .int("triggers", out.triggers as u64)
            .int("fired", out.fired as u64)
            .int("workers", out.stats.workers as u64)
            .int("tasks", out.stats.tasks)
            .num("utilization", out.stats.utilization())
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_decomposition();
    bench_union();
    bench_join_premise();
    bench_restricted_vs_oblivious();
    bench_thread_sweep();
}

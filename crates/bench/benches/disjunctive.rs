//! E10 — disjunctive-chase tree growth (Definitions 6.3/6.4).
//!
//! The disjunctive chase branches once per unsatisfied trigger of a
//! disjunctive dependency, so the leaf count of the Union quasi-inverse
//! grows as `2^k` in the number of exported facts — measured here
//! directly, along with the effect of `Constant`/`≠` guards pruning the
//! trigger set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_chase::{disjunctive_chase, DisjChaseOptions};
use qi_core::{quasi_inverse, QuasiInverseOptions};
use qi_schema::Instance;
use qi_workloads::families::{union_instance, union_n};
use qi_workloads::paper;
use std::hint::black_box;
use std::time::Duration;

fn bench_union_leaves(c: &mut Criterion) {
    let m = union_n(2);
    let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
    let mut group = c.benchmark_group("disjunctive/union-2^k-leaves");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for k in [2usize, 4, 6, 8, 10] {
        let u = m.chase(&union_instance(&m, k)).unwrap();
        let empty = Instance::new(m.source.clone());
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let leaves =
                    disjunctive_chase(&rev.deps, &u, &empty, DisjChaseOptions::default())
                        .unwrap();
                assert_eq!(leaves.len(), 1 << k);
                black_box(leaves)
            })
        });
    }
    group.finish();
}

fn bench_decomposition_reverse(c: &mut Criterion) {
    // The Figure 1 reverse exchange at scale: Σ' is disjunction-free, so
    // the tree is a path but the recovered instance grows quadratically
    // (every Q(x,b) joins every R(b,z)).
    let m = paper::decomposition();
    let rev = paper::decomposition_quasi_inverse_join();
    let mut group = c.benchmark_group("disjunctive/decomposition-join-reverse");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let i = qi_workloads::families::decomposition_instance(&m, n);
        let u = m.chase(&i).unwrap();
        let empty = Instance::new(m.source.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let leaves =
                    disjunctive_chase(&rev.deps, &u, &empty, DisjChaseOptions::default())
                        .unwrap();
                black_box(leaves)
            })
        });
    }
    group.finish();
}

fn bench_guard_pruning(c: &mut Criterion) {
    // Constant guards suppress every trigger whose shared values are
    // nulls. Theorem 4.8's inverse is the cleanest probe: its premise
    // joins two Q-facts, and on U (a set of 2-hop null chains) the
    // guarded version fires once per original P-fact while the stripped
    // version also walks every null chain. Non-disjunctive, so the chase
    // tree is a path either way — the measured gap is pure trigger count.
    let m = paper::thm_4_8();
    let guarded = qi_core::inverse(&m).unwrap().unwrap();
    let stripped_texts: Vec<String> = guarded
        .deps
        .iter()
        .map(|d| {
            let mut c = d.clone();
            c.constant.clear();
            c.neq.clear();
            c.to_string()
        })
        .collect();
    let refs: Vec<&str> = stripped_texts.iter().map(String::as_str).collect();
    let stripped = qi_core::ReverseMapping::parse(&m, &refs).unwrap();
    let mut group = c.benchmark_group("disjunctive/guard-ablation");
    group.measurement_time(Duration::from_secs(3));
    for n in [8usize, 32, 128] {
        // A path P(v0,v1), P(v1,v2), … — consecutive facts share an
        // endpoint, so U's null chains concatenate and the stripped
        // premise finds joins through nulls that the guards forbid.
        let mut i = Instance::new(m.source.clone());
        for k in 0..n {
            i.insert_consts("P", &[&format!("v{k}"), &format!("v{}", k + 1)])
                .unwrap();
        }
        let u = m.chase(&i).unwrap();
        group.bench_with_input(BenchmarkId::new("guarded", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    disjunctive_chase(
                        &guarded.deps,
                        &u,
                        &Instance::new(m.source.clone()),
                        DisjChaseOptions::default(),
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("stripped", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    disjunctive_chase(
                        &stripped.deps,
                        &u,
                        &Instance::new(m.source.clone()),
                        DisjChaseOptions::default(),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_union_leaves,
    bench_decomposition_reverse,
    bench_guard_pruning
);
criterion_main!(benches);

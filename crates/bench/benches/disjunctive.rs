//! E10 — disjunctive-chase tree growth (Definitions 6.3/6.4).
//!
//! The disjunctive chase branches once per unsatisfied trigger of a
//! disjunctive dependency, so the leaf count of the Union quasi-inverse
//! grows as `2^k` in the number of exported facts — measured here
//! directly, along with the effect of `Constant`/`≠` guards pruning the
//! trigger set and a sequential-vs-parallel wave-evaluation sweep.

use qi_bench::{measure, Record, THREAD_SWEEP};
use qi_chase::{disjunctive_chase, disjunctive_chase_with_stats, DisjChaseOptions};
use qi_core::{quasi_inverse, QuasiInverseOptions};
use qi_exec::Parallelism;
use qi_schema::Instance;
use qi_workloads::families::{union_instance, union_n};
use qi_workloads::paper;
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

fn bench_union_leaves() {
    let m = union_n(2);
    let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
    for k in [2usize, 4, 6, 8, 10] {
        let u = m.chase(&union_instance(&m, k)).unwrap();
        let empty = Instance::new(m.source.clone());
        let s = measure(MIN_ITERS, MIN_TIME, || {
            let leaves =
                disjunctive_chase(&rev.deps, &u, &empty, DisjChaseOptions::default()).unwrap();
            assert_eq!(leaves.len(), 1 << k);
            leaves
        });
        Record::new("disjunctive/union-2^k-leaves")
            .int("param", k as u64)
            .int("leaves", 1u64 << k)
            .sample(s)
            .emit();
    }
}

fn bench_decomposition_reverse() {
    // The Figure 1 reverse exchange at scale: Σ' is disjunction-free, so
    // the tree is a path but the recovered instance grows quadratically
    // (every Q(x,b) joins every R(b,z)).
    let m = paper::decomposition();
    let rev = paper::decomposition_quasi_inverse_join();
    for n in [4usize, 8, 16, 32] {
        let i = qi_workloads::families::decomposition_instance(&m, n);
        let u = m.chase(&i).unwrap();
        let empty = Instance::new(m.source.clone());
        let s = measure(MIN_ITERS, MIN_TIME, || {
            disjunctive_chase(&rev.deps, &u, &empty, DisjChaseOptions::default()).unwrap()
        });
        Record::new("disjunctive/decomposition-join-reverse")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_guard_pruning() {
    // Constant guards suppress every trigger whose shared values are
    // nulls. Theorem 4.8's inverse is the cleanest probe: its premise
    // joins two Q-facts, and on U (a set of 2-hop null chains) the
    // guarded version fires once per original P-fact while the stripped
    // version also walks every null chain. Non-disjunctive, so the chase
    // tree is a path either way — the measured gap is pure trigger count.
    let m = paper::thm_4_8();
    let guarded = qi_core::inverse(&m).unwrap().unwrap();
    let stripped_texts: Vec<String> = guarded
        .deps
        .iter()
        .map(|d| {
            let mut c = d.clone();
            c.constant.clear();
            c.neq.clear();
            c.to_string()
        })
        .collect();
    let refs: Vec<&str> = stripped_texts.iter().map(String::as_str).collect();
    let stripped = qi_core::ReverseMapping::parse(&m, &refs).unwrap();
    for n in [8usize, 32, 128] {
        // A path P(v0,v1), P(v1,v2), … — consecutive facts share an
        // endpoint, so U's null chains concatenate and the stripped
        // premise finds joins through nulls that the guards forbid.
        let mut i = Instance::new(m.source.clone());
        for k in 0..n {
            i.insert_consts("P", &[&format!("v{k}"), &format!("v{}", k + 1)])
                .unwrap();
        }
        let u = m.chase(&i).unwrap();
        for (variant, deps) in [("guarded", &guarded.deps), ("stripped", &stripped.deps)] {
            let s = measure(MIN_ITERS, MIN_TIME, || {
                disjunctive_chase(
                    deps,
                    &u,
                    &Instance::new(m.source.clone()),
                    DisjChaseOptions::default(),
                )
                .unwrap()
            });
            Record::new("disjunctive/guard-ablation")
                .str("variant", variant)
                .int("param", n as u64)
                .sample(s)
                .emit();
        }
    }
}

fn bench_thread_sweep() {
    // Sequential vs parallel trigger evaluation across the frontier of
    // the 2^k-leaf union tree. Leaves are bit-identical at every point of
    // the sweep (asserted here and locked down in tests/determinism.rs).
    let m = union_n(2);
    let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
    let k = 8usize;
    let u = m.chase(&union_instance(&m, k)).unwrap();
    let empty = Instance::new(m.source.clone());
    let baseline = disjunctive_chase(&rev.deps, &u, &empty, DisjChaseOptions::default()).unwrap();
    for threads in THREAD_SWEEP {
        let options = DisjChaseOptions {
            parallelism: Parallelism::fixed(threads),
            ..Default::default()
        };
        let out = disjunctive_chase_with_stats(&rev.deps, &u, &empty, options.clone()).unwrap();
        assert_eq!(
            out.leaves, baseline,
            "parallel disjunctive chase must be exact"
        );
        let s = measure(MIN_ITERS, MIN_TIME, || {
            disjunctive_chase_with_stats(&rev.deps, &u, &empty, options.clone()).unwrap()
        });
        Record::new("disjunctive/threads-sweep-union")
            .int("threads", threads as u64)
            .int("nodes_visited", out.nodes_visited as u64)
            .int("waves", out.waves as u64)
            .int("workers", out.stats.workers as u64)
            .int("tasks", out.stats.tasks)
            .num("utilization", out.stats.utilization())
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_union_leaves();
    bench_decomposition_reverse();
    bench_guard_pruning();
    bench_thread_sweep();
}

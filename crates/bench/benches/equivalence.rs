//! E10 — the `~M` machinery of §3 as a benchmark: solution-space
//! containment, `~M` equivalence, and the bounded property checkers.

use qi_bench::{measure, Record};
use qi_core::enumerate::ground_instances;
use qi_core::{
    equivalent, solutions_subset, subset_property_bounded, unique_solutions_bounded, Relation,
};
use qi_workloads::families::{decomposition_instance, decomposition_k};
use qi_workloads::paper;
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

fn bench_equivalence_check() {
    let m = decomposition_k(3);
    for n in [8usize, 32, 128] {
        let a = decomposition_instance(&m, n);
        // An equivalent variant: duplicate a middle row (chases equal).
        let b = a.union(&decomposition_instance(&m, n / 2)).unwrap();
        let s = measure(MIN_ITERS, MIN_TIME, || {
            assert!(equivalent(&m, &a, &b).unwrap());
        });
        Record::new("equivalence/tilde-M")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_solution_subset() {
    let m = decomposition_k(3);
    for n in [8usize, 32, 128] {
        let small = decomposition_instance(&m, n);
        let big = decomposition_instance(&m, n * 2);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            assert!(solutions_subset(&m, &big, &small).unwrap());
        });
        Record::new("equivalence/sol-subset")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_unique_solutions_universe() {
    // Bounded unique-solutions check over growing exhaustive universes
    // (the cost of the §1 non-invertibility arguments).
    let m = paper::projection();
    for cap in [2usize, 3, 4] {
        let universe = ground_instances(&m.source, &["a", "b"], cap);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            assert!(unique_solutions_bounded(&m, &universe).unwrap().is_some());
        });
        Record::new("equivalence/unique-solutions-universe")
            .int("param", universe.len() as u64)
            .sample(s)
            .emit();
    }
}

fn bench_subset_property_prop_3_12() {
    // The conclusive Prop 3.12 refutation over the 512-instance universe
    // (the heaviest bounded check in the test-suite).
    let m = paper::prop_3_12();
    for consts in [2usize, 3] {
        let pool: Vec<&str> = ["a", "b", "c"][..consts].to_vec();
        let universe = ground_instances(&m.source, &pool, consts * consts);
        let s = measure(MIN_ITERS, MIN_TIME, || {
            let r = subset_property_bounded(
                &m,
                Relation::SolutionEquiv,
                Relation::SolutionEquiv,
                &universe,
            )
            .unwrap();
            assert_eq!(r.holds, consts < 3);
            r
        });
        Record::new("equivalence/subset-property-prop-3.12")
            .int("param", universe.len() as u64)
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_equivalence_check();
    bench_solution_subset();
    bench_unique_solutions_universe();
    bench_subset_property_prop_3_12();
}

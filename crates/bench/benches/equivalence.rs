//! E10 — the `~M` machinery of §3 as a benchmark: solution-space
//! containment, `~M` equivalence, and the bounded property checkers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_core::enumerate::ground_instances;
use qi_core::{
    equivalent, solutions_subset, subset_property_bounded, unique_solutions_bounded, Relation,
};
use qi_workloads::families::{decomposition_instance, decomposition_k};
use qi_workloads::paper;
use std::hint::black_box;
use std::time::Duration;

fn bench_equivalence_check(c: &mut Criterion) {
    let m = decomposition_k(3);
    let mut group = c.benchmark_group("equivalence/tilde-M");
    group.measurement_time(Duration::from_secs(3));
    for n in [8usize, 32, 128] {
        let a = decomposition_instance(&m, n);
        // An equivalent variant: duplicate a middle row (chases equal).
        let b = a
            .union(&decomposition_instance(&m, n / 2))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b_, _| {
            b_.iter(|| {
                assert!(equivalent(&m, &a, &b).unwrap());
                black_box(())
            })
        });
    }
    group.finish();
}

fn bench_solution_subset(c: &mut Criterion) {
    let m = decomposition_k(3);
    let mut group = c.benchmark_group("equivalence/sol-subset");
    group.measurement_time(Duration::from_secs(3));
    for n in [8usize, 32, 128] {
        let small = decomposition_instance(&m, n);
        let big = decomposition_instance(&m, n * 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                assert!(solutions_subset(&m, &big, &small).unwrap());
                black_box(())
            })
        });
    }
    group.finish();
}

fn bench_unique_solutions_universe(c: &mut Criterion) {
    // Bounded unique-solutions check over growing exhaustive universes
    // (the cost of the §1 non-invertibility arguments).
    let m = paper::projection();
    let mut group = c.benchmark_group("equivalence/unique-solutions-universe");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for cap in [2usize, 3, 4] {
        let universe = ground_instances(&m.source, &["a", "b"], cap);
        group.bench_with_input(
            BenchmarkId::from_parameter(universe.len()),
            &cap,
            |b, _| {
                b.iter(|| {
                    assert!(unique_solutions_bounded(&m, &universe).unwrap().is_some());
                    black_box(())
                })
            },
        );
    }
    group.finish();
}

fn bench_subset_property_prop_3_12(c: &mut Criterion) {
    // The conclusive Prop 3.12 refutation over the 512-instance universe
    // (the heaviest bounded check in the test-suite).
    let m = paper::prop_3_12();
    let mut group = c.benchmark_group("equivalence/subset-property-prop-3.12");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for consts in [2usize, 3] {
        let pool: Vec<&str> = ["a", "b", "c"][..consts].to_vec();
        let universe = ground_instances(&m.source, &pool, consts * consts);
        group.bench_with_input(
            BenchmarkId::from_parameter(universe.len()),
            &consts,
            |b, &consts| {
                b.iter(|| {
                    let r = subset_property_bounded(
                        &m,
                        Relation::SolutionEquiv,
                        Relation::SolutionEquiv,
                        &universe,
                    )
                    .unwrap();
                    assert_eq!(r.holds, consts < 3);
                    black_box(r)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_equivalence_check,
    bench_solution_subset,
    bench_unique_solutions_universe,
    bench_subset_property_prop_3_12
);
criterion_main!(benches);

//! E19 — homomorphism engine v2: retraction cores and the hom cache.
//!
//! Two series backing the v2 engine's perf claims:
//!
//! * `hom/core-chase-output` — `core_of` (retraction-based fold) against
//!   the pre-v2 greedy fact-dropping reference (`core_of_greedy`, kept
//!   behind the `greedy-core` feature) on chase outputs with growing
//!   null-chain length `k`: the shape closure-style mappings produce,
//!   where one endomorphism folds a whole chain onto its constant
//!   anchor. The two cores are checked isomorphic at every point.
//! * `hom/quasi-inverse-cache` — the full QuasiInverse pipeline (MinGen
//!   coverage + Step-3 subsumption + disjunct minimization) with the
//!   shared [`HomCache`] on vs off, emitting the hit/miss counters; the
//!   reverse mappings are asserted identical, since cached answers are
//!   pure.

use qi_bench::{chase_or_panic, measure, Record};
use qi_core::{quasi_inverse_with_stats, QuasiInverseOptions, SchemaMapping};
use qi_schema::{
    core_of_greedy, core_of_with_stats, hom_equivalent, is_isomorphic, HomCache, Instance, NullId,
    Value,
};
use qi_workloads::families::decomposition_k;
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

/// The closure-style mapping whose chase emits, per `E0`-edge, a chain of
/// `k` nulls between its endpoints. The existential tgd comes first so
/// its chains fire *before* the `F`-edges and `S`-loops that later make
/// them redundant — the order the chase on a real closure workload would
/// interleave them.
fn chain_mapping(k: usize) -> SchemaMapping {
    let mut head: Vec<String> = Vec::new();
    let zs: Vec<String> = (1..=k).map(|i| format!("z{i}")).collect();
    head.push(format!("E(x,{})", zs[0]));
    for w in zs.windows(2) {
        head.push(format!("E({},{})", w[0], w[1]));
    }
    head.push(format!("E({},y)", zs[k - 1]));
    let dep = format!("E0(x,y) -> exists {} . {}", zs.join(" "), head.join(" & "));
    SchemaMapping::parse(
        "E0/2 F/2 S/1",
        "E/2",
        &[dep.as_str(), "F(x,y) -> E(x,y)", "S(x) -> E(x,x)"],
    )
    .expect("generated mapping is valid")
}

/// `anchors` pairs `aᵢ → bᵢ`, each with an `E0`-edge (chased into a
/// null chain), a direct `F`-edge, and a loop at `bᵢ`: the chain's nulls
/// all fold onto `bᵢ`, so the core is exactly the `F`/`S` images. `tag`
/// disambiguates the constants so different shapes share none.
fn chain_source(m: &SchemaMapping, anchors: usize, tag: usize) -> Instance {
    let mut inst = Instance::new(m.source.clone());
    for i in 0..anchors {
        let a = format!("a{tag}_{i}");
        let b = format!("b{tag}_{i}");
        inst.insert_consts("E0", &[&a, &b]).expect("arity matches");
        inst.insert_consts("F", &[&a, &b]).expect("arity matches");
        inst.insert_consts("S", &[&b]).expect("arity matches");
    }
    inst
}

fn bench_core_chase_output() {
    const ANCHORS: usize = 3;
    for k in [2usize, 4, 8] {
        let m = chain_mapping(k);
        let u = chase_or_panic(&m, &chain_source(&m, ANCHORS, 0));
        let (v2, stats) = core_of_with_stats(&u);
        let greedy = core_of_greedy(&u);
        assert!(
            is_isomorphic(&v2, &greedy),
            "cores disagree at k={k}: {v2} vs {greedy}"
        );
        assert_eq!(u.nulls().len(), ANCHORS * k, "chains must materialize");
        assert_eq!(v2.fact_count(), 2 * ANCHORS, "core must be the F/S images");
        let s_v2 = measure(MIN_ITERS, MIN_TIME, || core_of_with_stats(&u));
        let s_greedy = measure(MIN_ITERS, MIN_TIME, || core_of_greedy(&u));
        Record::new("hom/core-chase-output")
            .int("param", k as u64)
            .int("facts", u.fact_count() as u64)
            .int("nulls", u.nulls().len() as u64)
            .int("endos_tried", stats.endos_tried)
            .int("nulls_folded", stats.nulls_folded)
            .int("rounds", stats.rounds)
            .num("greedy_mean_ns", s_greedy.mean_ns())
            .num("speedup", s_greedy.mean_ns() / s_v2.mean_ns())
            .sample(s_v2)
            .emit();
    }
}

fn bench_quasi_inverse_cache() {
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let mut results = Vec::new();
        for cached in [false, true] {
            let options = QuasiInverseOptions {
                mingen: qi_core::MinGenOptions {
                    hom_cache: cached,
                    ..Default::default()
                },
                ..Default::default()
            };
            let (rev, stats) = quasi_inverse_with_stats(&m, &options).unwrap();
            results.push(rev);
            let s = measure(MIN_ITERS, MIN_TIME, || {
                quasi_inverse_with_stats(&m, &options).unwrap()
            });
            Record::new("hom/quasi-inverse-cache")
                .int("param", k as u64)
                .int("cached", cached as u64)
                .int("cache_hits", stats.hom_cache_hits)
                .int("cache_misses", stats.hom_cache_misses)
                .sample(s)
                .emit();
        }
        assert_eq!(
            results[0].deps, results[1].deps,
            "the cache must not change the reverse mapping at k={k}"
        );
    }
}

/// A copy of `u` with every null id shifted — `hom_equivalent` to `u`,
/// and fingerprint-identical after canonical renaming.
fn rename_nulls(u: &Instance, shift: u64) -> Instance {
    u.map_values(|v| match v {
        Value::Null(id) => Value::Null(NullId(id.0 + shift)),
        v => v,
    })
}

fn bench_equivalence_classes() {
    // The verification workload (`~M` universe indexing, faithfulness
    // matrices): partition chase outputs into hom-equivalence classes.
    // Null-renamed duplicates are the common case there, and exactly what
    // the cache's canonical fingerprint collapses to a string compare.
    const COPIES: usize = 3;
    for shapes in [4usize, 8] {
        let mut universe: Vec<Instance> = Vec::new();
        for s in 0..shapes {
            let m = chain_mapping(3 + s % 3);
            let u = chase_or_panic(&m, &chain_source(&m, 1 + s / 3, s));
            for c in 0..COPIES {
                universe.push(rename_nulls(&u, 1_000 * (c as u64 + 1)));
            }
        }
        let classify = |equiv: &mut dyn FnMut(&Instance, &Instance) -> bool| -> Vec<usize> {
            let mut reps: Vec<usize> = Vec::new();
            let mut class = Vec::new();
            for i in 0..universe.len() {
                match reps.iter().position(|&r| equiv(&universe[r], &universe[i])) {
                    Some(p) => class.push(p),
                    None => {
                        reps.push(i);
                        class.push(reps.len() - 1);
                    }
                }
            }
            class
        };
        let plain = classify(&mut |a, b| hom_equivalent(a, b));
        let cold = HomCache::new();
        let cached = classify(&mut |a, b| cold.hom_equivalent(a, b));
        assert_eq!(plain, cached, "the cache must not change the classes");
        let (hits, misses) = cold.counters();
        let s_plain = measure(MIN_ITERS, MIN_TIME, || {
            classify(&mut |a, b| hom_equivalent(a, b))
        });
        // One cold cache per iteration, as UniverseIndex would create it.
        let s_cached = measure(MIN_ITERS, MIN_TIME, || {
            let c = HomCache::new();
            classify(&mut |a, b| c.hom_equivalent(a, b))
        });
        Record::new("hom/equivalence-classes")
            .int("param", shapes as u64)
            .int("universe", (shapes * COPIES) as u64)
            .int("cache_hits", hits)
            .int("cache_misses", misses)
            .num("plain_mean_ns", s_plain.mean_ns())
            .num("speedup", s_plain.mean_ns() / s_cached.mean_ns())
            .sample(s_cached)
            .emit();
    }
}

fn main() {
    bench_core_chase_output();
    bench_quasi_inverse_cache();
    bench_equivalence_classes();
}

//! E10 — homomorphism-search scaling.
//!
//! Every decision procedure in the reproduction bottoms out in the
//! backtracking homomorphism search (`~M`, generator tests, soundness
//! certificates). This bench measures it on the structures that actually
//! occur: chase outputs with nulls, and graph-shaped instances where the
//! search must join across facts. Core computation (iterated folding) is
//! included as the stress variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_schema::{core_of, has_hom, Instance, Schema};
use qi_workloads::families::{decomposition_instance, decomposition_k};
use std::hint::black_box;
use std::time::Duration;

/// A path of `n` null-to-null edges (maximally flexible pattern).
fn null_path(schema: &Schema, n: usize) -> Instance {
    let mut i = Instance::new(schema.clone());
    let e = schema.rel("E").unwrap();
    for k in 0..n {
        i.insert(e, vec![qi_schema::Value::null(k as u64), qi_schema::Value::null(k as u64 + 1)])
            .unwrap();
    }
    i
}

/// A constant cycle of length `n`.
fn cycle(schema: &Schema, n: usize) -> Instance {
    let mut i = Instance::new(schema.clone());
    let e = schema.rel("E").unwrap();
    for k in 0..n {
        i.insert(
            e,
            vec![
                qi_schema::Value::constant(&format!("v{k}")),
                qi_schema::Value::constant(&format!("v{}", (k + 1) % n)),
            ],
        )
        .unwrap();
    }
    i
}

fn bench_path_into_cycle(c: &mut Criterion) {
    let schema = Schema::parse("E/2").unwrap();
    let mut group = c.benchmark_group("hom/null-path-into-cycle");
    group.measurement_time(Duration::from_secs(3));
    for n in [4usize, 8, 16, 32] {
        let path = null_path(&schema, n);
        let target = cycle(&schema, n + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(has_hom(&path, &target)))
        });
    }
    group.finish();
}

fn bench_chase_output_equivalence(c: &mut Criterion) {
    // hom checks between chase outputs — the exact shape `~M` uses.
    let m = decomposition_k(3);
    let mut group = c.benchmark_group("hom/chase-outputs");
    group.measurement_time(Duration::from_secs(3));
    for n in [10usize, 40, 160] {
        let u1 = m.chase(&decomposition_instance(&m, n)).unwrap();
        let u2 = m.chase(&decomposition_instance(&m, n + 1)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(has_hom(&u1, &u2)))
        });
    }
    group.finish();
}

fn bench_core(c: &mut Criterion) {
    let schema = Schema::parse("E/2").unwrap();
    let mut group = c.benchmark_group("hom/core");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        // A constant loop plus a redundant null path that folds onto it.
        let mut i = cycle(&schema, 1);
        i = i.union(&null_path(&schema, n)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(core_of(&i)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_path_into_cycle,
    bench_chase_output_equivalence,
    bench_core
);
criterion_main!(benches);

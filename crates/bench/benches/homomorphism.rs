//! E10 — homomorphism-search scaling.
//!
//! Every decision procedure in the reproduction bottoms out in the
//! backtracking homomorphism search (`~M`, generator tests, soundness
//! certificates). This bench measures it on the structures that actually
//! occur: chase outputs with nulls, and graph-shaped instances where the
//! search must join across facts. Core computation (iterated folding) is
//! included as the stress variant.

use qi_bench::{measure, Record};
use qi_schema::{core_of, has_hom, Instance, Schema};
use qi_workloads::families::{decomposition_instance, decomposition_k};
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 5;

/// A path of `n` null-to-null edges (maximally flexible pattern).
fn null_path(schema: &Schema, n: usize) -> Instance {
    let mut i = Instance::new(schema.clone());
    let e = schema.rel("E").unwrap();
    for k in 0..n {
        i.insert(
            e,
            vec![
                qi_schema::Value::null(k as u64),
                qi_schema::Value::null(k as u64 + 1),
            ],
        )
        .unwrap();
    }
    i
}

/// A constant cycle of length `n`.
fn cycle(schema: &Schema, n: usize) -> Instance {
    let mut i = Instance::new(schema.clone());
    let e = schema.rel("E").unwrap();
    for k in 0..n {
        i.insert(
            e,
            vec![
                qi_schema::Value::constant(&format!("v{k}")),
                qi_schema::Value::constant(&format!("v{}", (k + 1) % n)),
            ],
        )
        .unwrap();
    }
    i
}

fn bench_path_into_cycle() {
    let schema = Schema::parse("E/2").unwrap();
    for n in [4usize, 8, 16, 32] {
        let path = null_path(&schema, n);
        let target = cycle(&schema, n + 1);
        let s = measure(MIN_ITERS, MIN_TIME, || has_hom(&path, &target));
        Record::new("hom/null-path-into-cycle")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_chase_output_equivalence() {
    // hom checks between chase outputs — the exact shape `~M` uses.
    let m = decomposition_k(3);
    for n in [10usize, 40, 160] {
        let u1 = m.chase(&decomposition_instance(&m, n)).unwrap();
        let u2 = m.chase(&decomposition_instance(&m, n + 1)).unwrap();
        let s = measure(MIN_ITERS, MIN_TIME, || has_hom(&u1, &u2));
        Record::new("hom/chase-outputs")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn bench_core() {
    let schema = Schema::parse("E/2").unwrap();
    for n in [4usize, 8, 12] {
        // A constant loop plus a redundant null path that folds onto it.
        let mut i = cycle(&schema, 1);
        i = i.union(&null_path(&schema, n)).unwrap();
        let s = measure(MIN_ITERS, MIN_TIME, || core_of(&i));
        Record::new("hom/core")
            .int("param", n as u64)
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_path_into_cycle();
    bench_chase_output_equivalence();
    bench_core();
}

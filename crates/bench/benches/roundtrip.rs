//! E2 at scale — the Figure 1 bidirectional exchange as a benchmark.
//!
//! `I → U → V → chase(V) → faithfulness certificate`, for the
//! Decomposition mapping and each of its three quasi-inverses (the
//! paper's `Σ'` and `Σ''`, and the QuasiInverse algorithm's guarded
//! output). The comparison mirrors the paper's discussion: `Σ'` recovers
//! a quadratically larger ground instance whose re-chase equals `U`
//! exactly; `Σ''` recovers a same-size instance with nulls whose
//! re-chase is only hom-equivalent (the certificate costs a hom search).

use qi_bench::{measure, Record};
use qi_core::{quasi_inverse, round_trip, QuasiInverseOptions};
use qi_exec::{par_map, Parallelism};
use qi_workloads::families::decomposition_instance;
use qi_workloads::paper;
use std::time::Duration;

const MIN_TIME: Duration = Duration::from_millis(200);
const MIN_ITERS: u32 = 3;

fn bench_roundtrip_variants() {
    let m = paper::decomposition();
    // The algorithm output is a *disjunctive* reverse mapping: every
    // all-distinct trigger branches two ways, so its leaf count is
    // 2^(n²) in the shared-middle workload — keep its sizes small (the
    // blow-up itself is the measured phenomenon). The paper's two
    // disjunction-free quasi-inverses scale to larger instances.
    let variants = [
        (
            "sigma-prime-join",
            paper::decomposition_quasi_inverse_join(),
            vec![2usize, 4, 8, 16],
        ),
        (
            "sigma-doubleprime-lav",
            paper::decomposition_quasi_inverse_lav(),
            vec![2usize, 4, 8, 16],
        ),
        (
            "algorithm-output",
            quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap(),
            vec![1usize, 2, 3],
        ),
    ];
    for (name, rev, sizes) in &variants {
        for &n in sizes {
            let i = decomposition_instance(&m, n);
            let s = measure(MIN_ITERS, MIN_TIME, || {
                let rt = round_trip(&m, rev, &i, Default::default()).unwrap();
                assert!(rt.is_faithful());
                rt
            });
            Record::new(&format!("roundtrip/{name}"))
                .int("param", n as u64)
                .sample(s)
                .emit();
        }
    }
}

fn bench_parallel_verification() {
    // Verifying faithfulness over a batch of instances is embarrassingly
    // parallel; measure the batch throughput through the deterministic
    // executor (the shape EXPERIMENTS.md's E4 sweep uses).
    let m = paper::decomposition();
    let rev = paper::decomposition_quasi_inverse_join();
    let instances: Vec<_> = (1..=8).map(|n| decomposition_instance(&m, n)).collect();
    for (variant, parallelism) in [
        ("sequential", Parallelism::sequential()),
        ("parallel", Parallelism::default()),
    ] {
        let s = measure(MIN_ITERS, MIN_TIME, || {
            let ok = par_map(parallelism, &instances, |i| {
                round_trip(&m, &rev, i, Default::default())
                    .unwrap()
                    .is_faithful()
            });
            assert!(ok.into_iter().all(|b| b));
        });
        Record::new("roundtrip/batch-verification")
            .str("variant", variant)
            .int("batch", instances.len() as u64)
            .sample(s)
            .emit();
    }
}

fn main() {
    bench_roundtrip_variants();
    bench_parallel_verification();
}

//! E2 at scale — the Figure 1 bidirectional exchange as a benchmark.
//!
//! `I → U → V → chase(V) → faithfulness certificate`, for the
//! Decomposition mapping and each of its three quasi-inverses (the
//! paper's `Σ'` and `Σ''`, and the QuasiInverse algorithm's guarded
//! output). The comparison mirrors the paper's discussion: `Σ'` recovers
//! a quadratically larger ground instance whose re-chase equals `U`
//! exactly; `Σ''` recovers a same-size instance with nulls whose
//! re-chase is only hom-equivalent (the certificate costs a hom search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qi_bench::par_run;
use qi_core::{quasi_inverse, round_trip, QuasiInverseOptions};
use qi_workloads::families::decomposition_instance;
use qi_workloads::paper;
use std::hint::black_box;
use std::time::Duration;

fn bench_roundtrip_variants(c: &mut Criterion) {
    let m = paper::decomposition();
    // The algorithm output is a *disjunctive* reverse mapping: every
    // all-distinct trigger branches two ways, so its leaf count is
    // 2^(n²) in the shared-middle workload — keep its sizes small (the
    // blow-up itself is the measured phenomenon). The paper's two
    // disjunction-free quasi-inverses scale to larger instances.
    let variants = [
        (
            "sigma-prime-join",
            paper::decomposition_quasi_inverse_join(),
            vec![2usize, 4, 8, 16],
        ),
        (
            "sigma-doubleprime-lav",
            paper::decomposition_quasi_inverse_lav(),
            vec![2usize, 4, 8, 16],
        ),
        (
            "algorithm-output",
            quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap(),
            vec![1usize, 2, 3],
        ),
    ];
    for (name, rev, sizes) in &variants {
        let mut group = c.benchmark_group(format!("roundtrip/{name}"));
        group.measurement_time(Duration::from_secs(4));
        group.sample_size(10);
        for &n in sizes {
            let i = decomposition_instance(&m, n);
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| {
                    let rt = round_trip(&m, rev, &i, Default::default()).unwrap();
                    assert!(rt.is_faithful());
                    black_box(rt)
                })
            });
        }
        group.finish();
    }
}

fn bench_parallel_verification(c: &mut Criterion) {
    // Verifying faithfulness over a batch of instances is embarrassingly
    // parallel; measure the batch throughput through the crossbeam
    // fan-out helper (the shape EXPERIMENTS.md's E4 sweep uses).
    let m = paper::decomposition();
    let rev = paper::decomposition_quasi_inverse_join();
    let instances: Vec<_> = (1..=8).map(|n| decomposition_instance(&m, n)).collect();
    let mut group = c.benchmark_group("roundtrip/batch-verification");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for i in &instances {
                let rt = round_trip(&m, &rev, i, Default::default()).unwrap();
                assert!(rt.is_faithful());
            }
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| {
            let jobs: Vec<Box<dyn FnOnce() -> bool + Send>> = instances
                .iter()
                .map(|i| {
                    let m = m.clone();
                    let rev = rev.clone();
                    let i = i.clone();
                    Box::new(move || {
                        round_trip(&m, &rev, &i, Default::default())
                            .unwrap()
                            .is_faithful()
                    }) as Box<dyn FnOnce() -> bool + Send>
                })
                .collect();
            assert!(par_run(jobs).into_iter().all(|ok| ok));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_roundtrip_variants, bench_parallel_verification);
criterion_main!(benches);

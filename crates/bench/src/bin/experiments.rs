//! `experiments` — regenerate the scaling tables of EXPERIMENTS.md
//! (experiments E3 and the E10 highlights) as markdown, with inline
//! wall-clock measurements.
//!
//! ```sh
//! cargo run --release -p qi-bench --bin experiments
//! ```
//!
//! Unlike the Criterion benches (which produce statistically rigorous
//! estimates), this binary takes quick medians-of-5 so the whole report
//! regenerates in seconds; use `cargo bench` for publishable numbers.

use qi_core::{inverse, min_gen, quasi_inverse, MinGenOptions, QuasiInverseOptions};
use qi_lang::{Atom, Var};
use qi_workloads::families::{
    chain_join_j, copy_arity, decomposition_instance, decomposition_k, union_instance, union_n,
};
use qi_workloads::paper;
use std::time::{Duration, Instant};

/// Median of five runs of `f`.
fn time5<T>(mut f: impl FnMut() -> T) -> Duration {
    let mut samples: Vec<Duration> = (0..5)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[2]
}

/// Syntactic size of a reverse mapping: (dependencies, total disjuncts,
/// total atoms across premises and conclusions).
fn rev_size(rev: &qi_core::ReverseMapping) -> (usize, usize, usize) {
    let deps = rev.deps.len();
    let disjuncts: usize = rev.deps.iter().map(|d| d.disjuncts.len()).sum();
    let atoms: usize = rev
        .deps
        .iter()
        .map(|d| d.body.len() + d.disjuncts.iter().map(|dj| dj.atoms.len()).sum::<usize>())
        .sum();
    (deps, disjuncts, atoms)
}

fn fmt(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

fn main() {
    println!("# Experiment report (quick medians-of-5; see `cargo bench` for rigorous numbers)\n");

    println!("## E3 — exponential-time algorithms\n");
    println!("| series | parameter | median time |");
    println!("|---|---|---|");
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let d = time5(|| quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap());
        println!("| QuasiInverse, decomposition_k | k={k} | {} |", fmt(d));
    }
    for n in [2usize, 4, 8, 12] {
        let m = union_n(n);
        let d = time5(|| quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap());
        println!("| QuasiInverse, union_n | n={n} | {} |", fmt(d));
    }
    for a in [2usize, 4, 6, 8] {
        let m = copy_arity(a);
        let d = time5(|| inverse(&m).unwrap().unwrap());
        println!("| Inverse, copy_arity | m={a} | {} |", fmt(d));
    }
    for j in [1usize, 2, 3] {
        let m = chain_join_j(j);
        let psi = vec![Atom::parse_parts(&m.target, "T", &["x0", &format!("x{j}")]).unwrap()];
        let x = vec![Var::new("x0"), Var::new(&format!("x{j}"))];
        let d = time5(|| min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap());
        println!("| MinGen, chain_join | j={j} | {} |", fmt(d));
    }

    // §7 open problem: is the SIZE of a (quasi-)inverse necessarily
    // exponential? Report the syntactic size of the algorithm outputs.
    println!("\n## E3b — output sizes (§7 open problem)\n");
    println!("| construction | parameter | dependencies | disjuncts | atoms |");
    println!("|---|---|---|---|---|");
    for k in [2usize, 3] {
        let m = decomposition_k(k);
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        let (deps, disj, atoms) = rev_size(&rev);
        println!("| QuasiInverse, decomposition_k | k={k} | {deps} | {disj} | {atoms} |");
    }
    for n in [2usize, 4, 8, 12] {
        let m = union_n(n);
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        let (deps, disj, atoms) = rev_size(&rev);
        println!("| QuasiInverse, union_n | n={n} | {deps} | {disj} | {atoms} |");
    }
    for a in [2usize, 4, 6, 8] {
        let m = copy_arity(a);
        let rev = inverse(&m).unwrap().unwrap();
        let (deps, disj, atoms) = rev_size(&rev);
        println!("| Inverse, copy_arity | m={a} | {deps} | {disj} | {atoms} |");
    }

    println!("\n## E10 — substrate highlights\n");
    println!("| series | parameter | median time |");
    println!("|---|---|---|");
    let m = decomposition_k(3);
    for n in [40usize, 160, 640] {
        let i = decomposition_instance(&m, n);
        let d = time5(|| m.chase(&i).unwrap());
        println!("| chase, decomposition₃ | {n} facts | {} |", fmt(d));
    }
    let mu = union_n(4);
    for n in [64usize, 256, 1024] {
        let i = union_instance(&mu, n);
        let d = time5(|| mu.chase(&i).unwrap());
        println!("| chase, union₄ | {n} facts | {} |", fmt(d));
    }
    // Figure-1 round trips at scale.
    let md = paper::decomposition();
    let join = paper::decomposition_quasi_inverse_join();
    let lav = paper::decomposition_quasi_inverse_lav();
    for n in [4usize, 8, 16] {
        let i = decomposition_instance(&md, n);
        let dj = time5(|| qi_core::round_trip(&md, &join, &i, Default::default()).unwrap());
        let dl = time5(|| qi_core::round_trip(&md, &lav, &i, Default::default()).unwrap());
        println!("| round trip, Σ′ (join) | n={n} | {} |", fmt(dj));
        println!("| round trip, Σ″ (LAV) | n={n} | {} |", fmt(dl));
    }
    println!("\nDone. Shapes to check: QuasiInverse and MinGen jump by orders of");
    println!("magnitude per parameter step (Thm 4.1/Lemma 4.4 exponentials);");
    println!("Inverse tracks Bell(m); the chases stay polynomial.");
}

//! # qi-bench — benchmark harness
//!
//! Plain `main()`-style bench targets (`harness = false`) regenerating
//! the measurable claims of the paper; see `EXPERIMENTS.md` at the
//! workspace root for the experiment index. Each series point prints one
//! machine-readable line of the form
//!
//! ```text
//! BENCH JSON {"bench":"chase/union4","param":256,"iters":12,"mean_ns":83211.0}
//! ```
//!
//! so sweeps can be grepped out of any log. The library hosts the tiny
//! timing / JSON helpers shared by the targets; everything is std-only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qi_core::SchemaMapping;
use qi_schema::Instance;
use std::time::{Duration, Instant};

/// Chase an instance and panic with context on failure — benches want a
/// terse infallible call.
pub fn chase_or_panic(m: &SchemaMapping, i: &Instance) -> Instance {
    m.chase(i).expect("bench chase must succeed")
}

/// One timed series point: how often the closure ran and for how long.
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    /// Timed iterations (after one untimed warm-up call).
    pub iters: u32,
    /// Total wall-clock across the timed iterations.
    pub total: Duration,
}

impl Sample {
    /// Mean wall-clock per iteration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// Time `f`: one untimed warm-up call, then iterations until both
/// `min_iters` and `min_time` are spent. Single-threaded measurement —
/// any parallelism under test lives inside `f`.
pub fn measure<T>(min_iters: u32, min_time: Duration, mut f: impl FnMut() -> T) -> Sample {
    std::hint::black_box(f());
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if iters >= min_iters && start.elapsed() >= min_time {
            return Sample {
                iters,
                total: start.elapsed(),
            };
        }
    }
}

/// The thread counts the seq-vs-par sweeps report.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A `BENCH JSON` line under construction. Values are rendered
/// immediately (no serde in the build), keys in insertion order.
pub struct Record {
    pairs: Vec<(String, String)>,
}

impl Record {
    /// Start a record for the named bench series.
    pub fn new(bench: &str) -> Self {
        Record { pairs: Vec::new() }.str("bench", bench)
    }

    /// Add a string field (JSON-escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect();
        self.pairs.push((key.to_owned(), format!("\"{escaped}\"")));
        self
    }

    /// Add an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.pairs.push((key.to_owned(), value.to_string()));
        self
    }

    /// Add a float field (non-finite values become `null`).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.1}")
        } else {
            "null".to_owned()
        };
        self.pairs.push((key.to_owned(), rendered));
        self
    }

    /// Add the standard fields of a timed [`Sample`].
    pub fn sample(self, s: Sample) -> Self {
        self.int("iters", s.iters as u64)
            .num("mean_ns", s.mean_ns())
    }

    /// Render the record as its `BENCH JSON {...}` line.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .pairs
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        format!("BENCH JSON {{{}}}", body.join(","))
    }

    /// Print the record to stdout.
    pub fn emit(self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_valid_shape() {
        let line = Record::new("x/y")
            .int("param", 4)
            .num("mean_ns", 1234.5)
            .str("note", "a \"quoted\" thing")
            .render();
        assert!(line.starts_with("BENCH JSON {\"bench\":\"x/y\""));
        assert!(line.contains("\"param\":4"));
        assert!(line.contains("\"mean_ns\":1234.5"));
        assert!(line.contains("\\\"quoted\\\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn measure_runs_at_least_min_iters() {
        let mut n = 0u64;
        let s = measure(5, Duration::from_millis(0), || n += 1);
        assert!(s.iters >= 5);
        assert_eq!(n as u32, s.iters + 1, "one warm-up call");
        assert!(s.mean_ns() >= 0.0);
    }

    #[test]
    fn non_finite_nums_become_null() {
        let line = Record::new("x").num("bad", f64::NAN).render();
        assert!(line.contains("\"bad\":null"));
    }
}

//! # qi-bench — benchmark harness
//!
//! Criterion benches regenerating the measurable claims of the paper; see
//! `EXPERIMENTS.md` at the workspace root for the experiment index. The
//! library part only hosts tiny shared helpers; the benches live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qi_core::SchemaMapping;
use qi_schema::Instance;

/// Chase an instance and panic with context on failure — benches want a
/// terse infallible call.
pub fn chase_or_panic(m: &SchemaMapping, i: &Instance) -> Instance {
    m.chase(i).expect("bench chase must succeed")
}

/// Fan a list of independent closures across threads (used by the
/// round-trip bench to verify many instances concurrently while the
/// measurement itself stays single-threaded).
pub fn par_run<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    crossbeam::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| scope.spawn(move |_| job()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

//! The disjunctive chase (Definitions 6.3 and 6.4).
//!
//! Chasing an instance of the form `(U, ∅)` with target-to-source
//! disjunctive tgds with constants and inequalities builds a *chase tree*:
//! a dependency `σ` applies at a node with a premise homomorphism `h`
//! (respecting the `Constant` and `≠` guards) when **no** disjunct of `σ`
//! has an extension of `h` into the current node; applying it branches
//! into one child per disjunct, each adding that disjunct's facts with
//! fresh nulls for its existential variables. The *result* of the chase is
//! the set of leaves (Definition 6.4).
//!
//! Because the premise side (`from`) is fixed — target-to-source
//! dependencies cannot re-trigger themselves — the set of premise matches
//! is finite and each match fires at most once per root-to-leaf path, so
//! the tree is finite. A node budget still guards against combinatorial
//! blow-up on large inputs.

use crate::error::{ChaseError, ChasePartial};
use crate::strategy::ChaseStrategy;
use qi_exec::{par_map_budgeted, Budget, ExecStats, Parallelism};
use qi_lang::{compile_atoms, DisjTgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, PatTerm, Pattern, Schema, Value};

/// Options for the disjunctive chase.
#[derive(Clone, Debug)]
pub struct DisjChaseOptions {
    /// Maximum number of chase-tree nodes to visit before giving up.
    pub max_nodes: usize,
    /// Degree of parallelism for the branch-exploration fan-out. The
    /// leaves are bit-identical at every setting (see `qi-exec`).
    pub parallelism: Parallelism,
    /// Trigger probing per node: semi-naive (the default) resumes the
    /// scan after the parent's fired trigger — trigger satisfaction is
    /// monotone along a root-to-leaf path, so earlier triggers can never
    /// re-fire; naive re-probes every trigger at every node. The chase
    /// tree (and its leaves) is byte-identical either way.
    pub strategy: ChaseStrategy,
    /// Cooperative resource budget: checked per wave and between
    /// executor tasks; each applied disjunct charges its fresh facts.
    /// Exhaustion surfaces as [`ChaseError::Resource`] carrying the
    /// settled leaves so far — each a genuine leaf of the full tree.
    /// Unlimited by default.
    pub budget: Budget,
}

impl Default for DisjChaseOptions {
    fn default() -> Self {
        DisjChaseOptions {
            max_nodes: 200_000,
            parallelism: Parallelism::default(),
            strategy: ChaseStrategy::default(),
            budget: Budget::default(),
        }
    }
}

/// Result of a disjunctive chase run with statistics attached.
#[derive(Clone, Debug)]
pub struct DisjChaseOutcome {
    /// The leaves' `to` sides (exact duplicates removed), in the
    /// deterministic left-to-right chase-tree order.
    pub leaves: Vec<Instance>,
    /// Chase-tree nodes visited (internal nodes and leaves).
    pub nodes_visited: usize,
    /// Breadth-first waves the frontier went through.
    pub waves: usize,
    /// Executor counters for the branch-exploration stage.
    pub stats: ExecStats,
}

struct CompiledDep {
    body: Pattern,
    body_constraints: MatchConstraints,
    n_body: usize,
    /// One pattern per disjunct; variables `0..n_body` are shared with the
    /// body, the rest are the disjunct's existentials in order.
    disjuncts: Vec<Pattern>,
}

fn compile(dep: &DisjTgd) -> CompiledDep {
    let mut vars: Vec<Var> = Vec::new();
    let body_facts = compile_atoms(&dep.body, &mut vars);
    let n_body = vars.len();
    let var_idx = |v: &Var, vars: &[Var]| -> u32 {
        vars.iter().position(|w| w == v).expect("validated") as u32
    };
    let body_constraints = MatchConstraints {
        constants_only: dep.constant.iter().map(|v| var_idx(v, &vars)).collect(),
        distinct: dep
            .neq
            .iter()
            .map(|(a, b)| (var_idx(a, &vars), var_idx(b, &vars)))
            .collect(),
        ..Default::default()
    };
    let disjuncts = dep
        .disjuncts
        .iter()
        .map(|d| {
            let mut dvars = vars[..n_body].to_vec();
            let facts = compile_atoms(&d.atoms, &mut dvars);
            Pattern {
                facts,
                nvars: dvars.len(),
            }
        })
        .collect();
    CompiledDep {
        body: Pattern {
            facts: body_facts,
            nvars: n_body,
        },
        body_constraints,
        n_body,
        disjuncts,
    }
}

/// A premise match: which dependency, and the values of its body variables.
struct Trigger {
    dep: usize,
    fixed: Vec<(u32, Value)>,
}

/// Is some disjunct of `dep` satisfied in `to` under the trigger's fixed
/// body assignment?
fn trigger_satisfied(dep: &CompiledDep, fixed: &[(u32, Value)], to: &Instance) -> bool {
    dep.disjuncts.iter().any(|pattern| {
        let constraints = MatchConstraints {
            fixed: fixed.to_vec(),
            ..Default::default()
        };
        MatchEngine::new(pattern, to, &constraints).exists()
    })
}

/// Add the facts of disjunct `di` of `dep` instantiated by `fixed`,
/// minting fresh nulls for the disjunct's existential variables.
fn apply_disjunct(
    dep: &CompiledDep,
    di: usize,
    fixed: &[(u32, Value)],
    to: &Instance,
    next_null: u64,
) -> (Instance, u64) {
    let pattern = &dep.disjuncts[di];
    let mut out = to.clone();
    let mut next = next_null;
    let mut exist_vals: Vec<Option<Value>> = vec![None; pattern.nvars];
    for fact in &pattern.facts {
        let args: Vec<Value> = fact
            .args
            .iter()
            .map(|term| match *term {
                PatTerm::Value(v) => v,
                PatTerm::Var(i) => {
                    if (i as usize) < dep.n_body {
                        fixed
                            .iter()
                            .find(|(var, _)| *var == i)
                            .expect("body variable bound by trigger")
                            .1
                    } else {
                        *exist_vals[i as usize].get_or_insert_with(|| {
                            let v = Value::null(next);
                            next += 1;
                            v
                        })
                    }
                }
            })
            .collect();
        out.insert(fact.rel, args)
            .expect("disjunct arity validated at construction");
    }
    (out, next)
}

/// Run the disjunctive chase of `(from, to0)` with `deps`; returns the
/// leaves' `to` sides (exact duplicates removed), in deterministic order.
///
/// `to0` is usually the empty instance over the dependencies' `to` schema
/// (the paper chases `(U, ∅)`).
///
/// ```
/// use qi_chase::{disjunctive_chase, DisjChaseOptions};
/// use qi_lang::parse_disj_tgd;
/// use qi_schema::{Instance, Schema};
///
/// let t = Schema::parse("S/1").unwrap();
/// let s = Schema::parse("P/1 Q/1").unwrap();
/// let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
/// let u = Instance::parse(&t, "S(a)").unwrap();
/// let leaves = disjunctive_chase(
///     &[dep], &u, &Instance::new(s), DisjChaseOptions::default(),
/// ).unwrap();
/// assert_eq!(leaves.len(), 2); // one leaf per disjunct
/// ```
pub fn disjunctive_chase(
    deps: &[DisjTgd],
    from: &Instance,
    to0: &Instance,
    options: DisjChaseOptions,
) -> Result<Vec<Instance>, ChaseError> {
    Ok(disjunctive_chase_with_stats(deps, from, to0, options)?.leaves)
}

/// A frontier entry: either a settled leaf or a node still to be
/// examined, carrying its private fresh-null counter and the index of
/// the first trigger that could still be unsatisfied (every earlier
/// trigger was satisfied at an ancestor, and satisfaction only grows
/// along a path).
enum Node {
    Open(Instance, u64, usize),
    Leaf(Instance),
}

/// [`disjunctive_chase`] returning the full [`DisjChaseOutcome`].
///
/// The chase tree is explored in waves: each wave examines every open
/// node *in parallel* against the immutable trigger list, then a
/// sequential commit phase replaces each node (left to right) by its
/// children — or marks it a leaf. Children are inserted in disjunct
/// order at their parent's position, so the frontier stays in the
/// chase tree's left-to-right order and the final leaf list (and its
/// first-occurrence dedup) is exactly the one the depth-first
/// sequential exploration produces. The node budget likewise trips iff
/// the sequential exploration would trip it, since both visit the whole
/// tree.
pub fn disjunctive_chase_with_stats(
    deps: &[DisjTgd],
    from: &Instance,
    to0: &Instance,
    options: DisjChaseOptions,
) -> Result<DisjChaseOutcome, ChaseError> {
    for d in deps {
        if !d.from.same_as(from.schema()) {
            return Err(ChaseError::SchemaMismatch(
                "dependency `from` schema differs from the premise instance".into(),
            ));
        }
        if !d.to.same_as(to0.schema()) {
            return Err(ChaseError::SchemaMismatch(
                "dependency `to` schema differs from the initial instance".into(),
            ));
        }
    }
    let compiled: Vec<CompiledDep> = deps.iter().map(compile).collect();
    // Enumerate all premise matches once (the premise side never grows).
    let mut triggers: Vec<Trigger> = Vec::new();
    for (di, dep) in compiled.iter().enumerate() {
        for assignment in MatchEngine::new(&dep.body, from, &dep.body_constraints).all() {
            triggers.push(Trigger {
                dep: di,
                fixed: (0..dep.n_body as u32)
                    .map(|i| (i, assignment.value(i)))
                    .collect(),
            });
        }
    }
    let mut frontier: Vec<Node> = vec![Node::Open(
        to0.clone(),
        from.fresh_null_floor().max(to0.fresh_null_floor()),
        0,
    )];
    let naive = matches!(options.strategy, ChaseStrategy::Naive);
    let budget = &options.budget;
    let limited = !budget.is_unlimited();
    // On budget exhaustion, the settled leaves are a sound partial
    // result: each is a genuine leaf of the full chase tree.
    let settled = |frontier: &[Node]| -> ChasePartial {
        let mut leaves: Vec<Instance> = Vec::new();
        for node in frontier {
            if let Node::Leaf(to) = node {
                if !leaves.contains(to) {
                    leaves.push(to.clone());
                }
            }
        }
        ChasePartial::Leaves(leaves)
    };
    let mut visited = 0usize;
    let mut waves = 0usize;
    let mut stats = ExecStats::default();
    loop {
        // Per-wave budget check: a combinatorial tree spends its life in
        // this loop, so the wave boundary is where exhaustion surfaces.
        if limited {
            if let Err(e) = budget.check() {
                return Err(ChaseError::resource(e, stats, settled(&frontier)));
            }
        }
        // Snapshot the open nodes of this wave.
        let open: Vec<(&Instance, usize)> = frontier
            .iter()
            .filter_map(|n| match n {
                Node::Open(to, _, next_trigger) => Some((to, *next_trigger)),
                Node::Leaf(_) => None,
            })
            .collect();
        if open.is_empty() {
            break;
        }
        waves += 1;
        visited += open.len();
        if visited > options.max_nodes {
            return Err(ChaseError::Budget {
                max_nodes: options.max_nodes,
            });
        }
        // Parallel enumerate: the first unsatisfied trigger per node, a
        // pure function of the node's immutable instance. Semi-naive
        // nodes resume the probe after the parent's fired trigger.
        let wave = par_map_budgeted(options.parallelism, &open, budget, |&(to, start)| {
            let from_idx = if naive { 0 } else { start };
            let found = triggers[from_idx..]
                .iter()
                .position(|t| !trigger_satisfied(&compiled[t.dep], &t.fixed, to));
            let probed = match found {
                Some(k) => k as u64 + 1,
                None => (triggers.len() - from_idx) as u64,
            };
            (found.map(|k| from_idx + k), probed)
        });
        let (pending, wave_stats) = match wave {
            Ok(out) => out,
            Err(e) => return Err(ChaseError::resource(e, stats, settled(&frontier))),
        };
        stats.absorb(&wave_stats);
        // Ordered commit: expand (or settle) every open node in place.
        let mut next_frontier: Vec<Node> = Vec::with_capacity(frontier.len());
        let mut open_at = 0usize;
        for node in frontier {
            match node {
                Node::Leaf(to) => next_frontier.push(Node::Leaf(to)),
                Node::Open(to, next_null, _) => {
                    let (verdict, probed) = pending[open_at];
                    open_at += 1;
                    stats.triggers_enumerated += probed;
                    match verdict {
                        None => next_frontier.push(Node::Leaf(to)),
                        Some(ti) => {
                            let t = &triggers[ti];
                            let dep = &compiled[t.dep];
                            stats.triggers_fired += 1;
                            for di in 0..dep.disjuncts.len() {
                                let (child, next) =
                                    apply_disjunct(dep, di, &t.fixed, &to, next_null);
                                budget.charge_facts((child.fact_count() - to.fact_count()) as u64);
                                // The applied disjunct satisfies trigger
                                // `ti` in every child; the child's probe
                                // resumes right after it.
                                next_frontier.push(Node::Open(child, next, ti + 1));
                            }
                        }
                    }
                }
            }
        }
        frontier = next_frontier;
    }
    let mut leaves: Vec<Instance> = Vec::new();
    for node in frontier {
        let Node::Leaf(to) = node else {
            unreachable!("loop exits only when no open nodes remain")
        };
        if !leaves.contains(&to) {
            leaves.push(to);
        }
    }
    Ok(DisjChaseOutcome {
        leaves,
        nodes_visited: visited,
        waves,
        stats,
    })
}

/// Chase with *non-disjunctive* tgds with constants and inequalities:
/// every dependency has a single disjunct, so the tree is a path and the
/// result is a single instance.
pub fn chase_with_guards(
    deps: &[DisjTgd],
    from: &Instance,
    to_schema: &Schema,
) -> Result<Instance, ChaseError> {
    for d in deps {
        if d.has_disjunction() {
            return Err(ChaseError::InconsistentDependencies(
                "chase_with_guards requires single-disjunct dependencies".into(),
            ));
        }
    }
    let to0 = Instance::new(to_schema.clone());
    let mut leaves = disjunctive_chase(deps, from, &to0, DisjChaseOptions::default())?;
    debug_assert_eq!(leaves.len(), 1, "non-disjunctive chase has one leaf");
    Ok(leaves.pop().expect("non-disjunctive chase yields a leaf"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_disj_tgd;
    use qi_schema::Schema;

    #[test]
    fn union_quasi_inverse_branches() {
        // S(x) -> P(x) | Q(x) applied to S(a): two leaves.
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let u = Instance::parse(&t, "S(a)").unwrap();
        let leaves = disjunctive_chase(
            &[dep],
            &u,
            &Instance::new(s.clone()),
            DisjChaseOptions::default(),
        )
        .unwrap();
        assert_eq!(leaves.len(), 2);
        assert!(leaves.contains(&Instance::parse(&s, "P(a)").unwrap()));
        assert!(leaves.contains(&Instance::parse(&s, "Q(a)").unwrap()));
    }

    #[test]
    fn two_facts_give_four_leaves() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let u = Instance::parse(&t, "S(a) S(b)").unwrap();
        let leaves =
            disjunctive_chase(&[dep], &u, &Instance::new(s), DisjChaseOptions::default()).unwrap();
        assert_eq!(leaves.len(), 4);
    }

    #[test]
    fn satisfied_trigger_does_not_fire() {
        // If one disjunct is already satisfied, Definition 6.3 forbids the
        // step entirely.
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let u = Instance::parse(&t, "S(a)").unwrap();
        let pre = Instance::parse(&s, "P(a)").unwrap();
        let leaves = disjunctive_chase(&[dep], &u, &pre, DisjChaseOptions::default()).unwrap();
        assert_eq!(leaves, vec![pre]);
    }

    #[test]
    fn existentials_get_fresh_nulls() {
        let t = Schema::parse("Q/2").unwrap();
        let s = Schema::parse("P/3").unwrap();
        let dep = parse_disj_tgd(&t, &s, "Q(x,y) -> exists z . P(x,y,z)").unwrap();
        let u = Instance::parse(&t, "Q(a,b) Q(c,N7)").unwrap();
        let v = chase_with_guards(&[dep], &u, &s).unwrap();
        assert_eq!(v.fact_count(), 2);
        // fresh nulls avoid N7
        assert!(v.nulls().iter().all(|n| n.0 >= 8 || n.0 == 7));
        assert_eq!(v.nulls().len(), 3); // N7 carried over + two fresh
    }

    #[test]
    fn guards_filter_triggers() {
        let t = Schema::parse("S/2").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x,y) & const(x) & x != y -> P(x,y)").unwrap();
        let u = Instance::parse(&t, "S(a,a) S(a,b) S(N1,b)").unwrap();
        let v = chase_with_guards(&[dep], &u, &s).unwrap();
        // Only S(a,b) passes both guards.
        assert_eq!(v, Instance::parse(&s, "P(a,b)").unwrap());
    }

    #[test]
    fn budget_is_enforced() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let mut u = Instance::new(t.clone());
        for i in 0..20 {
            u.insert_consts("S", &[&format!("c{i}")]).unwrap();
        }
        let err = disjunctive_chase(
            &[dep],
            &u,
            &Instance::new(s),
            DisjChaseOptions {
                max_nodes: 100,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, ChaseError::Budget { .. }));
    }

    #[test]
    fn chase_with_guards_rejects_disjunction() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let u = Instance::new(t);
        assert!(chase_with_guards(&[dep], &u, &s).is_err());
    }

    #[test]
    fn decomposition_reverse_chase_matches_figure_1() {
        // Σ' = Q(x,y) & R(y,z) -> P(x,y,z) applied to U of Figure 1.
        let t = Schema::parse("Q/2 R/2").unwrap();
        let s = Schema::parse("P/3").unwrap();
        let dep = parse_disj_tgd(&t, &s, "Q(x,y) & R(y,z) -> P(x,y,z)").unwrap();
        let u = Instance::parse(&t, "Q(a,b) Q(a2,b) R(b,c) R(b,c2)").unwrap();
        let v1 = chase_with_guards(&[dep], &u, &s).unwrap();
        assert_eq!(
            v1,
            Instance::parse(&s, "P(a,b,c) P(a,b,c2) P(a2,b,c) P(a2,b,c2)").unwrap()
        );
    }
}

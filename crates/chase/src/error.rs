//! Errors of the chase engines, including the structured resource
//! errors that make budget exhaustion a graceful outcome.

use qi_exec::{Exceeded, ExecStats};
use qi_schema::Instance;
use std::fmt;

/// What a budget-interrupted chase managed to build before the budget
/// tripped. Every variant is *sound*: the facts it carries were derived
/// by ordinary chase steps from the input, so they are a subset of what
/// the uninterrupted run would derive (for the disjunctive chase, each
/// settled leaf is a genuine leaf of the full tree).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ChasePartial {
    /// Nothing usable was built (e.g. the budget tripped before the
    /// first round committed).
    #[default]
    None,
    /// The chase instance as of the last committed step.
    Instance(Instance),
    /// The disjunctive chase's settled leaves so far (possibly empty
    /// branches still open when the budget tripped are *not* included).
    Leaves(Vec<Instance>),
}

/// Structured report of a budget-interrupted search: which limit
/// tripped, the executor counters up to that point, and the sound
/// partial artifact (if any). Raised through [`ChaseError::Resource`] —
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceError {
    /// The limit that tripped (deadline, tasks, facts, or cancellation).
    pub exceeded: Exceeded,
    /// Executor counters accumulated before the interruption.
    pub stats: ExecStats,
    /// Sound partial artifact built before the interruption.
    pub partial: ChasePartial,
}

impl ResourceError {
    /// Build a resource error from the tripping reason and the budget's
    /// charge counters (folded into `stats` for reporting).
    pub fn new(exceeded: Exceeded, stats: ExecStats, partial: ChasePartial) -> Self {
        ResourceError {
            exceeded,
            stats,
            partial,
        }
    }
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource budget exhausted ({}) after {} executor task(s)",
            self.exceeded, self.stats.tasks
        )?;
        match &self.partial {
            ChasePartial::None => Ok(()),
            ChasePartial::Instance(i) => {
                write!(f, "; partial instance has {} fact(s)", i.fact_count())
            }
            ChasePartial::Leaves(ls) => write!(f, "; {} settled leaf/leaves", ls.len()),
        }
    }
}

/// Errors raised by chase procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// The dependencies and the instance disagree on schemas.
    SchemaMismatch(String),
    /// The dependency set mixes incompatible schema pairs.
    InconsistentDependencies(String),
    /// The disjunctive chase tree exceeded its node budget.
    Budget {
        /// Configured maximum number of visited tree nodes.
        max_nodes: usize,
    },
    /// A cooperative resource budget (deadline, task cap, fact cap, or
    /// cancellation) tripped; carries the sound partial result.
    Resource(Box<ResourceError>),
}

impl ChaseError {
    /// Wrap a [`ResourceError`].
    pub fn resource(exceeded: Exceeded, stats: ExecStats, partial: ChasePartial) -> Self {
        ChaseError::Resource(Box::new(ResourceError::new(exceeded, stats, partial)))
    }
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            ChaseError::InconsistentDependencies(m) => {
                write!(f, "inconsistent dependency set: {m}")
            }
            ChaseError::Budget { max_nodes } => write!(
                f,
                "disjunctive chase exceeded its node budget ({max_nodes} nodes)"
            ),
            ChaseError::Resource(r) => r.fmt(f),
        }
    }
}

impl std::error::Error for ChaseError {}

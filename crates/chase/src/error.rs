//! Errors of the chase engines.

use std::fmt;

/// Errors raised by chase procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// The dependencies and the instance disagree on schemas.
    SchemaMismatch(String),
    /// The dependency set mixes incompatible schema pairs.
    InconsistentDependencies(String),
    /// The disjunctive chase tree exceeded its node budget.
    Budget {
        /// Configured maximum number of visited tree nodes.
        max_nodes: usize,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            ChaseError::InconsistentDependencies(m) => {
                write!(f, "inconsistent dependency set: {m}")
            }
            ChaseError::Budget { max_nodes } => write!(
                f,
                "disjunctive chase exceeded its node budget ({max_nodes} nodes)"
            ),
        }
    }
}

impl std::error::Error for ChaseError {}

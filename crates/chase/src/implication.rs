//! Chase-based logical implication and the generator test (§4).
//!
//! "It follows easily from the standard theory of the chase that `β(x,z)`
//! is a generator of `∃y ψ_T(x,y)` with respect to `Σ` if and only if the
//! chase of `I_{β(x,z)}` with `Σ` gives at least `I_{ψ_T(x,y')}` for a
//! substitution where some `y'` substitutes for `y`."
//!
//! We realize `I_β` by freezing `β`'s variables as reserved constants
//! (`qi_lang::canonical`), chase with `Σ`, and then look for a match of
//! `ψ` in the result where each frontier variable `x` is pinned to its
//! frozen constant and each `y` is free.

use crate::error::ChaseError;
use crate::standard::chase;
use qi_lang::{canonical_instance, compile_atoms, Atom, FrozenVars, Tgd, Var};
use qi_schema::{MatchConstraints, MatchEngine, Pattern, Schema};

/// Is the s-t tgd `candidate` a logical consequence of `sigma`?
///
/// Standard chase argument: freeze the candidate's body variables, chase
/// the resulting canonical instance with `sigma`, and check that the
/// candidate's head matches the chase result with the frontier variables
/// pinned to their frozen constants.
pub fn implies_tgd(sigma: &[Tgd], candidate: &Tgd) -> Result<bool, ChaseError> {
    let mut frozen = FrozenVars::default();
    let body_instance = canonical_instance(&candidate.source, &candidate.body, &mut frozen);
    let chased = chase(sigma, &body_instance, &candidate.target)?.instance;
    // Fail fast: a head atom over a relation the chase left empty can
    // never match, whatever the variables do. MinGen funnels thousands of
    // doomed candidates through here, so skipping the pattern compilation
    // and engine construction for them is a measurable win.
    if candidate.head.iter().any(|a| chased.rel_len(a.rel) == 0) {
        return Ok(false);
    }
    let mut vars: Vec<Var> = Vec::new();
    let head_facts = compile_atoms(&candidate.head, &mut vars);
    let pattern = Pattern {
        facts: head_facts,
        nvars: vars.len(),
    };
    let fixed = vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| frozen.get(v).map(|val| (i as u32, val)))
        .collect();
    let constraints = MatchConstraints {
        fixed,
        ..Default::default()
    };
    Ok(MatchEngine::new(&pattern, &chased, &constraints).exists())
}

/// Definition 4.2: is `beta` (a conjunction of source atoms) a *generator*
/// of `∃y ψ(x,y)` with respect to `sigma`?
///
/// `x` must list exactly the variables shared between `beta` and `psi`;
/// `psi`'s remaining variables are the existential `y`. Conjunctions in
/// which some `x` does not occur cannot form a (safe) tgd and are reported
/// as non-generators.
pub fn is_generator(
    sigma: &[Tgd],
    source: &Schema,
    target: &Schema,
    beta: &[Atom],
    psi: &[Atom],
    x: &[Var],
) -> Result<bool, ChaseError> {
    let psi_vars = qi_lang::atom::vars_of(psi);
    let y: Vec<Var> = psi_vars.into_iter().filter(|v| !x.contains(v)).collect();
    let Ok(candidate) = Tgd::new(
        source.clone(),
        target.clone(),
        beta.to_vec(),
        y,
        psi.to_vec(),
    ) else {
        return Ok(false); // unsafe candidate (e.g. missing frontier var)
    };
    implies_tgd(sigma, &candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_tgd;

    fn example_4_5() -> (Schema, Schema, Vec<Tgd>) {
        let s = Schema::parse("P/3 U/1 T/2 R/3").unwrap();
        let t = Schema::parse("S/3 Q/2").unwrap();
        let tgds = vec![
            parse_tgd(&s, &t, "P(x1,x2,x3) -> exists y . S(x1,x2,y) & Q(y,y)").unwrap(),
            parse_tgd(&s, &t, "U(x1) -> exists y . S(x1,x1,y) & Q(y,y) & Q(x1,y)").unwrap(),
            parse_tgd(&s, &t, "T(x3,x4) -> S(x4,x4,x3)").unwrap(),
            parse_tgd(&s, &t, "R(x1,x2,x4) -> Q(x1,x2)").unwrap(),
        ];
        (s, t, tgds)
    }

    #[test]
    fn every_tgd_implies_itself() {
        let (_, _, tgds) = example_4_5();
        for t in &tgds {
            assert!(implies_tgd(&tgds, t).unwrap(), "{t}");
        }
    }

    #[test]
    fn paper_generators_of_sigma2() {
        // σ2: P(x1,x1,x3) -> exists y . S(x1,x1,y) & Q(y,y).
        // The paper lists U(x1) and T(x3,x1) & R(x3,x3,x4) as generators.
        let (s, t, tgds) = example_4_5();
        let x = vec![Var::new("x1")];
        let psi = vec![
            Atom::parse_parts(&t, "S", &["x1", "x1", "y"]).unwrap(),
            Atom::parse_parts(&t, "Q", &["y", "y"]).unwrap(),
        ];
        let u_beta = vec![Atom::parse_parts(&s, "U", &["x1"]).unwrap()];
        assert!(is_generator(&tgds, &s, &t, &u_beta, &psi, &x).unwrap());
        let tr_beta = vec![
            Atom::parse_parts(&s, "T", &["x3", "x1"]).unwrap(),
            Atom::parse_parts(&s, "R", &["x3", "x3", "x4"]).unwrap(),
        ];
        assert!(is_generator(&tgds, &s, &t, &tr_beta, &psi, &x).unwrap());
        let p_beta = vec![Atom::parse_parts(&s, "P", &["x1", "x1", "x3"]).unwrap()];
        assert!(is_generator(&tgds, &s, &t, &p_beta, &psi, &x).unwrap());
        // T alone is NOT a generator (needs the R fact for Q(y,y)).
        let t_alone = vec![Atom::parse_parts(&s, "T", &["x3", "x1"]).unwrap()];
        assert!(!is_generator(&tgds, &s, &t, &t_alone, &psi, &x).unwrap());
    }

    #[test]
    fn non_generator_when_chase_lacks_facts() {
        let (s, t, tgds) = example_4_5();
        let x = vec![Var::new("x1"), Var::new("x2")];
        // R generates Q(x1,x2) but never S-facts.
        let psi = vec![Atom::parse_parts(&t, "S", &["x1", "x2", "x2"]).unwrap()];
        let beta = vec![Atom::parse_parts(&s, "R", &["x1", "x2", "x4"]).unwrap()];
        assert!(!is_generator(&tgds, &s, &t, &beta, &psi, &x).unwrap());
    }

    #[test]
    fn unsafe_candidate_is_not_a_generator() {
        let (s, t, tgds) = example_4_5();
        // x2 does not occur in beta: unsafe, hence not a generator.
        let x = vec![Var::new("x1"), Var::new("x2")];
        let psi = vec![Atom::parse_parts(&t, "Q", &["x1", "x2"]).unwrap()];
        let beta = vec![Atom::parse_parts(&s, "U", &["x1"]).unwrap()];
        assert!(!is_generator(&tgds, &s, &t, &beta, &psi, &x).unwrap());
    }

    #[test]
    fn implication_with_weakened_head() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let sigma = vec![parse_tgd(&s, &t, "P(x,y) -> Q(x,y)").unwrap()];
        // Σ implies the existentially weakened form...
        let weak = parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z)").unwrap();
        assert!(implies_tgd(&sigma, &weak).unwrap());
        // ...but not the transposed one.
        let transposed = parse_tgd(&s, &t, "P(x,y) -> Q(y,x)").unwrap();
        assert!(!implies_tgd(&sigma, &transposed).unwrap());
    }
}

//! # qi-chase — chase engines for data exchange
//!
//! Implements the procedures that the paper's algorithms and proofs run
//! on:
//!
//! * the **standard chase** of a source instance with a finite set of
//!   s-t tgds, producing the canonical universal solution
//!   `chase_Σ(I)` (§2; [FKMP, *Data Exchange: Semantics and Query
//!   Answering*, TCS 2005]) — [`chase`];
//! * the **disjunctive chase** with constants and inequalities
//!   (Definitions 6.2–6.4): a chase *tree* whose leaves are the result —
//!   [`disjunctive_chase`];
//! * **satisfaction** checking `(I,J) ⊨ σ` for plain tgds and for
//!   disjunctive tgds with constants and inequalities — [`satisfies_tgd`],
//!   [`satisfies_disj_tgd`];
//! * the chase-based **logical-implication / generator test** of
//!   Definition 4.2: `β(x,z)` generates `∃y ψ(x,y)` iff the chase of the
//!   frozen canonical instance `I_β` contains a frozen-`x`-preserving
//!   image of `ψ` — [`is_generator`], [`implies_tgd`];
//! * **universal-solution** certificates — [`is_solution`],
//!   [`is_universal_solution`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disjunctive;
pub mod error;
pub mod implication;
pub mod query;
pub mod satisfy;
pub mod sotgd_chase;
pub mod standard;
pub mod strategy;
pub mod target;
pub mod universal;

pub use disjunctive::{
    chase_with_guards, disjunctive_chase, disjunctive_chase_with_stats, DisjChaseOptions,
    DisjChaseOutcome,
};
pub use error::{ChaseError, ChasePartial, ResourceError};
pub use implication::{implies_tgd, is_generator};
pub use query::{certain_answers, certain_answers_with_setting, evaluate};
pub use satisfy::{satisfies_all_disj_tgds, satisfies_all_tgds, satisfies_disj_tgd, satisfies_tgd};
pub use sotgd_chase::so_chase;
pub use standard::{
    chase, chase_oblivious, chase_oblivious_with_options, chase_with_options, ChaseOptions,
    ChaseOutcome,
};
pub use strategy::ChaseStrategy;
#[allow(deprecated)] // the alias is re-exported for callers of the old path
pub use target::is_weakly_acyclic;
pub use target::{
    chase_with_target_deps, chase_with_target_deps_stats, ExchangeSetting, TargetChaseOptions,
    TargetChaseResult, TargetChaseStats, FALLBACK_MAX_STEPS,
};
pub use universal::{is_solution, is_universal_solution};

//! Conjunctive-query evaluation and certain answers.
//!
//! Naive evaluation of a CQ on an instance enumerates homomorphisms of
//! the body; for *certain answers* over the space of solutions of a
//! ground source instance, the classical data-exchange result (reference \[4\] in
//! the paper; FKMP TCS'05) applies: evaluate the query on any universal
//! solution and keep the null-free answers.

use crate::error::ChaseError;
use crate::standard::chase;
use qi_lang::{compile_atoms, ConjunctiveQuery, Tgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, Pattern, Schema, Value};
use std::collections::BTreeSet;

/// Evaluate `query` naively on `instance`: all head-variable bindings
/// under homomorphisms of the body (answers may contain nulls when the
/// instance does).
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> BTreeSet<Vec<Value>> {
    let mut vars: Vec<Var> = Vec::new();
    let facts = compile_atoms(&query.body, &mut vars);
    let pattern = Pattern {
        facts,
        nvars: vars.len(),
    };
    let head_idx: Vec<usize> = query
        .head
        .iter()
        .map(|h| {
            vars.iter()
                .position(|v| v == h)
                .expect("head variables occur in the body (validated)")
        })
        .collect();
    let mut answers = BTreeSet::new();
    MatchEngine::new(&pattern, instance, &MatchConstraints::default()).for_each(|assignment| {
        answers.insert(
            head_idx
                .iter()
                .map(|&i| assignment.value(i as u32))
                .collect(),
        );
        true
    });
    answers
}

/// The *certain answers* of a target query w.r.t. the mapping specified
/// by `tgds` on ground source `source`: the tuples in `q(J)` for **every**
/// solution `J`. Computed by naive evaluation on the chase result,
/// keeping only null-free tuples.
pub fn certain_answers(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
    query: &ConjunctiveQuery,
) -> Result<BTreeSet<Vec<Value>>, ChaseError> {
    let u = chase(tgds, source, target_schema)?.instance;
    Ok(evaluate(query, &u)
        .into_iter()
        .filter(|t| t.iter().all(|v| v.is_const()))
        .collect())
}

/// Certain answers in the **full data-exchange setting** (target tgds +
/// egds): evaluate on the target chase result. Returns `None` when the
/// chase fails (an egd equated distinct constants) — then `source` has
/// no solution at all and every boolean query is vacuously certain, a
/// case the caller must handle explicitly.
pub fn certain_answers_with_setting(
    setting: &crate::target::ExchangeSetting,
    source: &Instance,
    target_schema: &Schema,
    query: &ConjunctiveQuery,
    options: crate::target::TargetChaseOptions,
) -> Result<Option<BTreeSet<Vec<Value>>>, ChaseError> {
    match crate::target::chase_with_target_deps(setting, source, target_schema, options)? {
        crate::target::TargetChaseResult::Failed { .. } => Ok(None),
        crate::target::TargetChaseResult::Solution(u) => Ok(Some(
            evaluate(query, &u)
                .into_iter()
                .filter(|t| t.iter().all(|v| v.is_const()))
                .collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_tgd;

    fn val(s: &str) -> Value {
        Value::constant(s)
    }

    #[test]
    fn evaluation_joins() {
        let s = Schema::parse("E/2").unwrap();
        let i = Instance::parse(&s, "E(a,b) E(b,c) E(b,d)").unwrap();
        let q = ConjunctiveQuery::parse(&s, "q(x,y) :- E(x,z), E(z,y)").unwrap();
        let ans = evaluate(&q, &i);
        assert_eq!(
            ans,
            BTreeSet::from([vec![val("a"), val("c")], vec![val("a"), val("d")]])
        );
    }

    #[test]
    fn boolean_query_answers() {
        let s = Schema::parse("E/2").unwrap();
        let q = ConjunctiveQuery::parse(&s, "q() :- E(x,x)").unwrap();
        let yes = Instance::parse(&s, "E(a,a)").unwrap();
        let no = Instance::parse(&s, "E(a,b)").unwrap();
        assert_eq!(evaluate(&q, &yes).len(), 1); // the empty tuple
        assert!(evaluate(&q, &no).is_empty());
    }

    #[test]
    fn certain_answers_drop_nulls() {
        // P(x) -> ∃y Q(x,y): the second column is unknown, so only the
        // first-column projection is certain.
        let s = Schema::parse("P/1").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x) -> exists y . Q(x,y)").unwrap()];
        let i = Instance::parse(&s, "P(a)").unwrap();
        let q1 = ConjunctiveQuery::parse(&t, "q(x) :- Q(x,y)").unwrap();
        assert_eq!(
            certain_answers(&tgds, &i, &t, &q1).unwrap(),
            BTreeSet::from([vec![val("a")]])
        );
        let q2 = ConjunctiveQuery::parse(&t, "q(x,y) :- Q(x,y)").unwrap();
        assert!(certain_answers(&tgds, &i, &t, &q2).unwrap().is_empty());
    }

    #[test]
    fn certain_answers_invariant_under_universal_solution_choice() {
        // Evaluating on the oblivious chase gives the same certain
        // answers (hom-equivalent universal solutions).
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![
            parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z)").unwrap(),
            parse_tgd(&s, &t, "P(x,y) -> Q(x,y)").unwrap(),
        ];
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let q = ConjunctiveQuery::parse(&t, "q(x,y) :- Q(x,y)").unwrap();
        let from_restricted = certain_answers(&tgds, &i, &t, &q).unwrap();
        let oblivious = crate::standard::chase_oblivious(&tgds, &i, &t)
            .unwrap()
            .instance;
        let from_oblivious: BTreeSet<Vec<Value>> = evaluate(&q, &oblivious)
            .into_iter()
            .filter(|t| t.iter().all(|v| v.is_const()))
            .collect();
        assert_eq!(from_restricted, from_oblivious);
        assert_eq!(from_restricted, BTreeSet::from([vec![val("a"), val("b")]]));
    }

    #[test]
    fn certain_answers_with_key_constraints_gain_precision() {
        use crate::target::{ExchangeSetting, TargetChaseOptions};
        use qi_lang::parse_egd;
        // Without the key, the join of Q's null with P's value is
        // uncertain; the key egd makes it certain.
        let s = Schema::parse("P/2 Q/1").unwrap();
        let t = Schema::parse("E/2").unwrap();
        let setting = ExchangeSetting {
            st_tgds: vec![
                parse_tgd(&s, &t, "P(x,y) -> E(x,y)").unwrap(),
                parse_tgd(&s, &t, "Q(x) -> exists y . E(x,y)").unwrap(),
            ],
            target_tgds: vec![],
            egds: vec![parse_egd(&t, "E(x,y) & E(x,z) -> y = z").unwrap()],
        };
        let i = Instance::parse(&s, "P(a,b) Q(a)").unwrap();
        let q = ConjunctiveQuery::parse(&t, "q(x,y) :- E(x,y)").unwrap();
        // Plain s-t certain answers see the null row as uncertain…
        let plain = certain_answers(&setting.st_tgds, &i, &t, &q).unwrap();
        assert_eq!(plain.len(), 1);
        // …with the key, still one answer but the chase is ground.
        let keyed =
            certain_answers_with_setting(&setting, &i, &t, &q, TargetChaseOptions::default())
                .unwrap()
                .expect("consistent");
        assert_eq!(keyed, BTreeSet::from([vec![val("a"), val("b")]]));
        // An inconsistent source is reported as such.
        let bad = Instance::parse(&s, "P(a,b) P(a,c)").unwrap();
        assert!(certain_answers_with_setting(
            &setting,
            &bad,
            &t,
            &q,
            TargetChaseOptions::default()
        )
        .unwrap()
        .is_none());
    }

    #[test]
    fn certain_answers_are_sound_for_sampled_solutions() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> Q(x,y)").unwrap()];
        let i = Instance::parse(&s, "P(a,b) P(b,c)").unwrap();
        let q = ConjunctiveQuery::parse(&t, "q(x) :- Q(x,y)").unwrap();
        let certain = certain_answers(&tgds, &i, &t, &q).unwrap();
        // Any solution (e.g. the chase plus noise) contains the certain
        // answers.
        let mut j = chase(&tgds, &i, &t).unwrap().instance;
        j.insert_consts("Q", &["z", "w"]).unwrap();
        let evaluated = evaluate(&q, &j);
        for ans in &certain {
            assert!(evaluated.contains(ans));
        }
    }
}

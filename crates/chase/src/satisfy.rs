//! Satisfaction checking `(I, J) ⊨ σ`.
//!
//! For a plain s-t tgd the check is classical; for disjunctive tgds with
//! constants and inequalities (Definition 2.1) a premise match must
//! additionally respect the `Constant(x)` guards (the matched value lies
//! in `Const`) and the inequalities, and is discharged by *some* disjunct
//! having an extension (Definition 6.2's homomorphism semantics).

use qi_lang::{compile_atoms, DisjTgd, Tgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, Pattern, Value};

/// Does the pair `(source, target)` satisfy the s-t tgd?
pub fn satisfies_tgd(source: &Instance, target: &Instance, tgd: &Tgd) -> bool {
    let mut vars: Vec<Var> = Vec::new();
    let body_facts = compile_atoms(&tgd.body, &mut vars);
    let n_body = vars.len();
    let head_facts = compile_atoms(&tgd.head, &mut vars);
    let body = Pattern {
        facts: body_facts,
        nvars: n_body,
    };
    let head = Pattern {
        facts: head_facts,
        nvars: vars.len(),
    };
    let mut ok = true;
    MatchEngine::new(&body, source, &MatchConstraints::default()).for_each(|assignment| {
        let fixed: Vec<(u32, Value)> = (0..n_body as u32)
            .map(|i| (i, assignment.value(i)))
            .collect();
        let constraints = MatchConstraints {
            fixed,
            ..Default::default()
        };
        if !MatchEngine::new(&head, target, &constraints).exists() {
            ok = false;
            return false; // stop enumeration
        }
        true
    });
    ok
}

/// Does `(source, target)` satisfy every tgd of `tgds`?
pub fn satisfies_all_tgds(source: &Instance, target: &Instance, tgds: &[Tgd]) -> bool {
    tgds.iter().all(|t| satisfies_tgd(source, target, t))
}

/// Does the pair `(from, to)` satisfy the disjunctive tgd with constants
/// and inequalities? (`from` interprets the premise side, `to` the
/// disjunct side; in the paper's use `from` is a target instance and
/// `to` a source instance.)
pub fn satisfies_disj_tgd(from: &Instance, to: &Instance, dep: &DisjTgd) -> bool {
    let mut vars: Vec<Var> = Vec::new();
    let body_facts = compile_atoms(&dep.body, &mut vars);
    let n_body = vars.len();
    let body = Pattern {
        facts: body_facts,
        nvars: n_body,
    };
    let var_idx = |v: &Var| -> u32 {
        vars.iter()
            .position(|w| w == v)
            .expect("guard variables occur in the body (validated)") as u32
    };
    let body_constraints = MatchConstraints {
        constants_only: dep.constant.iter().map(&var_idx).collect(),
        distinct: dep
            .neq
            .iter()
            .map(|(a, b)| (var_idx(a), var_idx(b)))
            .collect(),
        ..Default::default()
    };
    // Pre-compile each disjunct over an extended ordering: body vars keep
    // their indexes, each disjunct appends its own existential variables.
    let disjunct_patterns: Vec<(Pattern, usize)> = dep
        .disjuncts
        .iter()
        .map(|d| {
            let mut dvars = vars[..n_body].to_vec();
            let facts = compile_atoms(&d.atoms, &mut dvars);
            (
                Pattern {
                    facts,
                    nvars: dvars.len(),
                },
                n_body,
            )
        })
        .collect();
    let mut ok = true;
    MatchEngine::new(&body, from, &body_constraints).for_each(|assignment| {
        // One constraint set per premise match, shared by every disjunct
        // probe — the fixed slots are identical across disjuncts, so
        // rebuilding (and re-cloning) them per disjunct was pure waste.
        let constraints = MatchConstraints {
            fixed: (0..n_body as u32)
                .map(|i| (i, assignment.value(i)))
                .collect(),
            ..Default::default()
        };
        let satisfied = disjunct_patterns
            .iter()
            .any(|(pattern, _)| MatchEngine::new(pattern, to, &constraints).exists());
        if !satisfied {
            ok = false;
            return false;
        }
        true
    });
    ok
}

/// Does `(from, to)` satisfy every dependency of `deps`?
pub fn satisfies_all_disj_tgds(from: &Instance, to: &Instance, deps: &[DisjTgd]) -> bool {
    deps.iter().all(|d| satisfies_disj_tgd(from, to, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::{parse_disj_tgd, parse_tgd};
    use qi_schema::Schema;

    #[test]
    fn tgd_satisfaction_basics() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/1").unwrap();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> Q(x)").unwrap();
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let good = Instance::parse(&t, "Q(a)").unwrap();
        let bad = Instance::parse(&t, "Q(b)").unwrap();
        assert!(satisfies_tgd(&i, &good, &tgd));
        assert!(!satisfies_tgd(&i, &bad, &tgd));
        // vacuous satisfaction
        let empty = Instance::new(s);
        assert!(satisfies_tgd(&empty, &bad, &tgd));
    }

    #[test]
    fn existential_head_satisfied_by_null_or_const() {
        let s = Schema::parse("P/1").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgd = parse_tgd(&s, &t, "P(x) -> exists y . Q(x,y)").unwrap();
        let i = Instance::parse(&s, "P(a)").unwrap();
        assert!(satisfies_tgd(
            &i,
            &Instance::parse(&t, "Q(a,N1)").unwrap(),
            &tgd
        ));
        assert!(satisfies_tgd(
            &i,
            &Instance::parse(&t, "Q(a,c)").unwrap(),
            &tgd
        ));
        assert!(!satisfies_tgd(
            &i,
            &Instance::parse(&t, "Q(b,c)").unwrap(),
            &tgd
        ));
    }

    #[test]
    fn disjunctive_satisfaction_requires_some_disjunct() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        let u = Instance::parse(&t, "S(a)").unwrap();
        assert!(satisfies_disj_tgd(
            &u,
            &Instance::parse(&s, "P(a)").unwrap(),
            &dep
        ));
        assert!(satisfies_disj_tgd(
            &u,
            &Instance::parse(&s, "Q(a)").unwrap(),
            &dep
        ));
        assert!(!satisfies_disj_tgd(
            &u,
            &Instance::parse(&s, "P(b)").unwrap(),
            &dep
        ));
    }

    #[test]
    fn constant_guard_blocks_null_matches() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) & const(x) -> P(x)").unwrap();
        // S(N1): the guard suppresses the premise, so anything satisfies.
        let u_null = Instance::parse(&t, "S(N1)").unwrap();
        let empty = Instance::new(s.clone());
        assert!(satisfies_disj_tgd(&u_null, &empty, &dep));
        // S(a): the guard holds, P(a) is required.
        let u_const = Instance::parse(&t, "S(a)").unwrap();
        assert!(!satisfies_disj_tgd(&u_const, &empty, &dep));
        assert!(satisfies_disj_tgd(
            &u_const,
            &Instance::parse(&s, "P(a)").unwrap(),
            &dep
        ));
    }

    #[test]
    fn inequality_guard_blocks_equal_matches() {
        let t = Schema::parse("S/2").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x,y) & x != y -> P(x,y)").unwrap();
        let empty = Instance::new(s.clone());
        assert!(satisfies_disj_tgd(
            &Instance::parse(&t, "S(a,a)").unwrap(),
            &empty,
            &dep
        ));
        assert!(!satisfies_disj_tgd(
            &Instance::parse(&t, "S(a,b)").unwrap(),
            &empty,
            &dep
        ));
    }

    #[test]
    fn existential_disjunct_matches_with_witness() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> exists z . P(x,z)").unwrap();
        let u = Instance::parse(&t, "S(a)").unwrap();
        assert!(satisfies_disj_tgd(
            &u,
            &Instance::parse(&s, "P(a,q)").unwrap(),
            &dep
        ));
        assert!(!satisfies_disj_tgd(
            &u,
            &Instance::parse(&s, "P(b,q)").unwrap(),
            &dep
        ));
    }
}

//! The chase with second-order tgds.
//!
//! An SO-tgd's existential functions are realized *canonically*: the
//! value of `f(v̄)` on concrete arguments is a fresh labeled null, minted
//! on first use and memoized, so that equal terms evaluate to equal
//! values (the Skolem-table semantics of reference \[5\]). Premise
//! equalities filter triggers by comparing evaluated terms; conclusion
//! atoms instantiate terms through the same table. Because clause
//! premises are over the source only, one pass over each clause's
//! matches suffices.

use crate::error::ChaseError;
use qi_lang::{compile_atoms, SkTerm, SoTgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, Pattern, Value};
use std::collections::HashMap;

/// Canonical interpretation of the Skolem functions: memoized fresh
/// nulls per `(function, arguments)`.
struct SkolemTable {
    values: HashMap<(String, Vec<Value>), Value>,
    next_null: u64,
}

impl SkolemTable {
    fn eval(&mut self, term: &SkTerm, assign: &dyn Fn(&Var) -> Value) -> Value {
        match term {
            SkTerm::Var(v) => assign(v),
            SkTerm::App(f, args) => {
                let arg_vals: Vec<Value> = args.iter().map(|a| self.eval(a, assign)).collect();
                let key = (f.name().to_owned(), arg_vals);
                if let Some(&v) = self.values.get(&key) {
                    return v;
                }
                let v = Value::null(self.next_null);
                self.next_null += 1;
                self.values.insert(key, v);
                v
            }
        }
    }
}

/// Chase `source` with an SO-tgd, producing the canonical instance over
/// the SO-tgd's target schema. The result is a universal solution for
/// `source` under the SO-tgd (reference \[5\]), which makes it the
/// membership oracle for compositions: `(I, K) ∈ Inst(σ)` iff the chase
/// of `I` maps homomorphically into `K`.
pub fn so_chase(so: &SoTgd, source: &Instance) -> Result<Instance, ChaseError> {
    if !so.source.same_as(source.schema()) {
        return Err(ChaseError::SchemaMismatch(
            "SO-tgd source schema differs from the instance schema".into(),
        ));
    }
    let mut target = Instance::new(so.target.clone());
    let mut table = SkolemTable {
        values: HashMap::new(),
        next_null: source.fresh_null_floor(),
    };
    for clause in &so.clauses {
        let mut vars: Vec<Var> = Vec::new();
        let body_facts = compile_atoms(&clause.body, &mut vars);
        let pattern = Pattern {
            facts: body_facts,
            nvars: vars.len(),
        };
        let matches = MatchEngine::new(&pattern, source, &MatchConstraints::default()).all();
        for assignment in matches {
            let assign = |v: &Var| -> Value {
                let idx = vars
                    .iter()
                    .position(|w| w == v)
                    .expect("clause variables occur in its premise (safety)");
                assignment.value(idx as u32)
            };
            // Premise equalities filter the trigger.
            let mut ok = true;
            for (l, r) in &clause.eqs {
                if table.eval(l, &assign) != table.eval(r, &assign) {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            for atom in &clause.head {
                let args: Vec<Value> = atom.args.iter().map(|t| table.eval(t, &assign)).collect();
                target.insert(atom.rel, args).expect("validated arity");
            }
        }
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::{parse_tgd, skolemize};
    use qi_schema::{hom_equivalent, Schema};

    #[test]
    fn skolemized_chase_agrees_with_plain_chase() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()];
        let so = skolemize(&tgds, "");
        let i = Instance::parse(&s, "P(a,b) P(b,a)").unwrap();
        let via_so = so_chase(&so, &i).unwrap();
        let via_fo = crate::standard::chase(&tgds, &i, &t).unwrap().instance;
        assert!(hom_equivalent(&via_so, &via_fo));
    }

    #[test]
    fn skolem_table_memoizes() {
        // Two clauses using the same function term produce ONE null.
        let s = Schema::parse("P/1").unwrap();
        let t = Schema::parse("Q/2 R/2").unwrap();
        let tgd1 = parse_tgd(&s, &t, "P(x) -> exists y . Q(x,y)").unwrap();
        let mut so = skolemize(&[tgd1], "");
        // Add a second clause reusing the same function symbol.
        let mut clause2 = so.clauses[0].clone();
        clause2.head[0].rel = t.rel("R").unwrap();
        so.clauses.push(clause2);
        let i = Instance::parse(&s, "P(a)").unwrap();
        let u = so_chase(&so, &i).unwrap();
        assert_eq!(u.fact_count(), 2);
        assert_eq!(u.nulls().len(), 1, "shared term ⇒ shared null");
    }

    #[test]
    fn premise_equalities_gate_conclusions() {
        // Emp(e) & f(e) = e → SelfMgr(e): never fires canonically
        // (f(e) is a fresh null ≠ e).
        let s = Schema::parse("Emp/1").unwrap();
        let t = Schema::parse("Mgr/2 SelfMgr/1").unwrap();
        let base = parse_tgd(&s, &t, "Emp(e) -> exists m . Mgr(e,m)").unwrap();
        let mut so = skolemize(&[base], "");
        let f_term = so.clauses[0].head[0].args[1].clone();
        so.clauses.push(qi_lang::SoClause {
            body: so.clauses[0].body.clone(),
            eqs: vec![(f_term, SkTerm::Var(Var::new("e")))],
            head: vec![qi_lang::SoAtom {
                rel: t.rel("SelfMgr").unwrap(),
                args: vec![SkTerm::Var(Var::new("e"))],
            }],
        });
        let i = Instance::parse(&s, "Emp(a)").unwrap();
        let u = so_chase(&so, &i).unwrap();
        assert_eq!(u.rel_len(t.rel("Mgr").unwrap()), 1);
        assert_eq!(u.rel_len(t.rel("SelfMgr").unwrap()), 0);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let s = Schema::parse("P/1").unwrap();
        let t = Schema::parse("Q/1").unwrap();
        let so = skolemize(&[parse_tgd(&s, &t, "P(x) -> Q(x)").unwrap()], "");
        let wrong = Instance::new(Schema::parse("Z/1").unwrap());
        assert!(so_chase(&so, &wrong).is_err());
    }
}

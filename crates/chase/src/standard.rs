//! The standard data-exchange chase with s-t tgds (§2).
//!
//! Given a finite set `Σ` of s-t tgds and a source instance `I`, the chase
//! produces a target instance `U = chase_Σ(I)` that is a *universal
//! solution* for `I`: a solution admitting a homomorphism into every
//! solution. Because the dependencies are source-to-target, the source
//! never grows and a single deterministic pass over all triggers
//! terminates.
//!
//! Two variants are provided:
//!
//! * [`chase`] — the *restricted* (standard) chase: a trigger fires only
//!   when its conclusion is not already satisfiable in the current target
//!   with the frontier fixed. This yields the canonical universal
//!   solution the paper's examples use.
//! * [`chase_oblivious`] — fires every trigger unconditionally (each
//!   once), producing a possibly larger but homomorphically equivalent
//!   universal solution. Useful as a differential-testing oracle.
//!
//! The source instance may itself contain nulls (this happens in §6 when
//! re-chasing the instances recovered by the reverse exchange); nulls in
//! the source are treated as ordinary values by trigger matching, and the
//! fresh nulls minted for existential variables are chosen above every
//! null already present.

use crate::error::{ChaseError, ChasePartial};
use qi_exec::{par_map_budgeted, Budget, ExecStats, Parallelism};
use qi_lang::{compile_atoms, Tgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, PatTerm, Pattern, Schema, Value};

/// Options for the standard chase.
#[derive(Clone, Debug, Default)]
pub struct ChaseOptions {
    /// Degree of parallelism for the trigger-enumeration stage. The
    /// result is bit-identical at every setting (see `qi-exec`).
    pub parallelism: Parallelism,
    /// Cooperative resource budget: checked between executor tasks and
    /// between trigger firings; derived facts are charged as they are
    /// inserted. Exhaustion surfaces as [`ChaseError::Resource`] with
    /// the partial target instance. Unlimited by default.
    pub budget: Budget,
}

/// Outcome of a chase run: the result instance plus step statistics.
#[derive(Clone, Debug)]
pub struct ChaseOutcome {
    /// The chased (target) instance.
    pub instance: Instance,
    /// Number of triggers that fired (facts may be fewer after dedup).
    pub fired: usize,
    /// Number of triggers examined.
    pub triggers: usize,
    /// Executor counters for the trigger-enumeration stage.
    pub stats: ExecStats,
}

fn check_schemas(tgds: &[Tgd], source: &Instance, target: &Schema) -> Result<(), ChaseError> {
    for t in tgds {
        if !t.source.same_as(source.schema()) {
            return Err(ChaseError::SchemaMismatch(
                "tgd source schema differs from the instance schema".into(),
            ));
        }
        if !t.target.same_as(target) {
            return Err(ChaseError::InconsistentDependencies(
                "tgds disagree on the target schema".into(),
            ));
        }
    }
    Ok(())
}

/// Compiled form of one tgd: body and head patterns built once and
/// reused across triggers — and, for the target chase, across rounds
/// (the per-dependency persistent engine state).
pub(crate) struct CompiledTgd {
    /// Body pattern over variables `0..n_body_vars`.
    pub(crate) body: Pattern,
    /// Head pattern over all variables (body vars shared, existential
    /// head vars after them).
    pub(crate) head: Pattern,
    /// Number of body (universally quantified) variables.
    pub(crate) n_body_vars: usize,
}

pub(crate) fn compile(tgd: &Tgd) -> CompiledTgd {
    let mut vars: Vec<Var> = Vec::new();
    let body_facts = compile_atoms(&tgd.body, &mut vars);
    let n_body_vars = vars.len();
    let head_facts = compile_atoms(&tgd.head, &mut vars);
    CompiledTgd {
        body: Pattern {
            facts: body_facts,
            nvars: n_body_vars,
        },
        head: Pattern {
            facts: head_facts,
            nvars: vars.len(),
        },
        n_body_vars,
    }
}

/// Does the head of `c` have a satisfying extension in `target` when the
/// body variables take the values `body_vals` (indexed by variable)?
pub(crate) fn head_satisfied(c: &CompiledTgd, body_vals: &[Value], target: &Instance) -> bool {
    let fixed: Vec<(u32, Value)> = body_vals
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as u32, v))
        .collect();
    let constraints = MatchConstraints {
        fixed,
        ..Default::default()
    };
    MatchEngine::new(&c.head, target, &constraints).exists()
}

/// Instantiate and insert the head facts for one trigger, minting fresh
/// nulls for existential variables.
pub(crate) fn fire(
    c: &CompiledTgd,
    body_vals: &[Value],
    target: &mut Instance,
    next_null: &mut u64,
) {
    // Existential variables get one fresh null each, shared across the
    // head atoms of this instantiation.
    let mut exist_vals: Vec<Option<Value>> = vec![None; c.head.nvars];
    for fact in &c.head.facts {
        let args: Vec<Value> = fact
            .args
            .iter()
            .map(|term| match *term {
                PatTerm::Value(v) => v,
                PatTerm::Var(i) => {
                    if (i as usize) < c.n_body_vars {
                        body_vals[i as usize]
                    } else {
                        *exist_vals[i as usize].get_or_insert_with(|| {
                            let v = Value::null(*next_null);
                            *next_null += 1;
                            v
                        })
                    }
                }
            })
            .collect();
        target
            .insert(fact.rel, args)
            .expect("head arity validated at construction");
    }
}

fn run(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
    restricted: bool,
    options: ChaseOptions,
) -> Result<ChaseOutcome, ChaseError> {
    check_schemas(tgds, source, target_schema)?;
    let mut target = Instance::new(target_schema.clone());
    let mut next_null = source.fresh_null_floor();
    let mut fired = 0usize;
    let mut triggers = 0usize;
    let compiled: Vec<CompiledTgd> = tgds.iter().map(compile).collect();
    // Parallel enumerate: the source is an immutable snapshot, so the
    // per-tgd trigger sets are independent pure computations. Results
    // come back in tgd order, making the commit phase below identical to
    // the sequential chase.
    let constraints = MatchConstraints::default();
    let budget = &options.budget;
    let (all_matches, stats) = par_map_budgeted(options.parallelism, &compiled, budget, |c| {
        let engine = MatchEngine::new(&c.body, source, &constraints);
        let matches: Vec<Vec<Value>> = engine
            .all()
            .iter()
            .map(|a| (0..c.n_body_vars as u32).map(|i| a.value(i)).collect())
            .collect();
        let (reused, rebuilt) = engine.posting_counters();
        (matches, reused, rebuilt)
    })
    .map_err(|e| ChaseError::resource(e, ExecStats::default(), ChasePartial::None))?;
    let mut stats = stats;
    // Ordered commit: the restricted chase's satisfaction check depends
    // on the evolving target, so firing stays sequential, in the same
    // (tgd, trigger) order as the sequential chase. The budget is
    // re-checked between trigger firings; on exhaustion the target so
    // far — a sound prefix of the full run — rides out on the error.
    let limited = !budget.is_unlimited();
    for (c, (matches, reused, rebuilt)) in compiled.iter().zip(&all_matches) {
        stats.postings_reused += reused;
        stats.postings_rebuilt += rebuilt;
        for body_vals in matches {
            if limited {
                if let Err(e) = budget.check() {
                    stats.triggers_enumerated += triggers as u64;
                    stats.triggers_fired += fired as u64;
                    return Err(ChaseError::resource(
                        e,
                        stats,
                        ChasePartial::Instance(target),
                    ));
                }
            }
            triggers += 1;
            if restricted && head_satisfied(c, body_vals, &target) {
                continue;
            }
            let before = target.fact_count();
            fire(c, body_vals, &mut target, &mut next_null);
            budget.charge_facts((target.fact_count() - before) as u64);
            fired += 1;
        }
    }
    stats.rounds += 1;
    stats.triggers_enumerated += triggers as u64;
    stats.triggers_fired += fired as u64;
    Ok(ChaseOutcome {
        instance: target,
        fired,
        triggers,
        stats,
    })
}

/// The standard (restricted) chase: `chase_Σ(I)`.
///
/// Returns the canonical universal solution for `source` under the
/// mapping specified by `tgds`. Deterministic: tgds are processed in
/// order, triggers in the engine's deterministic match order.
///
/// ```
/// use qi_chase::chase;
/// use qi_lang::parse_tgd;
/// use qi_schema::{Instance, Schema};
///
/// let s = Schema::parse("P/2").unwrap();
/// let t = Schema::parse("Q/2").unwrap();
/// let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z)").unwrap()];
/// let i = Instance::parse(&s, "P(a,b)").unwrap();
/// let u = chase(&tgds, &i, &t).unwrap().instance;
/// assert_eq!(u.to_string(), "Q(a,N0)"); // fresh labeled null for z
/// ```
pub fn chase(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
) -> Result<ChaseOutcome, ChaseError> {
    run(tgds, source, target_schema, true, ChaseOptions::default())
}

/// [`chase`] with explicit [`ChaseOptions`] (degree of parallelism for
/// the trigger-enumeration stage). The result instance is bit-identical
/// at every thread count.
pub fn chase_with_options(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
    options: ChaseOptions,
) -> Result<ChaseOutcome, ChaseError> {
    run(tgds, source, target_schema, true, options)
}

/// The oblivious chase: fires every trigger once, without the
/// satisfaction check. Homomorphically equivalent to [`chase`]'s result.
pub fn chase_oblivious(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
) -> Result<ChaseOutcome, ChaseError> {
    run(tgds, source, target_schema, false, ChaseOptions::default())
}

/// [`chase_oblivious`] with explicit [`ChaseOptions`].
pub fn chase_oblivious_with_options(
    tgds: &[Tgd],
    source: &Instance,
    target_schema: &Schema,
    options: ChaseOptions,
) -> Result<ChaseOutcome, ChaseError> {
    run(tgds, source, target_schema, false, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_tgd;
    use qi_schema::hom_equivalent;

    fn setup(src: &str, tgt: &str, deps: &[&str]) -> (Schema, Schema, Vec<Tgd>) {
        let s = Schema::parse(src).unwrap();
        let t = Schema::parse(tgt).unwrap();
        let tgds = deps.iter().map(|d| parse_tgd(&s, &t, d).unwrap()).collect();
        (s, t, tgds)
    }

    #[test]
    fn projection_chase() {
        let (s, t, tgds) = setup("P/2", "Q/1", &["P(x,y) -> Q(x)"]);
        let i = Instance::parse(&s, "P(a,b) P(a,c) P(d,e)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(u, Instance::parse(&t, "Q(a) Q(d)").unwrap());
    }

    #[test]
    fn decomposition_chase_matches_paper() {
        // Example 3.10 / Figure 1: P(x,y,z) -> Q(x,y) & R(y,z)
        let (s, t, tgds) = setup("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]);
        let i = Instance::parse(&s, "P(a,b,c) P(a2,b,c2)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(
            u,
            Instance::parse(&t, "Q(a,b) Q(a2,b) R(b,c) R(b,c2)").unwrap()
        );
    }

    #[test]
    fn existentials_get_fresh_nulls() {
        let (s, t, tgds) = setup("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z) & Q(z,y)"]);
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(u.fact_count(), 2);
        assert_eq!(u.nulls().len(), 1);
        let n = Value::Null(*u.nulls().iter().next().unwrap());
        assert!(u.contains(t.rel("Q").unwrap(), &[Value::constant("a"), n]));
        assert!(u.contains(t.rel("Q").unwrap(), &[n, Value::constant("b")]));
    }

    #[test]
    fn restricted_chase_reuses_satisfied_heads() {
        // Second tgd's head is already satisfied by the first one's output.
        let (s, t, tgds) = setup("P/1 R/1", "Q/1", &["P(x) -> Q(x)", "R(x) -> Q(x)"]);
        let i = Instance::parse(&s, "P(a) R(a)").unwrap();
        let out = chase(&tgds, &i, &t).unwrap();
        assert_eq!(out.instance.fact_count(), 1);
        assert_eq!(out.fired, 1);
        assert_eq!(out.triggers, 2);
    }

    #[test]
    fn oblivious_is_hom_equivalent_to_restricted() {
        let (s, t, tgds) = setup(
            "P/2",
            "Q/2",
            &["P(x,y) -> exists z . Q(x,z)", "P(x,y) -> Q(x,y)"],
        );
        let i = Instance::parse(&s, "P(a,b) P(b,c)").unwrap();
        let r = chase(&tgds, &i, &t).unwrap().instance;
        let o = chase_oblivious(&tgds, &i, &t).unwrap().instance;
        assert!(hom_equivalent(&r, &o));
        assert!(o.fact_count() >= r.fact_count());
    }

    #[test]
    fn chase_of_source_with_nulls() {
        // §6: re-chasing recovered instances that contain nulls.
        let (s, t, tgds) = setup("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z)"]);
        let i = Instance::parse(&s, "P(a,N5)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(u.fact_count(), 1);
        // the fresh null is distinct from N5
        let fresh: Vec<u64> = u.nulls().iter().map(|n| n.0).collect();
        assert_eq!(fresh.len(), 1);
        assert!(fresh[0] >= 6);
    }

    #[test]
    fn repeated_body_variables_join() {
        let (s, t, tgds) = setup("E/2", "M/1", &["E(x,x) -> M(x)"]);
        let i = Instance::parse(&s, "E(a,a) E(a,b)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(u, Instance::parse(&t, "M(a)").unwrap());
    }

    #[test]
    fn multi_atom_body_joins() {
        let (s, t, tgds) = setup("E/2", "F/2 M/1", &["E(x,z) & E(z,y) -> F(x,y) & M(z)"]);
        let i = Instance::parse(&s, "E(a,b) E(b,c)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert_eq!(u, Instance::parse(&t, "F(a,c) M(b)").unwrap());
    }

    #[test]
    fn empty_source_chases_to_empty() {
        let (s, t, tgds) = setup("P/2", "Q/1", &["P(x,y) -> Q(x)"]);
        let i = Instance::new(s);
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert!(u.is_empty());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let (_, t, tgds) = setup("P/2", "Q/1", &["P(x,y) -> Q(x)"]);
        let other = Schema::parse("Z/1").unwrap();
        let i = Instance::new(other);
        assert!(chase(&tgds, &i, &t).is_err());
    }
}

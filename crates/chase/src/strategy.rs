//! Trigger-enumeration strategy for the iterated chase loops.

/// How an iterated chase (target-constraint fixpoint, disjunctive tree)
/// enumerates triggers each round.
///
/// Both strategies produce **byte-identical** results: semi-naive rounds
/// only skip work that provably cannot fire (see DESIGN.md, "Semi-naive
/// evaluation"), and `tests/match_oracle.rs` locks the equality down
/// differentially across the paper workloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ChaseStrategy {
    /// Re-enumerate every trigger from scratch each round. Kept as the
    /// reference implementation for differential testing.
    Naive,
    /// Delta-restricted rounds: after the first (full) round, enumerate
    /// only triggers whose body touches at least one fact inserted in
    /// the previous round ([`qi_schema::FactStore`]'s per-round delta).
    #[default]
    SemiNaive,
}

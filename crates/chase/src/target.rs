//! The chase with **target dependencies**: target tgds and egds.
//!
//! The classical data-exchange setting (the paper's reference \[4\],
//! FKMP TCS'05) is `(S, T, Σ_st, Σ_t)` where `Σ_t` holds target tgds and
//! egds. The quasi-inverse results are about `Σ_t = ∅`, but a credible
//! data-exchange substrate must support the full setting:
//!
//! * **target tgds** re-trigger on their own output, so termination is
//!   not automatic; the classical sufficient condition is **weak
//!   acyclicity** of `Σ_t`'s dependency graph ([`is_weakly_acyclic`]);
//! * **egds** `φ(x) → xᵢ = xⱼ` are repaired by *equating* values — a
//!   null is replaced by the other value; two distinct constants make
//!   the chase **fail** (no solution exists);
//! * [`chase_with_target_deps`] runs s-t chase, then iterates target
//!   tgd and egd steps to a fixpoint, bounded by a step budget
//!   (hit only by non-weakly-acyclic inputs).

use crate::error::{ChaseError, ChasePartial};
use crate::standard::{
    chase_with_options, compile, fire, head_satisfied, ChaseOptions, ChaseOutcome, CompiledTgd,
};
use crate::strategy::ChaseStrategy;
use qi_analyze::DependencyGraph;
use qi_exec::{par_map_budgeted, Budget, Exceeded, ExecStats, Parallelism};
use qi_lang::{compile_atoms, Egd, Tgd, Var};
use qi_schema::{Instance, MatchConstraints, MatchEngine, Pattern, Schema, Value};
use std::collections::BTreeSet;

/// A data-exchange setting `(S, T, Σ_st, Σ_t)` with `Σ_t` split into
/// target tgds and egds.
#[derive(Clone, Debug)]
pub struct ExchangeSetting {
    /// Source-to-target tgds.
    pub st_tgds: Vec<Tgd>,
    /// Target tgds (source and target schemas both equal to `T`).
    pub target_tgds: Vec<Tgd>,
    /// Target egds.
    pub egds: Vec<Egd>,
}

/// Options for the target chase.
#[derive(Clone, Debug, Default)]
pub struct TargetChaseOptions {
    /// Maximum tgd firings + egd repairs before giving up
    /// ([`ChaseError::Budget`]).
    ///
    /// `None` (the default) derives the budget from the target tgds'
    /// [termination certificate](qi_analyze::TerminationCertificate):
    /// when they are weakly acyclic, the rank-induced step bound on the
    /// actual input size is used (the chase provably stays under it, so
    /// the budget only trips on an engine bug); otherwise the
    /// [`FALLBACK_MAX_STEPS`] safety net applies.
    pub max_steps: Option<usize>,
    /// Per-round trigger enumeration: delta-restricted semi-naive
    /// rounds (the default) or full naive re-enumeration. The chased
    /// instance is byte-identical either way.
    pub strategy: ChaseStrategy,
    /// Degree of parallelism for per-round trigger enumeration; the
    /// result is bit-identical at every setting (see `qi-exec`).
    pub parallelism: Parallelism,
    /// Cooperative resource budget, shared by the s-t stage and every
    /// target round: executor workers check it between tasks, the round
    /// loop checks it per round and per trigger firing, and derived
    /// facts are charged as they are inserted. Exhaustion surfaces as
    /// [`ChaseError::Resource`] carrying the chase instance as of the
    /// last committed step. Unlimited by default — unlike
    /// [`TargetChaseOptions::max_steps`], which bounds chase *steps*,
    /// this bounds wall-clock time, executor tasks, and facts.
    pub budget: Budget,
}

/// Step budget for target chases whose tgds are *not* weakly acyclic
/// (no certificate exists; termination is not guaranteed).
pub const FALLBACK_MAX_STEPS: usize = 100_000;

/// Outcome of a target chase: the instance, or `Failed` when an egd
/// demanded the equality of two distinct constants (then `I` has **no**
/// solution under the setting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TargetChaseResult {
    /// The chase terminated with a canonical universal solution.
    Solution(Instance),
    /// An egd equated two distinct constants: no solution exists.
    Failed {
        /// The two constants that were required to be equal.
        left: Value,
        /// See `left`.
        right: Value,
    },
}

/// Weak acyclicity of a set of target tgds (FKMP). The implementation
/// moved to `qi-analyze`, which also derives witness cycles and
/// termination certificates from the same dependency graph; this alias
/// keeps the historical `qi_chase` path working.
#[deprecated(note = "moved to qi-analyze; use `qi_analyze::is_weakly_acyclic`")]
pub fn is_weakly_acyclic(target_tgds: &[Tgd]) -> bool {
    qi_analyze::is_weakly_acyclic(target_tgds)
}

/// Enumerate one round's triggers over the round-start snapshot, as a
/// canonically ordered set of `(tgd index, body-variable values)`.
///
/// With `full` unset (semi-naive), each tgd spawns one delta-restricted
/// enumeration per body atom — a match is found iff some body atom is a
/// fact of the current delta — and the `BTreeSet` dedups triggers found
/// through several delta atoms. The set ordering also makes the firing
/// order independent of how the triggers were discovered, which is what
/// makes naive and semi-naive rounds byte-identical.
fn enumerate_round(
    compiled: &[CompiledTgd],
    current: &Instance,
    full: bool,
    parallelism: Parallelism,
    budget: &Budget,
    exec: &mut ExecStats,
) -> Result<BTreeSet<(usize, Vec<Value>)>, Exceeded> {
    let mut tasks: Vec<(usize, Option<usize>)> = Vec::new();
    for (ti, c) in compiled.iter().enumerate() {
        if full {
            tasks.push((ti, None));
        } else {
            for atom in 0..c.body.facts.len() {
                tasks.push((ti, Some(atom)));
            }
        }
    }
    let constraints = MatchConstraints::default();
    let (results, stats) = par_map_budgeted(parallelism, &tasks, budget, |&(ti, delta_atom)| {
        let c = &compiled[ti];
        let engine = MatchEngine::new(&c.body, current, &constraints).with_delta_atom(delta_atom);
        let matches: Vec<Vec<Value>> = engine
            .all()
            .iter()
            .map(|a| (0..c.n_body_vars as u32).map(|i| a.value(i)).collect())
            .collect();
        let (reused, rebuilt) = engine.posting_counters();
        (matches, reused, rebuilt)
    })?;
    exec.absorb(&stats);
    let mut triggers = BTreeSet::new();
    for ((ti, _), (matches, reused, rebuilt)) in tasks.iter().zip(results) {
        exec.postings_reused += reused;
        exec.postings_rebuilt += rebuilt;
        exec.triggers_enumerated += matches.len() as u64;
        for m in matches {
            triggers.insert((*ti, m));
        }
    }
    Ok(triggers)
}

/// One pass of egd repairs; `Ok(Some(n))` = `n` repairs applied,
/// `Err`-free failure is returned through the result enum by the caller.
fn repair_egds(egds: &[Egd], instance: &mut Instance) -> Result<Option<usize>, (Value, Value)> {
    let mut repairs = 0usize;
    for egd in egds {
        loop {
            let mut vars: Vec<Var> = Vec::new();
            let body_facts = compile_atoms(&egd.body, &mut vars);
            let body = Pattern {
                facts: body_facts,
                nvars: vars.len(),
            };
            let var_idx = |v: &Var, vars: &[Var]| -> u32 {
                vars.iter().position(|w| w == v).expect("validated") as u32
            };
            // Find one violating match.
            let mut violation: Option<(Value, Value)> = None;
            MatchEngine::new(&body, instance, &MatchConstraints::default()).for_each(
                |assignment| {
                    for (a, b) in &egd.equalities {
                        let va = assignment.value(var_idx(a, &vars));
                        let vb = assignment.value(var_idx(b, &vars));
                        if va != vb {
                            violation = Some((va, vb));
                            return false;
                        }
                    }
                    true
                },
            );
            match violation {
                None => break,
                Some((va, vb)) => {
                    let (keep, replace) = match (va, vb) {
                        (Value::Const(_), Value::Const(_)) => return Err((va, vb)),
                        (Value::Const(_), Value::Null(_)) => (va, vb),
                        (Value::Null(_), Value::Const(_)) => (vb, va),
                        // Two nulls: keep the smaller id (deterministic).
                        (Value::Null(a), Value::Null(b)) => {
                            if a <= b {
                                (va, vb)
                            } else {
                                (vb, va)
                            }
                        }
                    };
                    *instance = instance.map_values(|v| if v == replace { keep } else { v });
                    repairs += 1;
                }
            }
        }
    }
    Ok(Some(repairs))
}

/// How a target chase spent its step budget — returned by
/// [`chase_with_target_deps_stats`] so callers (and the bound tests)
/// can audit that certified runs stay under the certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TargetChaseStats {
    /// Tgd firings + egd repairs actually performed.
    pub steps: usize,
    /// The budget the run was held to.
    pub budget: usize,
    /// Whether the budget came from a termination certificate (as
    /// opposed to an explicit `max_steps` or the fallback constant).
    pub certified: bool,
    /// Executor and chase counters summed over the s-t stage and every
    /// target round: triggers enumerated vs. fired, posting-list usage,
    /// rounds, and delta sizes consulted by semi-naive rounds.
    pub exec: ExecStats,
}

/// Chase `source` through the full data-exchange setting: s-t tgds, then
/// target tgds and egds to a fixpoint.
///
/// Deterministic. Termination is guaranteed for weakly acyclic target
/// tgds (check with [`qi_analyze::is_weakly_acyclic`]); other settings
/// run until the step budget trips ([`ChaseError::Budget`]). See
/// [`TargetChaseOptions::max_steps`] for how the budget is chosen.
pub fn chase_with_target_deps(
    setting: &ExchangeSetting,
    source: &Instance,
    target_schema: &Schema,
    options: TargetChaseOptions,
) -> Result<TargetChaseResult, ChaseError> {
    chase_with_target_deps_stats(setting, source, target_schema, options).map(|(r, _)| r)
}

/// [`chase_with_target_deps`] plus budget accounting.
pub fn chase_with_target_deps_stats(
    setting: &ExchangeSetting,
    source: &Instance,
    target_schema: &Schema,
    options: TargetChaseOptions,
) -> Result<(TargetChaseResult, TargetChaseStats), ChaseError> {
    // The s-t stage inherits both the parallelism and the budget, so
    // the deadline / caps are end-to-end across the whole exchange.
    let ChaseOutcome {
        instance,
        stats: st_stats,
        ..
    } = chase_with_options(
        &setting.st_tgds,
        source,
        target_schema,
        ChaseOptions {
            parallelism: options.parallelism,
            budget: options.budget.clone(),
        },
    )?;
    let rbudget = options.budget.clone();
    let limited = !rbudget.is_unlimited();
    let mut current = instance;
    let (budget, certified) = match options.max_steps {
        Some(n) => (n, false),
        None => {
            let graph = DependencyGraph::new(&setting.target_tgds);
            match graph.certificate(&setting.target_tgds) {
                // The certificate bounds value growth from the number of
                // distinct values the target chase starts with.
                Some(cert) => (cert.step_budget(current.active_domain().len()), true),
                None => (FALLBACK_MAX_STEPS, false),
            }
        }
    };
    let mut next_null = current.fresh_null_floor().max(source.fresh_null_floor());
    let mut steps = 0usize;
    let mut exec = st_stats;
    // Compile every target tgd once; the compiled body/head patterns are
    // the persistent per-dependency engine state reused by all rounds.
    let compiled: Vec<CompiledTgd> = setting.target_tgds.iter().map(compile).collect();
    let naive = matches!(options.strategy, ChaseStrategy::Naive);
    // The first round must see everything; later semi-naive rounds only
    // re-enumerate after egd repairs, which rewrite values wholesale and
    // invalidate the delta.
    let mut force_full = true;
    loop {
        // Per-round budget check: a non-terminating setting spends its
        // life in this loop, so this is the check that bounds it even if
        // individual rounds are tiny.
        if limited {
            if let Err(e) = rbudget.check() {
                return Err(ChaseError::resource(
                    e,
                    exec,
                    ChasePartial::Instance(current),
                ));
            }
        }
        let full = naive || force_full;
        if !full {
            exec.delta_facts += current.delta_len() as u64;
        }
        let triggers = match enumerate_round(
            &compiled,
            &current,
            full,
            options.parallelism,
            &rbudget,
            &mut exec,
        ) {
            Ok(t) => t,
            Err(e) => {
                return Err(ChaseError::resource(
                    e,
                    exec,
                    ChasePartial::Instance(current),
                ))
            }
        };
        exec.rounds += 1;
        // Facts inserted by this round's firings form the next delta.
        current.begin_round();
        let mut fired = 0usize;
        for (ti, body_vals) in &triggers {
            // Per-trigger budget check: one round of a wide instance can
            // fire thousands of triggers, so exhaustion must be able to
            // surface mid-round.
            if limited {
                if let Err(e) = rbudget.check() {
                    exec.triggers_fired += fired as u64;
                    return Err(ChaseError::resource(
                        e,
                        exec,
                        ChasePartial::Instance(current),
                    ));
                }
            }
            let c = &compiled[*ti];
            // Restricted chase: fire only when the head has no satisfying
            // extension in the instance as it stands *now* (earlier
            // firings of this same round count).
            if head_satisfied(c, body_vals, &current) {
                continue;
            }
            let before = current.fact_count();
            fire(c, body_vals, &mut current, &mut next_null);
            rbudget.charge_facts((current.fact_count() - before) as u64);
            fired += 1;
        }
        exec.triggers_fired += fired as u64;
        let repaired = match repair_egds(&setting.egds, &mut current) {
            Ok(Some(n)) => n,
            Ok(None) => unreachable!("repair_egds always counts"),
            Err((left, right)) => {
                return Ok((
                    TargetChaseResult::Failed { left, right },
                    TargetChaseStats {
                        steps,
                        budget,
                        certified,
                        exec,
                    },
                ))
            }
        };
        steps += fired + repaired;
        force_full = repaired > 0;
        if fired == 0 && repaired == 0 {
            return Ok((
                TargetChaseResult::Solution(current),
                TargetChaseStats {
                    steps,
                    budget,
                    certified,
                    exec,
                },
            ));
        }
        if steps > budget {
            return Err(ChaseError::Budget { max_nodes: budget });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::{parse_egd, parse_tgd};

    fn setting(
        src: &str,
        tgt: &str,
        st: &[&str],
        tt: &[&str],
        eg: &[&str],
    ) -> (Schema, Schema, ExchangeSetting) {
        let s = Schema::parse(src).unwrap();
        let t = Schema::parse(tgt).unwrap();
        let st_tgds = st.iter().map(|d| parse_tgd(&s, &t, d).unwrap()).collect();
        let target_tgds = tt.iter().map(|d| parse_tgd(&t, &t, d).unwrap()).collect();
        let egds = eg.iter().map(|d| parse_egd(&t, d).unwrap()).collect();
        (
            s,
            t,
            ExchangeSetting {
                st_tgds,
                target_tgds,
                egds,
            },
        )
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_answers() {
        // The implementation lives in qi-analyze now; the old qi-chase
        // path must keep working and agreeing.
        let t = Schema::parse("E/2 D/1").unwrap();
        let bad = parse_tgd(&t, &t, "E(x,y) -> exists z . E(y,z)").unwrap();
        let good = parse_tgd(&t, &t, "E(x,y) -> D(x)").unwrap();
        for tgds in [vec![bad], vec![good]] {
            assert_eq!(
                is_weakly_acyclic(&tgds),
                qi_analyze::is_weakly_acyclic(&tgds)
            );
        }
    }

    #[test]
    fn transitive_closure_is_weakly_acyclic_and_terminates() {
        let (s, t, setting) = setting(
            "E0/2",
            "E/2",
            &["E0(x,y) -> E(x,y)"],
            &["E(x,y) & E(y,z) -> E(x,z)"],
            &[],
        );
        assert!(qi_analyze::is_weakly_acyclic(&setting.target_tgds));
        let i = Instance::parse(&s, "E0(a,b) E0(b,c) E0(c,d)").unwrap();
        let (result, stats) =
            chase_with_target_deps_stats(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        // The default budget is certificate-derived and never exceeded.
        assert!(stats.certified);
        assert!(stats.steps <= stats.budget, "{stats:?}");
        let TargetChaseResult::Solution(u) = result else {
            panic!("expected a solution");
        };
        // Full transitive closure: ab, bc, cd, ac, bd, ad.
        assert_eq!(u.fact_count(), 6);
        assert!(u.contains_fact(&qi_schema::Fact::new(
            t.rel("E").unwrap(),
            vec![Value::constant("a"), Value::constant("d")]
        )));
    }

    #[test]
    fn non_terminating_setting_hits_the_budget() {
        let (s, t, setting) = setting(
            "S0/1",
            "E/2",
            &["S0(x) -> exists y . E(x,y)"],
            &["E(x,y) -> exists z . E(y,z)"],
            &[],
        );
        assert!(!qi_analyze::is_weakly_acyclic(&setting.target_tgds));
        let i = Instance::parse(&s, "S0(a)").unwrap();
        let result = chase_with_target_deps(
            &setting,
            &i,
            &t,
            TargetChaseOptions {
                max_steps: Some(500),
                ..Default::default()
            },
        );
        assert!(matches!(result, Err(ChaseError::Budget { .. })));
    }

    #[test]
    fn certified_budget_covers_existential_generation() {
        // D(x) → ∃y E(x,y) plus E(x,y) → D(x): weakly acyclic with a
        // rank-1 certificate; the chase must stay under the derived
        // budget.
        let (s, t, setting) = setting(
            "D0/1",
            "E/2 D/1",
            &["D0(x) -> D(x)"],
            &["D(x) -> exists y . E(x,y)", "E(x,y) -> D(x)"],
            &[],
        );
        let i = Instance::parse(&s, "D0(a) D0(b) D0(c)").unwrap();
        let (result, stats) =
            chase_with_target_deps_stats(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        assert!(matches!(result, TargetChaseResult::Solution(_)));
        assert!(stats.certified);
        assert!(stats.steps <= stats.budget, "{stats:?}");
    }

    #[test]
    fn uncertified_settings_fall_back_to_the_constant_budget() {
        // E(x,x) → ∃z E(x,z) is not weakly acyclic (special self-loop on
        // E.2), but never fires here: the instance has no diagonal fact.
        // The run terminates and reports the fallback budget.
        let (s, t, setting) = setting(
            "P/2",
            "E/2",
            &["P(x,y) -> E(x,y)"],
            &["E(x,x) -> exists z . E(x,z)"],
            &[],
        );
        assert!(!qi_analyze::is_weakly_acyclic(&setting.target_tgds));
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let (result, stats) =
            chase_with_target_deps_stats(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        assert!(matches!(result, TargetChaseResult::Solution(_)));
        assert!(!stats.certified);
        assert_eq!(stats.budget, FALLBACK_MAX_STEPS);
    }

    #[test]
    fn egd_merges_nulls_with_constants() {
        // Key constraint: E is functional in its first column.
        let (s, t, setting) = setting(
            "P/2 Q/1",
            "E/2",
            &["P(x,y) -> E(x,y)", "Q(x) -> exists y . E(x,y)"],
            &[],
            &["E(x,y) & E(x,z) -> y = z"],
        );
        let i = Instance::parse(&s, "P(a,b) Q(a)").unwrap();
        let result =
            chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        let TargetChaseResult::Solution(u) = result else {
            panic!("expected a solution");
        };
        // The null from Q's existential is equated with b.
        assert_eq!(u, Instance::parse(&t, "E(a,b)").unwrap());
        assert!(u.is_ground());
    }

    #[test]
    fn egd_failure_on_distinct_constants() {
        let (s, t, setting) = setting(
            "P/2",
            "E/2",
            &["P(x,y) -> E(x,y)"],
            &[],
            &["E(x,y) & E(x,z) -> y = z"],
        );
        let i = Instance::parse(&s, "P(a,b) P(a,c)").unwrap();
        let result =
            chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        assert!(matches!(result, TargetChaseResult::Failed { .. }));
    }

    #[test]
    fn egds_cascade_with_target_tgds() {
        // Copying into a keyed relation triggers merges that re-trigger
        // the tgd check.
        let (s, t, setting) = setting(
            "P/2",
            "E/2 F/2",
            &["P(x,y) -> E(x,y)"],
            &["E(x,y) -> exists z . F(x,z)"],
            &["F(x,y) & F(x,z) -> y = z", "E(x,y) & F(x,z) -> y = z"],
        );
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let result =
            chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        let TargetChaseResult::Solution(u) = result else {
            panic!("expected a solution");
        };
        // F's null is forced equal to b by the second egd.
        assert_eq!(u, Instance::parse(&t, "E(a,b) F(a,b)").unwrap());
    }

    #[test]
    fn empty_target_deps_reduce_to_plain_chase() {
        let (s, t, setting) = setting("P/1", "Q/1", &["P(x) -> Q(x)"], &[], &[]);
        let i = Instance::parse(&s, "P(a)").unwrap();
        let result =
            chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        assert_eq!(
            result,
            TargetChaseResult::Solution(Instance::parse(&t, "Q(a)").unwrap())
        );
    }

    #[test]
    fn null_null_merge_is_deterministic() {
        let (s, t, setting) = setting(
            "P/1",
            "E/2",
            &["P(x) -> exists y . E(x,y)", "P(x) -> exists z . E(x,z)"],
            &[],
            &["E(x,y) & E(x,z) -> y = z"],
        );
        let i = Instance::parse(&s, "P(a)").unwrap();
        // The restricted s-t chase already avoids the duplicate, but run
        // the oblivious shape via two distinct tgds anyway: result is a
        // single fact either way, twice over.
        let a = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        let b = chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
        assert_eq!(a, b);
        let TargetChaseResult::Solution(u) = a else {
            panic!()
        };
        assert_eq!(u.fact_count(), 1);
    }
}

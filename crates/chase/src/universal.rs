//! Solutions and universal solutions (§2).

use crate::error::ChaseError;
use crate::satisfy::satisfies_all_tgds;
use crate::standard::chase;
use qi_lang::Tgd;
use qi_schema::{has_hom, Instance};

/// Is `candidate` a solution for `source` under the mapping specified by
/// `tgds` — i.e. `(source, candidate) ⊨ Σ`?
pub fn is_solution(tgds: &[Tgd], source: &Instance, candidate: &Instance) -> bool {
    satisfies_all_tgds(source, candidate, tgds)
}

/// Is `candidate` a *universal* solution for `source`: a solution that
/// maps homomorphically into every solution?
///
/// Certificate: `candidate` is universal iff it is a solution and admits a
/// homomorphism from `chase_Σ(source)` **and** into it — equivalently,
/// it is a solution homomorphically equivalent to the chase result (the
/// chase result is universal, and universal solutions are exactly the
/// solutions hom-equivalent to it).
pub fn is_universal_solution(
    tgds: &[Tgd],
    source: &Instance,
    candidate: &Instance,
) -> Result<bool, ChaseError> {
    if !is_solution(tgds, source, candidate) {
        return Ok(false);
    }
    let u = chase(tgds, source, candidate.schema())?.instance;
    Ok(has_hom(candidate, &u) && has_hom(&u, candidate))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_tgd;
    use qi_schema::Schema;

    #[test]
    fn chase_result_is_universal() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()];
        let i = Instance::parse(&s, "P(a,b) P(b,a)").unwrap();
        let u = chase(&tgds, &i, &t).unwrap().instance;
        assert!(is_universal_solution(&tgds, &i, &u).unwrap());
    }

    #[test]
    fn over_specific_solution_is_not_universal() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z) & Q(z,y)").unwrap()];
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        // Ground witness z = c: a solution but not universal.
        let j = Instance::parse(&t, "Q(a,c) Q(c,b)").unwrap();
        assert!(is_solution(&tgds, &i, &j));
        assert!(!is_universal_solution(&tgds, &i, &j).unwrap());
    }

    #[test]
    fn non_solution_is_rejected() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> Q(x,y)").unwrap()];
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        let j = Instance::new(t);
        assert!(!is_solution(&tgds, &i, &j));
        assert!(!is_universal_solution(&tgds, &i, &j).unwrap());
    }

    #[test]
    fn padded_universal_solution_still_universal() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgds = vec![parse_tgd(&s, &t, "P(x,y) -> exists z . Q(x,z)").unwrap()];
        let i = Instance::parse(&s, "P(a,b)").unwrap();
        // chase gives Q(a,N); adding a redundant null fact keeps it
        // universal (hom-equivalent to the chase result).
        let j = Instance::parse(&t, "Q(a,N1) Q(a,N2)").unwrap();
        assert!(is_universal_solution(&tgds, &i, &j).unwrap());
    }
}

//! # qi-cli — the `qimap` command
//!
//! A thin, dependency-free command-line front end over the library:
//!
//! ```text
//! qimap check        <mapping-file>                classify + verify
//! qimap lint [--json] <mapping-file>               static analysis (QI001…)
//! qimap quasi-inverse <mapping-file>               run Algorithm QuasiInverse
//! qimap inverse      <mapping-file>                run Algorithm Inverse
//! qimap chase        <mapping-file> <instance>     forward exchange
//! qimap roundtrip    <mapping-file> <instance>     Figure-1 style round trip
//! qimap compose      <mapping-file> <mapping-file> composition operator
//! qimap recover      <mapping-file>                maximum recovery
//! qimap contains     <mapping-file> <mapping-file> mapping containment
//! ```
//!
//! ## Mapping file format
//!
//! ```text
//! # comment lines start with '#'
//! source: Emp/3
//! target: WorksIn/2 LocatedIn/2
//! tgd: Emp(n,d,c) -> WorksIn(n,d) & LocatedIn(d,c)
//! tgd: ...
//! # optional target dependencies (used by `chase`, reported by `check`):
//! target-tgd: WorksIn(n,d) & WorksIn(n,e) -> WorksIn(n,d)
//! egd: LocatedIn(d,c1) & LocatedIn(d,c2) -> c1 = c2
//! # optional reverse (target-to-source) dependencies, linted by `lint`:
//! reverse: WorksIn(n,d) & const(n) -> exists c . Emp(n,d,c)
//! ```
//!
//! File handling is built on [`qi_analyze::analyze_text`]: every command
//! rejects files with `Error`-severity diagnostics, and `qimap lint`
//! reports the full diagnostic list (stable `QI001`–`QI016` codes) as
//! text or JSON.
//!
//! Instances are given inline using the literal syntax of
//! [`qi_schema::Instance::parse`], e.g. `"Emp(a,b,c) Emp(d,b,e)"`.
//!
//! All command logic lives in this library (returning strings) so the
//! binary stays a two-line dispatcher and the behaviour is unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qi_analyze::{analyze_text, Analysis, Severity};
use qi_chase::{chase_with_target_deps, ExchangeSetting, TargetChaseOptions, TargetChaseResult};
use qi_core::enumerate::ground_instances;
use qi_core::{
    constant_propagation_property, inverse, is_inverse_bounded, is_quasi_inverse_bounded,
    mapping_contains_with_stats, maximum_recovery_with_stats, quasi_inverse,
    quasi_inverse_with_stats, round_trip, semantic_lints, ContainmentVerdict, QuasiInverseOptions,
    SchemaMapping,
};
use qi_exec::Budget;
use qi_lang::{Egd, Tgd};
use qi_schema::{core_of_with_stats, Instance};
use std::fmt::Write as _;
use std::time::Duration;

/// A CLI failure: message for stderr, nonzero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// A parsed mapping file: the s-t mapping plus optional target
/// dependencies (`target-tgd:` and `egd:` lines).
pub struct MappingFile {
    /// The source-to-target mapping.
    pub mapping: SchemaMapping,
    /// Target tgds (may be empty).
    pub target_tgds: Vec<Tgd>,
    /// Target egds (may be empty).
    pub egds: Vec<Egd>,
}

impl MappingFile {
    /// Does the file declare target dependencies?
    pub fn has_target_deps(&self) -> bool {
        !self.target_tgds.is_empty() || !self.egds.is_empty()
    }

    /// The full exchange setting.
    pub fn setting(&self) -> ExchangeSetting {
        ExchangeSetting {
            st_tgds: self.mapping.tgds.clone(),
            target_tgds: self.target_tgds.clone(),
            egds: self.egds.clone(),
        }
    }
}

/// Render the `Error`-severity findings of an analysis as a `CliError`
/// (one `file:line:col: error[QIxxx]: …` line each).
fn errors_to_cli(analysis: &Analysis, path: &str) -> CliError {
    let lines: Vec<String> = analysis
        .diagnostics
        .items
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .map(|d| d.render_text(path))
        .collect();
    err(lines.join("\n"))
}

/// Convert a static analysis into the executable `MappingFile`,
/// rejecting when any `Error`-severity diagnostic fired.
fn mapping_file_of(analysis: Analysis, path: &str) -> Result<MappingFile, CliError> {
    if analysis.diagnostics.has_errors() {
        return Err(errors_to_cli(&analysis, path));
    }
    let parts = analysis.parts;
    let (source, target) = (
        parts.source.expect("no errors ⇒ source schema resolved"),
        parts.target.expect("no errors ⇒ target schema resolved"),
    );
    let mapping =
        SchemaMapping::new(source, target, parts.st_tgds).map_err(|e| err(e.to_string()))?;
    Ok(MappingFile {
        mapping,
        target_tgds: parts.target_tgds,
        egds: parts.egds,
    })
}

/// Parse the mapping file format described in the crate docs. Built on
/// [`qi_analyze::analyze_text`]; fails iff the analyzer reports an
/// `Error`-severity diagnostic, with one rendered finding per line.
pub fn parse_mapping_file(text: &str) -> Result<MappingFile, CliError> {
    mapping_file_of(analyze_text(text), "mapping")
}

/// `qimap lint`: run the static analyzer and render every finding, as
/// human-readable text or as a JSON document (`--json`). Errors (exit 1)
/// iff any `Error`-severity diagnostic fired, with the same rendering as
/// the message.
pub fn cmd_lint(path: &str, text: &str, json: bool) -> Result<String, CliError> {
    let analysis = analyze_text(text);
    let rendered = if json {
        analysis.diagnostics.render_json(path)
    } else {
        analysis.diagnostics.render_text(path)
    };
    if analysis.diagnostics.has_errors() {
        Err(err(rendered))
    } else {
        Ok(rendered)
    }
}

/// `qimap check`: static analysis, classification, constant propagation,
/// and — when the two-constant tuple universe is small — bounded
/// verification of the algorithms' outputs.
pub fn cmd_check(mapping_text: &str) -> Result<String, CliError> {
    let analysis = analyze_text(mapping_text);
    let findings = analysis.diagnostics.items.clone();
    let certificate = analysis.certificate.clone();
    let mf = mapping_file_of(analysis, "mapping")?;
    let m = &mf.mapping;
    let mut out = String::new();
    let _ = writeln!(out, "{m}");
    let _ = writeln!(out, "LAV:                  {}", m.is_lav());
    let _ = writeln!(out, "full:                 {}", m.is_full());
    let cprop = constant_propagation_property(m).map_err(|e| err(e.to_string()))?;
    let _ = writeln!(out, "constant propagation: {cprop}");
    if mf.has_target_deps() {
        let _ = writeln!(
            out,
            "target dependencies:  {} tgd(s), {} egd(s); weakly acyclic: {}",
            mf.target_tgds.len(),
            mf.egds.len(),
            mf.target_tgds.is_empty() || certificate.is_some()
        );
        if let Some(cert) = &certificate {
            let _ = writeln!(
                out,
                "termination certificate: max position rank {}; e.g. step budget {} from 4 \
                 active-domain values",
                cert.max_rank,
                cert.step_budget(4)
            );
        }
        let _ = writeln!(
            out,
            "note: the (quasi-)inverse algorithms below treat the mapping as plain s-t tgds"
        );
    }
    if m.is_lav() {
        let _ = writeln!(out, "quasi-invertible:     yes (LAV — Proposition 3.11)");
    }
    if !cprop {
        let _ = writeln!(out, "invertible:           no (Proposition 5.3)");
    }
    let qi = quasi_inverse(m, &QuasiInverseOptions::default()).map_err(|e| err(e.to_string()))?;
    let _ = writeln!(out, "quasi-inverse language: {}", qi.language_features());
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    if tuples <= 8 {
        let universe = ground_instances(&m.source, &["a", "b"], tuples);
        let q = is_quasi_inverse_bounded(m, &qi, &universe).map_err(|e| err(e.to_string()))?;
        let _ = writeln!(
            out,
            "bounded quasi-inverse check ({} instances): {}",
            universe.len(),
            if q.holds { "holds" } else { "FAILS" }
        );
        if let Some(inv) = inverse(m).map_err(|e| err(e.to_string()))? {
            let r = is_inverse_bounded(m, &inv, &universe).map_err(|e| err(e.to_string()))?;
            let _ = writeln!(
                out,
                "bounded inverse check ({} instances):       {}",
                universe.len(),
                if r.holds { "holds" } else { "FAILS" }
            );
        }
    } else {
        let _ = writeln!(
            out,
            "bounded verification skipped (tuple universe of size {tuples} > 8)"
        );
    }
    let mut lint_lines: Vec<String> = findings.iter().map(|d| d.render_text("mapping")).collect();
    if tuples <= 8 {
        // The chase-based lints (QI014/QI015) run on the same small
        // universes as the bounded verification above.
        for d in semantic_lints(m).map_err(|e| err(e.to_string()))? {
            lint_lines.push(d.render_text("mapping"));
        }
    }
    if !lint_lines.is_empty() {
        let _ = writeln!(out, "lints:");
        for l in lint_lines {
            let _ = writeln!(out, "  {l}");
        }
    }
    Ok(out)
}

/// `qimap quasi-inverse`: run Algorithm QuasiInverse and print the
/// result. With `--stats`, append the aggregated MinGen search counters,
/// including the homomorphism-cache hit/miss counts and — when a budget
/// flag is set — the budget outcome counters.
pub fn cmd_quasi_inverse(
    mapping_text: &str,
    stats: bool,
    budget: &Budget,
) -> Result<String, CliError> {
    let mf = parse_mapping_file(mapping_text)?;
    let options = QuasiInverseOptions {
        budget: budget.clone(),
        ..Default::default()
    };
    if !stats {
        let rev = quasi_inverse(&mf.mapping, &options).map_err(|e| err(e.to_string()))?;
        return Ok(rev.to_string());
    }
    let (rev, s) =
        quasi_inverse_with_stats(&mf.mapping, &options).map_err(|e| err(e.to_string()))?;
    let mut out = rev.to_string();
    let _ = writeln!(
        out,
        "stats: {} chase task(s), hom cache {} hit(s) / {} miss(es)",
        s.tasks, s.hom_cache_hits, s.hom_cache_misses
    );
    if !budget.is_unlimited() {
        let _ = writeln!(
            out,
            "budget: within limits — {} executor task(s) and {} derived fact(s) charged",
            budget.tasks_charged(),
            budget.facts_charged()
        );
    }
    Ok(out)
}

/// `qimap inverse`: run Algorithm Inverse; reports the
/// constant-propagation failure when the algorithm halts without output.
pub fn cmd_inverse(mapping_text: &str) -> Result<String, CliError> {
    let mf = parse_mapping_file(mapping_text)?;
    match inverse(&mf.mapping).map_err(|e| err(e.to_string()))? {
        Some(rev) => Ok(rev.to_string()),
        None => Ok(
            "no output: the mapping fails the constant-propagation property \
             (Definition 5.2), hence has no inverse (Proposition 5.3)\n"
                .to_owned(),
        ),
    }
}

/// `qimap chase`: forward data exchange of an inline instance literal.
/// When the mapping file declares target dependencies (`target-tgd:` /
/// `egd:` lines), the full-setting chase runs, including egd repairs and
/// failure detection. With `--stats`, the core of the solution is also
/// computed and the core-computation counters printed.
pub fn cmd_chase(
    mapping_text: &str,
    instance_literal: &str,
    stats: bool,
    budget: &Budget,
) -> Result<String, CliError> {
    let mf = parse_mapping_file(mapping_text)?;
    let m = &mf.mapping;
    let i = Instance::parse(&m.source, instance_literal)
        .map_err(|e| err(format!("invalid instance: {e}")))?;
    let u = if mf.has_target_deps() {
        // An explicit resource budget replaces the step-count safety
        // net: the user asked for wall-clock/task/fact guardrails, and
        // the non-certified fallback step cap could otherwise trip
        // first and mask the structured resource error.
        let options = TargetChaseOptions {
            max_steps: if budget.is_unlimited() {
                None
            } else {
                Some(usize::MAX)
            },
            budget: budget.clone(),
            ..Default::default()
        };
        let result = chase_with_target_deps(&mf.setting(), &i, &m.target, options)
            .map_err(|e| err(e.to_string()))?;
        match result {
            TargetChaseResult::Solution(u) => u,
            TargetChaseResult::Failed { left, right } => {
                return Ok(format!(
                    "chase FAILED: an egd requires {left} = {right} (distinct constants) — \
                     the instance has no solution under the target dependencies\n"
                ))
            }
        }
    } else {
        m.chase_budgeted(&i, budget)
            .map_err(|e| err(e.to_string()))?
    };
    let mut out = format!("{u}\n");
    if stats {
        let (core, cs) = core_of_with_stats(&u);
        let _ = writeln!(out, "core: {core}");
        let _ = writeln!(
            out,
            "core stats: {} endomorphism search(es), {} null(s) folded in {} round(s)",
            cs.endos_tried, cs.nulls_folded, cs.rounds
        );
        if !budget.is_unlimited() {
            let _ = writeln!(
                out,
                "budget: within limits — {} executor task(s) and {} derived fact(s) charged",
                budget.tasks_charged(),
                budget.facts_charged()
            );
        }
    }
    Ok(out)
}

/// `qimap roundtrip`: the full §6 bidirectional exchange with soundness
/// and faithfulness verdicts.
pub fn cmd_roundtrip(mapping_text: &str, instance_literal: &str) -> Result<String, CliError> {
    let mf = parse_mapping_file(mapping_text)?;
    let m = &mf.mapping;
    let i = Instance::parse(&m.source, instance_literal)
        .map_err(|e| err(format!("invalid instance: {e}")))?;
    if !i.is_ground() {
        return Err(err("the source instance must be ground (null-free)"));
    }
    let rev = quasi_inverse(m, &QuasiInverseOptions::default()).map_err(|e| err(e.to_string()))?;
    let rt = round_trip(m, &rev, &i, Default::default()).map_err(|e| err(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(out, "I  = {i}");
    let _ = writeln!(out, "U  = chase_Σ(I) = {}", rt.u);
    let _ = writeln!(
        out,
        "recovered {} candidate source instance(s)",
        rt.recovered.len()
    );
    for (k, v) in rt.recovered.iter().enumerate().take(8) {
        let _ = writeln!(out, "  V{k} = {v}");
    }
    if rt.recovered.len() > 8 {
        let _ = writeln!(out, "  … ({} more)", rt.recovered.len() - 8);
    }
    let _ = writeln!(out, "sound:    {}", rt.is_sound());
    let _ = writeln!(out, "faithful: {}", rt.is_faithful());
    if let Some(v) = rt.recovered_equivalent() {
        let _ = writeln!(out, "data-exchange-equivalent recovery: {v}");
    }
    Ok(out)
}

/// `qimap compose`: compose two mappings sharing a middle schema. Uses
/// the first-order construction when the first mapping is full, the
/// SO-tgd construction otherwise.
pub fn cmd_compose(m12_text: &str, m23_text: &str) -> Result<String, CliError> {
    let m12 = parse_mapping_file(m12_text)?.mapping;
    let m23_raw = parse_mapping_file(m23_text)?.mapping;
    // Re-read the second mapping over the first one's target schema so the
    // two share a Schema value.
    let deps: Vec<String> = m23_raw.tgds.iter().map(|t| t.to_string()).collect();
    let tgds: Result<Vec<_>, _> = deps
        .iter()
        .map(|d| qi_lang::parse_tgd(&m12.target, &m23_raw.target, d))
        .collect();
    let tgds = tgds.map_err(|e| {
        err(format!(
            "the second mapping's source must match the first mapping's target: {e}"
        ))
    })?;
    let m23 = SchemaMapping::new(m12.target.clone(), m23_raw.target.clone(), tgds)
        .map_err(|e| err(e.to_string()))?;
    if m12.is_full() {
        let composed =
            qi_core::compose(&m12, &m23, &Default::default()).map_err(|e| err(e.to_string()))?;
        Ok(format!("{composed}"))
    } else {
        let so = qi_core::so_compose(&m12, &m23).map_err(|e| err(e.to_string()))?;
        Ok(format!(
            "(first mapping is not full: composition needs second-order tgds)\n{so}\n"
        ))
    }
}

/// Minimal JSON string escaping for the hand-rolled `--json` renderers:
/// the dependency language is ASCII, so only quotes, backslashes and
/// control characters need care.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `qimap recover`: compute a maximum recovery of the mapping (total for
/// every s-t tgd mapping — no invertibility precondition) and print its
/// disjunctive tgds as text or JSON. With `--stats`, append the MinGen /
/// hom-cache counters and — under a budget flag — the charged totals.
pub fn cmd_recover(
    mapping_text: &str,
    json: bool,
    stats: bool,
    budget: &Budget,
) -> Result<String, CliError> {
    let mf = parse_mapping_file(mapping_text)?;
    let options = QuasiInverseOptions {
        budget: budget.clone(),
        ..Default::default()
    };
    let (rev, s) =
        maximum_recovery_with_stats(&mf.mapping, &options).map_err(|e| err(e.to_string()))?;
    if json {
        let deps: Vec<String> = rev.deps.iter().map(|d| json_str(&d.to_string())).collect();
        let mut out = format!("{{\"maximum-recovery\":{{\"deps\":[{}]}}", deps.join(","));
        if stats {
            let _ = write!(
                out,
                ",\"stats\":{{\"tasks\":{},\"hom_cache_hits\":{},\"hom_cache_misses\":{}}}",
                s.tasks, s.hom_cache_hits, s.hom_cache_misses
            );
        }
        out.push_str("}\n");
        return Ok(out);
    }
    let mut out = rev.to_string();
    if stats {
        let _ = writeln!(
            out,
            "stats: {} chase task(s), hom cache {} hit(s) / {} miss(es)",
            s.tasks, s.hom_cache_hits, s.hom_cache_misses
        );
        if !budget.is_unlimited() {
            let _ = writeln!(
                out,
                "budget: within limits — {} executor task(s) and {} derived fact(s) charged",
                budget.tasks_charged(),
                budget.facts_charged()
            );
        }
    }
    Ok(out)
}

/// `qimap contains`: does the first mapping contain the second — is
/// `Inst(B) ⊆ Inst(A)`? Both files must declare the same source and
/// target schemas. On failure the structured counterexample witness (a
/// pair admitted by `B` and rejected by `A`, with the violated
/// dependency) is printed; a failed containment is a verdict, not an
/// error (exit 0 either way).
pub fn cmd_contains(
    outer_text: &str,
    inner_text: &str,
    json: bool,
    stats: bool,
    budget: &Budget,
) -> Result<String, CliError> {
    let outer = parse_mapping_file(outer_text)?.mapping;
    let inner_raw = parse_mapping_file(inner_text)?.mapping;
    // Re-read the second mapping over the first one's schema values so
    // the containment checker sees one shared schema pair.
    let deps: Vec<String> = inner_raw.tgds.iter().map(|t| t.to_string()).collect();
    let tgds: Result<Vec<_>, _> = deps
        .iter()
        .map(|d| qi_lang::parse_tgd(&outer.source, &outer.target, d))
        .collect();
    let tgds = tgds.map_err(|e| {
        err(format!(
            "containment needs both mappings over the same source and target schemas: {e}"
        ))
    })?;
    let inner = SchemaMapping::new(outer.source.clone(), outer.target.clone(), tgds)
        .map_err(|e| err(e.to_string()))?;
    let (verdict, s) =
        mapping_contains_with_stats(&outer, &inner, budget).map_err(|e| err(e.to_string()))?;
    if json {
        let mut out = match &verdict {
            ContainmentVerdict::Contained => "{\"contains\":true".to_owned(),
            ContainmentVerdict::NotContained(w) => format!(
                "{{\"contains\":false,\"witness\":{{\"violated\":{},\"premise\":{},\"solution\":{}}}",
                json_str(&w.violated),
                json_str(&w.premise.to_string()),
                json_str(&w.solution.to_string())
            ),
        };
        if stats {
            let _ = write!(out, ",\"stats\":{{\"tasks\":{}}}", s.tasks);
        }
        out.push_str("}\n");
        return Ok(out);
    }
    let mut out = String::new();
    match &verdict {
        ContainmentVerdict::Contained => {
            let _ = writeln!(
                out,
                "contained: every pair of the second mapping satisfies the first"
            );
        }
        ContainmentVerdict::NotContained(w) => {
            let _ = writeln!(out, "NOT contained");
            let _ = writeln!(out, "violated dependency: {}", w.violated);
            let _ = writeln!(out, "counterexample premise:  {}", w.premise);
            let _ = writeln!(out, "counterexample solution: {}", w.solution);
        }
    }
    if stats {
        let _ = writeln!(out, "stats: {} chase task(s)", s.tasks);
        if !budget.is_unlimited() {
            let _ = writeln!(
                out,
                "budget: within limits — {} executor task(s) and {} derived fact(s) charged",
                budget.tasks_charged(),
                budget.facts_charged()
            );
        }
    }
    Ok(out)
}

/// Strip the global `--threads N` / `--threads=N` flag out of `args`,
/// applying it via [`qi_exec::set_global_threads`]. Every chase and
/// search result is bit-identical at any setting; the flag only changes
/// how many workers the deterministic executor fans out to.
fn apply_threads_flag(args: &[String]) -> Result<Vec<String>, CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--threads" {
            Some(
                it.next()
                    .ok_or_else(|| err("--threads needs a value"))?
                    .clone(),
            )
        } else {
            a.strip_prefix("--threads=").map(str::to_owned)
        };
        match value {
            Some(v) => {
                let n: usize = v
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err(format!("invalid --threads value `{v}`")))?;
                qi_exec::set_global_threads(n);
            }
            None => rest.push(a.clone()),
        }
    }
    Ok(rest)
}

/// Strip the global resource-budget flags out of `args` and build the
/// [`Budget`] they describe:
///
/// * `--timeout <ms>`   — wall-clock deadline for the whole command;
/// * `--max-steps <n>`  — cap on executor tasks (chase triggers, MinGen
///   candidate tests, …);
/// * `--max-facts <n>`  — cap on derived target facts.
///
/// With no flag set the returned budget is unlimited and the commands
/// behave exactly as before. Exhaustion is reported as a structured
/// error, never a panic: the search stops at the next cooperative
/// checkpoint and the message names the tripped limit and the counters.
fn apply_budget_flags(args: &[String]) -> Result<(Vec<String>, Budget), CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut budget = Budget::unlimited();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| -> Result<Option<String>, CliError> {
            if a == flag {
                Ok(Some(
                    it.next()
                        .ok_or_else(|| err(format!("{flag} needs a value")))?
                        .clone(),
                ))
            } else {
                Ok(a.strip_prefix(&format!("{flag}=")).map(str::to_owned))
            }
        };
        if let Some(v) = take("--timeout")? {
            let ms: u64 = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| err(format!("invalid --timeout value `{v}`")))?;
            budget = budget.with_deadline(Duration::from_millis(ms));
        } else if let Some(v) = take("--max-steps")? {
            let n: u64 = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| err(format!("invalid --max-steps value `{v}`")))?;
            budget = budget.with_max_tasks(n);
        } else if let Some(v) = take("--max-facts")? {
            let n: u64 = v
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| err(format!("invalid --max-facts value `{v}`")))?;
            budget = budget.with_max_facts(n);
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, budget))
}

/// Dispatch a full argument vector (excluding the binary name). Reads the
/// mapping file through the provided loader so tests can inject content.
pub fn run(
    args: &[String],
    read_file: impl Fn(&str) -> Result<String, CliError>,
) -> Result<String, CliError> {
    let usage = "usage: qimap [--threads N] [--timeout MS] [--max-steps N] [--max-facts N] [--stats] <check|lint|quasi-inverse|inverse|chase|roundtrip|compose|recover|contains> <mapping-file> [instance | second-mapping-file]\n       qimap lint [--json] <mapping-file>\n       qimap recover [--json] <mapping-file>\n       qimap contains [--json] <mapping-file> <second-mapping-file>";
    let args = apply_threads_flag(args)?;
    let (mut args, budget) = apply_budget_flags(&args)?;
    let json = match args.iter().position(|a| a == "--json") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    // Global `--stats`: `chase` appends the solution's core and the
    // core-computation counters, `quasi-inverse` the MinGen/hom-cache
    // counters; the other commands ignore it.
    let stats = match args.iter().position(|a| a == "--stats") {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    };
    let cmd = args.first().ok_or_else(|| err(usage))?;
    let file = args.get(1).ok_or_else(|| err(usage))?;
    let text = read_file(file)?;
    match cmd.as_str() {
        "check" => cmd_check(&text),
        "lint" => cmd_lint(file, &text, json),
        "quasi-inverse" => cmd_quasi_inverse(&text, stats, &budget),
        "inverse" => cmd_inverse(&text),
        "chase" => {
            let inst = args
                .get(2)
                .ok_or_else(|| err("chase needs an instance literal"))?;
            cmd_chase(&text, inst, stats, &budget)
        }
        "roundtrip" => {
            let inst = args
                .get(2)
                .ok_or_else(|| err("roundtrip needs an instance literal"))?;
            cmd_roundtrip(&text, inst)
        }
        "compose" => {
            let second = args
                .get(2)
                .ok_or_else(|| err("compose needs a second mapping file"))?;
            let text2 = read_file(second)?;
            cmd_compose(&text, &text2)
        }
        "recover" => cmd_recover(&text, json, stats, &budget),
        "contains" => {
            let second = args
                .get(2)
                .ok_or_else(|| err("contains needs a second mapping file"))?;
            let text2 = read_file(second)?;
            cmd_contains(&text, &text2, json, stats, &budget)
        }
        other => Err(err(format!("unknown command `{other}`\n{usage}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECOMP: &str = "\
# the paper's Decomposition mapping
source: P/3
target: Q/2 R/2
tgd: P(x,y,z) -> Q(x,y) & R(y,z)
";

    #[test]
    fn mapping_file_parses() {
        let mf = parse_mapping_file(DECOMP).unwrap();
        assert!(mf.mapping.is_lav());
        assert_eq!(mf.mapping.tgds.len(), 1);
        assert!(!mf.has_target_deps());
    }

    #[test]
    fn mapping_file_with_target_deps() {
        // Transitive closure plus antisymmetry (a strict order).
        let text = "source: E0/2\ntarget: E/2\ntgd: E0(x,y) -> E(x,y)\n\
                    target-tgd: E(x,y) & E(y,z) -> E(x,z)\negd: E(x,y) & E(y,x) -> x = y\n";
        let mf = parse_mapping_file(text).unwrap();
        assert!(mf.has_target_deps());
        assert_eq!(mf.target_tgds.len(), 1);
        assert_eq!(mf.egds.len(), 1);
        // Chase through the full setting: closure is computed and the
        // key merges nothing here.
        let out = cmd_chase(text, "E0(a,b) E0(b,c)", false, &Budget::unlimited()).unwrap();
        assert!(out.contains("E(a,c)"), "{out}");
        // An order violation (a cycle on distinct constants) is
        // reported, not panicked.
        let out = cmd_chase(text, "E0(a,b) E0(b,a)", false, &Budget::unlimited()).unwrap();
        assert!(out.contains("FAILED"), "{out}");
        // Check mentions weak acyclicity.
        let out = cmd_check(text).unwrap();
        assert!(out.contains("weakly acyclic: true"), "{out}");
    }

    #[test]
    fn mapping_file_errors() {
        assert!(parse_mapping_file("").is_err());
        assert!(parse_mapping_file("source: P/1\n").is_err());
        assert!(parse_mapping_file("source: P/1\ntarget: Q/1\n").is_err());
        assert!(parse_mapping_file("bogus: x\n").is_err());
        assert!(parse_mapping_file("source P/1\n").is_err());
    }

    #[test]
    fn check_reports_classification() {
        let out = cmd_check(DECOMP).unwrap();
        assert!(out.contains("LAV:                  true"));
        assert!(out.contains("quasi-invertible:     yes"));
        assert!(out.contains("bounded quasi-inverse check"));
        assert!(out.contains("holds"));
    }

    #[test]
    fn quasi_inverse_command_prints_dependencies() {
        let out = cmd_quasi_inverse(DECOMP, false, &Budget::unlimited()).unwrap();
        assert!(out.contains("->"));
        assert!(out.contains("const("));
        assert!(!out.contains("stats:"));
    }

    #[test]
    fn stats_flag_reports_counters_without_changing_results() {
        let plain = cmd_quasi_inverse(DECOMP, false, &Budget::unlimited()).unwrap();
        let with = cmd_quasi_inverse(DECOMP, true, &Budget::unlimited()).unwrap();
        assert!(with.starts_with(&plain), "stats must only append lines");
        assert!(with.contains("hom cache"), "{with}");
        // chase --stats: the chase result is ground, so the core equals
        // it and the counters record that nothing needed folding.
        let proj = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> Q(x)\n";
        let out = cmd_chase(proj, "P(a,b)", true, &Budget::unlimited()).unwrap();
        assert!(out.contains("core: Q(a)"), "{out}");
        assert!(out.contains("core stats:"), "{out}");
        // Dispatch strips the flag wherever it appears.
        let loader = |_: &str| Ok(DECOMP.to_owned());
        let out = run(
            &["--stats".into(), "quasi-inverse".into(), "m.qim".into()],
            loader,
        )
        .unwrap();
        assert!(out.contains("hom cache"), "{out}");
    }

    #[test]
    fn inverse_command_reports_propagation_failure() {
        let projection = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> Q(x)\n";
        let out = cmd_inverse(projection).unwrap();
        assert!(out.contains("constant-propagation"));
        let copy = "source: P/2\ntarget: Q/2\ntgd: P(x,y) -> Q(x,y)\n";
        let out = cmd_inverse(copy).unwrap();
        assert!(out.contains("-> P(x1,x2)"));
    }

    #[test]
    fn chase_and_roundtrip_commands() {
        let out = cmd_chase(DECOMP, "P(a,b,c)", false, &Budget::unlimited()).unwrap();
        assert_eq!(out.trim(), "Q(a,b) R(b,c)");
        let out = cmd_roundtrip(DECOMP, "P(a,b,c) P(a2,b,c2)").unwrap();
        assert!(out.contains("sound:    true"));
        assert!(out.contains("faithful: true"));
    }

    #[test]
    fn roundtrip_rejects_null_instances() {
        assert!(cmd_roundtrip(DECOMP, "P(a,b,N1)").is_err());
    }

    #[test]
    fn compose_command_picks_the_right_construction() {
        let m12_full = "source: P/2\ntarget: Q/2\ntgd: P(x,y) -> Q(x,y)\n";
        let m23 = "source: Q/2\ntarget: S/1\ntgd: Q(x,y) -> S(x)\n";
        let out = cmd_compose(m12_full, m23).unwrap();
        assert!(out.contains("-> S("));
        assert!(!out.contains("second-order"));
        let m12_exist = "source: P/1\ntarget: Q/2\ntgd: P(x) -> exists y . Q(x,y)\n";
        let out = cmd_compose(m12_exist, m23).unwrap();
        assert!(out.contains("second-order"));
        // Mismatched middle schema is reported.
        let bad = "source: Z/1\ntarget: W/1\ntgd: Z(x) -> W(x)\n";
        assert!(cmd_compose(m12_full, bad).is_err());
    }

    #[test]
    fn recover_command_prints_the_maximum_recovery() {
        let proj = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> Q(x)\n";
        let out = cmd_recover(proj, false, false, &Budget::unlimited()).unwrap();
        assert!(
            out.contains("Q(x) & const(x) -> exists z0 . P(x,z0)"),
            "{out}"
        );
        let with = cmd_recover(proj, false, true, &Budget::unlimited()).unwrap();
        assert!(with.starts_with(&out), "stats must only append lines");
        assert!(with.contains("hom cache"), "{with}");
        let js = cmd_recover(proj, true, false, &Budget::unlimited()).unwrap();
        assert!(js.contains("\"maximum-recovery\""), "{js}");
        assert!(js.contains("\"deps\""), "{js}");
        let js = cmd_recover(proj, true, true, &Budget::unlimited()).unwrap();
        assert!(js.contains("\"stats\""), "{js}");
    }

    #[test]
    fn contains_command_reports_verdict_and_witness() {
        let weak = "source: P/1 Q/1\ntarget: S/1\ntgd: P(x) -> S(x)\n";
        let union = "source: P/1 Q/1\ntarget: S/1\ntgd: P(x) -> S(x)\ntgd: Q(x) -> S(x)\n";
        let out = cmd_contains(weak, union, false, false, &Budget::unlimited()).unwrap();
        assert!(out.contains("contained"), "{out}");
        assert!(!out.contains("NOT"), "{out}");
        let out = cmd_contains(union, weak, false, true, &Budget::unlimited()).unwrap();
        assert!(out.contains("NOT contained"), "{out}");
        assert!(out.contains("violated dependency: Q(x) -> S(x)"), "{out}");
        assert!(out.contains("stats:"), "{out}");
        let js = cmd_contains(union, weak, true, false, &Budget::unlimited()).unwrap();
        assert!(js.contains("\"contains\":false"), "{js}");
        assert!(js.contains("\"witness\""), "{js}");
        let js = cmd_contains(weak, union, true, false, &Budget::unlimited()).unwrap();
        assert!(js.contains("\"contains\":true"), "{js}");
        // Mismatched schemas are a CLI error, not a verdict.
        let other = "source: Z/1\ntarget: S/1\ntgd: Z(x) -> S(x)\n";
        assert!(cmd_contains(weak, other, false, false, &Budget::unlimited()).is_err());
    }

    #[test]
    fn dispatch_recover_and_contains() {
        let weak = "source: P/1 Q/1\ntarget: S/1\ntgd: P(x) -> S(x)\n";
        let loader = |_: &str| Ok(weak.to_owned());
        let out = run(&["recover".into(), "m.qim".into()], loader).unwrap();
        assert!(out.contains("S(x) & const(x) -> P(x)"), "{out}");
        let out = run(&["contains".into(), "a.qim".into(), "b.qim".into()], loader).unwrap();
        assert!(out.contains("contained"), "{out}");
        assert!(run(&["contains".into(), "a.qim".into()], loader).is_err());
    }

    #[test]
    fn lint_command_renders_text_and_json() {
        // Clean file: only the summary line, exit 0.
        let out = cmd_lint("m.qim", DECOMP, false).unwrap();
        assert_eq!(out.trim(), "m.qim: 0 error(s), 0 warning(s), 0 info(s)");
        // A GAV + existential file: info findings, still exit 0.
        let gav = "source: P/2 R/2\ntarget: Q/2\ntgd: P(x,y) & R(y,z) -> exists w . Q(x,w)\n";
        let out = cmd_lint("m.qim", gav, false).unwrap();
        assert!(out.contains("info[QI012]"), "{out}");
        assert!(out.contains("info[QI013]"), "{out}");
        let out = cmd_lint("m.qim", gav, true).unwrap();
        assert!(out.contains("\"code\":\"QI012\""), "{out}");
        assert!(out.contains("\"summary\""), "{out}");
        // An unknown relation is an error: the rendering comes back as
        // the CliError (nonzero exit), in both formats.
        let bad = "source: P/2\ntarget: Q/1\ntgd: Z(x,y) -> Q(x)\n";
        let e = cmd_lint("m.qim", bad, false).unwrap_err();
        assert!(e.0.contains("m.qim:3:6: error[QI003]"), "{}", e.0);
        let e = cmd_lint("m.qim", bad, true).unwrap_err();
        assert!(e.0.contains("\"severity\":\"error\""), "{}", e.0);
    }

    #[test]
    fn check_appends_analyzer_and_semantic_lints() {
        // Projection: drops a column, so the dropped variable is both a
        // QI006 singleton (syntactic) and a QI014 constant-propagation
        // failure (semantic, chase-based).
        let projection = "source: P/2\ntarget: Q/1\ntgd: P(x,y) -> Q(x)\n";
        let out = cmd_check(projection).unwrap();
        assert!(out.contains("lints:"), "{out}");
        assert!(out.contains("info[QI006]"), "{out}");
        assert!(out.contains("warning[QI014]"), "{out}");
    }

    #[test]
    fn check_prints_the_termination_certificate() {
        let text = "source: E0/2\ntarget: E/2\ntgd: E0(x,y) -> E(x,y)\n\
                    target-tgd: E(x,y) & E(y,z) -> E(x,z)\n";
        let out = cmd_check(text).unwrap();
        assert!(
            out.contains("termination certificate: max position rank 0"),
            "{out}"
        );
    }

    #[test]
    fn dispatch_lint_with_json_flag() {
        let loader = |_: &str| Ok(DECOMP.to_owned());
        let out = run(&["lint".into(), "--json".into(), "m.qim".into()], loader).unwrap();
        assert!(out.contains("\"diagnostics\""), "{out}");
        let out = run(&["--json".into(), "lint".into(), "m.qim".into()], loader).unwrap();
        assert!(out.contains("\"summary\""), "{out}");
        let out = run(&["lint".into(), "m.qim".into()], loader).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn dispatch() {
        let loader = |_: &str| Ok(DECOMP.to_owned());
        let ok = run(&["check".into(), "m.qim".into()], loader).unwrap();
        assert!(ok.contains("LAV"));
        assert!(run(&[], loader).is_err());
        assert!(run(&["bogus".into(), "m.qim".into()], loader).is_err());
        assert!(run(&["chase".into(), "m.qim".into()], loader).is_err());
    }

    #[test]
    fn threads_flag_is_global_and_output_invariant() {
        let loader = |_: &str| Ok(DECOMP.to_owned());
        let baseline = run(&["chase".into(), "m.qim".into(), "P(a,b,c)".into()], loader).unwrap();
        for argv in [
            vec![
                "--threads".to_owned(),
                "2".to_owned(),
                "chase".to_owned(),
                "m.qim".to_owned(),
                "P(a,b,c)".to_owned(),
            ],
            vec![
                "chase".to_owned(),
                "--threads=4".to_owned(),
                "m.qim".to_owned(),
                "P(a,b,c)".to_owned(),
            ],
        ] {
            assert_eq!(run(&argv, loader).unwrap(), baseline);
        }
        qi_exec::set_global_threads(0); // don't leak into other tests
        assert!(run(&["--threads".into(), "zero".into()], loader).is_err());
        assert!(run(&["--threads=0".into()], loader).is_err());
        assert!(run(&["--threads".into()], loader).is_err());
        qi_exec::set_global_threads(0);
    }
}

//! `qimap` — command-line front end for the quasi-inverse library.

use qi_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args, |path| {
        std::fs::read_to_string(path).map_err(|e| CliError(format!("cannot read `{path}`: {e}")))
    }) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("qimap: {e}");
            std::process::exit(1);
        }
    }
}

//! The composition operator on schema mappings (§2).
//!
//! `M12 ∘ M23` holds of `(I, K)` when some intermediate `J` satisfies
//! both mappings. Composition is the second fundamental operator the
//! paper builds on (its references [5, 8, 9, 10]); in general it needs
//! second-order tgds, but when `M12` is specified by **full** s-t tgds
//! the composition is again definable by s-t tgds (reference \[5\], FKPT TODS'05) —
//! and the construction is exactly the generator machinery of §4 run in
//! the forward direction:
//!
//! for every `σ23 : φ(x,u) → ∃y ψ(x,y)` in `Σ23*` (complete descriptions
//! of the frontier, as in Algorithm QuasiInverse) and every minimal
//! generator `β(x,z)` of `∃u' φ` w.r.t. `Σ12`, emit
//! `β(x,z) → ∃y ψ(x,y)`.
//!
//! Because `M12` is full, its chase result is ground, so
//! `(I, K) ∈ Inst(M12 ∘ M23)` ⟺ `(chase_{Σ12}(I), K) ⊨ Σ23` — which is
//! how [`composition_membership`] decides membership exactly and how the
//! tests validate the syntactic composition on exhaustive universes.

use crate::error::CoreError;
use crate::mapping::SchemaMapping;
use crate::mingen::{min_gen, MinGenOptions};
use crate::sigma_star::sigma_star;
use qi_chase::satisfies_all_tgds;
use qi_lang::Tgd;
use qi_schema::Instance;

/// Exact membership test `(i, k) ∈ Inst(M12 ∘ M23)` for full `m12`.
pub fn composition_membership(
    m12: &SchemaMapping,
    m23: &SchemaMapping,
    i: &Instance,
    k: &Instance,
) -> Result<bool, CoreError> {
    if !m12.is_full() {
        return Err(CoreError::Precondition(
            "exact composition membership requires the first mapping to be full".into(),
        ));
    }
    if !m12.target.same_as(&m23.source) {
        return Err(CoreError::Precondition(
            "the mappings do not share the middle schema".into(),
        ));
    }
    let j = m12.chase(i)?;
    debug_assert!(j.is_ground(), "full tgds chase to ground instances");
    Ok(satisfies_all_tgds(&j, k, &m23.tgds))
}

/// Compute a finite set of s-t tgds specifying `M12 ∘ M23`
/// (`m12` must be full; `m23` may be arbitrary s-t tgds).
///
/// ```
/// use qi_core::{compose, SchemaMapping};
/// use qi_lang::parse_tgd;
///
/// let m12 = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
/// // m23 must literally share m12's target schema value:
/// let t3 = qi_schema::Schema::parse("S/1").unwrap();
/// let m23 = SchemaMapping::new(
///     m12.target.clone(), t3.clone(),
///     vec![parse_tgd(&m12.target, &t3, "Q(x,y) -> S(x)").unwrap()],
/// ).unwrap();
/// let m13 = compose(&m12, &m23, &Default::default()).unwrap();
/// assert_eq!(m13.tgds[0].to_string(), "P(x,z0) -> S(x)");
/// ```
pub fn compose(
    m12: &SchemaMapping,
    m23: &SchemaMapping,
    options: &MinGenOptions,
) -> Result<SchemaMapping, CoreError> {
    if !m12.is_full() {
        return Err(CoreError::Precondition(
            "compose requires the first mapping to be full (general composition needs SO-tgds)"
                .into(),
        ));
    }
    if !m12.target.same_as(&m23.source) {
        return Err(CoreError::Precondition(
            "the mappings do not share the middle schema".into(),
        ));
    }
    let mut tgds: Vec<Tgd> = Vec::new();
    for sigma in sigma_star(&m23.tgds)? {
        // ψ for the generator search is σ23's *premise*; its frontier
        // variables are the ones the composed head needs, the rest are
        // existential for the implication test.
        let x = sigma.frontier();
        let generators = min_gen(m12, &sigma.body, &x, options)?;
        for g in generators {
            let tgd = Tgd::new(
                m12.source.clone(),
                m23.target.clone(),
                g.atoms,
                sigma.exists.clone(),
                sigma.head.clone(),
            )?;
            if !tgds.contains(&tgd) {
                tgds.push(tgd);
            }
        }
    }
    SchemaMapping::new(m12.source.clone(), m23.target.clone(), tgds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::ground_instances;

    /// Check `Inst(composed) = Inst(m12 ∘ m23)` over exhaustive
    /// two-constant universes on both ends.
    fn assert_composition_correct(m12: &SchemaMapping, m23: &SchemaMapping) {
        let composed = compose(m12, m23, &MinGenOptions::default()).unwrap();
        let sources = ground_instances(&m12.source, &["a", "b"], 3);
        let sinks = ground_instances(&m23.target, &["a", "b"], 3);
        for i in &sources {
            for k in &sinks {
                let direct = satisfies_all_tgds(i, k, &composed.tgds);
                let via_chase = composition_membership(m12, m23, i, k).unwrap();
                assert_eq!(
                    direct, via_chase,
                    "disagreement on I = {i}, K = {k}\ncomposed:\n{composed}"
                );
            }
        }
    }

    #[test]
    fn copy_then_projection_is_projection() {
        let m12 = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let m23 = SchemaMapping::parse("Q/2", "S/1", &["Q(x,y) -> S(x)"]).unwrap();
        let composed = compose(&m12, &m23, &MinGenOptions::default()).unwrap();
        // Behaviourally the projection P(x,·) → S(x).
        assert_composition_correct(&m12, &m23);
        assert_eq!(composed.tgds.len(), 1, "{composed}");
        assert_eq!(composed.tgds[0].to_string(), "P(x,z0) -> S(x)");
    }

    #[test]
    fn projection_then_exists_head() {
        // Existentials in the second mapping flow through.
        let m12 = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let m23 = SchemaMapping::parse("Q/1", "R/2", &["Q(x) -> exists w . R(x,w)"]).unwrap();
        assert_composition_correct(&m12, &m23);
    }

    #[test]
    fn join_in_the_second_premise() {
        // σ23's premise joins two middle relations; generators must find
        // the source combinations producing both.
        let m12 = SchemaMapping::parse("A/1 B/1", "S1/1 S2/1", &["A(x) -> S1(x)", "B(x) -> S2(x)"])
            .unwrap();
        let m23 = SchemaMapping::parse("S1/1 S2/1", "T/1", &["S1(x) & S2(x) -> T(x)"]).unwrap();
        let composed = compose(&m12, &m23, &MinGenOptions::default()).unwrap();
        assert_composition_correct(&m12, &m23);
        // The only derivation is A(x) ∧ B(x) → T(x).
        assert_eq!(composed.tgds.len(), 1);
        assert_eq!(composed.tgds[0].body.len(), 2);
    }

    #[test]
    fn frontier_identification_is_covered_by_sigma_star() {
        // The middle premise Q(x,y) can be matched with x = y by a
        // different set of source facts — Σ* makes the composition see it.
        let m12 = SchemaMapping::parse("D/1 P/2", "Q/2", &["P(x,y) -> Q(x,y)", "D(x) -> Q(x,x)"])
            .unwrap();
        let m23 = SchemaMapping::parse("Q/2", "T/2", &["Q(x,y) -> T(y,x)"]).unwrap();
        assert_composition_correct(&m12, &m23);
    }

    #[test]
    fn union_fans_out() {
        let m12 =
            SchemaMapping::parse("A/1 B/1", "S/1", &["A(x) -> S(x)", "B(x) -> S(x)"]).unwrap();
        let m23 = SchemaMapping::parse("S/1", "T/1", &["S(x) -> T(x)"]).unwrap();
        let composed = compose(&m12, &m23, &MinGenOptions::default()).unwrap();
        assert_composition_correct(&m12, &m23);
        assert_eq!(composed.tgds.len(), 2); // A → T and B → T
    }

    #[test]
    fn identity_is_a_left_unit() {
        // Id ∘ M behaves like M (over the replica renaming).
        let m = SchemaMapping::parse("P/2", "T/1", &["P(x,y) -> T(x)"]).unwrap();
        let id = SchemaMapping::identity(&m.source).unwrap();
        // Rebuild m over the replica as its source.
        let m_replica = SchemaMapping::parse("P/2", "T/1", &["P(x,y) -> T(x)"]).unwrap();
        let m23 = SchemaMapping::new(
            id.target.clone(),
            m_replica.target.clone(),
            m_replica
                .tgds
                .iter()
                .map(|t| qi_lang::parse_tgd(&id.target, &m_replica.target, &t.to_string()).unwrap())
                .collect(),
        )
        .unwrap();
        assert_composition_correct(&id, &m23);
    }

    #[test]
    fn non_full_first_mapping_rejected() {
        let m12 = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
        let m23 = SchemaMapping::parse("Q/2", "T/1", &["Q(x,y) -> T(x)"]).unwrap();
        assert!(compose(&m12, &m23, &MinGenOptions::default()).is_err());
        let i = Instance::new(m12.source.clone());
        let k = Instance::new(m23.target.clone());
        assert!(composition_membership(&m12, &m23, &i, &k).is_err());
    }

    #[test]
    fn schema_mismatch_rejected() {
        let m12 = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
        let m23 = SchemaMapping::parse("Z/1", "T/1", &["Z(x) -> T(x)"]).unwrap();
        assert!(compose(&m12, &m23, &MinGenOptions::default()).is_err());
    }
}

//! Mapping containment and equivalence (after Calì–Torlone,
//! "Containment of Schema Mappings for Data Exchange").
//!
//! `M_A` *contains* `M_B` (written `M_B ⊑ M_A`) when
//! `Inst(M_B) ⊆ Inst(M_A)`: every instance pair admitted by `M_B` is
//! admitted by `M_A`. Containment is the order underlying the mapping
//! algebra — equivalence is mutual containment, and the maximum-recovery
//! characterization of [`crate::recovery`] is stated in terms of it.
//!
//! ## Decision procedures
//!
//! **Forward (s-t tgd) mappings** over the same schema pair:
//! `Inst(inner) ⊆ Inst(outer)` iff `Σ_inner ⊨ σ` for every
//! `σ ∈ Σ_outer`. Each implication is decided by the classic chase
//! test — freeze `σ`'s premise into a canonical instance `J`, chase `J`
//! with `Σ_inner`, and check that `(J, chase(J))` satisfies `σ`. The
//! chase is a universal solution, so a head match there transfers to
//! every pair in `Inst(inner)`; a failure *is* a counterexample pair,
//! which is returned as a self-validating [`ContainmentWitness`].
//!
//! **Reverse (disjunctive tgd) mappings**: the premise of a disjunctive
//! tgd `τ` can match nulls wherever it lacks a `const` guard, so one
//! frozen premise is not enough. For each `τ ∈ Σ_outer` the checker
//! enumerates the *equality types* of `τ`'s premise variables — every
//! set partition consistent with `τ`'s inequality guards, with each
//! unguarded class instantiated both as a fresh constant and as a fresh
//! labeled null — builds the canonical premise `J`, and runs the
//! *disjunctive* chase of `Σ_inner` on `J`. Containment requires every
//! leaf `V` of every equality type to satisfy `τ`; a failing leaf yields
//! the witness pair `(J, V) ∈ Inst(inner) \ Inst(outer)`. The outer
//! mapping must be guard-complete (inequalities only among `const`
//! guards), matching the precondition of the Proposition 6.6 machinery.
//!
//! Both checkers are budget-aware: the cooperative [`Budget`] is checked
//! once per dependency (resp. per equality type) and threaded into every
//! chase, so a trip surfaces as a structured [`CoreError::Resource`] /
//! [`CoreError::Chase`] at the next checkpoint — never a panic, and an
//! under-budget run returns exactly the unbudgeted verdict.

use crate::error::{CoreError, CorePartial};
use crate::exchange::guard_complete;
use crate::mapping::{ReverseMapping, SchemaMapping};
use qi_chase::{
    chase_with_options, disjunctive_chase_with_stats, satisfies_disj_tgd, satisfies_tgd,
    ChaseOptions, DisjChaseOptions,
};
use qi_exec::{Budget, ExecStats};
use qi_lang::{canonical_instance, restricted_growth_strings, DisjTgd, FrozenVars, Var};
use qi_schema::{Instance, Schema, Value};

/// A counterexample to a containment claim: a concrete instance pair
/// that the inner mapping admits and the outer mapping rejects.
///
/// The witness is *self-validating*: `(premise, solution)` satisfies
/// every inner dependency by construction (it is a chase result, resp. a
/// disjunctive-chase leaf), and `violated` names the outer dependency
/// that `(premise, solution)` fails — checkable independently with
/// [`qi_chase::satisfies_tgd`] / [`qi_chase::satisfies_disj_tgd`].
#[derive(Clone, Debug)]
pub struct ContainmentWitness {
    /// Rendering of the outer dependency the pair violates.
    pub violated: String,
    /// The premise-side instance of the counterexample pair.
    pub premise: Instance,
    /// The conclusion-side instance of the counterexample pair.
    pub solution: Instance,
}

/// Outcome of a containment check.
#[derive(Clone, Debug)]
pub enum ContainmentVerdict {
    /// `Inst(inner) ⊆ Inst(outer)` holds.
    Contained,
    /// Containment fails; the boxed witness is a concrete pair in
    /// `Inst(inner) \ Inst(outer)`.
    NotContained(Box<ContainmentWitness>),
}

impl ContainmentVerdict {
    /// Does the containment hold?
    pub fn holds(&self) -> bool {
        matches!(self, ContainmentVerdict::Contained)
    }

    /// The counterexample, when containment fails.
    pub fn witness(&self) -> Option<&ContainmentWitness> {
        match self {
            ContainmentVerdict::Contained => None,
            ContainmentVerdict::NotContained(w) => Some(w),
        }
    }
}

fn require_same_schemas(
    what: &str,
    (s1, t1): (&Schema, &Schema),
    (s2, t2): (&Schema, &Schema),
) -> Result<(), CoreError> {
    if !s1.same_as(s2) || !t1.same_as(t2) {
        return Err(CoreError::Precondition(format!(
            "{what} containment requires both mappings over the same schema pair"
        )));
    }
    Ok(())
}

fn check_budget(budget: &Budget, stats: &ExecStats) -> Result<(), CoreError> {
    if !budget.is_unlimited() {
        if let Err(e) = budget.check() {
            return Err(CoreError::resource(e, stats.clone(), CorePartial::None));
        }
    }
    Ok(())
}

/// Does `outer` contain `inner` — is `Inst(inner) ⊆ Inst(outer)`?
///
/// Both mappings must be over the same source and target schemas
/// ([`CoreError::Precondition`] otherwise).
///
/// ```
/// use qi_core::{mapping_contains, SchemaMapping};
///
/// let weak = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)"]).unwrap();
/// let union = SchemaMapping::parse("P/1 Q/1", "S/1",
///     &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
/// // Union constrains more pairs, so its instance set is smaller.
/// assert!(mapping_contains(&weak, &union).unwrap().holds());
/// assert!(!mapping_contains(&union, &weak).unwrap().holds());
/// ```
pub fn mapping_contains(
    outer: &SchemaMapping,
    inner: &SchemaMapping,
) -> Result<ContainmentVerdict, CoreError> {
    Ok(mapping_contains_with_stats(outer, inner, &Budget::unlimited())?.0)
}

/// [`mapping_contains`] under a cooperative [`Budget`], returning the
/// aggregated executor counters of every chase the check ran. The budget
/// is checked before each outer dependency and inherited by its chase.
pub fn mapping_contains_with_stats(
    outer: &SchemaMapping,
    inner: &SchemaMapping,
    budget: &Budget,
) -> Result<(ContainmentVerdict, ExecStats), CoreError> {
    require_same_schemas(
        "mapping",
        (&outer.source, &outer.target),
        (&inner.source, &inner.target),
    )?;
    let mut stats = ExecStats::default();
    for sigma in &outer.tgds {
        check_budget(budget, &stats)?;
        let mut frozen = FrozenVars::default();
        let premise = canonical_instance(&inner.source, &sigma.body, &mut frozen);
        let outcome = chase_with_options(
            &inner.tgds,
            &premise,
            &inner.target,
            ChaseOptions {
                parallelism: inner.parallelism,
                budget: budget.clone(),
            },
        )?;
        stats.absorb(&outcome.stats);
        if !satisfies_tgd(&premise, &outcome.instance, sigma) {
            return Ok((
                ContainmentVerdict::NotContained(Box::new(ContainmentWitness {
                    violated: sigma.to_string(),
                    premise,
                    solution: outcome.instance,
                })),
                stats,
            ));
        }
    }
    Ok((ContainmentVerdict::Contained, stats))
}

/// Are `a` and `b` logically equivalent — `Inst(a) = Inst(b)`?
pub fn mapping_equivalent(a: &SchemaMapping, b: &SchemaMapping) -> Result<bool, CoreError> {
    Ok(mapping_contains(a, b)?.holds() && mapping_contains(b, a)?.holds())
}

/// One equality type of a dependency's premise variables: the value each
/// equivalence class takes in the canonical premise.
struct EqualityType {
    /// Value of each partition block, in block order.
    values: Vec<Value>,
}

/// Enumerate the equality types of `dep`'s premise: all partitions of
/// its premise variables consistent with the inequality guards, each
/// unguarded block instantiated both ways (constant and labeled null).
/// Guarded blocks are always constants — `const(x)` forces it.
fn equality_types(dep: &DisjTgd, vars: &[Var]) -> Vec<(Vec<usize>, EqualityType)> {
    let pos = |v: &Var| -> usize {
        vars.iter()
            .position(|w| w == v)
            .expect("guard variables occur in the premise (validated)")
    };
    let mut out = Vec::new();
    for partition in restricted_growth_strings(vars.len()) {
        // A partition merging two vars required distinct is inconsistent.
        if dep
            .neq
            .iter()
            .any(|(a, b)| partition.block_of(pos(a)) == partition.block_of(pos(b)))
        {
            continue;
        }
        let n_blocks = partition.num_blocks();
        let guarded: Vec<bool> = (0..n_blocks)
            .map(|b| dep.constant.iter().any(|v| partition.block_of(pos(v)) == b))
            .collect();
        let unguarded: Vec<usize> = (0..n_blocks).filter(|&b| !guarded[b]).collect();
        let block_of: Vec<usize> = (0..vars.len()).map(|i| partition.block_of(i)).collect();
        // Each unguarded block is either a fresh constant or a fresh
        // null; enumerate every combination.
        for mask in 0..(1u64 << unguarded.len()) {
            let values: Vec<Value> = (0..n_blocks)
                .map(|b| {
                    let as_null = unguarded
                        .iter()
                        .position(|&u| u == b)
                        .is_some_and(|k| mask & (1 << k) != 0);
                    if as_null {
                        Value::null(b as u64)
                    } else {
                        Value::constant(&format!("e{b}"))
                    }
                })
                .collect();
            out.push((block_of.clone(), EqualityType { values }));
        }
    }
    out
}

/// Does `outer` contain `inner` as reverse (target-to-source) mappings —
/// is `Inst(inner) ⊆ Inst(outer)`?
///
/// Preconditions ([`CoreError::Precondition`]): the mappings share the
/// same schema pair, and `outer` is guard-complete
/// ([`crate::exchange::guard_complete`]) — its premises may then match
/// nulls only at positions the equality-type enumeration covers. The
/// inner mapping may use the full disjunctive language.
pub fn reverse_contains(
    outer: &ReverseMapping,
    inner: &ReverseMapping,
) -> Result<ContainmentVerdict, CoreError> {
    Ok(reverse_contains_with_stats(outer, inner, &Budget::unlimited())?.0)
}

/// [`reverse_contains`] under a cooperative [`Budget`], with the
/// aggregated counters of every disjunctive chase the check ran. The
/// budget is checked once per equality type and threaded into each
/// chase; the enumeration per outer dependency is
/// `Σ_δ 2^(unguarded classes of δ)` over the Bell-many partitions `δ`,
/// so the budget is the intended way to bound pathological inputs.
pub fn reverse_contains_with_stats(
    outer: &ReverseMapping,
    inner: &ReverseMapping,
    budget: &Budget,
) -> Result<(ContainmentVerdict, ExecStats), CoreError> {
    require_same_schemas(
        "reverse-mapping",
        (&outer.from, &outer.to),
        (&inner.from, &inner.to),
    )?;
    if !guard_complete(outer) {
        return Err(CoreError::Precondition(
            "reverse containment requires a guard-complete outer mapping".into(),
        ));
    }
    let mut stats = ExecStats::default();
    for tau in &outer.deps {
        let vars = tau.body_vars();
        for (block_of, ty) in equality_types(tau, &vars) {
            check_budget(budget, &stats)?;
            let mut premise = Instance::new(inner.from.clone());
            for atom in &tau.body {
                let args: Vec<Value> = atom
                    .args
                    .iter()
                    .map(|v| {
                        let i = vars.iter().position(|w| w == v).expect("premise var");
                        ty.values[block_of[i]]
                    })
                    .collect();
                premise
                    .insert(atom.rel, args)
                    .expect("atom arity validated at dependency construction");
            }
            let outcome = disjunctive_chase_with_stats(
                &inner.deps,
                &premise,
                &Instance::new(inner.to.clone()),
                DisjChaseOptions {
                    budget: budget.clone(),
                    ..Default::default()
                },
            )?;
            stats.absorb(&outcome.stats);
            for leaf in &outcome.leaves {
                if !satisfies_disj_tgd(&premise, leaf, tau) {
                    return Ok((
                        ContainmentVerdict::NotContained(Box::new(ContainmentWitness {
                            violated: tau.to_string(),
                            premise,
                            solution: leaf.clone(),
                        })),
                        stats,
                    ));
                }
            }
        }
    }
    Ok((ContainmentVerdict::Contained, stats))
}

/// Are the reverse mappings `a` and `b` logically equivalent? Both must
/// be guard-complete (each direction's outer side requires it).
pub fn reverse_equivalent(a: &ReverseMapping, b: &ReverseMapping) -> Result<bool, CoreError> {
    Ok(reverse_contains(a, b)?.holds() && reverse_contains(b, a)?.holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_chase::implies_tgd;

    #[test]
    fn forward_containment_basics() {
        let weak = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)"]).unwrap();
        let union =
            SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        assert!(mapping_contains(&weak, &union).unwrap().holds());
        let v = mapping_contains(&union, &weak).unwrap();
        let w = v.witness().expect("union ⋢ weak");
        // The witness pair satisfies the inner mapping and violates the
        // named outer dependency.
        assert!(qi_chase::satisfies_all_tgds(
            &w.premise,
            &w.solution,
            &weak.tgds
        ));
        assert_eq!(w.violated, "Q(x) -> S(x)");
        assert!(!mapping_equivalent(&weak, &union).unwrap());
        assert!(mapping_equivalent(&weak, &weak).unwrap());
    }

    #[test]
    fn forward_containment_agrees_with_implies_tgd() {
        let outer = SchemaMapping::parse("P/2", "Q/2 R/1", &["P(x,y) -> Q(x,y)", "P(x,x) -> R(x)"])
            .unwrap();
        let inner = SchemaMapping::parse(
            "P/2",
            "Q/2 R/1",
            &["P(x,y) -> Q(x,y) & R(x)", "P(x,y) -> R(y)"],
        )
        .unwrap();
        let verdict = mapping_contains(&outer, &inner).unwrap();
        let by_implication = outer
            .tgds
            .iter()
            .all(|s| implies_tgd(&inner.tgds, s).unwrap());
        assert_eq!(verdict.holds(), by_implication);
    }

    #[test]
    fn existential_heads_are_handled() {
        let strong = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> Q(x,x)"]).unwrap();
        let weakened = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
        // Q(x,x) implies ∃y Q(x,y) but not vice versa.
        assert!(mapping_contains(&weakened, &strong).unwrap().holds());
        assert!(!mapping_contains(&strong, &weakened).unwrap().holds());
    }

    #[test]
    fn schema_mismatch_is_a_precondition_error() {
        let a = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
        let b = SchemaMapping::parse("Z/1", "Q/1", &["Z(x) -> Q(x)"]).unwrap();
        assert!(matches!(
            mapping_contains(&a, &b),
            Err(CoreError::Precondition(_))
        ));
    }

    #[test]
    fn reverse_containment_on_guarded_deps() {
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        // S(x) → P(x) ∨ Q(x) contains S(x) → P(x) (fewer choices ⇒
        // smaller instance set), not vice versa.
        let disj = ReverseMapping::parse(&m, &["S(x) & const(x) -> P(x) | Q(x)"]).unwrap();
        let p_only = ReverseMapping::parse(&m, &["S(x) & const(x) -> P(x)"]).unwrap();
        assert!(reverse_contains(&disj, &p_only).unwrap().holds());
        let v = reverse_contains(&p_only, &disj).unwrap();
        let w = v.witness().expect("P-only ⋢ disjunctive");
        assert!(qi_chase::satisfies_all_disj_tgds(
            &w.premise,
            &w.solution,
            &disj.deps
        ));
        assert!(!qi_chase::satisfies_disj_tgd(
            &w.premise,
            &w.solution,
            &p_only.deps[0]
        ));
        assert!(reverse_equivalent(&disj, &disj).unwrap());
        assert!(!reverse_equivalent(&disj, &p_only).unwrap());
    }

    #[test]
    fn null_equality_types_separate_guarded_from_unguarded() {
        let m = SchemaMapping::parse("P/1", "S/1", &["P(x) -> S(x)"]).unwrap();
        // Outer fires on *any* S-value; inner only on constants. On the
        // premise S(N) (a null) the inner mapping derives nothing, so
        // the unguarded outer dependency is not contained.
        let unguarded = ReverseMapping::parse(&m, &["S(x) -> exists z . P(z)"]).unwrap();
        let guarded = ReverseMapping::parse(&m, &["S(x) & const(x) -> P(x)"]).unwrap();
        let v = reverse_contains(&unguarded, &guarded).unwrap();
        let w = v.witness().expect("null premise separates the two");
        assert!(!w.premise.is_ground(), "the separating premise is a null");
        // The other direction fails on a *ground* premise: the inner
        // ∃z P(z) leaf carries a null where the guarded dependency
        // demands the premise constant back.
        let v = reverse_contains(&guarded, &unguarded).unwrap();
        assert!(v.witness().is_some_and(|w| w.premise.is_ground()));
    }

    #[test]
    fn reverse_containment_preconditions() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        // Inequality among unguarded variables ⇒ not guard-complete.
        let bad = ReverseMapping::parse(&m, &["Q(x,y) & x != y -> P(x,y)"]).unwrap();
        let ok = ReverseMapping::parse(&m, &["Q(x,y) & const(x) & const(y) -> P(x,y)"]).unwrap();
        assert!(matches!(
            reverse_contains(&bad, &ok),
            Err(CoreError::Precondition(_))
        ));
        // Inner side may be unguarded.
        assert!(reverse_contains(&ok, &bad).is_ok());
    }

    #[test]
    fn budget_trips_surface_as_structured_errors() {
        let outer = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let inner = outer.clone();
        let tight = Budget::unlimited().with_max_tasks(1);
        let r = mapping_contains_with_stats(&outer, &inner, &tight);
        match r {
            Ok((v, _)) => assert!(v.holds()),
            Err(CoreError::Resource(_)) | Err(CoreError::Chase(_)) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}

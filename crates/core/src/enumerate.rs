//! Exhaustive enumeration of ground instances over a finite constant pool.
//!
//! The paper's global notions (the subset property, unique solutions,
//! Definition 3.8) quantify over *all* ground instances; their
//! decidability is left open (§7). The bounded checkers in this crate
//! quantify instead over the finite universes produced here: all ground
//! instances whose values come from a given constant pool, capped by a
//! total fact budget.

use qi_schema::{Instance, Schema, Value};

/// All tuples of length `arity` over `pool`, in lexicographic order.
fn all_tuples(pool: &[Value], arity: usize) -> Vec<Vec<Value>> {
    let mut out = vec![Vec::new()];
    for _ in 0..arity {
        let mut next = Vec::with_capacity(out.len() * pool.len());
        for t in &out {
            for &v in pool {
                let mut t2 = t.clone();
                t2.push(v);
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

/// Enumerate every ground instance over `schema` whose values come from
/// `consts`, with at most `max_facts` facts in total. The empty instance
/// is included. Order is deterministic.
///
/// The count grows as `C(Σ_R |pool|^arity(R), ≤ max_facts)`; keep pools
/// tiny (2–3 constants) and budgets small (≤ 4 facts) — which is exactly
/// the regime where the paper's own counterexamples live.
pub fn ground_instances(schema: &Schema, consts: &[&str], max_facts: usize) -> Vec<Instance> {
    let pool: Vec<Value> = consts.iter().map(|c| Value::constant(c)).collect();
    // The global fact universe: (rel, tuple) pairs.
    let mut universe: Vec<(qi_schema::RelId, Vec<Value>)> = Vec::new();
    for rel in schema.rel_ids() {
        for t in all_tuples(&pool, schema.arity(rel)) {
            universe.push((rel, t));
        }
    }
    let mut out = Vec::new();
    // Enumerate subsets of the universe of size ≤ max_facts by a
    // combinations walk (choose increasing indexes).
    let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
    while let Some((start, chosen)) = stack.pop() {
        let mut inst = Instance::new(schema.clone());
        for &i in &chosen {
            let (rel, t) = &universe[i];
            inst.insert(*rel, t.clone()).expect("tuple arity matches");
        }
        out.push(inst);
        if chosen.len() < max_facts {
            // Push in reverse so enumeration is lexicographic.
            for i in (start..universe.len()).rev() {
                let mut c = chosen.clone();
                c.push(i);
                stack.push((i + 1, c));
            }
        }
    }
    out
}

/// The number of instances [`ground_instances`] would return, without
/// materializing them (used by benches to size workloads).
pub fn ground_instance_count(schema: &Schema, n_consts: usize, max_facts: usize) -> u128 {
    let universe: usize = schema
        .rel_ids()
        .map(|r| n_consts.pow(schema.arity(r) as u32))
        .sum();
    let mut total: u128 = 0;
    let mut binom: u128 = 1; // C(universe, 0)
    for k in 0..=max_facts.min(universe) {
        if k > 0 {
            binom = binom * (universe - k + 1) as u128 / k as u128;
        }
        total += binom;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_enumeration() {
        let s = Schema::parse("P/1 Q/1").unwrap();
        // Universe: 2 constants × 2 unary relations = 4 possible facts.
        let all = ground_instances(&s, &["a", "b"], 4);
        assert_eq!(all.len(), 16); // all subsets
        assert_eq!(ground_instance_count(&s, 2, 4), 16);
        let capped = ground_instances(&s, &["a", "b"], 1);
        assert_eq!(capped.len(), 5); // empty + 4 singletons
        assert_eq!(ground_instance_count(&s, 2, 1), 5);
    }

    #[test]
    fn instances_are_distinct_and_ground() {
        let s = Schema::parse("P/2").unwrap();
        let all = ground_instances(&s, &["a", "b"], 2);
        for i in &all {
            assert!(i.is_ground());
        }
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11
        assert_eq!(all.len(), 11);
    }

    #[test]
    fn empty_pool_yields_only_empty_instance() {
        let s = Schema::parse("P/1").unwrap();
        let all = ground_instances(&s, &[], 3);
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }
}

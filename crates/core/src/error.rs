//! Errors of the core algorithms.

use qi_analyze::Diagnostic;
use qi_chase::ChaseError;
use qi_lang::LangError;
use qi_schema::SchemaError;
use std::fmt;

/// Errors raised by the quasi-inverse machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying relational error.
    Schema(SchemaError),
    /// Underlying dependency-language error.
    Lang(LangError),
    /// Underlying chase error.
    Chase(ChaseError),
    /// The input violates a precondition of the algorithm.
    Precondition(String),
    /// The input was rejected by the static analyzer: the carried
    /// diagnostic names the lint code and the exact offending part
    /// (e.g. QI012/QI013 from the fragment classification).
    Rejected(Diagnostic),
    /// A search exceeded its configured budget.
    Budget(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Schema(e) => write!(f, "{e}"),
            CoreError::Lang(e) => write!(f, "{e}"),
            CoreError::Chase(e) => write!(f, "{e}"),
            CoreError::Precondition(m) => write!(f, "precondition violated: {m}"),
            CoreError::Rejected(d) => write!(f, "rejected [{}]: {}", d.code, d.message),
            CoreError::Budget(m) => write!(f, "budget exceeded: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SchemaError> for CoreError {
    fn from(e: SchemaError) -> Self {
        CoreError::Schema(e)
    }
}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<ChaseError> for CoreError {
    fn from(e: ChaseError) -> Self {
        CoreError::Chase(e)
    }
}

impl From<Diagnostic> for CoreError {
    fn from(d: Diagnostic) -> Self {
        CoreError::Rejected(d)
    }
}

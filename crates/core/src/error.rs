//! Errors of the core algorithms.

use crate::mingen::Generator;
use qi_analyze::Diagnostic;
use qi_chase::{ChaseError, ChasePartial};
use qi_exec::{Exceeded, ExecStats};
use qi_lang::LangError;
use qi_schema::{Instance, SchemaError};
use std::fmt;

/// What a budget-interrupted core algorithm managed to build before the
/// budget tripped. Every variant is *sound* — e.g. each carried
/// generator passed the chase test of Definition 4.2 — it is only
/// *completeness* that the interruption forfeits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CorePartial {
    /// Nothing usable was built.
    #[default]
    None,
    /// MinGen's generators confirmed before the interruption (the final
    /// subsumption sweep may not have run, so some may be non-minimal —
    /// but each *is* a generator).
    Generators(Vec<Generator>),
    /// A chase instance as of the last committed step.
    Instance(Instance),
    /// The disjunctive chase's settled leaves so far.
    Leaves(Vec<Instance>),
}

impl From<ChasePartial> for CorePartial {
    fn from(p: ChasePartial) -> Self {
        match p {
            ChasePartial::None => CorePartial::None,
            ChasePartial::Instance(i) => CorePartial::Instance(i),
            ChasePartial::Leaves(ls) => CorePartial::Leaves(ls),
        }
    }
}

/// Structured report of a budget-interrupted core algorithm: which limit
/// tripped, the executor counters so far, and the sound partial
/// artifact. Raised through [`CoreError::Resource`] — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreResourceError {
    /// The limit that tripped (deadline, tasks, facts, or cancellation).
    pub exceeded: Exceeded,
    /// Executor counters accumulated before the interruption.
    pub stats: ExecStats,
    /// Sound partial artifact built before the interruption.
    pub partial: CorePartial,
}

impl fmt::Display for CoreResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource budget exhausted ({}) after {} executor task(s)",
            self.exceeded, self.stats.tasks
        )?;
        match &self.partial {
            CorePartial::None => Ok(()),
            CorePartial::Generators(g) => write!(f, "; {} generator(s) confirmed", g.len()),
            CorePartial::Instance(i) => {
                write!(f, "; partial instance has {} fact(s)", i.fact_count())
            }
            CorePartial::Leaves(ls) => write!(f, "; {} settled leaf/leaves", ls.len()),
        }
    }
}

/// Errors raised by the quasi-inverse machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying relational error.
    Schema(SchemaError),
    /// Underlying dependency-language error.
    Lang(LangError),
    /// Underlying chase error.
    Chase(ChaseError),
    /// The input violates a precondition of the algorithm.
    Precondition(String),
    /// The input was rejected by the static analyzer: the carried
    /// diagnostic names the lint code and the exact offending part
    /// (e.g. QI012/QI013 from the fragment classification).
    Rejected(Diagnostic),
    /// A search exceeded its configured budget.
    Budget(String),
    /// A cooperative resource budget (deadline, task cap, fact cap, or
    /// cancellation) tripped; carries the sound partial result.
    Resource(Box<CoreResourceError>),
}

impl CoreError {
    /// Wrap a [`CoreResourceError`].
    pub fn resource(exceeded: Exceeded, stats: ExecStats, partial: CorePartial) -> Self {
        CoreError::Resource(Box::new(CoreResourceError {
            exceeded,
            stats,
            partial,
        }))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Schema(e) => write!(f, "{e}"),
            CoreError::Lang(e) => write!(f, "{e}"),
            CoreError::Chase(e) => write!(f, "{e}"),
            CoreError::Precondition(m) => write!(f, "precondition violated: {m}"),
            CoreError::Rejected(d) => write!(f, "rejected [{}]: {}", d.code, d.message),
            CoreError::Budget(m) => write!(f, "budget exceeded: {m}"),
            CoreError::Resource(r) => r.fmt(f),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SchemaError> for CoreError {
    fn from(e: SchemaError) -> Self {
        CoreError::Schema(e)
    }
}

impl From<LangError> for CoreError {
    fn from(e: LangError) -> Self {
        CoreError::Lang(e)
    }
}

impl From<ChaseError> for CoreError {
    fn from(e: ChaseError) -> Self {
        match e {
            // A chase-level resource interruption stays a structured
            // resource error at the core level, partial included.
            ChaseError::Resource(r) => CoreError::resource(r.exceeded, r.stats, r.partial.into()),
            other => CoreError::Chase(other),
        }
    }
}

impl From<Diagnostic> for CoreError {
    fn from(d: Diagnostic) -> Self {
        CoreError::Rejected(d)
    }
}

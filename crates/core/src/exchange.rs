//! Quasi-inverses in data exchange (§6).
//!
//! Given `M = (S,T,Σ)` and a reverse mapping `M' = (T,S,Σ')`, §6 studies
//! the bidirectional exchange of Figure 1:
//!
//! ```text
//!   I ──chase Σ──▶ U ──disjunctive chase Σ'──▶ V = {V₁,…,V_m}
//!                                              │ chase Σ each
//!                                              ▼
//!                                        U' = {U'₁,…,U'_m}
//! ```
//!
//! * `M'` is **sound** w.r.t. `M` when some member of `U'` maps
//!   homomorphically *into* `U` (no invented information; Def 6.5(1));
//! * `M'` is **faithful** when some member of `U'` is homomorphically
//!   *equivalent* to `U` (nothing lost either; Def 6.5(2)).
//!
//! Theorem 6.7: every quasi-inverse specified by disjunctive tgds with
//! constants and inequalities among constants is sound. Theorem 6.8: the
//! QuasiInverse algorithm's output is faithful.
//!
//! This module also provides the exact composition-membership test that
//! Proposition 6.6 ("universality of the chase of the chase") supports:
//! `(I, K) ∈ Inst(M ∘ M')` iff some leaf `V` of the disjunctive chase of
//! `chase_Σ(I)` maps homomorphically into `K` — valid when `Σ'` is
//! *guard-complete*: inequalities are among constants and every variable
//! shared between a premise and a conclusion carries a `Constant` guard
//! (both hold for the outputs of the QuasiInverse and Inverse
//! algorithms). The forward direction is Proposition 6.6; the backward
//! direction takes `J = chase_Σ(I)` and pushes the leaf's witnesses
//! through the homomorphism, which guard-completeness makes legitimate
//! (the shared values are constants, hence fixed).

use crate::error::CoreError;
use crate::mapping::{ReverseMapping, SchemaMapping};
use qi_chase::{disjunctive_chase, DisjChaseOptions};
use qi_schema::{has_hom, hom_equivalent, Instance};
use std::collections::BTreeSet;

/// The artifacts of one bidirectional exchange (Figure 1).
#[derive(Clone, Debug)]
pub struct RoundTrip {
    /// `U = chase_Σ(I)`.
    pub u: Instance,
    /// `V = chase_Σ'(U)` — the recovered source instances (chase leaves).
    pub recovered: Vec<Instance>,
    /// `U' = chase_Σ(V)` member-wise.
    pub rechased: Vec<Instance>,
    /// Index into `rechased` of a member mapping into `U`, if any
    /// (soundness witness, Definition 6.5(1)).
    pub sound_witness: Option<usize>,
    /// Index into `rechased` of a member hom-equivalent to `U`, if any
    /// (faithfulness witness, Definition 6.5(2)).
    pub faithful_witness: Option<usize>,
}

impl RoundTrip {
    /// Did the reverse mapping behave soundly on this instance?
    pub fn is_sound(&self) -> bool {
        self.sound_witness.is_some()
    }

    /// Did the reverse mapping behave faithfully on this instance?
    pub fn is_faithful(&self) -> bool {
        self.faithful_witness.is_some()
    }

    /// The recovered source instance whose re-chase is hom-equivalent to
    /// `U` — the "data-exchange equivalent" reconstruction of the
    /// original source the paper's introduction promises.
    pub fn recovered_equivalent(&self) -> Option<&Instance> {
        self.faithful_witness.map(|i| &self.recovered[i])
    }
}

/// Perform the full bidirectional exchange of §6 for ground instance `i`.
pub fn round_trip(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    i: &Instance,
    options: DisjChaseOptions,
) -> Result<RoundTrip, CoreError> {
    let u = m.chase(i)?;
    let empty = Instance::new(rev.to.clone());
    let recovered = disjunctive_chase(&rev.deps, &u, &empty, options)?;
    let rechased: Result<Vec<Instance>, _> = recovered.iter().map(|v| m.chase(v)).collect();
    let rechased = rechased?;
    let sound_witness = rechased.iter().position(|up| has_hom(up, &u));
    let faithful_witness = rechased.iter().position(|up| hom_equivalent(up, &u));
    Ok(RoundTrip {
        u,
        recovered,
        rechased,
        sound_witness,
        faithful_witness,
    })
}

/// Is `rev` *guard-complete*: inequalities only among constants, and
/// every variable occurring in both a premise and some conclusion carries
/// a `Constant` guard? Outputs of [`crate::quasi_inverse()`] and
/// [`crate::inverse()`] always are.
pub fn guard_complete(rev: &ReverseMapping) -> bool {
    if !rev.inequalities_among_constants() {
        return false;
    }
    rev.deps.iter().all(|d| {
        let body_vars = d.body_vars();
        let shared: BTreeSet<_> = d
            .disjuncts
            .iter()
            .flat_map(|dj| dj.atoms.iter().flat_map(|a| a.args.iter()))
            .filter(|v| body_vars.contains(v))
            .collect();
        shared.iter().all(|v| d.constant.contains(v))
    })
}

/// Exact membership test `(i, k) ∈ Inst(M ∘ M')` for guard-complete
/// reverse mappings, via Proposition 6.6: some leaf of
/// `chase_Σ'(chase_Σ(i))` maps homomorphically into `k`.
///
/// Errors with [`CoreError::Precondition`] when `rev` is not
/// guard-complete (the test would be sound but not complete).
pub fn composition_contains(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    i: &Instance,
    k: &Instance,
) -> Result<bool, CoreError> {
    if !guard_complete(rev) {
        return Err(CoreError::Precondition(
            "composition membership requires a guard-complete reverse mapping".into(),
        ));
    }
    let leaves = recovery_leaves(m, rev, i, DisjChaseOptions::default())?;
    Ok(leaves.iter().any(|v| has_hom(v, k)))
}

/// The leaves `chase_Σ'(chase_Σ(i))` (cached by callers that probe many
/// `k` against one `i`).
pub fn recovery_leaves(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    i: &Instance,
    options: DisjChaseOptions,
) -> Result<Vec<Instance>, CoreError> {
    let u = m.chase(i)?;
    let empty = Instance::new(rev.to.clone());
    Ok(disjunctive_chase(&rev.deps, &u, &empty, options)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quasi_inverse::{quasi_inverse, QuasiInverseOptions};

    fn decomposition() -> SchemaMapping {
        SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap()
    }

    #[test]
    fn figure_1_m_prime_is_faithful() {
        // Σ' = { Q(x,y) ∧ R(y,z) → P(x,y,z) } on I = {P(a,b,c), P(a',b,c')}.
        let m = decomposition();
        let rev = ReverseMapping::parse(&m, &["Q(x,y) & R(y,z) -> P(x,y,z)"]).unwrap();
        let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
        let rt = round_trip(&m, &rev, &i, DisjChaseOptions::default()).unwrap();
        assert_eq!(rt.recovered.len(), 1);
        // V1 = the four-fact instance of Figure 1.
        assert_eq!(
            rt.recovered[0],
            Instance::parse(&m.source, "P(a,b,c) P(a,b,c2) P(a2,b,c) P(a2,b,c2)").unwrap()
        );
        // chase(V1) is *identical* to U (the paper's observation).
        assert_eq!(rt.rechased[0], rt.u);
        assert!(rt.is_sound());
        assert!(rt.is_faithful());
    }

    #[test]
    fn figure_1_m_double_prime_is_faithful() {
        // Σ'' = { Q(x,y) → ∃z P(x,y,z),  R(y,z) → ∃x P(x,y,z) }.
        let m = decomposition();
        let rev = ReverseMapping::parse(
            &m,
            &[
                "Q(x,y) -> exists z . P(x,y,z)",
                "R(y,z) -> exists x . P(x,y,z)",
            ],
        )
        .unwrap();
        let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
        let rt = round_trip(&m, &rev, &i, DisjChaseOptions::default()).unwrap();
        assert_eq!(rt.recovered.len(), 1);
        // V2 has four facts with nulls; U2 = chase(V2) is hom-equivalent
        // (not equal) to U.
        assert_eq!(rt.recovered[0].fact_count(), 4);
        assert!(!rt.recovered[0].is_ground());
        assert_ne!(rt.rechased[0], rt.u);
        assert!(hom_equivalent(&rt.rechased[0], &rt.u));
        assert!(rt.is_sound() && rt.is_faithful());
    }

    #[test]
    fn algorithm_output_round_trips_faithfully() {
        let m = decomposition();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        for text in [
            "P(a,b,c)",
            "P(a,b,c) P(a2,b,c2)",
            "P(a,a,a)",
            "P(a,b,b) P(b,b,a)",
        ] {
            let i = Instance::parse(&m.source, text).unwrap();
            let rt = round_trip(&m, &rev, &i, DisjChaseOptions::default()).unwrap();
            assert!(rt.is_sound(), "unsound on {text}");
            assert!(rt.is_faithful(), "unfaithful on {text}");
        }
    }

    #[test]
    fn unsound_reverse_mapping_detected() {
        // A bogus reverse mapping inventing unrelated facts.
        let m = SchemaMapping::parse("P/1 W/1", "S/1", &["P(x) -> S(x)"]).unwrap();
        let rev = ReverseMapping::parse(&m, &["S(x) -> W(x)"]).unwrap();
        let i = Instance::parse(&m.source, "P(a)").unwrap();
        let rt = round_trip(&m, &rev, &i, DisjChaseOptions::default()).unwrap();
        // Recovered V = {W(a)}; chase(V) = ∅ which maps into U:
        // still sound (no invented target facts) but NOT faithful.
        assert!(rt.is_sound());
        assert!(!rt.is_faithful());
    }

    #[test]
    fn guard_completeness_classification() {
        let m = decomposition();
        let guarded = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        assert!(guard_complete(&guarded));
        let unguarded = ReverseMapping::parse(&m, &["Q(x,y) & R(y,z) -> P(x,y,z)"]).unwrap();
        assert!(!guard_complete(&unguarded));
        let i = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        assert!(composition_contains(&m, &unguarded, &i, &i).is_err());
    }

    #[test]
    fn composition_membership_identity_shape() {
        let m = decomposition();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        let i = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        // (I, I) is always in Inst(M ∘ M') for a faithful reverse mapping
        // on this mapping: the recovered instance is I itself here.
        assert!(composition_contains(&m, &rev, &i, &i).unwrap());
        // A completely unrelated K is not reachable.
        let k = Instance::parse(&m.source, "P(q,q,q)").unwrap();
        assert!(!composition_contains(&m, &rev, &i, &k).unwrap());
    }
}

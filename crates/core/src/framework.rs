//! The unifying framework of §3: `(~1,~2)`-inverses, the subset property,
//! and the unique-solutions property.
//!
//! Definition 3.4: `M` has the *`(~1,~2)`-subset property* if for every
//! pair `(I₁, I₂)` of ground instances with `Sol(M,I₂) ⊆ Sol(M,I₁)` there
//! is a pair `(I₁', I₂')` with `I₁ ~1 I₁'`, `I₂ ~2 I₂'` and `I₁' ⊆ I₂'`.
//! Theorem 3.5: the property holds iff `M` has a `(~1,~2)`-inverse; with
//! `(~1,~2) = (=,=)` this characterizes inverses (Corollary 3.6), with
//! `(~M,~M)` quasi-inverses.
//!
//! The property quantifies over all ground instances; its decidability is
//! open (§7). [`subset_property_bounded`] quantifies over a finite
//! universe instead: a reported failure means *no witness exists inside
//! the universe* — a counterexample candidate, conclusive only when a
//! separate argument (like the paper's proofs for Proposition 3.12)
//! bounds where witnesses could live. A reported success on a universe
//! closed under the relevant constructions is strong evidence, and for
//! the `(=,~M)` union-witness variant of Proposition 3.11
//! ([`union_witness_subset_property`]) the witness is constructive and
//! its validity is checked exactly.

use crate::error::CoreError;
use crate::mapping::SchemaMapping;
use qi_schema::{hom_equivalent, HomCache, Instance};

/// The equivalence relations on ground instances that parameterize the
/// framework (both refinements of `~M`, as Definition 3.3 requires).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relation {
    /// Equality of instances — yields inverses (Corollary 3.6).
    Equality,
    /// `~M` — equal solution spaces — yields quasi-inverses (Def. 3.8).
    SolutionEquiv,
}

/// Precomputed per-universe data: chases and `~M`-class ids.
pub(crate) struct UniverseIndex {
    pub chases: Vec<Instance>,
    /// `class[i]` = index of the representative of `universe[i]`'s
    /// `~M`-class.
    pub class: Vec<usize>,
    /// Hom cache scoped to this universe's chases: class construction
    /// already answered many of the `has_hom` queries that
    /// [`UniverseIndex::sol_subset`] re-asks, and symmetric universes
    /// chase to few distinct fingerprints.
    cache: HomCache,
}

pub(crate) fn index_universe(
    m: &SchemaMapping,
    universe: &[Instance],
) -> Result<UniverseIndex, CoreError> {
    let chases: Result<Vec<Instance>, _> = universe.iter().map(|i| m.chase(i)).collect();
    let chases = chases?;
    let cache = HomCache::new();
    let mut class: Vec<usize> = Vec::with_capacity(universe.len());
    let mut reps: Vec<usize> = Vec::new();
    for (i, c) in chases.iter().enumerate() {
        let found = reps
            .iter()
            .copied()
            .find(|&r| cache.hom_equivalent(&chases[r], c));
        match found {
            Some(r) => class.push(r),
            None => {
                reps.push(i);
                class.push(i);
            }
        }
    }
    Ok(UniverseIndex {
        chases,
        class,
        cache,
    })
}

impl UniverseIndex {
    /// `Sol(M, universe[inner]) ⊆ Sol(M, universe[outer])`.
    pub(crate) fn sol_subset(&self, inner: usize, outer: usize) -> bool {
        self.cache.has_hom(&self.chases[outer], &self.chases[inner])
    }
}

/// Definition 3.2, bounded: the relation `D[~1,~2] = ~1 ∘ D ∘ ~2` over a
/// finite universe of ground instances.
///
/// Given a binary relation `d` on instances (by index into `universe`),
/// returns the boolean matrix of `D[~1,~2]`: `(i, j)` is related iff
/// there are universe witnesses `i' ~1 i` and `j' ~2 j` with
/// `(i', j') ∈ D`. This is the bracket the `(~1,~2)`-inverse definition
/// (3.3) applies to both `Inst(Id)` and `Inst(M ∘ M')`.
pub fn relate_mod(
    m: &SchemaMapping,
    rel1: Relation,
    rel2: Relation,
    universe: &[Instance],
    d: impl Fn(usize, usize) -> bool,
) -> Result<Vec<Vec<bool>>, CoreError> {
    let idx = index_universe(m, universe)?;
    let n = universe.len();
    let related = |rel: Relation, a: usize, b: usize| -> bool {
        match rel {
            Relation::Equality => a == b || universe[a] == universe[b],
            Relation::SolutionEquiv => idx.class[a] == idx.class[b],
        }
    };
    let mut out = vec![vec![false; n]; n];
    // Compute D once, then close under the equivalences.
    let mut base = vec![vec![false; n]; n];
    for (i, row) in base.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = d(i, j);
        }
    }
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (0..n).any(|w1| {
                related(rel1, i, w1) && (0..n).any(|w2| related(rel2, j, w2) && base[w1][w2])
            });
        }
    }
    Ok(out)
}

/// Result of a bounded subset-property check.
#[derive(Clone, Debug)]
pub struct SubsetPropertyReport {
    /// No pair in the universe lacked a witness in the universe.
    pub holds: bool,
    /// Pairs `(i, j)` of universe indexes with `Sol(I_j) ⊆ Sol(I_i)` for
    /// which no witness pair exists inside the universe.
    pub failures: Vec<(usize, usize)>,
    /// Number of `Sol ⊆ Sol` pairs examined.
    pub checked_pairs: usize,
}

/// Check the `(~1,~2)`-subset property of Definition 3.4 over a finite
/// `universe` of ground instances (both the quantified pair and the
/// witness pair range over `universe`).
pub fn subset_property_bounded(
    m: &SchemaMapping,
    rel1: Relation,
    rel2: Relation,
    universe: &[Instance],
) -> Result<SubsetPropertyReport, CoreError> {
    let idx = index_universe(m, universe)?;
    let n = universe.len();
    // Both quantifications factor through the `~M` classes (and through
    // equality, which refines them), so everything is computed per class
    // pair once; this keeps universes of several hundred instances cheap.
    // Class representatives, in order of first appearance.
    let mut reps: Vec<usize> = Vec::new();
    let mut class_of: Vec<usize> = Vec::with_capacity(n); // dense class ids
    for &rep in &idx.class {
        let dense = match reps.iter().position(|&r| r == rep) {
            Some(d) => d,
            None => {
                reps.push(rep);
                reps.len() - 1
            }
        };
        class_of.push(dense);
    }
    let nc = reps.len();
    // Sol-space containment between classes (via representatives).
    let mut solsub = vec![vec![false; nc]; nc]; // solsub[c1][c2]: Sol(c2) ⊆ Sol(c1)
    for (c1, &r1) in reps.iter().enumerate() {
        for (c2, &r2) in reps.iter().enumerate() {
            solsub[c1][c2] = idx.sol_subset(r2, r1);
        }
    }
    // Witness flags per class pair. For `Equality` the witness class is a
    // singleton {the instance itself}, so the class-level flag cannot be
    // used — handle the four (rel1, rel2) combinations uniformly by
    // precomputing, per class pair, whether *some* member pair is ⊆, and
    // falling back to member-level checks when a side is Equality.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for i in 0..n {
        members[class_of[i]].push(i);
    }
    let mut class_wit = vec![vec![false; nc]; nc];
    for a in 0..n {
        for b in 0..n {
            if universe[a].is_subinstance_of(&universe[b])? {
                class_wit[class_of[a]][class_of[b]] = true;
            }
        }
    }
    let witness_exists = |i1: usize, i2: usize| -> Result<bool, CoreError> {
        match (rel1, rel2) {
            (Relation::SolutionEquiv, Relation::SolutionEquiv) => {
                Ok(class_wit[class_of[i1]][class_of[i2]])
            }
            (Relation::Equality, Relation::Equality) => universe[i1]
                .is_subinstance_of(&universe[i2])
                .map_err(Into::into),
            (Relation::Equality, Relation::SolutionEquiv) => {
                for &w2 in &members[class_of[i2]] {
                    if universe[i1].is_subinstance_of(&universe[w2])? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            (Relation::SolutionEquiv, Relation::Equality) => {
                for &w1 in &members[class_of[i1]] {
                    if universe[w1].is_subinstance_of(&universe[i2])? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    };
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for i1 in 0..n {
        for i2 in 0..n {
            if !solsub[class_of[i1]][class_of[i2]] {
                continue;
            }
            checked += 1;
            if !witness_exists(i1, i2)? {
                failures.push((i1, i2));
            }
        }
    }
    Ok(SubsetPropertyReport {
        holds: failures.is_empty(),
        failures,
        checked_pairs: checked,
    })
}

/// The unique-solutions property (§1/§3, from [Fagin, *Inverting Schema
/// Mappings*]): distinct ground instances have distinct solution spaces.
///
/// Bounded check: returns the first pair of distinct universe instances
/// with equal solution spaces (a *conclusive* violation — the property is
/// universally quantified, so one bounded counterexample refutes it), or
/// `None` if no violation exists within the universe.
pub fn unique_solutions_bounded(
    m: &SchemaMapping,
    universe: &[Instance],
) -> Result<Option<(usize, usize)>, CoreError> {
    let idx = index_universe(m, universe)?;
    for i in 0..universe.len() {
        for j in i + 1..universe.len() {
            if universe[i] != universe[j] && idx.class[i] == idx.class[j] {
                return Ok(Some((i, j)));
            }
        }
    }
    Ok(None)
}

/// The constructive `(=,~M)`-subset witness of Example 3.10 /
/// Proposition 3.11: for every pair with `Sol(I₂) ⊆ Sol(I₁)`, take
/// `I₂' = I₁ ∪ I₂` (so trivially `I₁ ⊆ I₂'`) and verify `I₂ ~M I₂'`
/// **exactly** (chase homomorphism test).
///
/// Returns the first pair for which the union witness fails, or `None`
/// if it validates on the whole universe. For LAV mappings the paper
/// proves it never fails; this function is the experimental counterpart
/// (experiment E5).
pub fn union_witness_subset_property(
    m: &SchemaMapping,
    universe: &[Instance],
) -> Result<Option<(usize, usize)>, CoreError> {
    let idx = index_universe(m, universe)?;
    for i1 in 0..universe.len() {
        for i2 in 0..universe.len() {
            if !idx.sol_subset(i2, i1) {
                continue;
            }
            let union = universe[i1].union(&universe[i2])?;
            let chase_union = m.chase(&union)?;
            if !hom_equivalent(&chase_union, &idx.chases[i2]) {
                return Ok(Some((i1, i2)));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::ground_instances;

    fn projection() -> SchemaMapping {
        SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap()
    }

    #[test]
    fn projection_fails_unique_solutions() {
        // P(a,a) and P(a,b) have the same solution space {Q ⊇ {a}}.
        let m = projection();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let violation = unique_solutions_bounded(&m, &universe).unwrap();
        assert!(violation.is_some());
    }

    #[test]
    fn copy_mapping_has_unique_solutions_on_universe() {
        let m = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        assert!(unique_solutions_bounded(&m, &universe).unwrap().is_none());
    }

    #[test]
    fn projection_has_solution_equiv_subset_property_bounded() {
        // LAV ⇒ quasi-invertible (Prop 3.11): the (~M,~M)-subset property
        // holds; the (=,=) one fails (no inverse).
        let m = projection();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let quasi = subset_property_bounded(
            &m,
            Relation::SolutionEquiv,
            Relation::SolutionEquiv,
            &universe,
        )
        .unwrap();
        assert!(quasi.holds, "failures: {:?}", quasi.failures);
        assert!(quasi.checked_pairs > 0);
        let exact =
            subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
        assert!(!exact.holds);
    }

    #[test]
    fn union_witness_validates_on_lav() {
        let m = projection();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        assert!(union_witness_subset_property(&m, &universe)
            .unwrap()
            .is_none());
    }

    #[test]
    fn relate_mod_is_the_bracket_of_definition_3_2() {
        let m = projection();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let n = universe.len();
        // D = Inst(Id) restricted to the universe (containment).
        let subset: Vec<Vec<bool>> = universe
            .iter()
            .map(|a| {
                universe
                    .iter()
                    .map(|b| a.is_subinstance_of(b).unwrap())
                    .collect()
            })
            .collect();
        // With (=,=), the bracket is the identity on D.
        let eq = relate_mod(
            &m,
            Relation::Equality,
            Relation::Equality,
            &universe,
            |i, j| subset[i][j],
        )
        .unwrap();
        assert_eq!(eq, subset);
        // With (~M,~M), the bracket only grows D (reflexivity of ~M) and
        // equals ~M ∘ D ∘ ~M computed directly.
        let qm = relate_mod(
            &m,
            Relation::SolutionEquiv,
            Relation::SolutionEquiv,
            &universe,
            |i, j| subset[i][j],
        )
        .unwrap();
        let idx = index_universe(&m, &universe).unwrap();
        for i in 0..n {
            for j in 0..n {
                assert!(!subset[i][j] || qm[i][j], "bracket must contain D");
                let direct = (0..n).any(|w1| {
                    idx.class[w1] == idx.class[i]
                        && (0..n).any(|w2| idx.class[w2] == idx.class[j] && subset[w1][w2])
                });
                assert_eq!(qm[i][j], direct, "({i},{j})");
            }
        }
        // Projection: P(a,a) ~M P(a,b), so the bracket relates pairs the
        // raw containment does not.
        assert_ne!(qm, subset);
    }

    #[test]
    fn copy_has_equality_subset_property() {
        let m = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let r =
            subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
        assert!(r.holds);
    }
}

//! Algorithm **Inverse** (§5, Theorem 5.1).
//!
//! Given `M = (S, T, Σ)` with `Σ` a finite set of s-t tgds:
//!
//! 1. check the **constant-propagation property** (Definition 5.2 /
//!    Proposition 5.3): for every source relation `R/m`, the chase of the
//!    single fact `R(x₁,…,x_m)` (distinct frozen variables) mentions all
//!    `m` variables — a necessary condition for invertibility, and the
//!    condition under which the algorithm's output is well-formed;
//! 2. enumerate all **prime atoms** per source relation in lexicographic
//!    order (exactly the restricted-growth strings over positions);
//! 3. for each prime instance `I_α`, chase it and form
//!    `ω(Σ, I_α) : ψ_α ∧ ⋀ Constant(xᵢ) ∧ ⋀_{i<j} xᵢ ≠ xⱼ → α`,
//!    a full tgd with constants and inequalities (only among constants).
//!
//! The output `Σ'` is the "weakest inverse": whenever `M` is invertible,
//! `M' = (T, S, Σ')` is an inverse of `M` and is implied by every other
//! inverse.

use crate::error::CoreError;
use crate::mapping::{ReverseMapping, SchemaMapping};
use qi_lang::{
    canonical_instance, restricted_growth_strings, thaw_value, Atom, DisjTgd, Disjunct, FrozenVars,
    Var,
};
use qi_schema::{Instance, Value};
use std::collections::BTreeMap;

/// The prime atoms of a relation of the given arity: argument vectors
/// over `x₁,…,x_k` whose first occurrences appear in index order (§5).
/// For arity 3: `(x1,x1,x1), (x1,x1,x2), (x1,x2,x1), (x1,x2,x2),
/// (x1,x2,x3)`.
pub fn prime_atoms(arity: usize) -> Vec<Vec<Var>> {
    restricted_growth_strings(arity)
        .into_iter()
        .map(|p| {
            (0..arity)
                .map(|i| Var::new(&format!("x{}", p.block_of(i) + 1)))
                .collect()
        })
        .collect()
}

/// Definition 5.2: does every source constant survive into the chase?
///
/// Checked on prime instances with all-distinct variables, which is
/// equivalent to the per-ground-instance formulation (the chase of a
/// fact is the union of the chases of its triggers, instantiated).
pub fn constant_propagation_property(m: &SchemaMapping) -> Result<bool, CoreError> {
    for rel in m.source.rel_ids() {
        let arity = m.source.arity(rel);
        let vars: Vec<Var> = (1..=arity).map(|i| Var::new(&format!("x{i}"))).collect();
        let atom = Atom::new(rel, vars.clone());
        let mut frozen = FrozenVars::default();
        let inst = canonical_instance(&m.source, &[atom], &mut frozen);
        let chased = m.chase(&inst)?;
        let adom = chased.active_domain();
        for v in &vars {
            if !adom.contains(&frozen.value(v)) {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Convert the chase of a prime instance into the premise conjunction
/// `ψ_α`: frozen variables thaw back to their names, nulls become fresh
/// `y`-variables (one per null, shared across atoms).
pub(crate) fn chase_to_atoms(chased: &Instance, frozen: &FrozenVars) -> Vec<Atom> {
    let mut null_names: BTreeMap<u64, Var> = BTreeMap::new();
    let mut next_y = 1usize;
    let mut atoms = Vec::new();
    for fact in chased.facts() {
        let args: Vec<Var> = fact
            .args
            .iter()
            .map(|&v| match v {
                Value::Null(n) => null_names
                    .entry(n.0)
                    .or_insert_with(|| {
                        let var = Var::new(&format!("y{next_y}"));
                        next_y += 1;
                        var
                    })
                    .clone(),
                c => thaw_value(frozen, c).unwrap_or_else(|v| {
                    unreachable!("chase of a frozen prime instance contains only frozen variables and nulls, got {v}")
                }),
            })
            .collect();
        atoms.push(Atom::new(fact.rel, args));
    }
    atoms
}

/// Run Algorithm Inverse on `m`.
///
/// Returns `None` when `m` fails the constant-propagation property (then
/// `m` is not invertible by Proposition 5.3, and the paper's algorithm
/// "halts without output"). Otherwise returns the candidate inverse
/// `M' = (T, S, Σ')` of full tgds with constants and inequalities among
/// constants; Theorem 5.1 guarantees it is an inverse whenever `m` is
/// invertible.
///
/// ```
/// use qi_core::{inverse, SchemaMapping};
///
/// let copy = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
/// let rev = inverse(&copy).unwrap().expect("copy propagates constants");
/// assert_eq!(rev.deps.len(), 2); // one ω(Σ, I_α) per prime atom of P/2
///
/// // Projection drops a column: no constant propagation, no output.
/// let proj = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
/// assert!(inverse(&proj).unwrap().is_none());
/// ```
pub fn inverse(m: &SchemaMapping) -> Result<Option<ReverseMapping>, CoreError> {
    if !constant_propagation_property(m)? {
        return Ok(None);
    }
    let mut deps = Vec::new();
    for rel in m.source.rel_ids() {
        let arity = m.source.arity(rel);
        for args in prime_atoms(arity) {
            let alpha = Atom::new(rel, args.clone());
            let xs: Vec<Var> = {
                let mut seen = Vec::new();
                for v in &args {
                    if !seen.contains(v) {
                        seen.push(v.clone());
                    }
                }
                seen
            };
            let mut frozen = FrozenVars::default();
            let inst = canonical_instance(&m.source, std::slice::from_ref(&alpha), &mut frozen);
            let chased = m.chase(&inst)?;
            let body = chase_to_atoms(&chased, &frozen);
            debug_assert!(
                !body.is_empty(),
                "constant propagation guarantees a nonempty chase"
            );
            let mut neq = Vec::new();
            for i in 0..xs.len() {
                for j in i + 1..xs.len() {
                    neq.push((xs[i].clone(), xs[j].clone()));
                }
            }
            let dep = DisjTgd::new(
                m.target.clone(),
                m.source.clone(),
                body,
                xs,
                neq,
                vec![Disjunct {
                    exists: Vec::new(),
                    atoms: vec![alpha],
                }],
            )?;
            deps.push(dep);
        }
    }
    Ok(Some(ReverseMapping::new(
        m.target.clone(),
        m.source.clone(),
        deps,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_atoms_lexicographic() {
        let atoms = prime_atoms(3);
        let rendered: Vec<String> = atoms
            .iter()
            .map(|a| {
                a.iter()
                    .map(|v| v.name().to_owned())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        assert_eq!(
            rendered,
            vec!["x1,x1,x1", "x1,x1,x2", "x1,x2,x1", "x1,x2,x2", "x1,x2,x3"]
        );
    }

    #[test]
    fn example_5_4_output() {
        // S = R/2; T = Q/2 S/3 U/1 with
        //   R(x1,x2) & R(x2,x1) -> ∃y Q(x1,y)
        //   R(x1,x2) -> ∃y S(x1,x2,y)
        //   R(x1,x1) -> U(x1)
        let m = SchemaMapping::parse(
            "R/2",
            "Q/2 S/3 U/1",
            &[
                "R(x1,x2) & R(x2,x1) -> exists y . Q(x1,y)",
                "R(x1,x2) -> exists y . S(x1,x2,y)",
                "R(x1,x1) -> U(x1)",
            ],
        )
        .unwrap();
        assert!(constant_propagation_property(&m).unwrap());
        let rev = inverse(&m).unwrap().unwrap();
        assert_eq!(rev.deps.len(), 2); // two prime atoms for R/2
                                       // ω(Σ, I_{R(x1,x1)}): Q(x1,y1) ∧ S(x1,x1,y2) ∧ U(x1) ∧ Constant(x1) → R(x1,x1)
        let d1 = &rev.deps[0];
        assert_eq!(d1.body.len(), 3);
        assert_eq!(d1.constant, vec![Var::new("x1")]);
        assert!(d1.neq.is_empty());
        assert_eq!(d1.disjuncts.len(), 1);
        assert!(d1.is_full());
        // ω(Σ, I_{R(x1,x2)}): S(x1,x2,y) ∧ Constant(x1) ∧ Constant(x2) ∧ x1≠x2 → R(x1,x2)
        let d2 = &rev.deps[1];
        assert_eq!(d2.body.len(), 1);
        assert_eq!(d2.constant.len(), 2);
        assert_eq!(d2.neq.len(), 1);
        assert!(rev.inequalities_among_constants());
    }

    #[test]
    fn constant_propagation_failure_detected() {
        // P(x,y) -> Q(x): y never reaches the target.
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        assert!(!constant_propagation_property(&m).unwrap());
        assert!(inverse(&m).unwrap().is_none());
    }

    #[test]
    fn copy_mapping_inverse() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let rev = inverse(&m).unwrap().unwrap();
        assert_eq!(rev.deps.len(), 2);
        assert_eq!(rev.deps[0].to_string(), "Q(x1,x1) & const(x1) -> P(x1,x1)");
        assert_eq!(
            rev.deps[1].to_string(),
            "Q(x1,x2) & const(x1) & const(x2) & x1 != x2 -> P(x1,x2)"
        );
    }

    #[test]
    fn two_hop_copy_inverse_uses_join() {
        // Theorem 4.8's mapping: P(x,y) -> ∃z (Q(x,z) ∧ Q(z,y)).
        let m =
            SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z) & Q(z,y)"]).unwrap();
        let rev = inverse(&m).unwrap().unwrap();
        // ω for R(x1,x2): Q(x1,y1) ∧ Q(y1,x2) ∧ guards → P(x1,x2)
        let d = &rev.deps[1];
        assert_eq!(d.body.len(), 2);
        assert_eq!(d.disjuncts[0].atoms[0].args.len(), 2);
    }
}

//! # qi-core — quasi-inverses of schema mappings
//!
//! The primary contribution of *Quasi-inverses of Schema Mappings*
//! (Fagin, Kolaitis, Popa, Tan; PODS 2007), implemented end to end:
//!
//! * [`mapping`] — schema mappings `M = (S, T, Σ)` specified by finite
//!   sets of s-t tgds, and reverse mappings `M' = (T, S, Σ')` specified by
//!   disjunctive tgds with constants and inequalities;
//! * [`solutions`] — solution spaces `Sol(M, I)`, solution-space
//!   containment, and the equivalence relation `~M` (§3), all reduced to
//!   homomorphism tests between chase results;
//! * [`framework`] — the unifying `(~1,~2)`-inverse framework:
//!   `D[~1,~2]`, the `(~1,~2)`-subset property (Definition 3.4), the
//!   unique-solutions property, and bounded checkers over finite instance
//!   universes;
//! * [`enumerate`] — exhaustive enumeration of ground instances over a
//!   finite constant pool (the universes the bounded checkers quantify
//!   over);
//! * [`mingen`] — Algorithm **MinGen**: exhaustive search for minimal
//!   generators (Definition 4.2, Lemma 4.4);
//! * [`mod@sigma_star`] — the `Σ*` construction via complete descriptions;
//! * [`mod@quasi_inverse`] — Algorithm **QuasiInverse** (Theorem 4.1) plus
//!   the implied-disjunct minimization of Example 4.5;
//! * [`mod@inverse`] — Algorithm **Inverse** (Theorem 5.1): the
//!   constant-propagation property, prime atoms, and the `ω(Σ, I_α)`
//!   dependencies;
//! * [`lint`] — the semantic lints QI014/QI015: chase-based
//!   invertibility preconditions reported through `qi-analyze`'s
//!   diagnostic vocabulary;
//! * [`exchange`] — §6: forward/backward data exchange, the
//!   chase-of-the-chase composition membership test (Proposition 6.6),
//!   and the soundness / faithfulness certificates of Definition 6.5;
//! * [`verify`] — bounded verification of Definitions 3.3/3.8 (whether a
//!   candidate reverse mapping is an inverse / quasi-inverse over a finite
//!   universe of ground instances);
//! * [`containment`] — mapping containment and equivalence
//!   (`Inst(M_B) ⊆ Inst(M_A)`) for forward and reverse mappings, with
//!   structured counterexample witnesses;
//! * [`recovery`] — maximum recoveries (Arenas–Pérez–Riveros): the total
//!   construction for s-t tgd mappings plus exact per-instance and
//!   bounded-universe recovery/maximality checks.
//!
//! ### Exact vs bounded
//!
//! Everything that the paper reduces to the chase is **exact** here
//! (chase, generator tests, `~M`, soundness/faithfulness per instance,
//! composition membership for guard-complete reverse mappings). The
//! properties that quantify over *all* ground instances — whose
//! decidability the paper explicitly leaves open (§7) — are provided as
//! `*_bounded` checkers that exhaustively quantify over a caller-supplied
//! finite universe and return witness structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod containment;
pub mod enumerate;
pub mod error;
pub mod exchange;
pub mod framework;
pub mod inverse;
pub mod lint;
pub mod mapping;
pub mod mingen;
pub mod quasi_inverse;
pub mod recovery;
pub mod sigma_star;
pub mod so_compose;
pub mod solutions;
pub mod verify;

pub use compose::{compose, composition_membership};
pub use containment::{
    mapping_contains, mapping_contains_with_stats, mapping_equivalent, reverse_contains,
    reverse_contains_with_stats, reverse_equivalent, ContainmentVerdict, ContainmentWitness,
};
pub use error::{CoreError, CorePartial, CoreResourceError};
pub use exchange::{composition_contains, round_trip, RoundTrip};
pub use framework::{
    relate_mod, subset_property_bounded, union_witness_subset_property, unique_solutions_bounded,
    Relation, SubsetPropertyReport,
};
pub use inverse::{constant_propagation_property, inverse, prime_atoms};
pub use lint::{constant_propagation_diagnostic, semantic_lints, subset_property_diagnostic};
pub use mapping::{ReverseMapping, SchemaMapping};
pub use mingen::{min_gen, min_gen_with_stats, Generator, MinGenOptions, MinGenOutcome};
pub use quasi_inverse::{
    minimize_disjuncts, minimize_disjuncts_budgeted, minimize_disjuncts_cached, quasi_inverse,
    quasi_inverse_full, quasi_inverse_lav, quasi_inverse_lav_with, quasi_inverse_with_stats,
    QuasiInverseOptions,
};
pub use recovery::{
    is_maximum_recovery_bounded, is_maximum_recovery_bounded_budgeted, is_recovery_bounded,
    is_recovery_bounded_budgeted, is_recovery_on, maximum_recovery, maximum_recovery_with_stats,
    RecoveryReport,
};
pub use sigma_star::sigma_star;
pub use so_compose::so_compose;
pub use solutions::{equivalent, solutions_subset};
pub use verify::{
    is_inverse_bounded, is_inverse_bounded_budgeted, is_quasi_inverse_bounded,
    is_quasi_inverse_bounded_budgeted, is_relaxed_inverse_bounded,
    is_relaxed_inverse_bounded_budgeted, VerifyReport,
};

//! Semantic lints: invertibility preconditions that need the chase.
//!
//! `qi-analyze` covers everything decidable from the *syntax* of a
//! mapping (QI001–QI013, QI016). Two of the paper's preconditions are
//! semantic — they quantify over chase results — so they live here, in
//! the crate that owns the chase, but speak the same [`Diagnostic`]
//! vocabulary:
//!
//! * **QI014** — the constant-propagation property (Definition 5.2)
//!   fails: some source column is dropped by every chase step, so by
//!   Proposition 5.3 the mapping has no inverse and Algorithm Inverse
//!   halts without output. The diagnostic names the relation and the
//!   dropped variable.
//! * **QI015** — the `(~M,~M)`-subset property (Definition 3.4) fails on
//!   a caller-bounded universe of ground instances: a counterexample
//!   candidate for quasi-invertibility (Theorem 3.9). Bounded, so
//!   witnesses outside the universe are not ruled out; the diagnostic
//!   says so and names the failing instance pair.

use crate::enumerate::ground_instances;
use crate::error::CoreError;
use crate::framework::{subset_property_bounded, Relation};
use crate::mapping::SchemaMapping;
use qi_analyze::{Code, Diagnostic};
use qi_lang::{canonical_instance, Atom, FrozenVars, Var};

/// QI014: check the constant-propagation property and, on failure, name
/// the source relation and the exact variable whose value the chase
/// drops. Returns `None` when the property holds (the boolean
/// [`constant_propagation_property`](crate::constant_propagation_property)
/// agrees with `is_none()`).
pub fn constant_propagation_diagnostic(m: &SchemaMapping) -> Result<Option<Diagnostic>, CoreError> {
    for rel in m.source.rel_ids() {
        let arity = m.source.arity(rel);
        let vars: Vec<Var> = (1..=arity).map(|i| Var::new(&format!("x{i}"))).collect();
        let atom = Atom::new(rel, vars.clone());
        let mut frozen = FrozenVars::default();
        let inst = canonical_instance(&m.source, std::slice::from_ref(&atom), &mut frozen);
        let chased = m.chase(&inst)?;
        let adom = chased.active_domain();
        if let Some((col, v)) = vars
            .iter()
            .enumerate()
            .find(|(_, v)| !adom.contains(&frozen.value(v)))
        {
            let rel_name = m.source.name(rel);
            let fact = atom.display(&m.source).to_string();
            return Ok(Some(Diagnostic::new(
                Code::Qi014,
                format!(
                    "constant propagation fails (Definition 5.2): chasing the single \
                     fact `{fact}` drops variable `{v}` (column {} of \
                     `{rel_name}/{arity}`); by Proposition 5.3 the mapping has no \
                     inverse, and Algorithm Inverse halts without output",
                    col + 1
                ),
            )));
        }
    }
    Ok(None)
}

/// QI015: check the `(~M,~M)`-subset property over the universe of all
/// ground source instances with at most `max_facts` facts drawn from
/// `consts`, and report the first pair without a witness. Returns `None`
/// when the bounded check passes.
///
/// A failure is a counterexample *candidate*: the witness pair of
/// Definition 3.4 is only sought inside the same universe, so this warns
/// rather than rejects. A pass on a universe closed under the relevant
/// constructions is strong evidence of quasi-invertibility
/// (Theorem 3.9 / the discussion in §7).
pub fn subset_property_diagnostic(
    m: &SchemaMapping,
    consts: &[&str],
    max_facts: usize,
) -> Result<Option<Diagnostic>, CoreError> {
    let universe = ground_instances(&m.source, consts, max_facts);
    let report = subset_property_bounded(
        m,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        &universe,
    )?;
    if report.holds {
        return Ok(None);
    }
    let (i1, i2) = report.failures[0];
    Ok(Some(Diagnostic::new(
        Code::Qi015,
        format!(
            "the (~M,~M)-subset property (Definition 3.4) fails on the bounded \
             universe ({} instances over constants {{{}}}, ≤{max_facts} facts): \
             Sol({}) ⊆ Sol({}) but no ~M-equivalent pair I1' ⊆ I2' exists in the \
             universe ({} of {} containment pairs lack a witness); this is evidence \
             against quasi-invertibility (Theorem 3.9), though witnesses outside \
             the universe are not ruled out",
            universe.len(),
            consts.join(","),
            &universe[i2],
            &universe[i1],
            report.failures.len(),
            report.checked_pairs,
        ),
    )))
}

/// Run both semantic lints with a small default universe (two constants,
/// two facts — enough to catch the paper's stock counterexamples like
/// projection) and collect whatever fires.
pub fn semantic_lints(m: &SchemaMapping) -> Result<Vec<Diagnostic>, CoreError> {
    let mut out = Vec::new();
    out.extend(constant_propagation_diagnostic(m)?);
    out.extend(subset_property_diagnostic(m, &["a", "b"], 2)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constant_propagation_property;

    #[test]
    fn projection_fails_constant_propagation_with_witness() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let d = constant_propagation_diagnostic(&m)
            .unwrap()
            .expect("projection drops y");
        assert_eq!(d.code, Code::Qi014);
        assert!(d.message.contains("`x2`"), "{}", d.message);
        assert!(d.message.contains("column 2 of `P/2`"), "{}", d.message);
        assert!(!constant_propagation_property(&m).unwrap());
    }

    #[test]
    fn copy_passes_both_lints() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        assert!(semantic_lints(&m).unwrap().is_empty());
    }

    #[test]
    fn projection_is_still_quasi_invertible() {
        // LAV ⇒ the (~M,~M)-subset property holds (Proposition 3.11):
        // QI014 fires but QI015 does not.
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let ds = semantic_lints(&m).unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::Qi014);
    }

    #[test]
    fn non_quasi_invertible_mapping_trips_qi015() {
        // Proposition 3.12's mapping `E(x,z) & E(z,y) -> F(x,y) & M(z)`
        // has no quasi-inverse; the refutation needs a three-constant
        // universe (see tests/prop_3_12.rs), where the bounded check is
        // conclusive.
        let m =
            SchemaMapping::parse("E/2", "F/2 M/1", &["E(x,z) & E(z,y) -> F(x,y) & M(z)"]).unwrap();
        let d = subset_property_diagnostic(&m, &["a", "b", "c"], 9)
            .unwrap()
            .expect("Prop 3.12: not quasi-invertible");
        assert_eq!(d.code, Code::Qi015);
        assert!(d.message.contains("Definition 3.4"), "{}", d.message);
        // Too small a universe produces no (false) alarm.
        assert!(subset_property_diagnostic(&m, &["a", "b"], 4)
            .unwrap()
            .is_none());
    }
}

//! Schema mappings `M = (S, T, Σ)` and reverse mappings `M' = (T, S, Σ')`.

use crate::error::CoreError;
use qi_chase::{chase_with_options, ChaseError, ChaseOptions, ChaseOutcome};
use qi_exec::Parallelism;
use qi_lang::{parse_disj_tgd, parse_tgd, DisjTgd, Tgd};
use qi_schema::{Instance, Schema};
use std::fmt;

/// A schema mapping `M = (S, T, Σ)` where `Σ` is a finite set of s-t tgds
/// (the class all of the paper's results are about).
#[derive(Clone, Debug)]
pub struct SchemaMapping {
    /// The source schema `S`.
    pub source: Schema,
    /// The target schema `T`.
    pub target: Schema,
    /// The specification `Σ`.
    pub tgds: Vec<Tgd>,
    /// Degree of parallelism for this mapping's chase. Not part of the
    /// mapping's mathematical identity `(S, T, Σ)`: equality ignores it,
    /// and every chase result is bit-identical at every setting.
    pub parallelism: Parallelism,
}

impl PartialEq for SchemaMapping {
    fn eq(&self, other: &Self) -> bool {
        self.source == other.source && self.target == other.target && self.tgds == other.tgds
    }
}

impl Eq for SchemaMapping {}

impl SchemaMapping {
    /// Build a mapping, checking that every tgd is over `(source, target)`.
    pub fn new(source: Schema, target: Schema, tgds: Vec<Tgd>) -> Result<Self, CoreError> {
        for t in &tgds {
            if !t.source.same_as(&source) || !t.target.same_as(&target) {
                return Err(CoreError::Precondition(
                    "all tgds must be over the mapping's (source, target) schemas".into(),
                ));
            }
        }
        Ok(SchemaMapping {
            source,
            target,
            tgds,
            parallelism: Parallelism::default(),
        })
    }

    /// The same mapping with an explicit degree of parallelism for its
    /// chase (`Parallelism::sequential()` selects the exact sequential
    /// code path; the default auto-detects).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Parse a mapping from compact schema descriptions and one tgd per
    /// entry of `deps` — the constructor used throughout the examples:
    ///
    /// ```
    /// use qi_core::SchemaMapping;
    /// let m = SchemaMapping::parse("P/3", "Q/2 R/2",
    ///     &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
    /// assert!(m.is_lav());
    /// ```
    pub fn parse(source: &str, target: &str, deps: &[&str]) -> Result<Self, CoreError> {
        let source = Schema::parse(source)?;
        let target = Schema::parse(target)?;
        let tgds: Result<Vec<Tgd>, _> = deps
            .iter()
            .map(|d| parse_tgd(&source, &target, d))
            .collect();
        SchemaMapping::new(source, target, tgds?)
    }

    /// Is this a LAV mapping (every premise a single atom, §3)?
    pub fn is_lav(&self) -> bool {
        self.tgds.iter().all(Tgd::is_lav)
    }

    /// Is this mapping specified by full tgds (no existentials, §3)?
    pub fn is_full(&self) -> bool {
        self.tgds.iter().all(Tgd::is_full)
    }

    /// `chase_Σ(I)`: the canonical universal solution for `instance`.
    pub fn chase(&self, instance: &Instance) -> Result<Instance, ChaseError> {
        Ok(self.chase_outcome(instance)?.instance)
    }

    /// [`SchemaMapping::chase`] returning the full [`ChaseOutcome`]
    /// (trigger counters and executor statistics).
    pub fn chase_outcome(&self, instance: &Instance) -> Result<ChaseOutcome, ChaseError> {
        chase_with_options(
            &self.tgds,
            instance,
            &self.target,
            ChaseOptions {
                parallelism: self.parallelism,
                ..Default::default()
            },
        )
    }

    /// [`SchemaMapping::chase`] under a cooperative resource budget —
    /// charges the caller's shared pool, so algorithms that chase many
    /// instances (the LAV construction, verification matrices) stay
    /// bounded end-to-end. Exhaustion surfaces as
    /// [`ChaseError::Resource`].
    pub fn chase_budgeted(
        &self,
        instance: &Instance,
        budget: &qi_exec::Budget,
    ) -> Result<Instance, ChaseError> {
        chase_with_options(
            &self.tgds,
            instance,
            &self.target,
            ChaseOptions {
                parallelism: self.parallelism,
                budget: budget.clone(),
            },
        )
        .map(|out| out.instance)
    }

    /// The **core** universal solution: the core of `chase_Σ(I)` — the
    /// smallest universal solution up to isomorphism (Fagin–Kolaitis–
    /// Popa, *Data exchange: getting to the core*). Hom-equivalent to
    /// [`SchemaMapping::chase`]'s result but with every redundant
    /// null-carrying fact folded away; the canonical representative of
    /// the `~M`-relevant equivalence class.
    pub fn core_chase(&self, instance: &Instance) -> Result<Instance, ChaseError> {
        Ok(qi_schema::core_of(&self.chase(instance)?))
    }

    /// The largest premise size `s1` (used by Lemma 4.4's bound).
    pub fn max_body_atoms(&self) -> usize {
        self.tgds.iter().map(|t| t.body.len()).max().unwrap_or(0)
    }

    /// The *identity schema mapping* `Id = (S, Ŝ, Σ_Id)` of §2: for every
    /// relation `R` of `schema`, the dependency `R(x̄) → R̂(x̄)` into a
    /// replica schema (same relation names, distinct [`Schema`] value).
    ///
    /// `Inst(Id)` consists of the pairs `(I₁, I₂)` with `I₁ ⊆ I₂` — the
    /// yardstick the (quasi-)inverse definitions compare compositions
    /// against.
    pub fn identity(schema: &Schema) -> Result<Self, CoreError> {
        let replica_desc: Vec<(String, usize)> = schema
            .iter()
            .map(|(_, sym)| (sym.name.clone(), sym.arity))
            .collect();
        let replica = Schema::new(&replica_desc)?;
        let mut tgds = Vec::new();
        for (rel, sym) in schema.iter() {
            let vars: Vec<String> = (1..=sym.arity).map(|i| format!("x{i}")).collect();
            let atom = format!("{}({})", sym.name, vars.join(","));
            let text = format!("{atom} -> {atom}");
            let _ = rel;
            tgds.push(parse_tgd(schema, &replica, &text)?);
        }
        SchemaMapping::new(schema.clone(), replica, tgds)
    }

    /// The robustness construction of §1: the same dependencies over a
    /// source schema augmented with fresh relations. The paper shows this
    /// destroys invertibility but preserves quasi-invertibility.
    pub fn augment_source<S: AsRef<str>>(&self, extra: &[(S, usize)]) -> Result<Self, CoreError> {
        let source = self.source.extend(extra)?;
        // Re-parse the tgds against the extended source so relation ids align.
        let tgds: Result<Vec<Tgd>, _> = self
            .tgds
            .iter()
            .map(|t| parse_tgd(&source, &self.target, &t.to_string()))
            .collect();
        SchemaMapping::new(source, self.target.clone(), tgds?)
    }
}

impl fmt::Display for SchemaMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "M = ({}; {})", self.source, self.target)?;
        for t in &self.tgds {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

/// A reverse mapping `M' = (T, S, Σ')` where `Σ'` is a finite set of
/// disjunctive tgds with constants and inequalities — the language
/// Theorem 4.1 proves necessary and sufficient for quasi-inverses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReverseMapping {
    /// Schema of the premises (the original mapping's target `T`).
    pub from: Schema,
    /// Schema of the conclusions (the original mapping's source `S`).
    pub to: Schema,
    /// The specification `Σ'`.
    pub deps: Vec<DisjTgd>,
}

impl ReverseMapping {
    /// Build a reverse mapping, checking schema consistency.
    pub fn new(from: Schema, to: Schema, deps: Vec<DisjTgd>) -> Result<Self, CoreError> {
        for d in &deps {
            if !d.from.same_as(&from) || !d.to.same_as(&to) {
                return Err(CoreError::Precondition(
                    "all dependencies must be over the reverse mapping's schemas".into(),
                ));
            }
        }
        Ok(ReverseMapping { from, to, deps })
    }

    /// Parse a reverse mapping for `m` from dependency texts.
    pub fn parse(m: &SchemaMapping, deps: &[&str]) -> Result<Self, CoreError> {
        let parsed: Result<Vec<DisjTgd>, _> = deps
            .iter()
            .map(|d| parse_disj_tgd(&m.target, &m.source, d))
            .collect();
        ReverseMapping::new(m.target.clone(), m.source.clone(), parsed?)
    }

    /// Does any dependency use disjunction / constants / inequalities /
    /// existentials? Reported as the language-feature vector the paper's
    /// optimality theorems (4.8–4.11) talk about.
    pub fn language_features(&self) -> LanguageFeatures {
        LanguageFeatures {
            disjunction: self.deps.iter().any(DisjTgd::has_disjunction),
            constants: self.deps.iter().any(DisjTgd::has_constants),
            inequalities: self.deps.iter().any(DisjTgd::has_inequalities),
            existentials: self.deps.iter().any(DisjTgd::has_existentials),
        }
    }

    /// Definition 2.1(2): all inequalities are among `Constant`-guarded
    /// variables (required by Theorem 6.7's soundness and by the exact
    /// composition membership test).
    pub fn inequalities_among_constants(&self) -> bool {
        self.deps.iter().all(DisjTgd::inequalities_among_constants)
    }
}

impl fmt::Display for ReverseMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "M' = ({}; {})", self.from, self.to)?;
        for d in &self.deps {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Which of the four language features of Definition 2.1 a reverse
/// mapping actually uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LanguageFeatures {
    /// Disjunction in conclusions.
    pub disjunction: bool,
    /// `Constant(x)` guards.
    pub constants: bool,
    /// Inequalities `x ≠ x'`.
    pub inequalities: bool,
    /// Existential quantifiers in conclusions.
    pub existentials: bool,
}

impl fmt::Display for LanguageFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.disjunction {
            parts.push("disjunction");
        }
        if self.constants {
            parts.push("constants");
        }
        if self.inequalities {
            parts.push("inequalities");
        }
        if self.existentials {
            parts.push("existentials");
        }
        if parts.is_empty() {
            write!(f, "plain full tgds")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_classify() {
        let m =
            SchemaMapping::parse("P/2 Q/1", "S/1", &["P(x,y) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        assert!(m.is_lav());
        assert!(m.is_full());
        assert_eq!(m.max_body_atoms(), 1);
    }

    #[test]
    fn chase_through_mapping() {
        let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
        let i = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        let u = m.chase(&i).unwrap();
        assert_eq!(u, Instance::parse(&m.target, "Q(a,b) R(b,c)").unwrap());
    }

    #[test]
    fn core_chase_folds_redundant_nulls() {
        // Two tgds produce a specific and a less specific Q-fact; the
        // core keeps only the specific one.
        let m = SchemaMapping::parse(
            "P/2",
            "Q/2",
            &["P(x,y) -> Q(x,y)", "P(x,y) -> exists z . Q(x,z)"],
        )
        .unwrap();
        let i = Instance::parse(&m.source, "P(a,b)").unwrap();
        // The restricted chase already avoids the redundancy here, so
        // drive the oblivious shape through a second instance pattern:
        let u = m.chase(&i).unwrap();
        let core = m.core_chase(&i).unwrap();
        assert!(core.fact_count() <= u.fact_count());
        assert!(qi_schema::hom_equivalent(&core, &u));
        assert_eq!(core, qi_schema::core_of(&core), "core is a fixpoint");
        // A case with a genuinely redundant null: chase of two sources
        // where one subsumes the other's null witness.
        let m2 = SchemaMapping::parse(
            "P/1 R/2",
            "Q/2",
            &["P(x) -> exists z . Q(x,z)", "R(x,y) -> Q(x,y)"],
        )
        .unwrap();
        let i2 = Instance::parse(&m2.source, "P(a) R(a,b)").unwrap();
        let u2 = m2.chase(&i2).unwrap();
        let core2 = m2.core_chase(&i2).unwrap();
        // tgd order chases P first, so Q(a,N) lands before Q(a,b): the
        // core drops the null row.
        assert_eq!(u2.fact_count(), 2);
        assert_eq!(core2, Instance::parse(&m2.target, "Q(a,b)").unwrap());
    }

    #[test]
    fn augment_source_keeps_dependencies() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let m2 = m.augment_source(&[("Extra", 1)]).unwrap();
        assert_eq!(m2.source.len(), 2);
        assert_eq!(m2.tgds.len(), 1);
        assert_eq!(m2.tgds[0].to_string(), "P(x,y) -> Q(x)");
    }

    #[test]
    fn reverse_mapping_features() {
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let rev = ReverseMapping::parse(&m, &["S(x) & const(x) -> P(x) | Q(x)"]).unwrap();
        let f = rev.language_features();
        assert!(f.disjunction && f.constants && !f.inequalities && !f.existentials);
        assert!(rev.inequalities_among_constants());
        assert_eq!(f.to_string(), "disjunction+constants");
    }

    #[test]
    fn identity_mapping_inst_is_containment() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let id = SchemaMapping::identity(&s).unwrap();
        assert_eq!(id.tgds.len(), 2);
        assert!(id.is_lav() && id.is_full());
        assert!(!id.source.same_as(&id.target) || id.source.same_as(&id.target));
        let i1 = Instance::parse(&s, "P(a,b)").unwrap();
        let i2 = Instance::parse(&s, "P(a,b) Q(a)").unwrap();
        let r1 = Instance::parse(&id.target, "P(a,b)").unwrap();
        let r2 = Instance::parse(&id.target, "P(a,b) Q(a)").unwrap();
        // (I1, I2-replica) ⊨ Σ_Id iff I1 ⊆ I2.
        assert!(qi_chase::satisfies_all_tgds(&i1, &r2, &id.tgds));
        assert!(qi_chase::satisfies_all_tgds(&i1, &r1, &id.tgds));
        assert!(!qi_chase::satisfies_all_tgds(&i2, &r1, &id.tgds));
    }

    #[test]
    fn identity_chase_is_a_copy() {
        let s = Schema::parse("P/2").unwrap();
        let id = SchemaMapping::identity(&s).unwrap();
        let i = Instance::parse(&s, "P(a,b) P(b,c)").unwrap();
        let u = id.chase(&i).unwrap();
        assert_eq!(u.fact_count(), 2);
        assert!(u.is_ground());
    }

    #[test]
    fn mismatched_schemas_rejected() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let other = SchemaMapping::parse("Z/1", "W/1", &["Z(x) -> W(x)"]).unwrap();
        assert!(SchemaMapping::new(m.source.clone(), m.target.clone(), other.tgds).is_err());
    }
}

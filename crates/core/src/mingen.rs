//! Algorithm **MinGen** (§4): exhaustive search for minimal generators.
//!
//! Definition 4.2: `β(x,z)` is a *generator* of `∃y ψ(x,y)` w.r.t. `Σ`
//! when the tgd `β(x,z) → ∃y ψ(x,y)` is a logical consequence of `Σ`;
//! Definition 4.3 asks for the conjuncts to be minimal. Lemma 4.4 bounds
//! minimal generators by `s1·s2` atoms (`s1` = largest premise in `Σ`,
//! `s2` = `|ψ|`), which makes exhaustive search complete.
//!
//! ## Enumeration
//!
//! Conjunctions are enumerated in *encoded* form — each term is either a
//! frontier variable `x_i` or an existential `z_j` — by iterative
//! deepening on the atom count:
//!
//! * atom sequences are non-decreasing in relation id, and `z`-variables
//!   are introduced consecutively in first-occurrence order, which covers
//!   every conjunction up to renaming of `z` (order the class's atoms by
//!   relation and relabel: both constraints hold);
//! * only relations that occur in some tgd premise are considered — facts
//!   over other relations can never fire a trigger, so dropping such an
//!   atom leaves the chase unchanged and the conjunction non-minimal;
//! * a branch whose prefix already contains (up to `z`-renaming) a found
//!   generator is pruned: every extension is non-minimal;
//! * because sizes grow monotonically, a candidate that survives pruning
//!   and passes the chase test of Definition 4.2 is a **minimal**
//!   generator — all of its strict sub-conjunctions were enumerated at
//!   smaller sizes.

use crate::error::{CoreError, CorePartial};
use crate::mapping::SchemaMapping;
use qi_chase::is_generator;
use qi_exec::{par_map_budgeted, Budget, Exceeded, ExecStats, Parallelism};
use qi_lang::atom::vars_of;
use qi_lang::{Atom, Var, VarGen};
use qi_schema::{
    ConstId, HomCache, Instance, MatchConstraints, MatchEngine, PatFact, PatTerm, Pattern,
    ProbeSlot, RelId, Value,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Options bounding the MinGen search.
#[derive(Clone, Debug)]
pub struct MinGenOptions {
    /// Override Lemma 4.4's `s1·s2` atom bound (a *smaller* value trades
    /// completeness for speed; a larger one is never needed).
    pub max_atoms: Option<usize>,
    /// Budget on chase tests; exceeded ⇒ [`CoreError::Budget`].
    pub max_candidates: usize,
    /// Degree of parallelism for the candidate chase tests. The output
    /// (and the budget-error point) is bit-identical at every setting.
    pub parallelism: Parallelism,
    /// Memoize coverage and subsumption checks in a [`HomCache`]
    /// (fingerprint-keyed, so answers are reused across targets that
    /// differ only by variable renaming). Results are identical either
    /// way; the cache only changes speed, and its hit/miss counters land
    /// in [`MinGenOutcome::stats`].
    pub hom_cache: bool,
    /// Cooperative resource budget: checked per committed candidate, in
    /// the enumerator's pruning loop, and between executor tasks.
    /// Exhaustion surfaces as [`CoreError::Resource`] carrying the
    /// generators confirmed so far (each a genuine generator; only the
    /// final subsumption sweep may be missing). Unlike
    /// [`MinGenOptions::max_candidates`] — whose trip point is
    /// bit-identical at every thread count — the *point* where a
    /// deadline or cancellation interrupts may vary; the error shape and
    /// the soundness of the partial may not. Unlimited by default.
    pub budget: Budget,
}

impl Default for MinGenOptions {
    fn default() -> Self {
        MinGenOptions {
            max_atoms: None,
            max_candidates: 1_000_000,
            parallelism: Parallelism::default(),
            hom_cache: true,
            budget: Budget::default(),
        }
    }
}

/// Result of a MinGen run with search statistics attached.
#[derive(Clone, Debug)]
pub struct MinGenOutcome {
    /// The minimal generators, in canonical enumeration order.
    pub generators: Vec<Generator>,
    /// Candidates that were chase-tested against the budget (identical
    /// at every thread count).
    pub candidates_tested: usize,
    /// Executor counters for the candidate-evaluation stage.
    pub stats: ExecStats,
}

/// A generator `β(x,z)`: its atoms and its existential variables `z`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Generator {
    /// The conjuncts of `β` (over the mapping's source schema).
    pub atoms: Vec<Atom>,
    /// The variables of `β` that are not frontier variables.
    pub exists: Vec<Var>,
}

/// Term encoding: `0..nx` are the frontier variables in order, `nx + j`
/// is the existential variable `z_j`.
type Code = u16;
type EncAtom = (RelId, Vec<Code>);

/// Immutable encoding context shared by the enumerator and the workers.
struct EncCtx<'a> {
    m: &'a SchemaMapping,
    psi: &'a [Atom],
    x: &'a [Var],
    nx: usize,
    /// Relations eligible to appear in generators.
    rels: Vec<RelId>,
    /// Frozen constants for the subset-up-to-renaming encoding.
    x_consts: Vec<Value>,
}

impl EncCtx<'_> {
    /// Instance encoding of a conjunction: `x_i` as a reserved constant,
    /// `z_j` as the null `N_j`.
    fn as_instance(&self, atoms: &[EncAtom]) -> Instance {
        let mut inst = Instance::new(self.m.source.clone());
        for (rel, args) in atoms {
            let vals: Vec<Value> = args
                .iter()
                .map(|&c| {
                    if (c as usize) < self.nx {
                        self.x_consts[c as usize]
                    } else {
                        Value::null((c as usize - self.nx) as u64)
                    }
                })
                .collect();
            inst.insert(*rel, vals).expect("arity by construction");
        }
        inst
    }

    /// Pattern encoding: `x_i` fixed to its reserved constant, `z_j` as
    /// match variable `j`.
    fn as_pattern(&self, atoms: &[EncAtom]) -> Pattern {
        let mut nvars = 0usize;
        let facts = atoms
            .iter()
            .map(|(rel, args)| PatFact {
                rel: *rel,
                args: args
                    .iter()
                    .map(|&c| {
                        if (c as usize) < self.nx {
                            PatTerm::Value(self.x_consts[c as usize])
                        } else {
                            let v = c as usize - self.nx;
                            nvars = nvars.max(v + 1);
                            PatTerm::Var(v as u32)
                        }
                    })
                    .collect(),
            })
            .collect();
        Pattern { facts, nvars }
    }

    /// Does the prefix already contain a found generator (⇒ prune)?
    ///
    /// A conjunction `sub` *subsumes* `sup` when a substitution fixing
    /// every frontier variable maps `sub`'s existential variables to
    /// arbitrary variables of `sup` such that `sub`'s conjuncts become a
    /// subset of `sup`'s. This is the "subset of the conjuncts (up to
    /// renaming of variables in z, z')" of the algorithm's Step 3, read
    /// the way the paper's own examples require: §4 lists only `S(x,x)`
    /// and `T(x,y)` as the generators of `P(x,x)` — `T(x,x)` is excluded
    /// exactly because renaming `T(x,y)`'s existential `y` **to `x`**
    /// turns it into a subset of `{T(x,x)}`; and Example 4.5's remark
    /// discards the disjunct `T(x1,x1) ∧ R(x1,x1,x4)` because
    /// `T(x3,x1) ∧ R(x3,x3,x4)` maps onto it with `x3 ↦ x1`.
    ///
    /// `found_pats` holds the found generators' *pre-compiled* patterns
    /// (built once when each generator was committed), paired with their
    /// atom counts; the prefix is encoded as an instance once per call
    /// instead of once per found generator. The same encodings drive the
    /// Step 3 minimization sweep in [`min_gen_with_stats`].
    ///
    /// With a [`HomCache`], each `(generator pattern, target)` verdict is
    /// memoized under the generator's probe key: prefixes that differ
    /// only by `z`-renaming share a fingerprint, so deep enumeration
    /// re-asks the same coverage questions constantly. Cached booleans
    /// are pure, so pruning decisions — and hence the candidate stream —
    /// are identical with and without the cache.
    fn covered(&self, prefix: &[EncAtom], found_pats: &[FoundPat]) -> bool {
        if found_pats.is_empty() {
            return false;
        }
        let constraints = MatchConstraints::default();
        // Refutation prefilter: a generator mentioning a relation absent
        // from the prefix cannot map into it — most probes die here, for
        // the price of a sorted-vec subset test, before any instance,
        // cache key, or search is paid for.
        let mut prefix_rels: Vec<RelId> = prefix.iter().map(|(r, _)| *r).collect();
        prefix_rels.sort_unstable();
        prefix_rels.dedup();
        // Both the cache key and the target instance are built lazily: a
        // prefix whose coverage verdicts are all cached never pays for
        // either, and the key (the normal form, a bijective z-relabel —
        // so equal keys imply isomorphic targets, the same soundness
        // argument as the store fingerprint) is much cheaper to render
        // than the instance is to build.
        let mut tkey: Option<Arc<String>> = None;
        let mut target: Option<Instance> = None;
        for fp in found_pats {
            if fp.len > prefix.len()
                || !fp.rels.iter().all(|r| prefix_rels.binary_search(r).is_ok())
            {
                continue;
            }
            let hit = match &fp.slot {
                Some(s) => {
                    let key = tkey
                        .get_or_insert_with(|| Arc::new(self.target_key(prefix)))
                        .clone();
                    s.probe_keyed(key, || {
                        let t = target.get_or_insert_with(|| self.as_instance(prefix));
                        MatchEngine::new(&fp.pattern, t, &constraints).exists()
                    })
                }
                None => {
                    let t = target.get_or_insert_with(|| self.as_instance(prefix));
                    MatchEngine::new(&fp.pattern, t, &constraints).exists()
                }
            };
            if hit {
                return true;
            }
        }
        false
    }

    /// Cache key for `as_instance(atoms)` as a probe target: a compact
    /// rendering of the normal form. The relabeling is bijective on the
    /// `z`-codes, so equal keys imply isomorphic instances — sufficient
    /// for [`ProbeSlot::probe_keyed`]'s contract; isomorphic prefixes
    /// that normalize differently merely miss.
    fn target_key(&self, atoms: &[EncAtom]) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (rel, args) in self.normal_form(atoms) {
            let _ = write!(s, "{}(", rel.0);
            for c in args {
                let _ = write!(s, "{c},");
            }
            s.push(')');
        }
        s
    }

    /// Probe key for a found generator's pattern-vs-instance queries.
    /// The encoded atoms pin the pattern exactly, and `nx` disambiguates
    /// codes that are frontier constants in one run but `z`-variables in
    /// another — required when several MinGen runs share one cache
    /// (quasi-inverse construction runs one per tgd).
    fn probe_key(&self, atoms: &[EncAtom]) -> String {
        format!("mingen|nx={}|{atoms:?}", self.nx)
    }

    /// Safety of the induced tgd: every frontier variable occurs.
    fn safe(&self, atoms: &[EncAtom]) -> bool {
        let present: BTreeSet<Code> = atoms
            .iter()
            .flat_map(|(_, args)| args.iter().copied())
            .filter(|&c| (c as usize) < self.nx)
            .collect();
        present.len() == self.nx
    }

    /// Heuristic normal form used only to avoid re-testing duplicates:
    /// sort the atoms, then relabel `z` by first occurrence. Not a perfect
    /// canonical form — collisions are impossible (it is a renaming), and
    /// misses only cost a repeated chase test.
    fn normal_form(&self, atoms: &[EncAtom]) -> Vec<EncAtom> {
        let mut sorted = atoms.to_vec();
        sorted.sort();
        let mut relabel: Vec<Option<Code>> = Vec::new();
        let mut next: Code = 0;
        let mut out = Vec::with_capacity(sorted.len());
        for (rel, args) in &sorted {
            let new_args: Vec<Code> = args
                .iter()
                .map(|&c| {
                    if (c as usize) < self.nx {
                        c
                    } else {
                        let z = c as usize - self.nx;
                        if relabel.len() <= z {
                            relabel.resize(z + 1, None);
                        }
                        *relabel[z].get_or_insert_with(|| {
                            let v = next;
                            next += 1;
                            v
                        }) + self.nx as Code
                    }
                })
                .collect();
            out.push((*rel, new_args));
        }
        out.sort();
        out
    }

    /// Decode an encoded conjunction into real atoms, naming the `z`
    /// variables freshly (avoiding the frontier and `ψ`'s variables).
    fn decode(&self, atoms: &[EncAtom]) -> Generator {
        let avoid: Vec<Var> = vars_of(self.psi)
            .into_iter()
            .chain(self.x.iter().cloned())
            .collect();
        let mut gen = VarGen::new("z", avoid);
        let mut z_names: Vec<Option<Var>> = Vec::new();
        let mut out_atoms = Vec::with_capacity(atoms.len());
        for (rel, args) in atoms {
            let vars: Vec<Var> = args
                .iter()
                .map(|&c| {
                    if (c as usize) < self.nx {
                        self.x[c as usize].clone()
                    } else {
                        let z = c as usize - self.nx;
                        if z_names.len() <= z {
                            z_names.resize(z + 1, None);
                        }
                        z_names[z].get_or_insert_with(|| gen.fresh()).clone()
                    }
                })
                .collect();
            out_atoms.push(Atom::new(*rel, vars));
        }
        let exists: Vec<Var> = z_names.into_iter().flatten().collect();
        Generator {
            atoms: out_atoms,
            exists,
        }
    }

    /// Enumerate the atoms that may follow the current prefix: relation id
    /// at least `min_rel`, new `z` variables introduced consecutively
    /// starting at `z_used`.
    fn next_atoms(&self, min_rel: u32, z_used: usize) -> Vec<(EncAtom, usize)> {
        let mut out = Vec::new();
        for &rel in &self.rels {
            if rel.0 < min_rel {
                continue;
            }
            let arity = self.m.source.arity(rel);
            let mut partial: Vec<(Vec<Code>, usize)> = vec![(Vec::new(), z_used)];
            for _ in 0..arity {
                let mut next = Vec::new();
                for (args, used) in &partial {
                    // existing x vars and z vars
                    for c in 0..self.nx + *used {
                        let mut a = args.clone();
                        a.push(c as Code);
                        next.push((a, *used));
                    }
                    // one new z var (the next index)
                    let mut a = args.clone();
                    a.push((self.nx + *used) as Code);
                    next.push((a, used + 1));
                }
                partial = next;
            }
            for (args, used) in partial {
                out.push(((rel, args), used));
            }
        }
        out
    }
}

/// A committed generator in the form every coverage/subsumption check
/// consumes: atom count (for the cheap length gate), pre-compiled
/// pattern, and — when a [`HomCache`] is in play — the pre-resolved
/// [`ProbeSlot`] for that pattern's probe key, so the hot coverage loop
/// pays one fingerprint lookup per probe instead of re-hashing the key.
struct FoundPat<'c> {
    len: usize,
    pattern: Pattern,
    /// Sorted, deduplicated relations of the pattern, for the coverage
    /// prefilter: a hom may send several pattern facts to one target
    /// fact, so only *presence* of each relation is required.
    rels: Vec<RelId>,
    slot: Option<ProbeSlot<'c>>,
}

/// One level of the explicit DFS stack: the options for the atom at this
/// depth and the cursor into them.
struct Frame {
    opts: Vec<(EncAtom, usize)>,
    next: usize,
}

/// Resumable iterative-deepening enumerator over encoded conjunctions.
///
/// Yields, in the canonical (size-then-lexicographic) order of the
/// sequential search, each candidate that (a) survives prefix-pruning
/// against the generators found *so far*, (b) is safe (all frontier
/// variables occur) and (c) has an unseen normal form. Because pruning
/// is monotone in `found` — a conjunction covered now stays covered
/// forever — drawing a batch of candidates against a stale `found` and
/// re-checking coverage at commit time reproduces the sequential
/// candidate stream exactly.
struct Enumerator {
    size: usize,
    cap: usize,
    prefix: Vec<EncAtom>,
    frames: Vec<Frame>,
    done: bool,
    /// Iterations since the last budget check: heavy pruning can spin
    /// this loop exponentially long between yields, so the enumerator
    /// itself must be interruptible — but `Instant::now()` per iteration
    /// would dominate, so the check runs every [`SPIN_CHECK`] spins.
    spins: u32,
}

/// Enumerator iterations between budget checks.
const SPIN_CHECK: u32 = 1024;

impl Enumerator {
    fn new(cap: usize) -> Self {
        Enumerator {
            size: 0,
            cap,
            prefix: Vec::new(),
            frames: Vec::new(),
            done: false,
            spins: 0,
        }
    }

    fn next_candidate(
        &mut self,
        ctx: &EncCtx,
        found_pats: &[FoundPat],
        tested: &mut BTreeSet<Vec<EncAtom>>,
        budget: &Budget,
    ) -> Result<Option<Vec<EncAtom>>, Exceeded> {
        let limited = !budget.is_unlimited();
        while !self.done {
            if limited {
                self.spins += 1;
                if self.spins >= SPIN_CHECK {
                    self.spins = 0;
                    budget.check()?;
                }
            }
            if self.frames.is_empty() {
                // Begin the next deepening level.
                self.size += 1;
                if self.size > self.cap {
                    self.done = true;
                    return Ok(None);
                }
                self.prefix.clear();
                self.frames.push(Frame {
                    opts: ctx.next_atoms(0, 0),
                    next: 0,
                });
            }
            let frame = self.frames.last_mut().expect("nonempty");
            if frame.next >= frame.opts.len() {
                self.frames.pop();
                if !self.frames.is_empty() {
                    self.prefix.pop();
                }
                continue;
            }
            let (atom, z_used) = frame.opts[frame.next].clone();
            frame.next += 1;
            if self.prefix.contains(&atom) {
                continue; // duplicate conjunct adds nothing
            }
            self.prefix.push(atom);
            if ctx.covered(&self.prefix, found_pats) {
                self.prefix.pop();
                continue;
            }
            if self.prefix.len() == self.size {
                let cand = self.prefix.clone();
                self.prefix.pop();
                if ctx.safe(&cand) && tested.insert(ctx.normal_form(&cand)) {
                    return Ok(Some(cand));
                }
                continue;
            }
            let min_rel = self.prefix.last().map(|(r, _)| r.0).expect("just pushed");
            self.frames.push(Frame {
                opts: ctx.next_atoms(min_rel, z_used),
                next: 0,
            });
        }
        Ok(None)
    }
}

/// Run Algorithm MinGen: all minimal generators of `∃y ψ(x,y)` w.r.t. the
/// mapping's tgds, where `x` designates the frontier variables of `ψ`
/// (its remaining variables are the existential `y`).
pub fn min_gen(
    m: &SchemaMapping,
    psi: &[Atom],
    x: &[Var],
    options: &MinGenOptions,
) -> Result<Vec<Generator>, CoreError> {
    Ok(min_gen_with_stats(m, psi, x, options)?.generators)
}

/// [`min_gen`] returning the full [`MinGenOutcome`].
///
/// ## How the parallel search stays exact
///
/// Candidates are drawn from the canonical enumeration in batches and
/// chase-tested speculatively in parallel; a sequential commit phase then
/// walks the batch in enumeration order, re-checks each candidate against
/// the generators found *before it* (a candidate whose prefix became
/// covered mid-batch is dropped, exactly as the sequential search's
/// pruning would have skipped it), charges the budget, and records the
/// speculative verdict. Coverage is monotone — found generators only
/// accumulate — so the committed candidate stream, the found-generator
/// order, and the point where the budget trips are all bit-identical to
/// the single-threaded search.
pub fn min_gen_with_stats(
    m: &SchemaMapping,
    psi: &[Atom],
    x: &[Var],
    options: &MinGenOptions,
) -> Result<MinGenOutcome, CoreError> {
    let local = options.hom_cache.then(HomCache::new);
    min_gen_cached(m, psi, x, options, local.as_ref())
}

/// [`min_gen_with_stats`] against a caller-owned [`HomCache`] (or none).
/// The quasi-inverse construction shares one cache across its per-tgd
/// MinGen runs and the disjunct-minimization sweep; only the counter
/// *delta* of this run is charged to the outcome's stats, so a shared
/// cache never double-counts.
pub(crate) fn min_gen_cached(
    m: &SchemaMapping,
    psi: &[Atom],
    x: &[Var],
    options: &MinGenOptions,
    cache: Option<&HomCache>,
) -> Result<MinGenOutcome, CoreError> {
    if psi.is_empty() {
        return Err(CoreError::Precondition("ψ must be nonempty".into()));
    }
    let psi_vars = vars_of(psi);
    for v in x {
        if !psi_vars.contains(v) {
            return Err(CoreError::Precondition(format!(
                "frontier variable `{v}` does not occur in ψ"
            )));
        }
    }
    let s1 = m.max_body_atoms();
    if s1 == 0 {
        return Ok(MinGenOutcome {
            generators: Vec::new(), // Σ empty: nothing generates anything
            candidates_tested: 0,
            stats: ExecStats::default(),
        });
    }
    let cap = options.max_atoms.unwrap_or(s1 * psi.len());
    // Only relations occurring in some premise can matter.
    let mut rels: Vec<RelId> = m
        .source
        .rel_ids()
        .filter(|r| m.tgds.iter().any(|t| t.body.iter().any(|a| a.rel == *r)))
        .collect();
    rels.sort();
    let nx = x.len();
    let x_consts: Vec<Value> = (0..nx)
        .map(|i| Value::Const(ConstId::new(&format!("$mgx{i}"))))
        .collect();
    let ctx = EncCtx {
        m,
        psi,
        x,
        nx,
        rels,
        x_consts,
    };
    let mut enumerator = Enumerator::new(cap);
    let mut tested: BTreeSet<Vec<EncAtom>> = BTreeSet::new();
    let mut found: Vec<Vec<EncAtom>> = Vec::new();
    // Compiled pattern + probe key per found generator, reused by every
    // coverage check instead of re-encoding the generator each time.
    let mut found_pats: Vec<FoundPat> = Vec::new();
    let mut out: Vec<Generator> = Vec::new();
    let mut candidates_tested = 0usize;
    let mut stats = ExecStats::default();
    // Counter snapshot, so a shared cache charges only this run's delta.
    let (cache_h0, cache_m0) = cache.map(HomCache::counters).unwrap_or((0, 0));
    // Speculation depth: enough work per wave to keep every worker busy.
    // Batching never changes the result (see above), only the amount of
    // possibly-wasted speculative work.
    let threads = options.parallelism.resolve();
    let batch_cap = if threads == 1 { 1 } else { threads * 4 };
    let budget = &options.budget;
    let limited = !budget.is_unlimited();
    loop {
        let mut batch: Vec<Vec<EncAtom>> = Vec::with_capacity(batch_cap);
        loop {
            if batch.len() >= batch_cap {
                break;
            }
            match enumerator.next_candidate(&ctx, &found_pats, &mut tested, budget) {
                Ok(Some(c)) => batch.push(c),
                Ok(None) => break,
                Err(e) => return Err(CoreError::resource(e, stats, CorePartial::Generators(out))),
            }
        }
        if batch.is_empty() {
            break;
        }
        // Parallel enumerate: chase-test the whole batch speculatively.
        let wave = par_map_budgeted(options.parallelism, &batch, budget, |cand| {
            let gen = ctx.decode(cand);
            is_generator(&m.tgds, &m.source, &m.target, &gen.atoms, psi, x).map(|ok| (gen, ok))
        });
        let (verdicts, wave_stats) = match wave {
            Ok(v) => v,
            Err(e) => return Err(CoreError::resource(e, stats, CorePartial::Generators(out))),
        };
        stats.absorb(&wave_stats);
        // Ordered commit, in canonical enumeration order. The resource
        // budget is re-checked per committed candidate: the generators
        // confirmed so far are the sound partial on exhaustion.
        for (cand, verdict) in batch.iter().zip(verdicts) {
            if limited {
                if let Err(e) = budget.check() {
                    return Err(CoreError::resource(e, stats, CorePartial::Generators(out)));
                }
            }
            if ctx.covered(cand, &found_pats) {
                continue; // a generator committed just before it covers it
            }
            candidates_tested += 1;
            if candidates_tested > options.max_candidates {
                return Err(CoreError::Budget(format!(
                    "MinGen exceeded {} candidate chase tests",
                    options.max_candidates
                )));
            }
            let (gen, ok) = verdict?;
            if ok {
                let mut rels: Vec<RelId> = cand.iter().map(|(r, _)| *r).collect();
                rels.sort_unstable();
                rels.dedup();
                found_pats.push(FoundPat {
                    len: cand.len(),
                    pattern: ctx.as_pattern(cand),
                    rels,
                    slot: cache.map(|c| c.slot(&ctx.probe_key(cand))),
                });
                found.push(cand.clone());
                out.push(gen);
            }
        }
    }
    // Step 3 (minimize): drop every generator subsumed by another kept
    // one. For mutually-subsuming pairs the earlier (smaller, since sizes
    // ascend) is kept.
    let n = found.len();
    // Encode every found generator as pattern and instance once; the
    // O(n²) subsumption sweep below then reuses them pairwise.
    let insts: Vec<Instance> = found.iter().map(|g| ctx.as_instance(g)).collect();
    // Same key space as the coverage probes (normal forms), so the sweep
    // reuses verdicts the enumeration already cached for these targets.
    let inst_keys: Vec<Arc<String>> = match cache {
        Some(_) => found.iter().map(|g| Arc::new(ctx.target_key(g))).collect(),
        None => Vec::new(),
    };
    let constraints = MatchConstraints::default();
    let subsumes = |i: usize, j: usize| -> bool {
        found[i].len() <= found[j].len()
            && found_pats[i]
                .rels
                .iter()
                .all(|r| found_pats[j].rels.binary_search(r).is_ok())
            && {
                let run =
                    || MatchEngine::new(&found_pats[i].pattern, &insts[j], &constraints).exists();
                match &found_pats[i].slot {
                    Some(s) => s.probe_keyed(Arc::clone(&inst_keys[j]), run),
                    None => run(),
                }
            }
    };
    let mut alive = vec![true; n];
    #[allow(clippy::needless_range_loop)] // symmetric double-index over `alive`
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !alive[j] {
                continue;
            }
            if subsumes(i, j) && !(j < i && subsumes(j, i)) {
                alive[j] = false;
            }
        }
    }
    if let Some(c) = cache {
        let (h, mi) = c.counters();
        stats.hom_cache_hits += h - cache_h0;
        stats.hom_cache_misses += mi - cache_m0;
    }
    Ok(MinGenOutcome {
        generators: out
            .into_iter()
            .zip(alive)
            .filter(|(_, a)| *a)
            .map(|(g, _)| g)
            .collect(),
        candidates_tested,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(schema: &qi_schema::Schema, specs: &[(&str, &[&str])]) -> Vec<Atom> {
        specs
            .iter()
            .map(|(r, args)| Atom::parse_parts(schema, r, args).unwrap())
            .collect()
    }

    #[test]
    fn projection_generator() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let psi = atoms(&m.target, &[("Q", &["x"])]);
        let x = vec![Var::new("x")];
        let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0].atoms.len(), 1);
        assert_eq!(gens[0].exists.len(), 1); // P(x, z)
        assert_eq!(m.source.name(gens[0].atoms[0].rel), "P");
    }

    #[test]
    fn union_has_two_generators() {
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let psi = atoms(&m.target, &[("S", &["x"])]);
        let x = vec![Var::new("x")];
        let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
        assert_eq!(gens.len(), 2);
        let names: BTreeSet<&str> = gens.iter().map(|g| m.source.name(g.atoms[0].rel)).collect();
        assert_eq!(names, BTreeSet::from(["P", "Q"]));
    }

    #[test]
    fn inequality_example_from_section_4() {
        // Σ = { S(x,y) -> P(x,y), T(x,y) -> P(x,x) }.
        // Generators of P(x1,x2) (x1 ≠ x2 case handled by QuasiInverse):
        // S(x1,x2) only. Generators of P(x1,x1): S(x1,x1) and ∃y T(x1,y).
        let m = SchemaMapping::parse("S/2 T/2", "P/2", &["S(x,y) -> P(x,y)", "T(x,y) -> P(x,x)"])
            .unwrap();
        let psi_distinct = atoms(&m.target, &[("P", &["x1", "x2"])]);
        let gens = min_gen(
            &m,
            &psi_distinct,
            &[Var::new("x1"), Var::new("x2")],
            &MinGenOptions::default(),
        )
        .unwrap();
        assert_eq!(gens.len(), 1);
        assert_eq!(m.source.name(gens[0].atoms[0].rel), "S");

        let psi_equal = atoms(&m.target, &[("P", &["x1", "x1"])]);
        let gens = min_gen(&m, &psi_equal, &[Var::new("x1")], &MinGenOptions::default()).unwrap();
        assert_eq!(gens.len(), 2);
    }

    #[test]
    fn multi_atom_generator_is_found_and_minimal() {
        // Decomposition reversed: Q(x,y) ∧ R(y,z) is generated by the
        // single fact P(x,y,z), and also — with two facts — by
        // P(x,y,w1) ∧ P(w2,y,z) (the Q-part from one, the R-part from the
        // other). Every other two-fact generator is subsumed by the latter.
        let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
        let psi = atoms(&m.target, &[("Q", &["x", "y"]), ("R", &["y", "z"])]);
        let x = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
        assert_eq!(gens.len(), 2, "{gens:?}");
        assert_eq!(gens[0].atoms.len(), 1); // P(x,y,z)
        assert!(gens[0].exists.is_empty());
        assert_eq!(gens[1].atoms.len(), 2); // P(x,y,w1) & P(w2,y,z)
        assert_eq!(gens[1].exists.len(), 2);
    }

    #[test]
    fn hom_cache_changes_only_the_counters() {
        let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
        let psi = atoms(&m.target, &[("Q", &["x", "y"]), ("R", &["y", "z"])]);
        let x = vec![Var::new("x"), Var::new("y"), Var::new("z")];
        let cached = min_gen_with_stats(&m, &psi, &x, &MinGenOptions::default()).unwrap();
        let plain = min_gen_with_stats(
            &m,
            &psi,
            &x,
            &MinGenOptions {
                hom_cache: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(cached.generators, plain.generators);
        assert_eq!(cached.candidates_tested, plain.candidates_tested);
        assert!(
            cached.stats.hom_cache_hits > 0,
            "deep enumeration must revisit fingerprint-equal coverage queries"
        );
        assert_eq!(plain.stats.hom_cache_hits, 0);
        assert_eq!(plain.stats.hom_cache_misses, 0);
    }

    #[test]
    fn budget_is_enforced() {
        let m = SchemaMapping::parse(
            "A/2 B/2 C/2",
            "T/2",
            &["A(x,y) & B(y,z) & C(z,x) -> T(x,y)"],
        )
        .unwrap();
        let psi = atoms(&m.target, &[("T", &["x", "y"])]);
        let x = vec![Var::new("x"), Var::new("y")];
        let err = min_gen(
            &m,
            &psi,
            &x,
            &MinGenOptions {
                max_atoms: None,
                max_candidates: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Budget(_)));
    }

    #[test]
    fn no_generator_when_target_unreachable() {
        let m = SchemaMapping::parse("P/1", "S/1 W/1", &["P(x) -> S(x)"]).unwrap();
        let psi = atoms(&m.target, &[("W", &["x"])]);
        let gens = min_gen(&m, &psi, &[Var::new("x")], &MinGenOptions::default()).unwrap();
        assert!(gens.is_empty());
    }

    #[test]
    fn frontier_must_occur_in_psi() {
        let m = SchemaMapping::parse("P/1", "S/1", &["P(x) -> S(x)"]).unwrap();
        let psi = atoms(&m.target, &[("S", &["x"])]);
        assert!(min_gen(&m, &psi, &[Var::new("w")], &MinGenOptions::default()).is_err());
    }
}

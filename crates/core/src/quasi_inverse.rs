//! Algorithm **QuasiInverse** (§4, Theorem 4.1).
//!
//! Given `M = (S, T, Σ)` with `Σ` a finite set of s-t tgds, the algorithm
//! produces `M' = (T, S, Σ')` where `Σ'` is a finite set of disjunctive
//! tgds with constants and inequalities (inequalities only among
//! constants) such that `M'` is a quasi-inverse of `M` whenever `M` has
//! one:
//!
//! 1. build `Σ*` (one dependency per complete description of each tgd's
//!    frontier, [`crate::sigma_star()`]);
//! 2. for each `σ : φ_S(x,u) → ∃y ψ_T(x,y)` in `Σ*`, emit
//!    `σ' : ψ_T(x,y) ∧ ⋀ Constant(xᵢ) ∧ ⋀_{i<j} xᵢ ≠ xⱼ →
//!          ⋁_{β ∈ MinGen(M, ∃yψ_T)} ∃z β(x,z)`.
//!
//! The disjunction is never empty: `φ_S(x,u)` itself is a generator of
//! `∃y ψ_T(x,y)`, so MinGen finds a (subsumption-minimal) generator.
//!
//! The [`minimize_disjuncts`] helper implements the remark of Example
//! 4.5: a disjunct implied by a more general one may be dropped. MinGen's
//! built-in subsumption minimization already produces pairwise
//! non-subsuming disjuncts, so for algorithm output it is a no-op; it is
//! exposed for hand-written reverse mappings.

use crate::error::{CoreError, CorePartial};
use crate::mapping::{ReverseMapping, SchemaMapping};
use crate::mingen::{min_gen_cached, MinGenOptions};
use crate::sigma_star::sigma_star;
use qi_exec::{Budget, ExecStats};
use qi_lang::{canonical_instance, compile_atoms, DisjTgd, Disjunct, FrozenVars, Var};
use qi_schema::{HomCache, MatchConstraints, MatchEngine, Pattern};

/// Options for the QuasiInverse algorithm.
#[derive(Clone, Debug, Default)]
pub struct QuasiInverseOptions {
    /// Options forwarded to the MinGen searches.
    pub mingen: MinGenOptions,
    /// **Ablation switch**: skip the `Σ*` construction and process only
    /// the input tgds. The output is then *incorrect* on mappings whose
    /// premises can fire with identified frontier values (see the
    /// ablation tests) — demonstrating why Step 1 of the algorithm is
    /// necessary.
    pub skip_sigma_star: bool,
    /// Cooperative resource budget for the whole algorithm run. A MinGen
    /// budget left unlimited inherits this one (mirroring how an auto
    /// MinGen parallelism inherits the mapping-level knob), so one
    /// entry-point option bounds every per-tgd search end-to-end; an
    /// explicit MinGen budget still wins. Exhaustion surfaces as
    /// [`CoreError::Resource`]. Unlimited by default.
    pub budget: Budget,
}

/// Run Algorithm QuasiInverse on `m`.
///
/// The output is always a well-formed reverse mapping; Theorem 4.1
/// guarantees it is a quasi-inverse of `m` exactly when `m` is
/// quasi-invertible (use the bounded verifiers of [`crate::verify`] or
/// the exact per-instance certificates of [`crate::exchange`] to probe
/// that).
///
/// ```
/// use qi_core::{quasi_inverse, QuasiInverseOptions, SchemaMapping};
///
/// // §1's Union mapping: P(x) → S(x), Q(x) → S(x).
/// let m = SchemaMapping::parse("P/1 Q/1", "S/1",
///     &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
/// let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
/// assert_eq!(rev.deps[0].to_string(), "S(x) & const(x) -> P(x) | Q(x)");
/// ```
pub fn quasi_inverse(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<ReverseMapping, CoreError> {
    Ok(quasi_inverse_with_stats(m, options)?.0)
}

/// [`quasi_inverse`] plus the aggregated executor counters of every
/// MinGen search it ran — including the hom-cache hit/miss counts. One
/// [`HomCache`] is shared across all per-tgd MinGen runs: `Σ*`'s
/// dependencies for one tgd differ only in which frontier variables are
/// identified, so their searches re-ask many fingerprint-equal coverage
/// questions.
pub fn quasi_inverse_with_stats(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<(ReverseMapping, ExecStats), CoreError> {
    let star = if options.skip_sigma_star {
        m.tgds.clone()
    } else {
        sigma_star(&m.tgds)?
    };
    // An unset (auto) MinGen parallelism inherits the mapping-level knob,
    // so `SchemaMapping::with_parallelism` governs the whole algorithm;
    // an explicit per-call setting still wins. The entry-point budget
    // inherits the same way: one `QuasiInverseOptions::budget` bounds
    // every per-tgd MinGen search against a single shared pool.
    let mut mingen_options = options.mingen.clone();
    if mingen_options.parallelism == qi_exec::Parallelism::auto() {
        mingen_options.parallelism = m.parallelism;
    }
    if mingen_options.budget.is_unlimited() {
        mingen_options.budget = options.budget.clone();
    }
    let cache = mingen_options.hom_cache.then(HomCache::new);
    let mut stats = ExecStats::default();
    let mut deps: Vec<DisjTgd> = Vec::new();
    for sigma in &star {
        let x = sigma.frontier();
        let outcome = min_gen_cached(m, &sigma.head, &x, &mingen_options, cache.as_ref())?;
        stats.absorb(&outcome.stats);
        let generators = outcome.generators;
        debug_assert!(
            !generators.is_empty(),
            "σ's own premise is a generator, so MinGen cannot come back empty"
        );
        let constant = x.clone();
        let mut neq = Vec::new();
        for i in 0..x.len() {
            for j in i + 1..x.len() {
                neq.push((x[i].clone(), x[j].clone()));
            }
        }
        let disjuncts: Vec<Disjunct> = generators
            .into_iter()
            .map(|g| Disjunct {
                exists: g.exists,
                atoms: g.atoms,
            })
            .collect();
        let dep = DisjTgd::new(
            m.target.clone(),
            m.source.clone(),
            sigma.head.clone(),
            constant,
            neq,
            disjuncts,
        )?;
        if !deps.contains(&dep) {
            deps.push(dep);
        }
    }
    let rev = ReverseMapping::new(m.target.clone(), m.source.clone(), deps)?;
    Ok((rev, stats))
}

/// Theorem 4.6, constructively: for a mapping specified by **full**
/// s-t tgds, a quasi-inverse needs no `Constant` guards. The witness is
/// the QuasiInverse output with every guard stripped: a full mapping
/// chases ground instances to ground instances, so on the
/// composition-relevant pairs the guards never cut anything.
///
/// Rejects with the analyzer's QI013 diagnostic when `m` is not full
/// (then guards are load-bearing — see the ablation tests), naming the
/// offending existential and head atom.
pub fn quasi_inverse_full(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<ReverseMapping, CoreError> {
    if let Some(d) = qi_analyze::not_full_diagnostic(&m.tgds) {
        return Err(CoreError::Rejected(d));
    }
    let guarded = quasi_inverse(m, options)?;
    let deps = guarded
        .deps
        .into_iter()
        .map(|mut d| {
            d.constant.clear();
            d
        })
        .collect();
    ReverseMapping::new(m.target.clone(), m.source.clone(), deps)
}

/// Theorem 4.7, constructively: every **LAV** mapping has a
/// quasi-inverse specified by (non-disjunctive) tgds with constants and
/// inequalities.
///
/// The construction generalizes Algorithm Inverse's `ω(Σ, I_α)` to the
/// quasi-setting: for every prime source atom `α` (restricted-growth
/// argument patterns, §5) whose chase is nonempty, emit
///
/// ```text
/// ψ_α ∧ ⋀ Constant(xᵢ) ∧ ⋀_{i<j} xᵢ ≠ xⱼ  →  ∃(unpropagated vars) α
/// ```
///
/// where `ψ_α` is the conjunction of the chase of `I_α` (nulls become
/// fresh `y`-variables), the guards range over the *propagated*
/// variables of `α` (those surviving into `ψ_α`), and the variables of
/// `α` that the mapping drops are existentially quantified in the
/// conclusion. For LAV mappings every trigger is a single source fact,
/// so each exported fact's complete chase signature appears in `U` and
/// the emitted premise both fires on every original fact (faithfulness)
/// and recovers only `~M`-justified facts (soundness).
///
/// Rejects with the analyzer's QI012 diagnostic when `m` is not LAV
/// (multi-atom premises are not captured by single-fact chase
/// signatures), naming the first extra body atom.
pub fn quasi_inverse_lav(m: &SchemaMapping) -> Result<ReverseMapping, CoreError> {
    quasi_inverse_lav_with(m, &QuasiInverseOptions::default())
}

/// [`quasi_inverse_lav`] under entry-point [`QuasiInverseOptions`]: the
/// budget is checked per prime source atom and inherited by each
/// signature chase, so the whole construction is interruptible.
pub fn quasi_inverse_lav_with(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<ReverseMapping, CoreError> {
    if let Some(d) = qi_analyze::not_lav_diagnostic(&m.tgds) {
        return Err(CoreError::Rejected(d));
    }
    let budget = &options.budget;
    let limited = !budget.is_unlimited();
    let mut deps: Vec<DisjTgd> = Vec::new();
    for rel in m.source.rel_ids() {
        let arity = m.source.arity(rel);
        for args in crate::inverse::prime_atoms(arity) {
            if limited {
                if let Err(e) = budget.check() {
                    return Err(CoreError::resource(
                        e,
                        ExecStats::default(),
                        CorePartial::None,
                    ));
                }
            }
            let alpha = qi_lang::Atom::new(rel, args.clone());
            let mut frozen = FrozenVars::default();
            let inst = canonical_instance(&m.source, std::slice::from_ref(&alpha), &mut frozen);
            let chased = m.chase_budgeted(&inst, budget)?;
            if chased.is_empty() {
                // This equality type of R exports nothing; instances
                // differing only in such facts are ~M-equivalent, so
                // nothing needs recovering.
                continue;
            }
            let body = crate::inverse::chase_to_atoms(&chased, &frozen);
            let body_vars = qi_lang::atom::vars_of(&body);
            // Propagated variables of α, in first-occurrence order.
            let mut xs: Vec<Var> = Vec::new();
            let mut missing: Vec<Var> = Vec::new();
            for v in &args {
                if xs.contains(v) || missing.contains(v) {
                    continue;
                }
                if body_vars.contains(v) {
                    xs.push(v.clone());
                } else {
                    missing.push(v.clone());
                }
            }
            let mut neq = Vec::new();
            for i in 0..xs.len() {
                for j in i + 1..xs.len() {
                    neq.push((xs[i].clone(), xs[j].clone()));
                }
            }
            let dep = DisjTgd::new(
                m.target.clone(),
                m.source.clone(),
                body,
                xs,
                neq,
                vec![Disjunct {
                    exists: missing,
                    atoms: vec![alpha],
                }],
            )?;
            if !deps.contains(&dep) {
                deps.push(dep);
            }
        }
    }
    ReverseMapping::new(m.target.clone(), m.source.clone(), deps)
}

/// Drop every disjunct implied by a more general co-disjunct
/// (Example 4.5's remark). For mutually-subsuming disjuncts the first is
/// kept. Logically equivalent to the input dependency.
///
/// Disjunct `i` subsumes disjunct `j` when a substitution fixing the
/// universal variables maps disjunct `i`'s existentials into disjunct
/// `j`'s terms such that `i`'s atoms become a subset of `j`'s; then
/// `Dⱼ ⇒ Dᵢ` and `Dⱼ` may be dropped ("we need only keep the more
/// general disjunct"). Each disjunct is encoded once up front — as a
/// canonical instance (subsumption target) and as a pattern with the
/// universal variables pinned (subsumption probe) — and the pairwise
/// sweep reuses those encodings, memoized through a fresh [`HomCache`]
/// (see [`minimize_disjuncts_cached`] to share one across dependencies).
pub fn minimize_disjuncts(dep: &DisjTgd) -> DisjTgd {
    minimize_disjuncts_cached(dep, &HomCache::new())
}

/// [`minimize_disjuncts`] against a caller-owned [`HomCache`], so a batch
/// of dependencies (e.g. every `Σ'`-member of one reverse mapping) can
/// reuse subsumption verdicts across disjuncts that differ only by
/// variable renaming. The cache changes speed only, never the output.
/// Share one cache only across dependencies over the *same* schema pair:
/// fingerprints and probe keys identify relations by schema-local id.
pub fn minimize_disjuncts_cached(dep: &DisjTgd, cache: &HomCache) -> DisjTgd {
    match minimize_disjuncts_budgeted(dep, cache, &Budget::unlimited()) {
        Ok(d) => d,
        Err(_) => unreachable!("an unlimited budget never trips"),
    }
}

/// [`minimize_disjuncts_cached`] under a cooperative [`Budget`], checked
/// before every pairwise subsumption probe — the sweep is O(n²) hom
/// searches, each potentially exponential. Exhaustion surfaces as
/// [`CoreError::Resource`] with no partial: a half-swept dependency
/// would be logically equivalent but non-canonical, so the caller should
/// fall back to the unminimized input (which is always sound).
pub fn minimize_disjuncts_budgeted(
    dep: &DisjTgd,
    cache: &HomCache,
    budget: &Budget,
) -> Result<DisjTgd, CoreError> {
    let limited = !budget.is_unlimited();
    let n = dep.disjuncts.len();
    // Freeze the universal variables once; freeze each disjunct's
    // existentials only in the copy used to build its instance, so that a
    // like-named existential of another disjunct stays a free pattern
    // variable.
    let universals = FrozenVars::freeze(dep.body_vars());
    let insts: Vec<_> = dep
        .disjuncts
        .iter()
        .map(|d| {
            let mut frozen = universals.clone();
            canonical_instance(&dep.to, &d.atoms, &mut frozen)
        })
        .collect();
    let probes: Vec<(Pattern, MatchConstraints)> = dep
        .disjuncts
        .iter()
        .map(|d| {
            let mut vars: Vec<Var> = Vec::new();
            let facts = compile_atoms(&d.atoms, &mut vars);
            let pattern = Pattern {
                facts,
                nvars: vars.len(),
            };
            let fixed = vars
                .iter()
                .enumerate()
                .filter_map(|(k, v)| universals.get(v).map(|val| (k as u32, val)))
                .collect();
            let constraints = MatchConstraints {
                fixed,
                ..Default::default()
            };
            (pattern, constraints)
        })
        .collect();
    // The probe key renders the compiled pattern and its constraints: two
    // disjuncts with the same key pose the same query, so sharing entries
    // is sound; targets dedup by fingerprint. Keys resolve to slots once,
    // outside the O(n²) sweep.
    let slots: Vec<_> = probes
        .iter()
        .map(|(p, c)| cache.slot(&format!("disj|{p:?}|{c:?}")))
        .collect();
    let subsumes = |i: usize, j: usize| -> bool {
        slots[i].probe(&insts[j], || {
            MatchEngine::new(&probes[i].0, &insts[j], &probes[i].1).exists()
        })
    };
    let mut alive = vec![true; n];
    #[allow(clippy::needless_range_loop)] // symmetric double-index over `alive`
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        for j in 0..n {
            if i == j || !alive[j] {
                continue;
            }
            if limited {
                if let Err(e) = budget.check() {
                    return Err(CoreError::resource(
                        e,
                        ExecStats::default(),
                        CorePartial::None,
                    ));
                }
            }
            if subsumes(i, j) && !(j < i && subsumes(j, i)) {
                alive[j] = false;
            }
        }
    }
    let disjuncts: Vec<Disjunct> = dep
        .disjuncts
        .iter()
        .zip(&alive)
        .filter(|(_, a)| **a)
        .map(|(d, _)| d.clone())
        .collect();
    Ok(DisjTgd::new(
        dep.from.clone(),
        dep.to.clone(),
        dep.body.clone(),
        dep.constant.clone(),
        dep.neq.clone(),
        disjuncts,
    )
    .expect("minimizing disjuncts preserves well-formedness"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_lang::parse_disj_tgd;

    #[test]
    fn projection_quasi_inverse_matches_paper() {
        // Paper §1: P(x,y) → Q(x) has quasi-inverse Q(x) → ∃y P(x,y).
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        assert_eq!(rev.deps.len(), 1);
        let d = &rev.deps[0];
        assert_eq!(d.to_string(), "Q(x) & const(x) -> exists z0 . P(x,z0)");
    }

    #[test]
    fn union_quasi_inverse_is_disjunctive() {
        // Paper §1: S(x) → P(x) ∨ Q(x).
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        assert_eq!(rev.deps.len(), 1);
        assert_eq!(rev.deps[0].to_string(), "S(x) & const(x) -> P(x) | Q(x)");
    }

    #[test]
    fn decomposition_quasi_inverse_shape() {
        let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        // B(3) = 5 complete descriptions, each giving one dependency.
        assert_eq!(rev.deps.len(), 5);
        let features = rev.language_features();
        assert!(features.constants);
        assert!(features.inequalities);
        assert!(rev.inequalities_among_constants());
        // Every dependency's first disjunct recovers a P-fact.
        for d in &rev.deps {
            assert!(!d.disjuncts.is_empty());
        }
    }

    #[test]
    fn minimize_disjuncts_drops_implied_one() {
        // D1 = ∃z P(x,z) subsumes D2 = P(x,x): drop the stronger P(x,x).
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> exists z . P(x,z) | P(x,x)").unwrap();
        let min = minimize_disjuncts(&dep);
        assert_eq!(min.disjuncts.len(), 1);
        assert_eq!(min.to_string(), "S(x) -> exists z . P(x,z)");
    }

    use qi_schema::Schema;

    #[test]
    fn minimize_keeps_incomparable_disjuncts() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/1 Q/1").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
        assert_eq!(minimize_disjuncts(&dep).disjuncts.len(), 2);
    }

    #[test]
    fn minimize_mutually_equivalent_keeps_first() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> exists z . P(x,z) | exists w . P(x,w)").unwrap();
        let min = minimize_disjuncts(&dep);
        assert_eq!(min.disjuncts.len(), 1);
        assert_eq!(min.disjuncts[0].exists, vec![Var::new("z")]);
    }

    #[test]
    fn with_stats_matches_plain_output_and_counts_cache_traffic() {
        let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
        let (rev, stats) = quasi_inverse_with_stats(&m, &QuasiInverseOptions::default()).unwrap();
        let plain = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        assert_eq!(rev.deps, plain.deps);
        assert!(
            stats.hom_cache_hits > 0,
            "Σ*'s per-tgd searches share fingerprint-equal coverage queries"
        );
    }

    #[test]
    fn minimize_shared_cache_matches_fresh_cache() {
        let t = Schema::parse("S/1").unwrap();
        let s = Schema::parse("P/2").unwrap();
        let dep = parse_disj_tgd(&t, &s, "S(x) -> exists z . P(x,z) | P(x,x)").unwrap();
        let shared = HomCache::new();
        assert_eq!(
            minimize_disjuncts_cached(&dep, &shared),
            minimize_disjuncts(&dep)
        );
        // A renamed copy of the dependency hits the shared cache.
        let dep2 = parse_disj_tgd(&t, &s, "S(x) -> exists w . P(x,w) | P(x,x)").unwrap();
        let (hits_before, _) = shared.counters();
        assert_eq!(minimize_disjuncts_cached(&dep2, &shared).disjuncts.len(), 1);
        assert!(shared.counters().0 > hits_before);
    }

    #[test]
    fn algorithm_output_is_already_disjunct_minimal() {
        let m = SchemaMapping::parse("S/2 T/2", "P/2", &["S(x,y) -> P(x,y)", "T(x,y) -> P(x,x)"])
            .unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        for d in &rev.deps {
            assert_eq!(minimize_disjuncts(d), *d);
        }
    }
}

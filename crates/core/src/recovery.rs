//! Recoveries and maximum recoveries (after Arenas–Pérez–Riveros,
//! "The recovery of a schema mapping: bringing exchanged data back").
//!
//! A reverse mapping `M'` is a *recovery* of `M = (S, T, Σ)` when every
//! source instance round-trips to itself: `(I, I) ∈ Inst(M ∘ M')` for
//! all `I`. Among recoveries, `M'` is a *maximum recovery* when
//! `Inst(M ∘ M')` is as small as possible — equivalently (the
//! characterization this module checks against), when
//!
//! ```text
//! (I₁, I₂) ∈ Inst(M ∘ M')   ⟺   Sol(M, I₂) ⊆ Sol(M, I₁)
//! ```
//!
//! The right-hand side is exactly [`crate::solutions_subset`]`(m, i₂,
//! i₁)`, so maximality has a direct chase-and-hom oracle: the `⊇`
//! direction makes `M'` a recovery (take `I₁ = I₂`), and the `⊆`
//! direction says the composition admits *only* the sol-containment
//! pairs — no recovery can admit fewer, because `Sol(I₂) ⊆ Sol(I₁)`
//! forces `(I₁, I₂)` into the composition of every recovery.
//!
//! ## Construction
//!
//! For s-t tgd mappings the QuasiInverse construction (§4 of the
//! quasi-inverse paper: `Σ*` + MinGen, with constant and inequality
//! guards) *is* a maximum-recovery construction:
//!
//! * each emitted dependency recovers, from a solution's `ψ_T(x)`
//!   pattern with `x` constants, the disjunction of all minimal source
//!   patterns that could have exported it — so the chase of `I` recovers
//!   a `V` with `Sol(V) ⊇ Sol(I)` witnessed inside `I` itself, making
//!   the output a recovery;
//! * conversely every recovered leaf is a union of MinGen generators
//!   instantiated over `chase(I)`'s constants, and generators are sound:
//!   any `I₂` a leaf maps into satisfies `Sol(I₂) ⊆ Sol(I₁)`.
//!
//! [`maximum_recovery`] therefore shares its implementation with
//! [`crate::quasi_inverse()`]; the point of the separate entry is the
//! *contract* — the output is a maximum recovery for **every** s-t tgd
//! mapping, whereas it is a quasi-inverse only for quasi-invertible
//! ones. The bounded verifiers below check both halves of the contract
//! on finite universes, and `tests/algebra_oracle.rs` drives them as
//! differential oracles over random mappings.

use crate::error::CoreError;
use crate::exchange::composition_contains;
use crate::mapping::{ReverseMapping, SchemaMapping};
use crate::quasi_inverse::{quasi_inverse_with_stats, QuasiInverseOptions};
use crate::verify::{composition_matrix, VerifyReport};
use qi_exec::{Budget, ExecStats};
use qi_schema::{HomCache, Instance};

/// Compute a maximum recovery of the s-t tgd mapping `m`.
///
/// The construction is total: unlike inverses (which need the
/// constant-propagation property) and quasi-inverses (which need
/// quasi-invertibility), every s-t tgd mapping has a maximum recovery,
/// and this function always returns one.
///
/// ```
/// use qi_core::{maximum_recovery, QuasiInverseOptions, SchemaMapping};
///
/// // Projection is not invertible, but it has a maximum recovery.
/// let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
/// let mr = maximum_recovery(&m, &QuasiInverseOptions::default()).unwrap();
/// assert_eq!(mr.deps[0].to_string(), "Q(x) & const(x) -> exists z0 . P(x,z0)");
/// ```
pub fn maximum_recovery(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<ReverseMapping, CoreError> {
    Ok(maximum_recovery_with_stats(m, options)?.0)
}

/// [`maximum_recovery`] plus the aggregated executor counters of the
/// underlying `Σ*` + MinGen runs (hom-cache traffic included).
pub fn maximum_recovery_with_stats(
    m: &SchemaMapping,
    options: &QuasiInverseOptions,
) -> Result<(ReverseMapping, ExecStats), CoreError> {
    quasi_inverse_with_stats(m, options)
}

/// Is `rev` a recovery of `m` *at* the ground instance `i` — does
/// `(i, i) ∈ Inst(m ∘ rev)` hold? Exact, via the Proposition 6.6
/// composition-membership machinery; `rev` must be guard-complete.
pub fn is_recovery_on(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    i: &Instance,
) -> Result<bool, CoreError> {
    composition_contains(m, rev, i, i)
}

/// Outcome of a bounded recovery check over a finite universe.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// No failure found within the universe.
    pub holds: bool,
    /// Universe indexes `i` where `(Iᵢ, Iᵢ) ∉ Inst(m ∘ rev)`.
    pub failures: Vec<usize>,
    /// Number of instances examined.
    pub checked: usize,
}

/// Bounded recovery check: does `(I, I) ∈ Inst(m ∘ rev)` hold for every
/// instance of the universe? The definition quantifies over all ground
/// instances, so — as with the inverse verifiers of [`crate::verify`] —
/// a clean report is evidence, while any failure is a conclusive
/// counterexample (each per-instance check is exact).
pub fn is_recovery_bounded(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
) -> Result<RecoveryReport, CoreError> {
    is_recovery_bounded_budgeted(m, rev, universe, &Budget::unlimited())
}

/// [`is_recovery_bounded`] under a cooperative [`Budget`]: checked per
/// universe instance and threaded into every recovery chase, so the
/// sweep is interruptible with a structured [`CoreError::Resource`].
pub fn is_recovery_bounded_budgeted(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
    budget: &Budget,
) -> Result<RecoveryReport, CoreError> {
    let comp = composition_matrix(m, rev, universe, budget)?;
    let failures: Vec<usize> = (0..universe.len()).filter(|&i| !comp[i][i]).collect();
    Ok(RecoveryReport {
        holds: failures.is_empty(),
        failures,
        checked: universe.len(),
    })
}

/// Bounded maximum-recovery check against the characterization
/// `(I₁, I₂) ∈ Inst(m ∘ rev) ⟺ Sol(m, I₂) ⊆ Sol(m, I₁)`: every
/// universe pair must agree between the exact composition-membership
/// test and the chase-and-hom solution-containment test. A clean report
/// subsumes [`is_recovery_bounded`] (the diagonal pairs are the
/// recovery condition); any mismatch pair is a conclusive witness that
/// `rev` either is not a recovery or admits a non-minimal pair.
pub fn is_maximum_recovery_bounded(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
) -> Result<VerifyReport, CoreError> {
    is_maximum_recovery_bounded_budgeted(m, rev, universe, &Budget::unlimited())
}

/// [`is_maximum_recovery_bounded`] under a cooperative [`Budget`] —
/// checked per composition-matrix row and inherited by every chase on
/// both sides of the comparison.
pub fn is_maximum_recovery_bounded_budgeted(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
    budget: &Budget,
) -> Result<VerifyReport, CoreError> {
    let comp = composition_matrix(m, rev, universe, budget)?;
    // Chase each universe member once; the hom probes below are the
    // sol-containment side of the characterization, memoized because
    // small ground universes chase to highly symmetric targets.
    let chased: Vec<Instance> = universe
        .iter()
        .map(|i| m.chase_budgeted(i, budget))
        .collect::<Result<_, _>>()?;
    let cache = HomCache::new();
    let n = universe.len();
    let mut mismatches = Vec::new();
    for i1 in 0..n {
        for i2 in 0..n {
            // Sol(I₂) ⊆ Sol(I₁) ⟺ chase(I₁) → chase(I₂).
            let sol = cache.has_hom(&chased[i1], &chased[i2]);
            if comp[i1][i2] != sol {
                mismatches.push((i1, i2));
            }
        }
    }
    Ok(VerifyReport {
        holds: mismatches.is_empty(),
        mismatches,
        checked: n * n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::ground_instances;

    #[test]
    fn projection_maximum_recovery_verifies() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let mr = maximum_recovery(&m, &QuasiInverseOptions::default()).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let rec = is_recovery_bounded(&m, &mr, &universe).unwrap();
        assert!(rec.holds, "failures: {:?}", rec.failures);
        let max = is_maximum_recovery_bounded(&m, &mr, &universe).unwrap();
        assert!(max.holds, "mismatches: {:?}", max.mismatches);
    }

    #[test]
    fn union_maximum_recovery_verifies() {
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let mr = maximum_recovery(&m, &QuasiInverseOptions::default()).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        assert!(
            is_maximum_recovery_bounded(&m, &mr, &universe)
                .unwrap()
                .holds
        );
    }

    #[test]
    fn transposed_copy_is_not_a_recovery() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let wrong = ReverseMapping::parse(&m, &["Q(x,y) & const(x) & const(y) -> P(y,x)"]).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 1);
        let rec = is_recovery_bounded(&m, &wrong, &universe).unwrap();
        assert!(!rec.holds);
        // The failing instances are exactly the asymmetric ones, and the
        // per-instance exact check agrees index by index.
        for (k, i) in universe.iter().enumerate() {
            assert_eq!(
                is_recovery_on(&m, &wrong, i).unwrap(),
                !rec.failures.contains(&k)
            );
        }
        assert!(
            !is_maximum_recovery_bounded(&m, &wrong, &universe)
                .unwrap()
                .holds
        );
    }

    #[test]
    fn a_recovery_that_is_not_maximum() {
        // The empty reverse mapping recovers *everything*: Inst(m ∘ ∅)
        // is the full relation, so it is a recovery of any mapping — and
        // maximally non-minimal, which the characterization catches.
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let empty = ReverseMapping::new(m.target.clone(), m.source.clone(), vec![]).unwrap();
        let universe = ground_instances(&m.source, &["a"], 2);
        let rec = is_recovery_bounded(&m, &empty, &universe).unwrap();
        assert!(rec.holds);
        let max = is_maximum_recovery_bounded(&m, &empty, &universe).unwrap();
        assert!(!max.holds, "the empty recovery admits non-minimal pairs");
    }
}

//! The `Σ*` construction (§4).
//!
//! For each tgd `σ ∈ Σ` and each *complete description* `δ` of the
//! variables appearing on both sides of `σ`, `f(σ, δ)` replaces every
//! such variable by the representative of its `δ`-equivalence class.
//! `Σ* = Σ ∪ { f(σ, δ) }` is logically equivalent to `Σ` and exposes each
//! equality pattern of the frontier as its own dependency — which is what
//! lets the QuasiInverse algorithm guard each output dependency with
//! *all-distinct* inequalities.

use crate::error::CoreError;
use qi_lang::substitution::substitute_atoms;
use qi_lang::{restricted_growth_strings, Tgd};

/// Compute `Σ*`: the input tgds together with every `f(σ, δ)`.
///
/// The discrete description reproduces `σ` itself, so the result always
/// contains (a variant of) each input; duplicates are removed. The size
/// is `Σ_σ B(|frontier(σ)|)` (Bell numbers) — one of the two exponential
/// factors in Theorem 4.1's algorithm.
pub fn sigma_star(tgds: &[Tgd]) -> Result<Vec<Tgd>, CoreError> {
    let mut out: Vec<Tgd> = Vec::new();
    for tgd in tgds {
        let frontier = tgd.frontier();
        for partition in restricted_growth_strings(frontier.len()) {
            let map = partition.representative_map(&frontier);
            let body = substitute_atoms(&tgd.body, &map);
            let head = substitute_atoms(&tgd.head, &map);
            let merged = Tgd::new(
                tgd.source.clone(),
                tgd.target.clone(),
                body,
                tgd.exists.clone(),
                head,
            )?;
            if !out.contains(&merged) {
                out.push(merged);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::SchemaMapping;

    #[test]
    fn discrete_description_reproduces_sigma() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let star = sigma_star(&m.tgds).unwrap();
        assert!(star.contains(&m.tgds[0]));
        // frontier {x,y}: B(2) = 2 descriptions → σ[y↦x] and σ.
        assert_eq!(star.len(), 2);
        assert_eq!(star[0].to_string(), "P(x,x) -> Q(x,x)");
    }

    #[test]
    fn paper_example_from_section_4() {
        // σ1 = P(x1,x2,x3) -> ∃y (S(x1,x2,y) ∧ Q(y,y)); frontier {x1,x2}.
        // Σ* contains σ1 and σ2 = P(x1,x1,x3) -> ∃y (S(x1,x1,y) ∧ Q(y,y)).
        let m = SchemaMapping::parse(
            "P/3",
            "S/3 Q/2",
            &["P(x1,x2,x3) -> exists y . S(x1,x2,y) & Q(y,y)"],
        )
        .unwrap();
        let star = sigma_star(&m.tgds).unwrap();
        assert_eq!(star.len(), 2);
        assert_eq!(
            star[0].to_string(),
            "P(x1,x1,x3) -> exists y . S(x1,x1,y) & Q(y,y)"
        );
        assert_eq!(star[1], m.tgds[0]);
    }

    #[test]
    fn frontier_of_three_gives_bell_3() {
        let m = SchemaMapping::parse("P/3", "Q/3", &["P(x,y,z) -> Q(x,y,z)"]).unwrap();
        let star = sigma_star(&m.tgds).unwrap();
        assert_eq!(star.len(), 5); // B(3)
    }

    #[test]
    fn exists_only_head_vars_do_not_partition() {
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z)"]).unwrap();
        // frontier is just {x}: B(1) = 1.
        let star = sigma_star(&m.tgds).unwrap();
        assert_eq!(star.len(), 1);
    }

    #[test]
    fn duplicates_are_removed() {
        // A tgd whose frontier variables are already merged produces the
        // same f(σ,δ) for several δ of the original.
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,x) -> Q(x)"]).unwrap();
        let star = sigma_star(&m.tgds).unwrap();
        assert_eq!(star.len(), 1);
    }
}

//! General composition via second-order tgds (the paper's reference
//! \[5\]).
//!
//! [`crate::compose()`] handles the case where the first mapping is
//! full; the general case needs SO-tgds. The algorithm:
//!
//! 1. Skolemize both mappings (`qi_lang::skolemize`), renaming the two
//!    sides' function symbols apart.
//! 2. For every clause `φ₂₃ ∧ eqs₂₃ → ψ₂₃` of the second SO-tgd, and for
//!    every way of *resolving* each premise atom against a head atom of
//!    some first-side clause (fresh variable copies per use): substitute
//!    the premise variables by the matched head terms (extra alignments
//!    become equalities), take the union of the chosen first-side
//!    premises as the new premise, and carry `ψ₂₃` (substituted) as the
//!    conclusion.
//!
//! A premise atom over a middle-schema relation that no first-side
//! clause produces kills the combination: the canonical intermediate
//! instance (the chase of `I`) contains no such facts, and the
//! existential `J` of the composition semantics is free to omit them.
//!
//! The composed SO-tgd's chase is a universal solution of the
//! composition, which the tests verify against the two-hop chase
//! (`chase₂₃(chase₁₂(I))`) up to homomorphic equivalence.

use crate::error::CoreError;
use crate::mapping::SchemaMapping;
use qi_lang::{skolemize, SkTerm, SoAtom, SoClause, SoTgd, Var, VarGen};
use std::collections::BTreeMap;

/// Compose two arbitrary s-t tgd mappings into an SO-tgd.
pub fn so_compose(m12: &SchemaMapping, m23: &SchemaMapping) -> Result<SoTgd, CoreError> {
    if !m12.target.same_as(&m23.source) {
        return Err(CoreError::Precondition(
            "the mappings do not share the middle schema".into(),
        ));
    }
    if m12.tgds.is_empty() || m23.tgds.is_empty() {
        return Err(CoreError::Precondition(
            "composition needs nonempty dependency sets".into(),
        ));
    }
    let so12 = skolemize(&m12.tgds, "l_");
    let so23 = skolemize(&m23.tgds, "r_");
    let mut clauses: Vec<SoClause> = Vec::new();
    for c23 in &so23.clauses {
        // Candidate producers per premise atom: (clause index, head index).
        let candidates: Vec<Vec<(usize, usize)>> = c23
            .body
            .iter()
            .map(|atom| {
                so12.clauses
                    .iter()
                    .enumerate()
                    .flat_map(|(ci, c)| {
                        c.head
                            .iter()
                            .enumerate()
                            .filter(|(_, h)| h.rel == atom.rel)
                            .map(move |(hi, _)| (ci, hi))
                    })
                    .collect()
            })
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            continue; // some premise atom is unproducible
        }
        // Cartesian walk over the candidate choices (odometer).
        let mut choice = vec![0usize; candidates.len()];
        'combos: loop {
            clauses.push(resolve(c23, &so12, &choice));
            let mut k = 0;
            loop {
                if k == choice.len() {
                    break 'combos;
                }
                choice[k] += 1;
                if choice[k] < candidates[k].len() {
                    break;
                }
                choice[k] = 0;
                k += 1;
            }
        }
    }
    Ok(SoTgd {
        source: m12.source.clone(),
        target: m23.target.clone(),
        clauses,
    })
}

/// Resolve one combination: `choice[k]` selects the producer of premise
/// atom `k` among its candidates (recomputed here to keep the odometer
/// loop simple).
fn resolve(c23: &SoClause, so12: &SoTgd, choice: &[usize]) -> SoClause {
    let mut gen = VarGen::new("u", c23.body_vars());
    let mut body = Vec::new();
    let mut eqs: Vec<(SkTerm, SkTerm)> = Vec::new();
    let mut subst: BTreeMap<Var, SkTerm> = BTreeMap::new();
    for (k, atom) in c23.body.iter().enumerate() {
        // Recompute this atom's candidate list (same order as in
        // `so_compose`).
        let cands: Vec<(usize, usize)> = so12
            .clauses
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| {
                c.head
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.rel == atom.rel)
                    .map(move |(hi, _)| (ci, hi))
            })
            .collect();
        let (ci, hi) = cands[choice[k]];
        let producer = &so12.clauses[ci];
        // Fresh copy of the producer's variables for this use.
        let rename: BTreeMap<Var, Var> = producer
            .body_vars()
            .into_iter()
            .map(|v| (v.clone(), gen.fresh()))
            .collect();
        let rename_term = |t: &SkTerm| -> SkTerm {
            t.substitute(&|v: &Var| rename.get(v).cloned().map(SkTerm::Var))
        };
        for b in &producer.body {
            body.push(qi_lang::substitution::substitute_atom(b, &rename));
        }
        for (l, r) in &producer.eqs {
            eqs.push((rename_term(l), rename_term(r)));
        }
        // Unify atom args with the producer head's terms.
        let head_atom = &producer.head[hi];
        for (v, t) in atom.args.iter().zip(&head_atom.args) {
            let t = rename_term(t);
            match subst.get(v) {
                Some(existing) => eqs.push((existing.clone(), t)),
                None => {
                    subst.insert(v.clone(), t);
                }
            }
        }
    }
    let apply = |t: &SkTerm| -> SkTerm { t.substitute(&|v: &Var| subst.get(v).cloned()) };
    for (l, r) in &c23.eqs {
        eqs.push((apply(l), apply(r)));
    }
    let head = c23
        .head
        .iter()
        .map(|a| SoAtom {
            rel: a.rel,
            args: a.args.iter().map(apply).collect(),
        })
        .collect();
    SoClause { body, eqs, head }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_chase::so_chase;
    use qi_schema::{hom_equivalent, Instance};

    fn two_hop(m12: &SchemaMapping, m23: &SchemaMapping, i: &Instance) -> Instance {
        m23.chase(&m12.chase(i).unwrap()).unwrap()
    }

    fn align(m12: &SchemaMapping, m23_src: &str, m23_tgt: &str, deps: &[&str]) -> SchemaMapping {
        let _ = m23_src;
        let tgt = qi_schema::Schema::parse(m23_tgt).unwrap();
        SchemaMapping::new(
            m12.target.clone(),
            tgt.clone(),
            deps.iter()
                .map(|d| qi_lang::parse_tgd(&m12.target, &tgt, d).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn fkpt_manager_example() {
        // The classic composition needing SO-tgds:
        //   Σ12: Emp(e) → ∃m Mgr1(e,m)
        //   Σ23: Mgr1(e,m) → Mgr(e,m);  Mgr1(e,e) → SelfMgr(e)
        let m12 =
            SchemaMapping::parse("Emp/1", "Mgr1/2", &["Emp(e) -> exists m . Mgr1(e,m)"]).unwrap();
        let m23 = align(
            &m12,
            "Mgr1/2",
            "Mgr/2 SelfMgr/1",
            &["Mgr1(e,m) -> Mgr(e,m)", "Mgr1(e,e) -> SelfMgr(e)"],
        );
        let so = so_compose(&m12, &m23).unwrap();
        // Two clauses; the SelfMgr one carries the equality f(e) = e.
        assert_eq!(so.clauses.len(), 2);
        assert!(so.clauses.iter().any(|c| !c.eqs.is_empty()));
        for i_text in ["Emp(a)", "Emp(a) Emp(b)"] {
            let i = Instance::parse(&m12.source, i_text).unwrap();
            let one = so_chase(&so, &i).unwrap();
            let two = two_hop(&m12, &m23, &i);
            assert!(hom_equivalent(&one, &two), "on {i_text}: {one} vs {two}");
        }
    }

    #[test]
    fn agrees_with_first_order_compose_on_full_first_mapping() {
        let m12 = SchemaMapping::parse("A/1 B/1", "S1/1 S2/1", &["A(x) -> S1(x)", "B(x) -> S2(x)"])
            .unwrap();
        let m23 = align(&m12, "S1/1 S2/1", "T/1", &["S1(x) & S2(x) -> T(x)"]);
        let so = so_compose(&m12, &m23).unwrap();
        let fo = crate::compose::compose(&m12, &m23, &Default::default()).unwrap();
        for i_text in ["A(a)", "A(a) B(a)", "A(a) B(b)", "A(a) A(b) B(b)"] {
            let i = Instance::parse(&m12.source, i_text).unwrap();
            let via_so = so_chase(&so, &i).unwrap();
            let via_fo = fo.chase(&i).unwrap();
            assert!(hom_equivalent(&via_so, &via_fo), "on {i_text}");
        }
    }

    #[test]
    fn existentials_in_first_mapping_thread_through() {
        // Non-full first mapping: first-order compose refuses, SO compose
        // handles it.
        let m12 = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
        let m23 = align(
            &m12,
            "Q/2",
            "R/2 W/1",
            &["Q(x,y) -> R(y,x)", "Q(x,x) -> W(x)"],
        );
        assert!(crate::compose::compose(&m12, &m23, &Default::default()).is_err());
        let so = so_compose(&m12, &m23).unwrap();
        for i_text in ["P(a)", "P(a) P(b)"] {
            let i = Instance::parse(&m12.source, i_text).unwrap();
            let one = so_chase(&so, &i).unwrap();
            let two = two_hop(&m12, &m23, &i);
            assert!(hom_equivalent(&one, &two), "on {i_text}: {one} vs {two}");
        }
    }

    #[test]
    fn unproducible_premise_atoms_drop_clauses() {
        let m12 = SchemaMapping::parse("P/1", "S/1 T2/1", &["P(x) -> S(x)"]).unwrap();
        let m23 = align(&m12, "S/1 T2/1", "K/1", &["T2(x) -> K(x)", "S(x) -> K(x)"]);
        let so = so_compose(&m12, &m23).unwrap();
        // Only the S-clause survives.
        assert_eq!(so.clauses.len(), 1);
        let i = Instance::parse(&m12.source, "P(a)").unwrap();
        let one = so_chase(&so, &i).unwrap();
        let two = two_hop(&m12, &m23, &i);
        assert!(hom_equivalent(&one, &two));
    }

    #[test]
    fn multi_producer_premises_fan_out() {
        let m12 =
            SchemaMapping::parse("A/1 B/1", "S/1", &["A(x) -> S(x)", "B(x) -> S(x)"]).unwrap();
        let m23 = align(&m12, "S/1", "T/2", &["S(x) & S(y) -> T(x,y)"]);
        let so = so_compose(&m12, &m23).unwrap();
        // 2 producers per atom, 2 atoms: 4 combinations.
        assert_eq!(so.clauses.len(), 4);
        for i_text in ["A(a) B(b)", "A(a)", "A(a) A(b) B(c)"] {
            let i = Instance::parse(&m12.source, i_text).unwrap();
            let one = so_chase(&so, &i).unwrap();
            let two = two_hop(&m12, &m23, &i);
            assert!(hom_equivalent(&one, &two), "on {i_text}");
        }
    }

    #[test]
    fn random_compositions_agree_with_two_hop_chase() {
        // Seeded small random mappings, including non-full first hops.
        for seed in 0..12u64 {
            let mut r = rand_rng(seed);
            let m12 = random_small_mapping(&mut r, "In", "Mid", false);
            let m23 = {
                let tgt = qi_schema::Schema::parse("Out0/2 Out1/1").unwrap();
                let mut tgds = Vec::new();
                for _ in 0..2 {
                    tgds.push(random_tgd_between(&mut r, &m12.target, &tgt));
                }
                SchemaMapping::new(m12.target.clone(), tgt, tgds).unwrap()
            };
            let so = so_compose(&m12, &m23).unwrap();
            let i = random_instance(&mut r, &m12.source);
            let one = so_chase(&so, &i).unwrap();
            let two = two_hop(&m12, &m23, &i);
            assert!(
                hom_equivalent(&one, &two),
                "seed {seed}: I = {i}\nΣ12:\n{m12}\nΣ23:\n{m23}\nso: {one}\ntwo-hop: {two}"
            );
        }
    }

    // Minimal local generators (kept here to avoid a dev-dependency of
    // qi-core on qi-workloads, which depends back on qi-core).
    struct Lcg(u64);
    fn rand_rng(seed: u64) -> Lcg {
        Lcg(seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407))
    }
    impl Lcg {
        fn next(&mut self, bound: usize) -> usize {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as usize) % bound.max(1)
        }
    }

    fn random_small_mapping(r: &mut Lcg, sp: &str, tp: &str, full: bool) -> SchemaMapping {
        let src = qi_schema::Schema::parse(&format!("{sp}0/2 {sp}1/1")).unwrap();
        let tgt = qi_schema::Schema::parse(&format!("{tp}0/2 {tp}1/1")).unwrap();
        let mut tgds = Vec::new();
        while tgds.len() < 2 {
            let t = random_tgd_between_impl(r, &src, &tgt, full);
            tgds.push(t);
        }
        SchemaMapping::new(src, tgt, tgds).unwrap()
    }

    fn random_tgd_between(
        r: &mut Lcg,
        src: &qi_schema::Schema,
        tgt: &qi_schema::Schema,
    ) -> qi_lang::Tgd {
        random_tgd_between_impl(r, src, tgt, false)
    }

    fn random_tgd_between_impl(
        r: &mut Lcg,
        src: &qi_schema::Schema,
        tgt: &qi_schema::Schema,
        full: bool,
    ) -> qi_lang::Tgd {
        use qi_lang::{Atom, Tgd, Var};
        loop {
            let pool: Vec<Var> = (0..3).map(|i| Var::new(&format!("x{i}"))).collect();
            let nb = 1 + r.next(2);
            let body: Vec<Atom> = (0..nb)
                .map(|_| {
                    let rel = src.rel_ids().nth(r.next(src.len())).unwrap();
                    Atom::new(
                        rel,
                        (0..src.arity(rel))
                            .map(|_| pool[r.next(pool.len())].clone())
                            .collect(),
                    )
                })
                .collect();
            let bvars = qi_lang::atom::vars_of(&body);
            let e = Var::new("e0");
            let nh = 1 + r.next(2);
            let head: Vec<Atom> = (0..nh)
                .map(|_| {
                    let rel = tgt.rel_ids().nth(r.next(tgt.len())).unwrap();
                    Atom::new(
                        rel,
                        (0..tgt.arity(rel))
                            .map(|_| {
                                if !full && r.next(4) == 0 {
                                    e.clone()
                                } else {
                                    bvars[r.next(bvars.len())].clone()
                                }
                            })
                            .collect(),
                    )
                })
                .collect();
            let hvars = qi_lang::atom::vars_of(&head);
            let exists: Vec<Var> = if hvars.contains(&e) { vec![e] } else { vec![] };
            if let Ok(t) = Tgd::new(src.clone(), tgt.clone(), body, exists, head) {
                return t;
            }
        }
    }

    fn random_instance(r: &mut Lcg, schema: &qi_schema::Schema) -> Instance {
        let mut i = Instance::new(schema.clone());
        for _ in 0..4 {
            let rel = schema.rel_ids().nth(r.next(schema.len())).unwrap();
            let args: Vec<qi_schema::Value> = (0..schema.arity(rel))
                .map(|_| qi_schema::Value::constant(&format!("c{}", r.next(3))))
                .collect();
            i.insert(rel, args).unwrap();
        }
        i
    }
}

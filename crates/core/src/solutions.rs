//! Solution spaces and the equivalence relation `~M` (§3).
//!
//! For a mapping specified by s-t tgds, `J` is a solution for a ground
//! instance `I` iff there is a homomorphism `chase_Σ(I) → J`. Hence
//!
//! * `Sol(M, I₂) ⊆ Sol(M, I₁)`  ⟺  there is a homomorphism
//!   `chase_Σ(I₁) → chase_Σ(I₂)`, and
//! * `I₁ ~M I₂` (Definition 3.1: equal solution spaces)  ⟺
//!   `chase_Σ(I₁)` and `chase_Σ(I₂)` are homomorphically equivalent.
//!
//! Both directions: the chase result is itself a solution of its instance
//! and maps into every solution; composing homomorphisms transfers
//! membership between the two spaces.

use crate::error::CoreError;
use crate::mapping::SchemaMapping;
use qi_schema::{has_hom, hom_equivalent, Instance};

/// Does `Sol(M, inner) ⊆ Sol(M, outer)` hold?
///
/// Equivalently: is every target instance satisfying `Σ` with `inner`
/// also a solution for `outer`? Decided via the homomorphism test
/// `chase_Σ(outer) → chase_Σ(inner)`.
pub fn solutions_subset(
    m: &SchemaMapping,
    inner: &Instance,
    outer: &Instance,
) -> Result<bool, CoreError> {
    let chase_inner = m.chase(inner)?;
    let chase_outer = m.chase(outer)?;
    Ok(has_hom(&chase_outer, &chase_inner))
}

/// The equivalence relation `~M`: do `a` and `b` have the same space of
/// solutions (Definition 3.1)?
///
/// ```
/// use qi_core::{equivalent, SchemaMapping};
/// use qi_schema::Instance;
///
/// // Projection: the second column is invisible to the solution space.
/// let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
/// let a = Instance::parse(&m.source, "P(a,b)").unwrap();
/// let b = Instance::parse(&m.source, "P(a,c)").unwrap();
/// assert!(equivalent(&m, &a, &b).unwrap());
/// ```
pub fn equivalent(m: &SchemaMapping, a: &Instance, b: &Instance) -> Result<bool, CoreError> {
    let ca = m.chase(a)?;
    let cb = m.chase(b)?;
    Ok(hom_equivalent(&ca, &cb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_chase::is_solution;

    fn decomposition() -> SchemaMapping {
        SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap()
    }

    #[test]
    fn example_3_10_equivalent_instances() {
        // I1 = {(0,0,0),(0,0,1),(1,0,0)}; I2 = I1 ∪ {(1,0,1)}:
        // the paper's witness that Decomposition lacks unique solutions.
        let m = decomposition();
        let i1 = Instance::parse(&m.source, "P(c0,c0,c0) P(c0,c0,c1) P(c1,c0,c0)").unwrap();
        let i2 = i1
            .union(&Instance::parse(&m.source, "P(c1,c0,c1)").unwrap())
            .unwrap();
        assert!(equivalent(&m, &i1, &i2).unwrap());
        assert!(solutions_subset(&m, &i1, &i2).unwrap());
        assert!(solutions_subset(&m, &i2, &i1).unwrap());
    }

    #[test]
    fn subset_instances_have_superset_solutions() {
        let m = decomposition();
        let small = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        let big = Instance::parse(&m.source, "P(a,b,c) P(d,e,f)").unwrap();
        // I1 ⊆ I2 ⇒ Sol(I2) ⊆ Sol(I1).
        assert!(solutions_subset(&m, &big, &small).unwrap());
        assert!(!solutions_subset(&m, &small, &big).unwrap());
        assert!(!equivalent(&m, &small, &big).unwrap());
    }

    #[test]
    fn solutions_subset_agrees_with_membership_sampling() {
        let m = decomposition();
        let i1 = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        let i2 = Instance::parse(&m.source, "P(a,b,c) P(a,b,d)").unwrap();
        assert!(solutions_subset(&m, &i2, &i1).unwrap());
        // Sample: every solution of i2 we try is a solution of i1.
        let u2 = m.chase(&i2).unwrap();
        assert!(is_solution(&m.tgds, &i1, &u2));
    }

    #[test]
    fn equivalence_is_reflexive_and_symmetric() {
        let m = decomposition();
        let i = Instance::parse(&m.source, "P(a,b,c)").unwrap();
        let j = Instance::parse(&m.source, "P(d,e,f)").unwrap();
        assert!(equivalent(&m, &i, &i).unwrap());
        assert_eq!(
            equivalent(&m, &i, &j).unwrap(),
            equivalent(&m, &j, &i).unwrap()
        );
    }
}

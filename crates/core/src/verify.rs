//! Bounded verification of Definitions 3.3 / 3.8: is a candidate reverse
//! mapping an inverse / quasi-inverse of a schema mapping?
//!
//! Definition 3.8 requires `Inst(Id)[~M,~M] = Inst(M ∘ M')[~M,~M]` — a
//! condition quantifying over all pairs of ground instances, with inner
//! existential quantifiers again over all ground instances. Decidability
//! is open (§7), so these checkers quantify **both** levels over a finite
//! caller-supplied universe:
//!
//! * a returned *mismatch* whose left side holds via an in-universe
//!   witness but whose right side has no in-universe witness (or vice
//!   versa) is a counterexample *candidate* — conclusive only if a
//!   separate argument confines witnesses to the universe;
//! * agreement on a universe that is closed under the constructions the
//!   paper's proofs use (unions, subinstances over the same constants) is
//!   strong evidence and, on the paper's own example mappings, matches
//!   the claimed verdicts exactly (see `tests/paper_catalogue.rs`).
//!
//! Composition membership is exact, via Proposition 6.6
//! ([`crate::exchange::composition_contains`]); the reverse mapping must
//! be guard-complete.

use crate::error::{CoreError, CorePartial};
use crate::exchange::{guard_complete, recovery_leaves};
use crate::framework::{index_universe, Relation};
use crate::mapping::{ReverseMapping, SchemaMapping};
use qi_chase::DisjChaseOptions;
use qi_exec::{Budget, ExecStats};
use qi_schema::{HomCache, Instance};

/// Outcome of a bounded inverse / quasi-inverse verification.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// No mismatch found within the universe.
    pub holds: bool,
    /// Pairs `(i, j)` of universe indexes where the two sides of the
    /// definition disagree (with witnesses restricted to the universe).
    pub mismatches: Vec<(usize, usize)>,
    /// Number of pairs examined.
    pub checked: usize,
}

/// The exact composition-membership matrix over a universe:
/// `matrix[i][k]` is `(universe[i], universe[k]) ∈ Inst(m ∘ rev)`.
/// Shared by the inverse verifiers here and the recovery checks of
/// [`crate::recovery`].
pub(crate) fn composition_matrix(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
    budget: &Budget,
) -> Result<Vec<Vec<bool>>, CoreError> {
    if !guard_complete(rev) {
        return Err(CoreError::Precondition(
            "bounded verification requires a guard-complete reverse mapping".into(),
        ));
    }
    // Distinct universe instances frequently chase to fingerprint-equal
    // leaves (ground universes are small and highly symmetric), so one
    // cache serves the whole matrix. Cached booleans are pure: the matrix
    // is identical with or without it.
    let cache = HomCache::new();
    let limited = !budget.is_unlimited();
    let mut rows = Vec::with_capacity(universe.len());
    for i in universe {
        // Per-row budget check; every row's recovery chase also inherits
        // the budget, so the matrix as a whole is interruptible.
        if limited {
            if let Err(e) = budget.check() {
                return Err(CoreError::resource(
                    e,
                    ExecStats::default(),
                    CorePartial::None,
                ));
            }
        }
        let options = DisjChaseOptions {
            budget: budget.clone(),
            ..Default::default()
        };
        let leaves = recovery_leaves(m, rev, i, options)?;
        let row: Vec<bool> = universe
            .iter()
            .map(|k| leaves.iter().any(|v| cache.has_hom(v, k)))
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

/// Bounded check of Definition 3.3 for arbitrary refinement relations:
/// is `rev` a `(~1,~2)`-inverse of `m` as far as the universe can tell?
/// For every pair `(I₁, I₂)` of universe instances,
///
/// * LHS: ∃ in-universe `(I₁', I₂')` with `I₁ ~1 I₁'`, `I₂ ~2 I₂'` and
///   `I₁' ⊆ I₂'` — i.e. `(I₁,I₂) ∈ Inst(Id)[~1,~2]` restricted to the
///   universe;
/// * RHS: same witnesses but with `(I₁', I₂') ∈ Inst(M ∘ M')`;
///
/// and the two must coincide. With `(=,=)` this is Definition 3.3's
/// inverse; with `(~M,~M)` Definition 3.8's quasi-inverse; the mixed
/// combinations realize the intermediate relaxations of §3.
pub fn is_relaxed_inverse_bounded(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    rel1: Relation,
    rel2: Relation,
    universe: &[Instance],
) -> Result<VerifyReport, CoreError> {
    is_relaxed_inverse_bounded_budgeted(m, rev, rel1, rel2, universe, &Budget::unlimited())
}

/// [`is_relaxed_inverse_bounded`] under a cooperative resource budget:
/// the composition matrix (the expensive part — one disjunctive chase
/// per universe instance) checks the budget per row and threads it into
/// every chase, so the verification is interruptible. A trip surfaces
/// as [`CoreError::Resource`]; the verdict of an under-budget run is
/// identical to the unbudgeted one.
pub fn is_relaxed_inverse_bounded_budgeted(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    rel1: Relation,
    rel2: Relation,
    universe: &[Instance],
    budget: &Budget,
) -> Result<VerifyReport, CoreError> {
    let comp = composition_matrix(m, rev, universe, budget)?;
    let idx = index_universe(m, universe)?;
    let n = universe.len();
    // The ~i-witness candidates for each instance: itself for `=`, its
    // whole ~M class for `~M`.
    let witnesses = |rel: Relation, a: usize| -> Vec<usize> {
        match rel {
            Relation::Equality => vec![a],
            Relation::SolutionEquiv => (0..n).filter(|&w| idx.class[w] == idx.class[a]).collect(),
        }
    };
    // Precompute subinstance pairs.
    let mut subset = vec![vec![false; n]; n];
    for a in 0..n {
        for b in 0..n {
            subset[a][b] = universe[a].is_subinstance_of(&universe[b])?;
        }
    }
    let mut mismatches = Vec::new();
    let mut checked = 0usize;
    for a in 0..n {
        let w1s = witnesses(rel1, a);
        for b in 0..n {
            checked += 1;
            let w2s = witnesses(rel2, b);
            let lhs = w1s.iter().any(|&w1| w2s.iter().any(|&w2| subset[w1][w2]));
            let rhs = w1s.iter().any(|&w1| w2s.iter().any(|&w2| comp[w1][w2]));
            if lhs != rhs {
                mismatches.push((a, b));
            }
        }
    }
    Ok(VerifyReport {
        holds: mismatches.is_empty(),
        mismatches,
        checked,
    })
}

/// Bounded check of Definition 3.3 with `(~1,~2) = (=,=)`: is `rev` an
/// inverse of `m` as far as the universe can tell? For every pair,
/// `I₁ ⊆ I₂` must coincide with `(I₁, I₂) ∈ Inst(M ∘ M')`.
pub fn is_inverse_bounded(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
) -> Result<VerifyReport, CoreError> {
    is_relaxed_inverse_bounded(m, rev, Relation::Equality, Relation::Equality, universe)
}

/// [`is_inverse_bounded`] under a cooperative resource budget.
pub fn is_inverse_bounded_budgeted(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
    budget: &Budget,
) -> Result<VerifyReport, CoreError> {
    is_relaxed_inverse_bounded_budgeted(
        m,
        rev,
        Relation::Equality,
        Relation::Equality,
        universe,
        budget,
    )
}

/// Bounded check of Definition 3.8 (`(~M,~M)`-inverse): is `rev` a
/// quasi-inverse of `m` as far as the universe can tell?
pub fn is_quasi_inverse_bounded(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
) -> Result<VerifyReport, CoreError> {
    is_relaxed_inverse_bounded(
        m,
        rev,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        universe,
    )
}

/// [`is_quasi_inverse_bounded`] under a cooperative resource budget.
pub fn is_quasi_inverse_bounded_budgeted(
    m: &SchemaMapping,
    rev: &ReverseMapping,
    universe: &[Instance],
    budget: &Budget,
) -> Result<VerifyReport, CoreError> {
    is_relaxed_inverse_bounded_budgeted(
        m,
        rev,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        universe,
        budget,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::ground_instances;
    use crate::inverse::inverse;
    use crate::quasi_inverse::{quasi_inverse, QuasiInverseOptions};

    #[test]
    fn projection_algorithm_output_verifies_as_quasi_inverse() {
        let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(report.holds, "mismatches: {:?}", report.mismatches);
        // ... but it is NOT an inverse (projection is not invertible).
        let inv_report = is_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(!inv_report.holds);
    }

    #[test]
    fn copy_inverse_verifies() {
        let m = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
        let rev = inverse(&m).unwrap().unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let report = is_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(report.holds, "mismatches: {:?}", report.mismatches);
        // Every inverse is a quasi-inverse (Proposition 3.7 direction).
        let q = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(q.holds);
    }

    #[test]
    fn wrong_reverse_mapping_rejected() {
        // "Inverse" that transposes the copy: detectably wrong.
        let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
        let rev = ReverseMapping::parse(&m, &["Q(x,y) & const(x) & const(y) -> P(y,x)"]).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 1);
        let report = is_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(!report.holds);
    }

    #[test]
    fn union_algorithm_output_verifies_as_quasi_inverse() {
        let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
        let rev = quasi_inverse(&m, &QuasiInverseOptions::default()).unwrap();
        let universe = ground_instances(&m.source, &["a", "b"], 2);
        let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
        assert!(report.holds, "mismatches: {:?}", report.mismatches);
    }
}

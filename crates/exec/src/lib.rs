//! # qi-exec — the deterministic parallel executor
//!
//! Every search-heavy path of the reproduction (MinGen candidate
//! evaluation, chase trigger enumeration, disjunctive-chase branch
//! exploration) is exponential by construction, yet each decomposes into
//! *independent pure tasks over an immutable snapshot*. This crate is the
//! one place that turns such task lists into wall-clock parallelism
//! without sacrificing reproducibility.
//!
//! ## Determinism contract
//!
//! 1. **Snapshot** — callers hand [`par_map`] an immutable slice of task
//!    inputs; tasks must not mutate shared state.
//! 2. **Parallel enumerate** — tasks are pulled off a shared atomic
//!    cursor by scoped worker threads in unspecified interleaving.
//! 3. **Ordered commit** — results are returned in *input order*, so any
//!    downstream fold (pruning, dedup, output) observes exactly the
//!    sequence the sequential run would produce.
//!
//! With [`Parallelism`] resolving to one thread, `par_map` degenerates to
//! a plain in-place `iter().map()` — the exact sequential code path, with
//! no thread spawned. Consequently a parallel run is *bit-identical* to
//! the sequential run whenever the per-task closure is a pure function of
//! its input, which `tests/determinism.rs` locks down across thread
//! counts for every workload.
//!
//! ## Resource budgets
//!
//! The same task lists are where unbounded exponential searches burn
//! their time, so the executor also owns the cooperative [`Budget`]: a
//! wall-clock deadline, caps on executor tasks and derived facts, and an
//! external cancellation flag, shared by `Arc` across every stage of one
//! algorithm run. [`par_map_budgeted`] workers re-check the budget
//! between tasks and stop pulling work the moment it is exhausted;
//! higher layers (the chase loops, MinGen's commit phase) add their own
//! per-round / per-trigger / per-candidate checks. Exhaustion is always
//! surfaced as a structured [`Exceeded`] value — never a panic — and a
//! run that *completes* under its budget is byte-identical to the
//! unbudgeted run at every thread count (the budget can only decide
//! *whether* the search finishes, never *what* it returns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide default thread count override (0 = unset). Set by the
/// CLI's `--threads` flag; read by [`Parallelism::resolve`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default degree of parallelism (`0` clears the
/// override). Explicit [`Parallelism::fixed`] values always win over
/// this; it only changes what [`Parallelism::auto`] resolves to.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The `QI_THREADS` environment variable, parsed **once** per process.
/// [`Parallelism::resolve`] is called from hot loops (via
/// [`Parallelism::is_parallel`]), so re-reading and re-parsing the
/// environment on every call is measurable; the value cannot change
/// under a running process in any supported configuration. An unset
/// variable is "no opinion"; `0`, empty, or unparsable values are
/// rejected with a single warning instead of being silently treated as
/// auto.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| match std::env::var("QI_THREADS") {
        Err(_) => None,
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "qi-exec: ignoring invalid QI_THREADS value `{v}` \
                     (expected a positive integer); auto-detecting"
                );
                None
            }
        },
    })
}

/// `std::thread::available_parallelism()`, probed once per process.
fn available_threads() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Degree of parallelism for the deterministic executor.
///
/// `auto` (the default) resolves, in order, to: the process-wide override
/// of [`set_global_threads`], the `QI_THREADS` environment variable, and
/// finally `std::thread::available_parallelism()`. `fixed(1)` selects the
/// exact sequential code path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Parallelism {
    /// `None` = auto-detect at resolution time.
    threads: Option<NonZeroUsize>,
}

impl Parallelism {
    /// Auto-detect (global override, then `QI_THREADS`, then cores).
    pub fn auto() -> Self {
        Parallelism { threads: None }
    }

    /// Exactly `n` worker threads (`n` is clamped up to 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            threads: Some(NonZeroUsize::new(n.max(1)).expect("clamped")),
        }
    }

    /// The exact sequential code path (one thread, no spawns).
    pub fn sequential() -> Self {
        Parallelism::fixed(1)
    }

    /// The concrete thread count this configuration resolves to now.
    ///
    /// The `QI_THREADS` and core-count probes are cached in `OnceLock`s:
    /// this is called in hot loops and must stay cheap.
    pub fn resolve(self) -> usize {
        if let Some(n) = self.threads {
            return n.get();
        }
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if global > 0 {
            return global;
        }
        if let Some(n) = env_threads() {
            return n;
        }
        available_threads()
    }

    /// Does this configuration resolve to more than one worker?
    pub fn is_parallel(self) -> bool {
        self.resolve() > 1
    }
}

/// Which resource limit a budgeted search exhausted. Carried by the
/// structured resource errors of the chase and core crates; never a
/// panic.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Exceeded {
    /// The wall-clock deadline passed ([`Budget::with_deadline`]).
    Deadline,
    /// The executor-task cap was reached ([`Budget::with_max_tasks`]).
    Tasks,
    /// The derived-fact cap was reached ([`Budget::with_max_facts`]).
    Facts,
    /// The shared cancellation flag was raised ([`Budget::with_cancel`]).
    Cancelled,
}

impl fmt::Display for Exceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exceeded::Deadline => write!(f, "deadline"),
            Exceeded::Tasks => write!(f, "task budget"),
            Exceeded::Facts => write!(f, "fact budget"),
            Exceeded::Cancelled => write!(f, "cancellation"),
        }
    }
}

/// Usage counters shared by every clone of one [`Budget`].
#[derive(Debug, Default)]
struct Charged {
    tasks: AtomicU64,
    facts: AtomicU64,
}

/// A cooperative resource budget for the exponential search paths.
///
/// A budget combines up to four independent limits — a wall-clock
/// deadline, a cap on executor tasks, a cap on derived facts, and an
/// externally owned cancellation flag — and a pair of usage counters.
/// **Cloning shares the counters** (they live behind an `Arc`), so one
/// budget threaded through every stage of an algorithm run (s-t chase,
/// target rounds, MinGen candidate tests, …) charges a single pool; this
/// is what makes the caps *end-to-end* rather than per-stage.
///
/// The default budget is unlimited: every check passes and the budgeted
/// entry points behave exactly like their unbudgeted counterparts.
///
/// Checks are cooperative — search loops call [`Budget::check`] between
/// units of work (executor workers between tasks, the chase per round
/// and per trigger, MinGen per candidate) — so exhaustion surfaces at
/// the next check, never mid-task. The *point* of interruption may vary
/// with thread count and machine speed; the error shape and the
/// soundness of any partial artifact may not.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    max_tasks: Option<u64>,
    max_facts: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    charged: Arc<Charged>,
}

impl Budget {
    /// The default: no limits, every check passes.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Limit wall-clock time to `timeout` from now.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Limit wall-clock time to the absolute instant `at`.
    #[must_use]
    pub fn with_deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    /// Cap the number of executor tasks charged against this budget.
    #[must_use]
    pub fn with_max_tasks(mut self, n: u64) -> Self {
        self.max_tasks = Some(n);
        self
    }

    /// Cap the number of derived facts charged against this budget.
    #[must_use]
    pub fn with_max_facts(mut self, n: u64) -> Self {
        self.max_facts = Some(n);
        self
    }

    /// Attach an external cancellation flag: any thread storing `true`
    /// makes the next check fail with [`Exceeded::Cancelled`].
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// The attached cancellation flag, if any.
    pub fn cancel_flag(&self) -> Option<&Arc<AtomicBool>> {
        self.cancel.as_ref()
    }

    /// `true` when no limit is configured — the budgeted entry points
    /// use this to skip per-task checking entirely.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_tasks.is_none()
            && self.max_facts.is_none()
            && self.cancel.is_none()
    }

    /// Charge `n` executor tasks against the shared pool.
    pub fn charge_tasks(&self, n: u64) {
        self.charged.tasks.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` derived facts against the shared pool.
    pub fn charge_facts(&self, n: u64) {
        self.charged.facts.fetch_add(n, Ordering::Relaxed);
    }

    /// Executor tasks charged so far (across every clone).
    pub fn tasks_charged(&self) -> u64 {
        self.charged.tasks.load(Ordering::Relaxed)
    }

    /// Derived facts charged so far (across every clone).
    pub fn facts_charged(&self) -> u64 {
        self.charged.facts.load(Ordering::Relaxed)
    }

    /// Is the budget exhausted? Checked in a fixed order — cancellation,
    /// deadline, tasks, facts — so concurrent exhaustion of several
    /// limits reports deterministically.
    ///
    /// Both caps are inclusive: exactly `max_tasks` tasks (the check
    /// runs before each task, so the `max + 1`-th never starts) and
    /// exactly `max_facts` derived facts are within budget. The fact
    /// cap trips at the first checkpoint after it is *exceeded* — one
    /// chase step may overshoot it by that step's delta, which is why a
    /// search that derives exactly `max_facts` facts and stops still
    /// completes.
    pub fn check(&self) -> Result<(), Exceeded> {
        if let Some(flag) = &self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Err(Exceeded::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(Exceeded::Deadline);
            }
        }
        if let Some(max) = self.max_tasks {
            if self.tasks_charged() >= max {
                return Err(Exceeded::Tasks);
            }
        }
        if let Some(max) = self.max_facts {
            if self.facts_charged() > max {
                return Err(Exceeded::Facts);
            }
        }
        Ok(())
    }
}

/// Counters describing one executor run, for bench JSON and utilization
/// reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads that participated (1 for the sequential path);
    /// after [`ExecStats::absorb`], the largest count of any merged run.
    pub workers: usize,
    /// Total tasks executed.
    pub tasks: u64,
    /// The heaviest single-worker load of any one run: the largest
    /// number of tasks one worker executed within a run (absorbing takes
    /// the max across runs — per-run loads are never summed across runs
    /// with unrelated worker layouts).
    pub max_load: u64,
    /// Worker-slot capacity under each run's critical path, summed over
    /// absorbed runs: `Σ_run workers · max_load`. The denominator of
    /// [`ExecStats::utilization`]; for a single run this is
    /// `workers × max_load`.
    pub capacity: u64,
    /// Chase rounds executed (semi-naive or naive).
    pub rounds: u64,
    /// Trigger candidates enumerated by the match engines (pre-dedup).
    pub triggers_enumerated: u64,
    /// Triggers that actually fired (inserted head facts).
    pub triggers_fired: u64,
    /// Match-engine candidate queries served from an incrementally
    /// maintained posting list.
    pub postings_reused: u64,
    /// Match-engine candidate queries that scanned a whole relation
    /// (no pattern position bound).
    pub postings_rebuilt: u64,
    /// Sum of per-round delta sizes consulted by semi-naive rounds.
    pub delta_facts: u64,
    /// Homomorphism-cache lookups answered without a search (including
    /// the equal-fingerprint isomorphism shortcut).
    pub hom_cache_hits: u64,
    /// Homomorphism-cache lookups that had to run the search.
    pub hom_cache_misses: u64,
}

impl ExecStats {
    /// Merge another run's counters into this one. `workers` and
    /// `max_load` take the max, `capacity` and everything else sums —
    /// per-worker loads of runs with different worker counts are *never*
    /// zipped index-wise (worker 0 of a sequential run has nothing to do
    /// with worker 0 of a 4-way run), so [`ExecStats::utilization`]
    /// stays meaningful across merges.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.workers = self.workers.max(other.workers);
        self.tasks += other.tasks;
        self.max_load = self.max_load.max(other.max_load);
        self.capacity += other.capacity;
        self.rounds += other.rounds;
        self.triggers_enumerated += other.triggers_enumerated;
        self.triggers_fired += other.triggers_fired;
        self.postings_reused += other.postings_reused;
        self.postings_rebuilt += other.postings_rebuilt;
        self.delta_facts += other.delta_facts;
        self.hom_cache_hits += other.hom_cache_hits;
        self.hom_cache_misses += other.hom_cache_misses;
    }

    /// Load balance in `[0, 1]`: tasks executed over the worker-slot
    /// capacity available under each run's critical path
    /// (`Σ_run workers · max_load`). For a single run this equals the
    /// classical mean-over-max per-worker load; for merged runs each
    /// run's balance is weighted by its own critical path instead of
    /// conflating unrelated worker indexes. `1.0` means perfectly even;
    /// reported as 1.0 when no tasks ran.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.tasks as f64 / self.capacity as f64
    }
}

/// Map `f` over `items`, returning results in input order.
///
/// The parallel path fans items out to scoped worker threads through a
/// shared atomic cursor and scatters the results back by index, so the
/// output is independent of scheduling. With one resolved thread this is
/// exactly `items.iter().map(f).collect()`.
pub fn par_map<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_stats(par, items, f).0
}

/// [`par_map`] plus per-run counters.
pub fn par_map_stats<I, T, F>(par: Parallelism, items: &[I], f: F) -> (Vec<T>, ExecStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    match par_map_budgeted(par, items, &Budget::unlimited(), f) {
        Ok(out) => out,
        Err(_) => unreachable!("an unlimited budget never trips"),
    }
}

/// [`par_map_stats`] under a cooperative [`Budget`]: every worker
/// re-checks the budget before pulling each task and charges one
/// executor task per item executed. When the budget trips, workers stop
/// pulling, in-flight results are discarded, and the exhaustion reason
/// is returned — the caller owns whatever partial artifact it was
/// building around the map.
///
/// A call that returns `Ok` is byte-identical to [`par_map_stats`] at
/// every thread count; with several limits exhausted concurrently the
/// reported reason follows [`Budget::check`]'s fixed order per worker,
/// and the first-tripping worker wins.
pub fn par_map_budgeted<I, T, F>(
    par: Parallelism,
    items: &[I],
    budget: &Budget,
    f: F,
) -> Result<(Vec<T>, ExecStats), Exceeded>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = par.resolve().min(items.len()).max(1);
    let unlimited = budget.is_unlimited();
    if threads == 1 {
        let mut out: Vec<T> = Vec::with_capacity(items.len());
        for item in items {
            if !unlimited {
                budget.check()?;
            }
            out.push(f(item));
            budget.charge_tasks(1);
        }
        let n = out.len() as u64;
        let stats = ExecStats {
            workers: 1,
            tasks: n,
            max_load: n,
            capacity: n,
            ..Default::default()
        };
        return Ok((out, stats));
    }
    let cursor = AtomicUsize::new(0);
    // First exhaustion reason, encoded as 1 + discriminant (0 = none).
    let tripped = AtomicUsize::new(0);
    let encode = |e: Exceeded| match e {
        Exceeded::Deadline => 1,
        Exceeded::Tasks => 2,
        Exceeded::Facts => 3,
        Exceeded::Cancelled => 4,
    };
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        // Claim a task *before* checking the budget: a
                        // budget of exactly `items.len()` tasks must
                        // complete here just like it does sequentially
                        // (the sequential path only checks when another
                        // item remains), or thread count would change
                        // the outcome.
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        if !unlimited {
                            if tripped.load(Ordering::Relaxed) != 0 {
                                break;
                            }
                            if let Err(e) = budget.check() {
                                let _ = tripped.compare_exchange(
                                    0,
                                    encode(e),
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                );
                                break;
                            }
                        }
                        local.push((i, f(&items[i])));
                        budget.charge_tasks(1);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    match tripped.load(Ordering::Relaxed) {
        0 => {}
        1 => return Err(Exceeded::Deadline),
        2 => return Err(Exceeded::Tasks),
        3 => return Err(Exceeded::Facts),
        _ => return Err(Exceeded::Cancelled),
    }
    let mut max_load = 0u64;
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for bucket in buckets {
        max_load = max_load.max(bucket.len() as u64);
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "index produced twice");
            slots[i] = Some(value);
        }
    }
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("atomic cursor visits every index exactly once"))
        .collect();
    let stats = ExecStats {
        workers: threads,
        tasks: out.len() as u64,
        max_load,
        capacity: threads as u64 * max_load,
        ..Default::default()
    };
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let got = par_map(Parallelism::fixed(threads), &items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::fixed(4), &none, |&x| x).is_empty());
        assert_eq!(par_map(Parallelism::fixed(4), &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn stats_account_for_every_task() {
        let items: Vec<u32> = (0..100).collect();
        let (_, stats) = par_map_stats(Parallelism::fixed(4), &items, |&x| x);
        assert_eq!(stats.tasks, 100);
        assert!(stats.max_load >= 25, "some worker ran ≥ mean load");
        assert_eq!(stats.capacity, 4 * stats.max_load);
        assert_eq!(stats.workers, 4);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn sequential_stats() {
        let (_, stats) = par_map_stats(Parallelism::sequential(), &[1, 2, 3], |&x: &i32| x);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.max_load, 3);
        assert_eq!(stats.capacity, 3);
        assert_eq!(stats.utilization(), 1.0);
    }

    #[test]
    fn fixed_overrides_global() {
        assert_eq!(Parallelism::fixed(3).resolve(), 3);
        assert_eq!(Parallelism::fixed(0).resolve(), 1, "clamped up to 1");
    }

    #[test]
    fn workers_capped_by_item_count() {
        let (_, stats) = par_map_stats(Parallelism::fixed(8), &[1, 2], |&x: &i32| x);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut a = ExecStats {
            workers: 2,
            tasks: 4,
            max_load: 2,
            capacity: 4,
            triggers_enumerated: 10,
            postings_reused: 3,
            hom_cache_hits: 2,
            ..Default::default()
        };
        let b = ExecStats {
            workers: 4,
            tasks: 8,
            max_load: 2,
            capacity: 8,
            rounds: 2,
            triggers_enumerated: 5,
            triggers_fired: 4,
            postings_rebuilt: 1,
            delta_facts: 7,
            hom_cache_hits: 5,
            hom_cache_misses: 6,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.tasks, 12);
        assert_eq!(a.max_load, 2);
        assert_eq!(a.capacity, 12);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.triggers_enumerated, 15);
        assert_eq!(a.triggers_fired, 4);
        assert_eq!(a.postings_reused, 3);
        assert_eq!(a.postings_rebuilt, 1);
        assert_eq!(a.delta_facts, 7);
        assert_eq!(a.hom_cache_hits, 7);
        assert_eq!(a.hom_cache_misses, 6);
    }

    /// Regression for the `absorb` per-worker zip bug: a perfectly
    /// balanced sequential run (100 tasks on 1 worker) absorbed into a
    /// perfectly balanced 4-way run (3 tasks per worker) must report
    /// perfect utilization. The old element-wise `per_worker` merge
    /// credited the sequential run's 100 tasks to worker 0 of the 4-way
    /// layout and reported ≈ 0.27.
    #[test]
    fn absorb_keeps_utilization_meaningful_across_worker_counts() {
        let mut a = ExecStats {
            workers: 4,
            tasks: 12,
            max_load: 3,
            capacity: 12,
            ..Default::default()
        };
        let b = ExecStats {
            workers: 1,
            tasks: 100,
            max_load: 100,
            capacity: 100,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.tasks, 112);
        assert_eq!(a.capacity, 112);
        assert_eq!(a.max_load, 100);
        assert_eq!(a.utilization(), 1.0, "two balanced runs merge balanced");
        // An imbalanced run degrades the merged number proportionally.
        let c = ExecStats {
            workers: 2,
            tasks: 10,
            max_load: 9,
            capacity: 18,
            ..Default::default()
        };
        a.absorb(&c);
        let u = a.utilization();
        assert!(u < 1.0 && u > 0.9, "122/130 ≈ 0.94, got {u}");
    }

    #[test]
    fn unlimited_budget_is_transparent() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1usize, 4] {
            let plain = par_map_stats(Parallelism::fixed(threads), &items, |&x| x * 3);
            let budgeted = par_map_budgeted(
                Parallelism::fixed(threads),
                &items,
                &Budget::unlimited(),
                |&x| x * 3,
            )
            .unwrap();
            assert_eq!(plain.0, budgeted.0);
            assert_eq!(plain.1.tasks, budgeted.1.tasks);
        }
    }

    #[test]
    fn task_budget_trips_without_panicking() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 4] {
            let budget = Budget::unlimited().with_max_tasks(10);
            let err =
                par_map_budgeted(Parallelism::fixed(threads), &items, &budget, |&x| x).unwrap_err();
            assert_eq!(err, Exceeded::Tasks, "threads = {threads}");
            assert!(budget.tasks_charged() >= 10);
        }
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let items: Vec<u64> = (0..100).collect();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        let err = par_map_budgeted(Parallelism::fixed(4), &items, &budget, |&x| x).unwrap_err();
        assert_eq!(err, Exceeded::Deadline);
    }

    #[test]
    fn cancellation_flag_stops_workers() {
        let flag = Arc::new(AtomicBool::new(false));
        let budget = Budget::unlimited().with_cancel(Arc::clone(&flag));
        let items: Vec<u64> = (0..8).collect();
        // Not yet cancelled: behaves like the plain map.
        let ok = par_map_budgeted(Parallelism::fixed(2), &items, &budget, |&x| x).unwrap();
        assert_eq!(ok.0, items);
        flag.store(true, Ordering::Relaxed);
        let err = par_map_budgeted(Parallelism::fixed(2), &items, &budget, |&x| x).unwrap_err();
        assert_eq!(err, Exceeded::Cancelled);
    }

    #[test]
    fn clones_share_one_charge_pool() {
        let budget = Budget::unlimited().with_max_tasks(5);
        let clone = budget.clone();
        clone.charge_tasks(5);
        assert_eq!(budget.check(), Err(Exceeded::Tasks));
        assert_eq!(budget.tasks_charged(), 5);
        // Fact charges are likewise shared; the cap is inclusive, so
        // exactly 2 facts is within budget and the 3rd trips it.
        let fb = Budget::unlimited().with_max_facts(2);
        fb.clone().charge_facts(2);
        assert_eq!(fb.check(), Ok(()));
        fb.clone().charge_facts(1);
        assert_eq!(fb.check(), Err(Exceeded::Facts));
    }

    #[test]
    fn check_order_is_deterministic() {
        // Cancellation outranks deadline outranks tasks outranks facts.
        let flag = Arc::new(AtomicBool::new(true));
        let b = Budget::unlimited()
            .with_cancel(flag)
            .with_deadline(Duration::ZERO)
            .with_max_tasks(0)
            .with_max_facts(0);
        assert_eq!(b.check(), Err(Exceeded::Cancelled));
        let b = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .with_max_tasks(0);
        assert_eq!(b.check(), Err(Exceeded::Deadline));
        let b = Budget::unlimited().with_max_tasks(0).with_max_facts(0);
        b.charge_facts(1);
        assert_eq!(b.check(), Err(Exceeded::Tasks));
        let b = Budget::unlimited().with_max_facts(0);
        b.charge_facts(1);
        assert_eq!(b.check(), Err(Exceeded::Facts));
        assert!(Budget::unlimited().check().is_ok());
        assert!(Budget::unlimited().is_unlimited());
    }
}

//! # qi-exec — the deterministic parallel executor
//!
//! Every search-heavy path of the reproduction (MinGen candidate
//! evaluation, chase trigger enumeration, disjunctive-chase branch
//! exploration) is exponential by construction, yet each decomposes into
//! *independent pure tasks over an immutable snapshot*. This crate is the
//! one place that turns such task lists into wall-clock parallelism
//! without sacrificing reproducibility.
//!
//! ## Determinism contract
//!
//! 1. **Snapshot** — callers hand [`par_map`] an immutable slice of task
//!    inputs; tasks must not mutate shared state.
//! 2. **Parallel enumerate** — tasks are pulled off a shared atomic
//!    cursor by scoped worker threads in unspecified interleaving.
//! 3. **Ordered commit** — results are returned in *input order*, so any
//!    downstream fold (pruning, dedup, output) observes exactly the
//!    sequence the sequential run would produce.
//!
//! With [`Parallelism`] resolving to one thread, `par_map` degenerates to
//! a plain in-place `iter().map()` — the exact sequential code path, with
//! no thread spawned. Consequently a parallel run is *bit-identical* to
//! the sequential run whenever the per-task closure is a pure function of
//! its input, which `tests/determinism.rs` locks down across thread
//! counts for every workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default thread count override (0 = unset). Set by the
/// CLI's `--threads` flag; read by [`Parallelism::resolve`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default degree of parallelism (`0` clears the
/// override). Explicit [`Parallelism::fixed`] values always win over
/// this; it only changes what [`Parallelism::auto`] resolves to.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Degree of parallelism for the deterministic executor.
///
/// `auto` (the default) resolves, in order, to: the process-wide override
/// of [`set_global_threads`], the `QI_THREADS` environment variable, and
/// finally `std::thread::available_parallelism()`. `fixed(1)` selects the
/// exact sequential code path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Parallelism {
    /// `None` = auto-detect at resolution time.
    threads: Option<NonZeroUsize>,
}

impl Parallelism {
    /// Auto-detect (global override, then `QI_THREADS`, then cores).
    pub fn auto() -> Self {
        Parallelism { threads: None }
    }

    /// Exactly `n` worker threads (`n` is clamped up to 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            threads: Some(NonZeroUsize::new(n.max(1)).expect("clamped")),
        }
    }

    /// The exact sequential code path (one thread, no spawns).
    pub fn sequential() -> Self {
        Parallelism::fixed(1)
    }

    /// The concrete thread count this configuration resolves to now.
    pub fn resolve(self) -> usize {
        if let Some(n) = self.threads {
            return n.get();
        }
        let global = GLOBAL_THREADS.load(Ordering::Relaxed);
        if global > 0 {
            return global;
        }
        if let Ok(v) = std::env::var("QI_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Does this configuration resolve to more than one worker?
    pub fn is_parallel(self) -> bool {
        self.resolve() > 1
    }
}

/// Counters describing one executor run, for bench JSON and utilization
/// reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads that participated (1 for the sequential path).
    pub workers: usize,
    /// Total tasks executed.
    pub tasks: u64,
    /// Tasks executed by each worker, in worker index order.
    pub per_worker: Vec<u64>,
    /// Chase rounds executed (semi-naive or naive).
    pub rounds: u64,
    /// Trigger candidates enumerated by the match engines (pre-dedup).
    pub triggers_enumerated: u64,
    /// Triggers that actually fired (inserted head facts).
    pub triggers_fired: u64,
    /// Match-engine candidate queries served from an incrementally
    /// maintained posting list.
    pub postings_reused: u64,
    /// Match-engine candidate queries that scanned a whole relation
    /// (no pattern position bound).
    pub postings_rebuilt: u64,
    /// Sum of per-round delta sizes consulted by semi-naive rounds.
    pub delta_facts: u64,
    /// Homomorphism-cache lookups answered without a search (including
    /// the equal-fingerprint isomorphism shortcut).
    pub hom_cache_hits: u64,
    /// Homomorphism-cache lookups that had to run the search.
    pub hom_cache_misses: u64,
}

impl ExecStats {
    /// Merge another run's counters into this one (workers = max,
    /// everything else sums).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.workers = self.workers.max(other.workers);
        self.tasks += other.tasks;
        if self.per_worker.len() < other.per_worker.len() {
            self.per_worker.resize(other.per_worker.len(), 0);
        }
        for (mine, theirs) in self.per_worker.iter_mut().zip(&other.per_worker) {
            *mine += theirs;
        }
        self.rounds += other.rounds;
        self.triggers_enumerated += other.triggers_enumerated;
        self.triggers_fired += other.triggers_fired;
        self.postings_reused += other.postings_reused;
        self.postings_rebuilt += other.postings_rebuilt;
        self.delta_facts += other.delta_facts;
        self.hom_cache_hits += other.hom_cache_hits;
        self.hom_cache_misses += other.hom_cache_misses;
    }

    /// Load balance in `[0, 1]`: mean worker load over max worker load.
    /// `1.0` means perfectly even; meaningless (reported as 1.0) when no
    /// tasks ran.
    pub fn utilization(&self) -> f64 {
        let max = self.per_worker.iter().copied().max().unwrap_or(0);
        if max == 0 || self.per_worker.is_empty() {
            return 1.0;
        }
        let mean = self.tasks as f64 / self.per_worker.len() as f64;
        mean / max as f64
    }
}

/// Map `f` over `items`, returning results in input order.
///
/// The parallel path fans items out to scoped worker threads through a
/// shared atomic cursor and scatters the results back by index, so the
/// output is independent of scheduling. With one resolved thread this is
/// exactly `items.iter().map(f).collect()`.
pub fn par_map<I, T, F>(par: Parallelism, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_stats(par, items, f).0
}

/// [`par_map`] plus per-run counters.
pub fn par_map_stats<I, T, F>(par: Parallelism, items: &[I], f: F) -> (Vec<T>, ExecStats)
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = par.resolve().min(items.len()).max(1);
    if threads == 1 {
        let out: Vec<T> = items.iter().map(&f).collect();
        let stats = ExecStats {
            workers: 1,
            tasks: out.len() as u64,
            per_worker: vec![out.len() as u64],
            ..Default::default()
        };
        return (out, stats);
    }
    let cursor = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut per_worker = Vec::with_capacity(threads);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for bucket in buckets {
        per_worker.push(bucket.len() as u64);
        for (i, value) in bucket {
            debug_assert!(slots[i].is_none(), "index produced twice");
            slots[i] = Some(value);
        }
    }
    let out: Vec<T> = slots
        .into_iter()
        .map(|s| s.expect("atomic cursor visits every index exactly once"))
        .collect();
    let stats = ExecStats {
        workers: threads,
        tasks: out.len() as u64,
        per_worker,
        ..Default::default()
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1usize, 2, 3, 4, 8] {
            let got = par_map(Parallelism::fixed(threads), &items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::fixed(4), &none, |&x| x).is_empty());
        assert_eq!(par_map(Parallelism::fixed(4), &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn stats_account_for_every_task() {
        let items: Vec<u32> = (0..100).collect();
        let (_, stats) = par_map_stats(Parallelism::fixed(4), &items, |&x| x);
        assert_eq!(stats.tasks, 100);
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 100);
        assert_eq!(stats.workers, 4);
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
    }

    #[test]
    fn sequential_stats() {
        let (_, stats) = par_map_stats(Parallelism::sequential(), &[1, 2, 3], |&x: &i32| x);
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.per_worker, vec![3]);
    }

    #[test]
    fn fixed_overrides_global() {
        assert_eq!(Parallelism::fixed(3).resolve(), 3);
        assert_eq!(Parallelism::fixed(0).resolve(), 1, "clamped up to 1");
    }

    #[test]
    fn workers_capped_by_item_count() {
        let (_, stats) = par_map_stats(Parallelism::fixed(8), &[1, 2], |&x: &i32| x);
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn absorb_merges_counters() {
        let mut a = ExecStats {
            workers: 2,
            tasks: 4,
            per_worker: vec![2, 2],
            triggers_enumerated: 10,
            postings_reused: 3,
            hom_cache_hits: 2,
            ..Default::default()
        };
        let b = ExecStats {
            workers: 4,
            tasks: 8,
            per_worker: vec![2, 2, 2, 2],
            rounds: 2,
            triggers_enumerated: 5,
            triggers_fired: 4,
            postings_rebuilt: 1,
            delta_facts: 7,
            hom_cache_hits: 5,
            hom_cache_misses: 6,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.workers, 4);
        assert_eq!(a.tasks, 12);
        assert_eq!(a.per_worker, vec![4, 4, 2, 2]);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.triggers_enumerated, 15);
        assert_eq!(a.triggers_fired, 4);
        assert_eq!(a.postings_reused, 3);
        assert_eq!(a.postings_rebuilt, 1);
        assert_eq!(a.delta_facts, 7);
        assert_eq!(a.hom_cache_hits, 7);
        assert_eq!(a.hom_cache_misses, 6);
    }
}

//! Variables and atoms.

use qi_schema::{RelId, Schema};
use std::fmt;
use std::sync::Arc;

/// A first-order variable.
///
/// Cheap to clone (`Arc<str>` inside); ordered lexicographically by name,
/// which gives dependency displays and the MinGen enumeration a
/// deterministic order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: &str) -> Self {
        Var(Arc::from(name))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// An atom `R(v₁,…,v_m)` over a schema; every argument is a variable
/// (the paper's dependencies contain no constants inside atoms).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Atom {
    /// Relation symbol (relative to the schema the enclosing dependency
    /// declares for this side).
    pub rel: RelId,
    /// Argument variables; length must equal the relation's arity.
    pub args: Vec<Var>,
}

impl Atom {
    /// Build an atom.
    pub fn new(rel: RelId, args: Vec<Var>) -> Self {
        Atom { rel, args }
    }

    /// Build an atom by relation name, resolving against `schema`.
    pub fn parse_parts(schema: &Schema, rel: &str, args: &[&str]) -> Option<Atom> {
        let rel = schema.rel(rel)?;
        Some(Atom {
            rel,
            args: args.iter().map(|a| Var::new(a)).collect(),
        })
    }

    /// The distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for v in &self.args {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Render against a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> AtomDisplay<'a> {
        AtomDisplay { atom: self, schema }
    }
}

/// `Display` helper carrying the schema for name resolution.
pub struct AtomDisplay<'a> {
    atom: &'a Atom,
    schema: &'a Schema,
}

impl fmt::Display for AtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.atom.rel))?;
        for (i, v) in self.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Collect the distinct variables of a conjunction, first-occurrence order.
pub fn vars_of(atoms: &[Atom]) -> Vec<Var> {
    let mut out: Vec<Var> = Vec::new();
    for a in atoms {
        for v in &a.args {
            if !out.contains(v) {
                out.push(v.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_identity() {
        assert_eq!(Var::new("x"), Var::new("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
        assert!(Var::new("a") < Var::new("b"));
    }

    #[test]
    fn atom_vars_dedup_in_order() {
        let s = Schema::parse("P/3").unwrap();
        let a = Atom::parse_parts(&s, "P", &["y", "x", "y"]).unwrap();
        assert_eq!(a.vars(), vec![Var::new("y"), Var::new("x")]);
        assert_eq!(a.display(&s).to_string(), "P(y,x,y)");
    }

    #[test]
    fn conjunction_vars() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let a = Atom::parse_parts(&s, "P", &["x", "y"]).unwrap();
        let b = Atom::parse_parts(&s, "Q", &["x"]).unwrap();
        assert_eq!(vars_of(&[a, b]), vec![Var::new("x"), Var::new("y")]);
    }
}

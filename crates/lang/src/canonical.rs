//! Canonical instances `I_α` with frozen variables (§4).
//!
//! "If α is a conjunction of atoms, define `I_α` to be an instance whose
//! facts are the conjuncts of α. Note that `I_α` may not be an instance in
//! the usual sense, because the active domain may include variables."
//!
//! We realize `I_α` by *freezing* each variable as a reserved constant
//! (spelled `$frz_<name>`). Frozen constants behave exactly like the
//! paper's variables-as-values: the chase treats them as ordinary
//! constants, and the generator test (Definition 4.2) then asks for a
//! homomorphism that fixes them. Constants beginning with `$` are reserved
//! for this purpose; user data should not use them.

use crate::atom::{Atom, Var};
use qi_schema::{ConstId, Instance, Schema, Value};
use std::collections::BTreeMap;

/// A freezing of variables as reserved constants, with the reverse map.
#[derive(Clone, Debug, Default)]
pub struct FrozenVars {
    fwd: BTreeMap<Var, ConstId>,
    rev: BTreeMap<ConstId, Var>,
}

impl FrozenVars {
    /// Freeze the given variables.
    pub fn freeze(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut out = FrozenVars::default();
        for v in vars {
            out.add(v);
        }
        out
    }

    /// Freeze one more variable (idempotent).
    pub fn add(&mut self, v: Var) -> ConstId {
        if let Some(&c) = self.fwd.get(&v) {
            return c;
        }
        let c = ConstId::new(&format!("$frz_{}", v.name()));
        self.fwd.insert(v.clone(), c);
        self.rev.insert(c, v);
        c
    }

    /// The frozen constant of `v` as a [`Value`]; panics if `v` was not
    /// frozen (internal misuse).
    pub fn value(&self, v: &Var) -> Value {
        Value::Const(
            *self
                .fwd
                .get(v)
                .unwrap_or_else(|| panic!("variable `{v}` was not frozen")),
        )
    }

    /// The frozen constant of `v`, if frozen.
    pub fn get(&self, v: &Var) -> Option<Value> {
        self.fwd.get(v).map(|&c| Value::Const(c))
    }

    /// Reverse lookup: is `value` a frozen variable of this freezing?
    pub fn unfreeze(&self, value: Value) -> Option<&Var> {
        match value {
            Value::Const(c) => self.rev.get(&c),
            Value::Null(_) => None,
        }
    }

    /// The frozen variables in order.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.fwd.keys()
    }
}

/// Build the canonical instance `I_α` of a conjunction over `schema`,
/// freezing any variable not already frozen in `frozen`.
pub fn canonical_instance(schema: &Schema, atoms: &[Atom], frozen: &mut FrozenVars) -> Instance {
    let mut inst = Instance::new(schema.clone());
    for atom in atoms {
        let args: Vec<Value> = atom
            .args
            .iter()
            .map(|v| Value::Const(frozen.add(v.clone())))
            .collect();
        inst.insert(atom.rel, args)
            .expect("atom arity was validated at dependency construction");
    }
    inst
}

/// Map a frozen value back to a variable name when possible (display and
/// the `Inverse` algorithm's null-to-variable conversion use this).
pub fn thaw_value(frozen: &FrozenVars, value: Value) -> Result<Var, Value> {
    frozen.unfreeze(value).cloned().ok_or(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_and_thaw() {
        let mut f = FrozenVars::freeze([Var::new("x"), Var::new("y")]);
        let vx = f.value(&Var::new("x"));
        assert!(vx.is_const());
        assert_eq!(thaw_value(&f, vx).unwrap(), Var::new("x"));
        assert_eq!(
            thaw_value(&f, Value::constant("a")).unwrap_err(),
            Value::constant("a")
        );
        // idempotent add
        let again = f.add(Var::new("x"));
        assert_eq!(Value::Const(again), vx);
    }

    #[test]
    fn canonical_instance_of_conjunction() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let atoms = vec![
            Atom::parse_parts(&s, "P", &["x", "y"]).unwrap(),
            Atom::parse_parts(&s, "Q", &["x"]).unwrap(),
        ];
        let mut f = FrozenVars::default();
        let inst = canonical_instance(&s, &atoms, &mut f);
        assert_eq!(inst.fact_count(), 2);
        assert!(inst.is_ground()); // frozen vars are constants
        assert_eq!(f.vars().count(), 2);
    }

    #[test]
    fn shared_freezing_identifies_variables() {
        let s = Schema::parse("P/2").unwrap();
        let a1 = vec![Atom::parse_parts(&s, "P", &["x", "y"]).unwrap()];
        let a2 = vec![Atom::parse_parts(&s, "P", &["y", "x"]).unwrap()];
        let mut f = FrozenVars::default();
        let i1 = canonical_instance(&s, &a1, &mut f);
        let i2 = canonical_instance(&s, &a2, &mut f);
        // same frozen constants in swapped positions
        let t1: Vec<_> = i1.facts().collect();
        let t2: Vec<_> = i2.facts().collect();
        assert_eq!(t1[0].args[0], t2[0].args[1]);
        assert_eq!(t1[0].args[1], t2[0].args[0]);
    }
}

//! Compilation of atom conjunctions into the `qi-schema` pattern language.
//!
//! The chase, satisfaction checking, and the generator test all reduce to
//! matching a conjunction of atoms against an instance; this module turns
//! [`Atom`]s into [`PatFact`]s over a shared variable ordering.

use crate::atom::{Atom, Var};
use qi_schema::{PatFact, PatTerm, Pattern, VarIdx};

/// Compile `atoms` into pattern facts over the variable ordering `vars`.
///
/// Variables not yet present in `vars` are appended, so several
/// conjunctions (e.g. a premise and a conclusion) can be compiled against
/// one ordering: compile the premise first, then the conclusion, and the
/// premise's variables keep their indexes.
pub fn compile_atoms(atoms: &[Atom], vars: &mut Vec<Var>) -> Vec<PatFact> {
    atoms
        .iter()
        .map(|a| PatFact {
            rel: a.rel,
            args: a
                .args
                .iter()
                .map(|v| {
                    let idx = match vars.iter().position(|w| w == v) {
                        Some(i) => i,
                        None => {
                            vars.push(v.clone());
                            vars.len() - 1
                        }
                    };
                    PatTerm::Var(idx as VarIdx)
                })
                .collect(),
        })
        .collect()
}

/// Compile a conjunction into a complete [`Pattern`] (fresh ordering).
pub fn compile_pattern(atoms: &[Atom]) -> (Pattern, Vec<Var>) {
    let mut vars = Vec::new();
    let facts = compile_atoms(atoms, &mut vars);
    (
        Pattern {
            facts,
            nvars: vars.len(),
        },
        vars,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::{Instance, MatchConstraints, MatchEngine, Schema};

    #[test]
    fn compile_shares_variable_indexes() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let a = Atom::parse_parts(&s, "P", &["x", "y"]).unwrap();
        let b = Atom::parse_parts(&s, "Q", &["y"]).unwrap();
        let mut vars = Vec::new();
        let f1 = compile_atoms(&[a], &mut vars);
        let f2 = compile_atoms(&[b], &mut vars);
        assert_eq!(vars.len(), 2);
        assert_eq!(f1[0].args[1], f2[0].args[0]);
    }

    #[test]
    fn compiled_pattern_matches() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let atoms = vec![
            Atom::parse_parts(&s, "P", &["x", "y"]).unwrap(),
            Atom::parse_parts(&s, "Q", &["y"]).unwrap(),
        ];
        let (pattern, vars) = compile_pattern(&atoms);
        assert_eq!(vars, vec![Var::new("x"), Var::new("y")]);
        let inst = Instance::parse(&s, "P(a,b) P(a,c) Q(b)").unwrap();
        let c = MatchConstraints::default();
        let matches = MatchEngine::new(&pattern, &inst, &c).all();
        assert_eq!(matches.len(), 1); // only y=b satisfies Q
    }
}

//! Dependencies: s-t tgds and disjunctive tgds with constants and
//! inequalities (Definition 2.1 of the paper).

use crate::atom::{vars_of, Atom, Var};
use crate::error::LangError;
use qi_schema::Schema;
use std::collections::BTreeSet;
use std::fmt;

/// A source-to-target tuple-generating dependency
/// `∀x (φ(x) → ∃y ψ(x,y))` (§2).
///
/// `body` is the conjunction `φ` of atoms over [`Tgd::source`]; `head` is
/// the conjunction `ψ` of atoms over [`Tgd::target`]; `exists` is `y`.
/// Construction enforces the paper's safety conditions: every head
/// variable is either a body variable or existential, existential
/// variables are fresh and used, and arities match the schemas.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tgd {
    /// Schema of the body atoms.
    pub source: Schema,
    /// Schema of the head atoms.
    pub target: Schema,
    /// Premise conjunction `φ(x)` (nonempty).
    pub body: Vec<Atom>,
    /// Existentially quantified head variables `y`.
    pub exists: Vec<Var>,
    /// Conclusion conjunction `ψ(x,y)` (nonempty).
    pub head: Vec<Atom>,
}

fn check_atoms(schema: &Schema, atoms: &[Atom], side: &str) -> Result<(), LangError> {
    for a in atoms {
        if a.rel.index() >= schema.len() {
            return Err(LangError::invalid(format!(
                "{side} atom refers to relation outside its schema"
            )));
        }
        let arity = schema.arity(a.rel);
        if a.args.len() != arity {
            return Err(LangError::invalid(format!(
                "{side} atom over `{}` has {} arguments, arity is {arity}",
                schema.name(a.rel),
                a.args.len()
            )));
        }
    }
    Ok(())
}

impl Tgd {
    /// Build and validate an s-t tgd.
    pub fn new(
        source: Schema,
        target: Schema,
        body: Vec<Atom>,
        exists: Vec<Var>,
        head: Vec<Atom>,
    ) -> Result<Self, LangError> {
        if body.is_empty() {
            return Err(LangError::invalid("tgd body must be nonempty"));
        }
        if head.is_empty() {
            return Err(LangError::invalid("tgd head must be nonempty"));
        }
        check_atoms(&source, &body, "body")?;
        check_atoms(&target, &head, "head")?;
        let body_vars: BTreeSet<&Var> = body.iter().flat_map(|a| a.args.iter()).collect();
        let exists_set: BTreeSet<&Var> = exists.iter().collect();
        if exists_set.len() != exists.len() {
            return Err(LangError::invalid("repeated existential variable"));
        }
        if exists.iter().any(|v| body_vars.contains(v)) {
            return Err(LangError::invalid(
                "existential variable also occurs in the body",
            ));
        }
        let head_vars: BTreeSet<&Var> = head.iter().flat_map(|a| a.args.iter()).collect();
        for v in &head_vars {
            if !body_vars.contains(*v) && !exists_set.contains(*v) {
                return Err(LangError::invalid(format!(
                    "head variable `{v}` is neither universal nor existential"
                )));
            }
        }
        for v in &exists {
            if !head_vars.contains(v) {
                return Err(LangError::invalid(format!(
                    "existential variable `{v}` does not occur in the head"
                )));
            }
        }
        Ok(Tgd {
            source,
            target,
            body,
            exists,
            head,
        })
    }

    /// Distinct body variables (`x ∪ u` in the paper's notation),
    /// first-occurrence order.
    pub fn body_vars(&self) -> Vec<Var> {
        vars_of(&self.body)
    }

    /// Distinct head variables, first-occurrence order (includes `exists`).
    pub fn head_vars(&self) -> Vec<Var> {
        vars_of(&self.head)
    }

    /// The *frontier* `x`: variables occurring in both body and head —
    /// exactly "the variables that each appear in both the left-hand side
    /// and the right-hand side" that §4's algorithms manipulate.
    pub fn frontier(&self) -> Vec<Var> {
        let head: BTreeSet<&Var> = self.head.iter().flat_map(|a| a.args.iter()).collect();
        self.body_vars()
            .into_iter()
            .filter(|v| head.contains(v))
            .collect()
    }

    /// *Full* tgd: no existential quantifiers (§3).
    pub fn is_full(&self) -> bool {
        self.exists.is_empty()
    }

    /// *LAV* tgd: the body is a single atom (§3, "local-as-view").
    pub fn is_lav(&self) -> bool {
        self.body.len() == 1
    }

    /// View this s-t tgd as a (degenerate) disjunctive tgd — used when the
    /// two dependency classes flow through shared machinery.
    pub fn to_disjunctive(&self) -> DisjTgd {
        DisjTgd {
            from: self.source.clone(),
            to: self.target.clone(),
            body: self.body.clone(),
            constant: Vec::new(),
            neq: Vec::new(),
            disjuncts: vec![Disjunct {
                exists: self.exists.clone(),
                atoms: self.head.clone(),
            }],
        }
    }
}

impl fmt::Display for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{}", a.display(&self.source))?;
        }
        write!(f, " -> ")?;
        if !self.exists.is_empty() {
            write!(f, "exists")?;
            for v in &self.exists {
                write!(f, " {v}")?;
            }
            write!(f, " . ")?;
        }
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{}", a.display(&self.target))?;
        }
        Ok(())
    }
}

/// One disjunct `∃yᵢ ψᵢ(xᵢ, yᵢ)` of a disjunctive tgd.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Disjunct {
    /// Existentially quantified variables of this disjunct.
    pub exists: Vec<Var>,
    /// Conjunction of atoms over the dependency's `to` schema (nonempty).
    pub atoms: Vec<Atom>,
}

impl Disjunct {
    /// The distinct variables of the disjunct's atoms.
    pub fn vars(&self) -> Vec<Var> {
        vars_of(&self.atoms)
    }
}

/// A disjunctive tgd with constants and inequalities (Definition 2.1):
///
/// `∀x ( φ(x) ∧ ⋀ Constant(xᵢ) ∧ ⋀ xᵢ ≠ xⱼ  →  ⋁ᵢ ∃yᵢ ψᵢ(x,yᵢ) )`
///
/// where `φ` is a conjunction of atoms over [`DisjTgd::from`] and each
/// `ψᵢ` is a conjunction of atoms over [`DisjTgd::to`]. In the paper this
/// class is used *target-to-source*, but the struct is direction-agnostic
/// (the identity dependencies of §2 are also expressible).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DisjTgd {
    /// Schema of the body atoms.
    pub from: Schema,
    /// Schema of the disjunct atoms.
    pub to: Schema,
    /// Premise atoms `φ(x)` (nonempty; every universal variable occurs here).
    pub body: Vec<Atom>,
    /// Variables under a `Constant(·)` guard.
    pub constant: Vec<Var>,
    /// Inequalities `xᵢ ≠ xⱼ`.
    pub neq: Vec<(Var, Var)>,
    /// The disjunction (nonempty).
    pub disjuncts: Vec<Disjunct>,
}

impl DisjTgd {
    /// Build and validate a disjunctive tgd with constants and inequalities.
    pub fn new(
        from: Schema,
        to: Schema,
        body: Vec<Atom>,
        constant: Vec<Var>,
        neq: Vec<(Var, Var)>,
        disjuncts: Vec<Disjunct>,
    ) -> Result<Self, LangError> {
        if body.is_empty() {
            return Err(LangError::invalid("disjunctive tgd body must be nonempty"));
        }
        if disjuncts.is_empty() {
            return Err(LangError::invalid("disjunction must be nonempty"));
        }
        check_atoms(&from, &body, "body")?;
        let body_vars: BTreeSet<&Var> = body.iter().flat_map(|a| a.args.iter()).collect();
        for v in &constant {
            if !body_vars.contains(v) {
                return Err(LangError::invalid(format!(
                    "Constant({v}) guards a variable not occurring in a body atom"
                )));
            }
        }
        for (a, b) in &neq {
            if a == b {
                return Err(LangError::invalid(format!("trivial inequality {a} != {b}")));
            }
            if !body_vars.contains(a) || !body_vars.contains(b) {
                return Err(LangError::invalid(format!(
                    "inequality {a} != {b} mentions a variable not in a body atom"
                )));
            }
        }
        for d in &disjuncts {
            if d.atoms.is_empty() {
                return Err(LangError::invalid("empty disjunct"));
            }
            check_atoms(&to, &d.atoms, "disjunct")?;
            let ex: BTreeSet<&Var> = d.exists.iter().collect();
            if ex.len() != d.exists.len() {
                return Err(LangError::invalid("repeated existential variable"));
            }
            if d.exists.iter().any(|v| body_vars.contains(v)) {
                return Err(LangError::invalid(
                    "existential variable also occurs in the body",
                ));
            }
            let dvars: BTreeSet<&Var> = d.atoms.iter().flat_map(|a| a.args.iter()).collect();
            for v in &dvars {
                if !body_vars.contains(*v) && !ex.contains(*v) {
                    return Err(LangError::invalid(format!(
                        "disjunct variable `{v}` is neither universal nor existential"
                    )));
                }
            }
            for v in &d.exists {
                if !dvars.contains(v) {
                    return Err(LangError::invalid(format!(
                        "existential variable `{v}` does not occur in its disjunct"
                    )));
                }
            }
        }
        Ok(DisjTgd {
            from,
            to,
            body,
            constant,
            neq,
            disjuncts,
        })
    }

    /// Distinct body variables, first-occurrence order.
    pub fn body_vars(&self) -> Vec<Var> {
        vars_of(&self.body)
    }

    /// More than one disjunct?
    pub fn has_disjunction(&self) -> bool {
        self.disjuncts.len() > 1
    }

    /// Uses the `Constant` predicate?
    pub fn has_constants(&self) -> bool {
        !self.constant.is_empty()
    }

    /// Uses inequalities?
    pub fn has_inequalities(&self) -> bool {
        !self.neq.is_empty()
    }

    /// Uses existential quantifiers in some disjunct?
    pub fn has_existentials(&self) -> bool {
        self.disjuncts.iter().any(|d| !d.exists.is_empty())
    }

    /// *Full* disjunctive tgd: no existential quantifiers (Theorem 4.11).
    pub fn is_full(&self) -> bool {
        !self.has_existentials()
    }

    /// Definition 2.1(2): every inequality `x ≠ x'` is accompanied by
    /// `Constant(x)` and `Constant(x')` — "inequalities among constants",
    /// the sub-language Theorems 6.7/6.8 and the paper's algorithms
    /// actually produce.
    pub fn inequalities_among_constants(&self) -> bool {
        self.neq
            .iter()
            .all(|(a, b)| self.constant.contains(a) && self.constant.contains(b))
    }

    /// A plain tgd in disguise (single disjunct, no guards)?
    pub fn is_plain_tgd(&self) -> bool {
        !self.has_disjunction() && !self.has_constants() && !self.has_inequalities()
    }

    /// Convert to a plain [`Tgd`] when possible (used to feed the standard
    /// chase with identity-style dependencies).
    pub fn as_plain_tgd(&self) -> Option<Tgd> {
        if !self.is_plain_tgd() {
            return None;
        }
        let d = &self.disjuncts[0];
        Tgd::new(
            self.from.clone(),
            self.to.clone(),
            self.body.clone(),
            d.exists.clone(),
            d.atoms.clone(),
        )
        .ok()
    }
}

impl fmt::Display for DisjTgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.body {
            if !first {
                write!(f, " & ")?;
            }
            first = false;
            write!(f, "{}", a.display(&self.from))?;
        }
        for v in &self.constant {
            write!(f, " & const({v})")?;
        }
        for (a, b) in &self.neq {
            write!(f, " & {a} != {b}")?;
        }
        write!(f, " -> ")?;
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            if !d.exists.is_empty() {
                write!(f, "exists")?;
                for v in &d.exists {
                    write!(f, " {v}")?;
                }
                write!(f, " . ")?;
            }
            for (j, a) in d.atoms.iter().enumerate() {
                if j > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "{}", a.display(&self.to))?;
            }
        }
        Ok(())
    }
}

/// An equality-generating dependency `∀x (φ(x) → x₁ = x₂ ∧ …)` over one
/// schema.
///
/// Egds are the second dependency class of the classical data-exchange
/// setting (the paper's reference \[4\]): together with target tgds they
/// constrain the *target* schema, and the chase resolves their violations
/// by equating values (failing when two distinct constants must be
/// equal). The quasi-inverse results themselves are about plain s-t tgd
/// mappings; egds are provided as part of the data-exchange substrate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Egd {
    /// The schema the premise is over.
    pub schema: Schema,
    /// Premise conjunction (nonempty).
    pub body: Vec<Atom>,
    /// Equalities demanded by the conclusion (nonempty; both sides occur
    /// in the premise).
    pub equalities: Vec<(Var, Var)>,
}

impl Egd {
    /// Build and validate an egd.
    pub fn new(
        schema: Schema,
        body: Vec<Atom>,
        equalities: Vec<(Var, Var)>,
    ) -> Result<Self, LangError> {
        if body.is_empty() {
            return Err(LangError::invalid("egd body must be nonempty"));
        }
        if equalities.is_empty() {
            return Err(LangError::invalid("egd must demand at least one equality"));
        }
        check_atoms(&schema, &body, "body")?;
        let body_vars: BTreeSet<&Var> = body.iter().flat_map(|a| a.args.iter()).collect();
        for (a, b) in &equalities {
            if a == b {
                return Err(LangError::invalid(format!("trivial equality {a} = {b}")));
            }
            if !body_vars.contains(a) || !body_vars.contains(b) {
                return Err(LangError::invalid(format!(
                    "equality {a} = {b} mentions a variable not in the body"
                )));
            }
        }
        Ok(Egd {
            schema,
            body,
            equalities,
        })
    }
}

impl fmt::Display for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{}", a.display(&self.schema))?;
        }
        write!(f, " -> ")?;
        for (i, (a, b)) in self.equalities.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a} = {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_disj_tgd, parse_egd, parse_tgd};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse("P/3 U/1").unwrap(),
            Schema::parse("S/3 Q/2").unwrap(),
        )
    }

    #[test]
    fn tgd_classification() {
        let (s, t) = schemas();
        let lav = parse_tgd(&s, &t, "P(x,y,z) -> Q(x,y)").unwrap();
        assert!(lav.is_lav() && lav.is_full());
        let gav = parse_tgd(&s, &t, "P(x,y,z) & U(x) -> exists w . S(x,y,w)").unwrap();
        assert!(!gav.is_lav() && !gav.is_full());
        assert_eq!(gav.frontier(), vec![Var::new("x"), Var::new("y")]);
    }

    #[test]
    fn tgd_safety_violations() {
        let (s, t) = schemas();
        // head var not bound
        assert!(parse_tgd(&s, &t, "P(x,y,z) -> Q(x,w)").is_err());
        // existential also universal
        assert!(parse_tgd(&s, &t, "P(x,y,z) -> exists x . Q(x,y)").is_err());
        // unused existential
        assert!(parse_tgd(&s, &t, "P(x,y,z) -> exists w . Q(x,y)").is_err());
        // arity
        assert!(parse_tgd(&s, &t, "P(x,y) -> Q(x,y)").is_err());
    }

    #[test]
    fn disj_tgd_classification() {
        let (s, t) = schemas();
        let d = parse_disj_tgd(
            &t,
            &s,
            "Q(x,y) & const(x) & x != y -> P(x,y,y) | exists w . P(x,x,w) & U(w)",
        )
        .unwrap();
        assert!(d.has_disjunction());
        assert!(d.has_constants());
        assert!(d.has_inequalities());
        assert!(d.has_existentials());
        assert!(!d.is_full());
        assert!(!d.inequalities_among_constants()); // y is not guarded
        assert!(d.as_plain_tgd().is_none());
    }

    #[test]
    fn inequalities_among_constants_detected() {
        let (s, t) = schemas();
        let d =
            parse_disj_tgd(&t, &s, "Q(x,y) & const(x) & const(y) & x != y -> P(x,y,y)").unwrap();
        assert!(d.inequalities_among_constants());
        assert!(!d.has_disjunction());
    }

    #[test]
    fn plain_tgd_roundtrip() {
        let (s, t) = schemas();
        let d = parse_disj_tgd(&t, &s, "Q(x,y) -> exists z . P(x,y,z)").unwrap();
        assert!(d.is_plain_tgd());
        let tgd = d.as_plain_tgd().unwrap();
        assert_eq!(tgd.to_disjunctive(), d);
    }

    #[test]
    fn disj_tgd_safety_violations() {
        let (s, t) = schemas();
        // const guard on variable absent from body atoms
        assert!(parse_disj_tgd(&t, &s, "Q(x,y) & const(z) -> P(x,y,y)").is_err());
        // inequality with unbound variable
        assert!(parse_disj_tgd(&t, &s, "Q(x,y) & x != z -> P(x,y,y)").is_err());
        // trivial inequality
        assert!(parse_disj_tgd(&t, &s, "Q(x,y) & x != x -> P(x,y,y)").is_err());
        // disjunct var unbound
        assert!(parse_disj_tgd(&t, &s, "Q(x,y) -> P(x,y,w)").is_err());
    }

    #[test]
    fn egd_construction_and_display() {
        let s = Schema::parse("E/2").unwrap();
        let e = parse_egd(&s, "E(x,y) & E(x,z) -> y = z").unwrap();
        assert_eq!(e.body.len(), 2);
        assert_eq!(e.equalities.len(), 1);
        assert_eq!(e.to_string(), "E(x,y) & E(x,z) -> y = z");
        let back = parse_egd(&s, &e.to_string()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn egd_safety_violations() {
        let s = Schema::parse("E/2").unwrap();
        assert!(parse_egd(&s, "E(x,y) -> x = x").is_err());
        assert!(parse_egd(&s, "E(x,y) -> y = w").is_err());
        assert!(parse_egd(&s, "E(x,y) -> E(x,y)").is_err());
    }

    #[test]
    fn display_examples_match_paper_shape() {
        let (s, t) = schemas();
        let gav = parse_tgd(&s, &t, "P(x,y,z) & U(x) -> exists w . S(x,y,w)").unwrap();
        assert_eq!(gav.to_string(), "P(x,y,z) & U(x) -> exists w . S(x,y,w)");
        let d = parse_disj_tgd(
            &t,
            &s,
            "Q(x,y) & const(x) & x != y -> P(x,y,y) | exists w . P(x,x,w)",
        )
        .unwrap();
        assert_eq!(
            d.to_string(),
            "Q(x,y) & const(x) & x != y -> P(x,y,y) | exists w . P(x,x,w)"
        );
    }
}

//! Errors of the dependency language, with source spans.

use std::fmt;

/// A half-open byte range `[start, end)` into the text a parser was given.
///
/// Spans are carried by [`LangError::Parse`] and by the raw parse tree
/// ([`crate::parser::RawDependency`]) so that tooling — most importantly
/// the `qi-analyze` diagnostics engine — can point at the offending token
/// instead of reporting a bare message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TextSpan {
    /// Byte offset of the first byte of the span.
    pub start: usize,
    /// Byte offset one past the last byte of the span.
    pub end: usize,
}

impl TextSpan {
    /// Build a span; `end` is clamped to `start`.
    pub fn new(start: usize, end: usize) -> Self {
        TextSpan {
            start,
            end: end.max(start),
        }
    }

    /// A zero-width span at `offset` (used for end-of-input errors).
    pub fn point(offset: usize) -> Self {
        TextSpan {
            start: offset,
            end: offset,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the span zero-width?
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Compute the 1-based `(line, column)` of a byte `offset` into `text`.
///
/// Columns count bytes from the last newline — exact for the ASCII
/// dependency syntax. Offsets past the end report the position one past
/// the final character.
pub fn line_col(text: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(text.len());
    let before = &text.as_bytes()[..offset];
    let line = 1 + before.iter().filter(|&&b| b == b'\n').count();
    let col = 1 + before.iter().rev().take_while(|&&b| b != b'\n').count();
    (line, col)
}

/// Payload of [`LangError::Parse`]: a message plus the span of the
/// offending token, when the parser knows it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Where in the input it went wrong (byte offsets into the text
    /// handed to the parser).
    pub span: Option<TextSpan>,
}

impl From<String> for ParseError {
    fn from(message: String) -> Self {
        ParseError {
            message,
            span: None,
        }
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> Self {
        ParseError {
            message: message.to_owned(),
            span: None,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at byte {})", span.start)?;
        }
        Ok(())
    }
}

/// Errors raised by dependency construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Construction-time validation failure (safety conditions, arities).
    Invalid(String),
    /// Textual parse failure, with the offending span when known.
    Parse(ParseError),
}

impl LangError {
    pub(crate) fn invalid(msg: impl Into<String>) -> Self {
        LangError::Invalid(msg.into())
    }

    pub(crate) fn parse(msg: impl Into<ParseError>) -> Self {
        LangError::Parse(msg.into())
    }

    pub(crate) fn parse_at(msg: impl Into<String>, span: TextSpan) -> Self {
        LangError::Parse(ParseError {
            message: msg.into(),
            span: Some(span),
        })
    }

    /// The span of the offending token, when this is a parse error that
    /// carries one.
    pub fn span(&self) -> Option<TextSpan> {
        match self {
            LangError::Parse(p) => p.span,
            LangError::Invalid(_) => None,
        }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Invalid(m) => write!(f, "invalid dependency: {m}"),
            LangError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_from_one() {
        let text = "ab\ncde\nf";
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 1), (1, 2));
        assert_eq!(line_col(text, 3), (2, 1));
        assert_eq!(line_col(text, 5), (2, 3));
        assert_eq!(line_col(text, 7), (3, 1));
        // Past the end: clamped.
        assert_eq!(line_col(text, 99), (3, 2));
    }

    #[test]
    fn parse_error_displays_span() {
        let e = LangError::parse_at("stray `-`", TextSpan::new(4, 5));
        assert_eq!(e.to_string(), "parse error: stray `-` (at byte 4)");
        let plain = LangError::parse("no span");
        assert_eq!(plain.to_string(), "parse error: no span");
        assert_eq!(plain.span(), None);
    }
}

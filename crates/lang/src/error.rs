//! Errors of the dependency language.

use std::fmt;

/// Errors raised by dependency construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// Construction-time validation failure (safety conditions, arities).
    Invalid(String),
    /// Textual parse failure.
    Parse(String),
}

impl LangError {
    pub(crate) fn invalid(msg: impl Into<String>) -> Self {
        LangError::Invalid(msg.into())
    }

    pub(crate) fn parse(msg: impl Into<String>) -> Self {
        LangError::Parse(msg.into())
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Invalid(m) => write!(f, "invalid dependency: {m}"),
            LangError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

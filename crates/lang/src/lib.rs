//! # qi-lang — the dependency language of the paper
//!
//! This crate implements the logical languages of *Quasi-inverses of
//! Schema Mappings* (PODS 2007):
//!
//! * **source-to-target tuple-generating dependencies** (s-t tgds),
//!   `∀x (φ(x) → ∃y ψ(x,y))` — [`Tgd`] — with the *full* and *LAV*
//!   special cases the paper's theorems distinguish;
//! * **disjunctive tgds with constants and inequalities** (Definition 2.1)
//!   — [`DisjTgd`] — the language required to express quasi-inverses,
//!   including the sub-languages the paper proves optimal: tgds with
//!   constants and inequalities (single disjunct), disjunctive tgds with
//!   inequalities (no `Constant`), full disjunctive tgds (no
//!   existentials), and "inequalities among constants";
//! * a round-trippable **text syntax** ([`parser`], mirrored by the
//!   `Display` impls) used pervasively by the tests, examples and
//!   benchmarks;
//! * **complete descriptions** of variable vectors (§4) as set
//!   partitions, and the prime-atom enumeration of §5 ([`partition`]);
//! * compilation of conjunctions of atoms into the pattern language of
//!   `qi-schema` ([`compile`]) and **canonical instances** `I_α` with
//!   frozen variables ([`canonical`]), the chase-based implication test's
//!   raw material.
//!
//! ## Text syntax
//!
//! ```text
//! tgd        :=  conj "->" [ "exists" var+ "." ] atoms
//! disj-tgd   :=  conj "->" disjunct ("|" disjunct)*
//! disjunct   :=  [ "exists" var+ "." ] atoms
//! conj       :=  lit (("&" | ",") lit)*
//! lit        :=  atom | "const" "(" var ")" | var "!=" var
//! atom       :=  RELNAME "(" var ("," var)* ")"
//! ```
//!
//! All identifiers inside dependency atoms are **variables** — the paper's
//! dependencies never mention constants by name; constants enter only
//! through the `Constant(x)` predicate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod canonical;
pub mod compile;
pub mod dependency;
pub mod error;
pub mod parser;
pub mod partition;
pub mod query;
pub mod sotgd;
pub mod substitution;

pub use atom::{Atom, Var};
pub use canonical::{canonical_instance, thaw_value, FrozenVars};
pub use compile::compile_atoms;
pub use dependency::{DisjTgd, Disjunct, Egd, Tgd};
pub use error::{line_col, LangError, ParseError, TextSpan};
pub use parser::{
    parse_disj_tgd, parse_egd, parse_raw_dependency, parse_tgd, RawAtom, RawConclusion,
    RawDependency, RawDisjunct, RawLit, SpannedIdent,
};
pub use partition::{restricted_growth_strings, Partition};
pub use query::ConjunctiveQuery;
pub use sotgd::{skolemize, SkFun, SkTerm, SoAtom, SoClause, SoTgd};
pub use substitution::VarGen;

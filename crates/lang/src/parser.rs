//! Recursive-descent parser for the textual dependency syntax.
//!
//! See the crate docs for the grammar. The parser is the inverse of the
//! `Display` impls on [`Tgd`] and [`DisjTgd`] (round-trip property tested
//! in the integration suite).
//!
//! Parsing is split into two layers:
//!
//! 1. a **raw layer** ([`parse_raw_dependency`]) that lexes and parses
//!    the text into a span-carrying tree ([`RawDependency`]) without any
//!    schema resolution — every identifier remembers the byte range it
//!    came from, so downstream tooling (the `qi-analyze` lints) can point
//!    diagnostics at the offending token;
//! 2. **resolution** against source/target schemas, which turns the raw
//!    tree into validated [`Tgd`] / [`DisjTgd`] / [`Egd`] values.
//!
//! All parse errors carry a [`TextSpan`] naming
//! the offending token (or the end of input).

use crate::atom::{Atom, Var};
use crate::dependency::{DisjTgd, Disjunct, Egd, Tgd};
use crate::error::{LangError, TextSpan};
use qi_schema::Schema;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Amp,
    Pipe,
    Arrow,
    Neq,
    Eq,
    Dot,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::Neq => "`!=`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Dot => "`.`".into(),
        }
    }
}

/// An identifier together with the byte range it was lexed from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SpannedIdent {
    /// The identifier text.
    pub name: String,
    /// Where it sits in the parsed text.
    pub span: TextSpan,
}

impl SpannedIdent {
    /// The identifier as a [`Var`].
    pub fn var(&self) -> Var {
        Var::new(&self.name)
    }
}

/// A premise or conclusion atom before schema resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawAtom {
    /// Relation name token.
    pub name: SpannedIdent,
    /// Argument variable tokens.
    pub args: Vec<SpannedIdent>,
}

/// One literal of a premise conjunction, before schema resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RawLit {
    /// A relational atom `R(x,…)`.
    Atom(RawAtom),
    /// A `const(x)` / `Constant(x)` guard.
    Const(SpannedIdent),
    /// An inequality `x != y`.
    Neq(SpannedIdent, SpannedIdent),
}

/// One conclusion disjunct `[exists y… .] atoms`, before resolution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawDisjunct {
    /// Existentially quantified variable tokens.
    pub exists: Vec<SpannedIdent>,
    /// The disjunct's literals (atoms; guards are rejected at resolution).
    pub lits: Vec<RawLit>,
}

/// The right-hand side of a raw dependency.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RawConclusion {
    /// A disjunction of conjunctions (tgds and disjunctive tgds).
    Disjuncts(Vec<RawDisjunct>),
    /// A conjunction of equalities (egds).
    Equalities(Vec<(SpannedIdent, SpannedIdent)>),
}

/// A schema-unresolved dependency: the shared surface form of tgds,
/// disjunctive tgds and egds, with every token spanned.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawDependency {
    /// Premise literals.
    pub premise: Vec<RawLit>,
    /// Span of the `->` token.
    pub arrow: TextSpan,
    /// The conclusion.
    pub conclusion: RawConclusion,
}

fn lex(text: &str) -> Result<Vec<(Tok, TextSpan)>, LangError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, TextSpan::new(i, i + 1)));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, TextSpan::new(i, i + 1)));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, TextSpan::new(i, i + 1)));
                i += 1;
            }
            '&' => {
                out.push((Tok::Amp, TextSpan::new(i, i + 1)));
                i += 1;
            }
            '|' => {
                out.push((Tok::Pipe, TextSpan::new(i, i + 1)));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, TextSpan::new(i, i + 1)));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Arrow, TextSpan::new(i, i + 2)));
                    i += 2;
                } else {
                    return Err(LangError::parse_at("stray `-`", TextSpan::new(i, i + 1)));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Neq, TextSpan::new(i, i + 2)));
                    i += 2;
                } else {
                    return Err(LangError::parse_at("stray `!`", TextSpan::new(i, i + 1)));
                }
            }
            '=' => {
                out.push((Tok::Eq, TextSpan::new(i, i + 1)));
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((
                    Tok::Ident(text[start..i].to_owned()),
                    TextSpan::new(start, i),
                ));
            }
            other => {
                return Err(LangError::parse_at(
                    format!("unexpected character `{other}`"),
                    TextSpan::new(i, i + 1),
                ))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, TextSpan)>,
    pos: usize,
    /// Length of the input text; end-of-input errors point here.
    eof: usize,
}

impl Parser {
    fn new(text: &str) -> Result<Self, LangError> {
        Ok(Parser {
            toks: lex(text)?,
            pos: 0,
            eof: text.len(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    /// The span the next error should point at: the next token, or a
    /// zero-width span at the end of input.
    fn here(&self) -> TextSpan {
        self.toks
            .get(self.pos)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| TextSpan::point(self.eof))
    }

    fn next(&mut self) -> Option<(Tok, TextSpan)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<TextSpan, LangError> {
        let at = self.here();
        match self.next() {
            Some((t, span)) if t == tok => Ok(span),
            Some((t, span)) => Err(LangError::parse_at(
                format!("expected {what}, got {}", t.describe()),
                span,
            )),
            None => Err(LangError::parse_at(
                format!("expected {what}, got end of input"),
                at,
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<SpannedIdent, LangError> {
        let at = self.here();
        match self.next() {
            Some((Tok::Ident(name), span)) => Ok(SpannedIdent { name, span }),
            Some((t, span)) => Err(LangError::parse_at(
                format!("expected {what}, got {}", t.describe()),
                span,
            )),
            None => Err(LangError::parse_at(
                format!("expected {what}, got end of input"),
                at,
            )),
        }
    }

    /// `name ( v, v, … )` — name already consumed.
    fn atom_tail(&mut self, name: SpannedIdent) -> Result<RawLit, LangError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        loop {
            args.push(self.ident("variable")?);
            let at = self.here();
            match self.next() {
                Some((Tok::Comma, _)) => continue,
                Some((Tok::RParen, _)) => break,
                Some((t, span)) => {
                    return Err(LangError::parse_at(
                        format!("expected `,` or `)`, got {}", t.describe()),
                        span,
                    ))
                }
                None => {
                    return Err(LangError::parse_at(
                        "expected `,` or `)`, got end of input",
                        at,
                    ))
                }
            }
        }
        Ok(RawLit::Atom(RawAtom { name, args }))
    }

    fn literal(&mut self) -> Result<RawLit, LangError> {
        let name = self.ident("relation, `const`, or variable")?;
        match self.peek() {
            Some(Tok::LParen) => {
                if name.name == "const" || name.name == "constant" || name.name == "Constant" {
                    self.expect(Tok::LParen, "`(`")?;
                    let v = self.ident("variable")?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(RawLit::Const(v))
                } else {
                    self.atom_tail(name)
                }
            }
            Some(Tok::Neq) => {
                self.next();
                let rhs = self.ident("variable")?;
                Ok(RawLit::Neq(name, rhs))
            }
            _ => Err(LangError::parse_at(
                format!("expected `(` or `!=` after `{}`", name.name),
                self.here(),
            )),
        }
    }

    /// Conjunction of literals until a token outside the conjunction.
    fn conjunction(&mut self) -> Result<Vec<RawLit>, LangError> {
        let mut lits = vec![self.literal()?];
        while matches!(self.peek(), Some(Tok::Amp) | Some(Tok::Comma)) {
            self.next();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    /// `[ exists v+ . ] atoms`
    fn disjunct(&mut self) -> Result<RawDisjunct, LangError> {
        let mut exists = Vec::new();
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "exists") {
            let (_, kw_span) = self.next().expect("peeked");
            loop {
                let at = self.here();
                match self.next() {
                    Some((Tok::Ident(name), span)) => exists.push(SpannedIdent { name, span }),
                    Some((Tok::Dot, _)) => break,
                    Some((t, span)) => {
                        return Err(LangError::parse_at(
                            format!("expected variable or `.`, got {}", t.describe()),
                            span,
                        ))
                    }
                    None => {
                        return Err(LangError::parse_at(
                            "expected variable or `.`, got end of input",
                            at,
                        ))
                    }
                }
            }
            if exists.is_empty() {
                return Err(LangError::parse_at("`exists` with no variables", kw_span));
            }
        }
        Ok(RawDisjunct {
            exists,
            lits: self.conjunction()?,
        })
    }

    /// Conjunction of equalities `x = y [& …]` (egd conclusions).
    fn equalities(&mut self) -> Result<Vec<(SpannedIdent, SpannedIdent)>, LangError> {
        let mut out = Vec::new();
        loop {
            let a = self.ident("variable")?;
            self.expect(Tok::Eq, "`=`")?;
            let b = self.ident("variable")?;
            out.push((a, b));
            match self.peek() {
                Some(Tok::Amp) | Some(Tok::Comma) => {
                    self.next();
                }
                _ => break,
            }
        }
        Ok(out)
    }

    fn at_end(&self) -> Result<(), LangError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(LangError::parse_at(
                format!("trailing input at {}", t.describe()),
                self.here(),
            )),
        }
    }
}

/// Parse any dependency of the surface syntax — tgd, disjunctive tgd, or
/// egd — into the schema-unresolved [`RawDependency`] tree. Every
/// identifier carries its [`TextSpan`], which is what the static analyzer
/// uses to point diagnostics at tokens.
pub fn parse_raw_dependency(text: &str) -> Result<RawDependency, LangError> {
    let mut p = Parser::new(text)?;
    let premise = p.conjunction()?;
    let arrow = p.expect(Tok::Arrow, "`->`")?;
    // An egd conclusion starts `ident =`; a (disjunctive) tgd conclusion
    // starts `ident (`, `exists`, or `const(`.
    let is_equality = matches!(
        (p.toks.get(p.pos), p.toks.get(p.pos + 1)),
        (Some((Tok::Ident(_), _)), Some((Tok::Eq, _)))
    );
    let conclusion = if is_equality {
        RawConclusion::Equalities(p.equalities()?)
    } else {
        let mut disjuncts = vec![p.disjunct()?];
        while matches!(p.peek(), Some(Tok::Pipe)) {
            p.next();
            disjuncts.push(p.disjunct()?);
        }
        RawConclusion::Disjuncts(disjuncts)
    };
    p.at_end()?;
    Ok(RawDependency {
        premise,
        arrow,
        conclusion,
    })
}

fn resolve_atoms(schema: &Schema, lits: Vec<RawLit>, side: &str) -> Result<Vec<Atom>, LangError> {
    let mut atoms = Vec::new();
    for lit in lits {
        match lit {
            RawLit::Atom(raw) => {
                let rel = schema.rel(&raw.name.name).ok_or_else(|| {
                    LangError::parse_at(
                        format!("unknown {side} relation `{}`", raw.name.name),
                        raw.name.span,
                    )
                })?;
                atoms.push(Atom::new(
                    rel,
                    raw.args.iter().map(SpannedIdent::var).collect(),
                ));
            }
            RawLit::Const(v) => {
                return Err(LangError::parse_at(
                    format!("`const({})` is not allowed in this position", v.name),
                    v.span,
                ))
            }
            RawLit::Neq(a, b) => {
                return Err(LangError::parse_at(
                    format!(
                        "inequality `{} != {}` is not allowed in this position",
                        a.name, b.name
                    ),
                    TextSpan::new(a.span.start, b.span.end),
                ))
            }
        }
    }
    Ok(atoms)
}

/// Parse a (plain) s-t tgd such as
/// `P(x,y,z) -> exists w . Q(x,y) & R(y,w)`.
///
/// ```
/// use qi_lang::parse_tgd;
/// use qi_schema::Schema;
///
/// let s = Schema::parse("P/3").unwrap();
/// let t = Schema::parse("Q/2 R/2").unwrap();
/// let tgd = parse_tgd(&s, &t, "P(x,y,z) -> Q(x,y) & R(y,z)").unwrap();
/// assert!(tgd.is_lav() && tgd.is_full());
/// assert_eq!(tgd.to_string(), "P(x,y,z) -> Q(x,y) & R(y,z)");
/// ```
pub fn parse_tgd(source: &Schema, target: &Schema, text: &str) -> Result<Tgd, LangError> {
    let raw = parse_raw_dependency(text)?;
    let RawConclusion::Disjuncts(mut disjuncts) = raw.conclusion else {
        return Err(LangError::parse_at(
            "an s-t tgd conclusion must be a conjunction of atoms, not equalities",
            raw.arrow,
        ));
    };
    if disjuncts.len() > 1 {
        return Err(LangError::parse(
            "disjunction is not allowed in an s-t tgd (use parse_disj_tgd)",
        ));
    }
    let d = disjuncts.pop().expect("at least one disjunct");
    let body = resolve_atoms(source, raw.premise, "source")?;
    let head = resolve_atoms(target, d.lits, "target")?;
    Tgd::new(
        source.clone(),
        target.clone(),
        body,
        d.exists.iter().map(SpannedIdent::var).collect(),
        head,
    )
}

/// Parse a disjunctive tgd with constants and inequalities such as
/// `S(x,y) & const(x) & x != y -> P(x) | exists z . R(x,z)`.
pub fn parse_disj_tgd(from: &Schema, to: &Schema, text: &str) -> Result<DisjTgd, LangError> {
    let raw = parse_raw_dependency(text)?;
    let RawConclusion::Disjuncts(raw_disjuncts) = raw.conclusion else {
        return Err(LangError::parse_at(
            "a disjunctive tgd conclusion must be a disjunction of conjunctions, not equalities",
            raw.arrow,
        ));
    };
    let mut disjuncts = Vec::new();
    for d in raw_disjuncts {
        disjuncts.push(Disjunct {
            exists: d.exists.iter().map(SpannedIdent::var).collect(),
            atoms: resolve_atoms(to, d.lits, "rhs")?,
        });
    }
    let mut body = Vec::new();
    let mut constant = Vec::new();
    let mut neq = Vec::new();
    for lit in raw.premise {
        match lit {
            RawLit::Atom(a) => {
                let rel = from.rel(&a.name.name).ok_or_else(|| {
                    LangError::parse_at(format!("unknown relation `{}`", a.name.name), a.name.span)
                })?;
                body.push(Atom::new(
                    rel,
                    a.args.iter().map(SpannedIdent::var).collect(),
                ));
            }
            RawLit::Const(v) => constant.push(v.var()),
            RawLit::Neq(a, b) => neq.push((a.var(), b.var())),
        }
    }
    DisjTgd::new(from.clone(), to.clone(), body, constant, neq, disjuncts)
}

/// Parse an equality-generating dependency such as
/// `E(x,y) & E(x,z) -> y = z`.
pub fn parse_egd(schema: &Schema, text: &str) -> Result<Egd, LangError> {
    let raw = parse_raw_dependency(text)?;
    let RawConclusion::Equalities(eqs) = raw.conclusion else {
        return Err(LangError::parse_at(
            "an egd conclusion must be a conjunction of equalities `x = y`",
            raw.arrow,
        ));
    };
    let body = resolve_atoms(schema, raw.premise, "egd")?;
    let equalities = eqs.iter().map(|(a, b)| (a.var(), b.var())).collect();
    Egd::new(schema.clone(), body, equalities)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse("P/2 T/1").unwrap(),
            Schema::parse("Q/2 S/1").unwrap(),
        )
    }

    #[test]
    fn parse_projection_and_roundtrip() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> S(x)").unwrap();
        assert_eq!(tgd.to_string(), "P(x,y) -> S(x)");
        let back = parse_tgd(&s, &t, &tgd.to_string()).unwrap();
        assert_eq!(tgd, back);
    }

    #[test]
    fn parse_exists_block() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> exists z w . Q(x,z) & Q(z,w)").unwrap();
        assert_eq!(tgd.exists.len(), 2);
        assert_eq!(tgd.head.len(), 2);
        let back = parse_tgd(&s, &t, &tgd.to_string()).unwrap();
        assert_eq!(tgd, back);
    }

    #[test]
    fn comma_is_a_conjunction() {
        let (s, t) = schemas();
        let a = parse_tgd(&s, &t, "P(x,y), T(x) -> S(x)").unwrap();
        let b = parse_tgd(&s, &t, "P(x,y) & T(x) -> S(x)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_disjunctive_with_guards() {
        let (s, t) = schemas();
        let d = parse_disj_tgd(
            &t,
            &s,
            "Q(x,z) & Q(z,y) & const(x) & const(y) & x != y -> P(x,y) | exists u . P(x,u) & T(u)",
        )
        .unwrap();
        assert_eq!(d.body.len(), 2);
        assert_eq!(d.constant.len(), 2);
        assert_eq!(d.neq.len(), 1);
        assert_eq!(d.disjuncts.len(), 2);
        let back = parse_disj_tgd(&t, &s, &d.to_string()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn tgd_rejects_disjunction_and_guards() {
        let (s, t) = schemas();
        assert!(parse_tgd(&s, &t, "P(x,y) -> S(x) | S(y)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) & const(x) -> S(x)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) & x != y -> S(x)").is_err());
    }

    #[test]
    fn lex_errors_are_reported() {
        let (s, t) = schemas();
        assert!(parse_tgd(&s, &t, "P(x,y) -> S(x) %").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) - S(x)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) ! S(x)").is_err());
        assert!(parse_tgd(&s, &t, "").is_err());
    }

    #[test]
    fn unknown_relation_is_reported() {
        let (s, t) = schemas();
        let err = parse_tgd(&s, &t, "Z(x) -> S(x)").unwrap_err();
        assert!(err.to_string().contains("Z"));
    }

    #[test]
    fn errors_carry_token_spans() {
        let (s, t) = schemas();
        // The unknown relation's own token is named.
        let text = "P(x,y) -> Zz(x)";
        let err = parse_tgd(&s, &t, text).unwrap_err();
        let span = err.span().expect("span");
        assert_eq!(&text[span.start..span.end], "Zz");
        // A lexer error points at the stray byte.
        let text = "P(x,y) - S(x)";
        let err = parse_tgd(&s, &t, text).unwrap_err();
        assert_eq!(err.span().unwrap().start, 7);
        // End-of-input errors point one past the end.
        let text = "P(x,y) ->";
        let err = parse_tgd(&s, &t, text).unwrap_err();
        assert_eq!(err.span().unwrap(), TextSpan::point(text.len()));
    }

    #[test]
    fn raw_dependency_distinguishes_conclusions() {
        let raw = parse_raw_dependency("E(x,y) & E(x,z) -> y = z").unwrap();
        assert!(matches!(raw.conclusion, RawConclusion::Equalities(ref e) if e.len() == 1));
        let raw = parse_raw_dependency("E(x,y) -> exists z . E(y,z)").unwrap();
        let RawConclusion::Disjuncts(d) = raw.conclusion else {
            panic!("expected disjuncts");
        };
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].exists.len(), 1);
    }

    #[test]
    fn constant_spelling_variants() {
        let (s, t) = schemas();
        for kw in ["const", "constant", "Constant"] {
            let d = parse_disj_tgd(&t, &s, &format!("Q(x,y) & {kw}(x) -> P(x,y)")).unwrap();
            assert!(d.has_constants());
        }
    }
}

//! Recursive-descent parser for the textual dependency syntax.
//!
//! See the crate docs for the grammar. The parser is the inverse of the
//! `Display` impls on [`Tgd`] and [`DisjTgd`] (round-trip property tested
//! in the integration suite).

use crate::atom::{Atom, Var};
use crate::dependency::{DisjTgd, Disjunct, Egd, Tgd};
use crate::error::LangError;
use qi_schema::Schema;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Amp,
    Pipe,
    Arrow,
    Neq,
    Eq,
    Dot,
}

fn lex(text: &str) -> Result<Vec<Tok>, LangError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '&' => {
                out.push(Tok::Amp);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            '.' => {
                out.push(Tok::Dot);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Arrow);
                    i += 2;
                } else {
                    return Err(LangError::parse(format!("stray `-` at byte {i}")));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Neq);
                    i += 2;
                } else {
                    return Err(LangError::parse(format!("stray `!` at byte {i}")));
                }
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(text[start..i].to_owned()));
            }
            other => {
                return Err(LangError::parse(format!(
                    "unexpected character `{other}` at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

/// A parsed premise literal.
enum Lit {
    Atom(String, Vec<String>),
    Const(String),
    Neq(String, String),
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), LangError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(LangError::parse(format!("expected {what}, got {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, LangError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(LangError::parse(format!("expected {what}, got {other:?}"))),
        }
    }

    /// `name ( v, v, … )` — name already consumed.
    fn atom_tail(&mut self, name: String) -> Result<Lit, LangError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        loop {
            args.push(self.ident("variable")?);
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => {
                    return Err(LangError::parse(format!(
                        "expected `,` or `)`, got {other:?}"
                    )))
                }
            }
        }
        Ok(Lit::Atom(name, args))
    }

    fn literal(&mut self) -> Result<Lit, LangError> {
        let name = self.ident("relation, `const`, or variable")?;
        match self.peek() {
            Some(Tok::LParen) => {
                if name == "const" || name == "constant" || name == "Constant" {
                    self.expect(Tok::LParen, "`(`")?;
                    let v = self.ident("variable")?;
                    self.expect(Tok::RParen, "`)`")?;
                    Ok(Lit::Const(v))
                } else {
                    self.atom_tail(name)
                }
            }
            Some(Tok::Neq) => {
                self.next();
                let rhs = self.ident("variable")?;
                Ok(Lit::Neq(name, rhs))
            }
            other => Err(LangError::parse(format!(
                "expected `(` or `!=` after `{name}`, got {other:?}"
            ))),
        }
    }

    /// Conjunction of literals until a token outside the conjunction.
    fn conjunction(&mut self) -> Result<Vec<Lit>, LangError> {
        let mut lits = vec![self.literal()?];
        while matches!(self.peek(), Some(Tok::Amp) | Some(Tok::Comma)) {
            self.next();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    /// `[ exists v+ . ] atoms`
    fn disjunct(&mut self) -> Result<(Vec<String>, Vec<Lit>), LangError> {
        let mut exists = Vec::new();
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == "exists") {
            self.next();
            loop {
                match self.next() {
                    Some(Tok::Ident(v)) => exists.push(v),
                    Some(Tok::Dot) => break,
                    other => {
                        return Err(LangError::parse(format!(
                            "expected variable or `.`, got {other:?}"
                        )))
                    }
                }
            }
            if exists.is_empty() {
                return Err(LangError::parse("`exists` with no variables"));
            }
        }
        Ok((exists, self.conjunction()?))
    }

    fn at_end(&self) -> Result<(), LangError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(LangError::parse(format!("trailing input at {t:?}"))),
        }
    }
}

fn resolve_atoms(schema: &Schema, lits: Vec<Lit>, side: &str) -> Result<Vec<Atom>, LangError> {
    let mut atoms = Vec::new();
    for lit in lits {
        match lit {
            Lit::Atom(name, args) => {
                let rel = schema
                    .rel(&name)
                    .ok_or_else(|| LangError::parse(format!("unknown {side} relation `{name}`")))?;
                atoms.push(Atom::new(rel, args.iter().map(|a| Var::new(a)).collect()));
            }
            Lit::Const(v) => {
                return Err(LangError::parse(format!(
                    "`const({v})` is not allowed in this position"
                )))
            }
            Lit::Neq(a, b) => {
                return Err(LangError::parse(format!(
                    "inequality `{a} != {b}` is not allowed in this position"
                )))
            }
        }
    }
    Ok(atoms)
}

/// Parse a (plain) s-t tgd such as
/// `P(x,y,z) -> exists w . Q(x,y) & R(y,w)`.
///
/// ```
/// use qi_lang::parse_tgd;
/// use qi_schema::Schema;
///
/// let s = Schema::parse("P/3").unwrap();
/// let t = Schema::parse("Q/2 R/2").unwrap();
/// let tgd = parse_tgd(&s, &t, "P(x,y,z) -> Q(x,y) & R(y,z)").unwrap();
/// assert!(tgd.is_lav() && tgd.is_full());
/// assert_eq!(tgd.to_string(), "P(x,y,z) -> Q(x,y) & R(y,z)");
/// ```
pub fn parse_tgd(source: &Schema, target: &Schema, text: &str) -> Result<Tgd, LangError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    let body = p.conjunction()?;
    p.expect(Tok::Arrow, "`->`")?;
    let (exists, head) = p.disjunct()?;
    if matches!(p.peek(), Some(Tok::Pipe)) {
        return Err(LangError::parse(
            "disjunction is not allowed in an s-t tgd (use parse_disj_tgd)",
        ));
    }
    p.at_end()?;
    let body = resolve_atoms(source, body, "source")?;
    let head = resolve_atoms(target, head, "target")?;
    Tgd::new(
        source.clone(),
        target.clone(),
        body,
        exists.iter().map(|v| Var::new(v)).collect(),
        head,
    )
}

/// Parse a disjunctive tgd with constants and inequalities such as
/// `S(x,y) & const(x) & x != y -> P(x) | exists z . R(x,z)`.
pub fn parse_disj_tgd(from: &Schema, to: &Schema, text: &str) -> Result<DisjTgd, LangError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    let lits = p.conjunction()?;
    p.expect(Tok::Arrow, "`->`")?;
    let mut disjuncts = Vec::new();
    loop {
        let (exists, atoms) = p.disjunct()?;
        disjuncts.push(Disjunct {
            exists: exists.iter().map(|v| Var::new(v)).collect(),
            atoms: resolve_atoms(to, atoms, "rhs")?,
        });
        match p.peek() {
            Some(Tok::Pipe) => {
                p.next();
            }
            _ => break,
        }
    }
    p.at_end()?;
    let mut body = Vec::new();
    let mut constant = Vec::new();
    let mut neq = Vec::new();
    for lit in lits {
        match lit {
            Lit::Atom(name, args) => {
                let rel = from
                    .rel(&name)
                    .ok_or_else(|| LangError::parse(format!("unknown relation `{name}`")))?;
                body.push(Atom::new(rel, args.iter().map(|a| Var::new(a)).collect()));
            }
            Lit::Const(v) => constant.push(Var::new(&v)),
            Lit::Neq(a, b) => neq.push((Var::new(&a), Var::new(&b))),
        }
    }
    DisjTgd::new(from.clone(), to.clone(), body, constant, neq, disjuncts)
}

/// Parse an equality-generating dependency such as
/// `E(x,y) & E(x,z) -> y = z`.
pub fn parse_egd(schema: &Schema, text: &str) -> Result<Egd, LangError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    let body = p.conjunction()?;
    p.expect(Tok::Arrow, "`->`")?;
    let mut equalities = Vec::new();
    loop {
        let a = p.ident("variable")?;
        p.expect(Tok::Eq, "`=`")?;
        let b = p.ident("variable")?;
        equalities.push((Var::new(&a), Var::new(&b)));
        match p.peek() {
            Some(Tok::Amp) | Some(Tok::Comma) => {
                p.next();
            }
            _ => break,
        }
    }
    p.at_end()?;
    let body = resolve_atoms(schema, body, "egd")?;
    Egd::new(schema.clone(), body, equalities)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse("P/2 T/1").unwrap(),
            Schema::parse("Q/2 S/1").unwrap(),
        )
    }

    #[test]
    fn parse_projection_and_roundtrip() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> S(x)").unwrap();
        assert_eq!(tgd.to_string(), "P(x,y) -> S(x)");
        let back = parse_tgd(&s, &t, &tgd.to_string()).unwrap();
        assert_eq!(tgd, back);
    }

    #[test]
    fn parse_exists_block() {
        let (s, t) = schemas();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> exists z w . Q(x,z) & Q(z,w)").unwrap();
        assert_eq!(tgd.exists.len(), 2);
        assert_eq!(tgd.head.len(), 2);
        let back = parse_tgd(&s, &t, &tgd.to_string()).unwrap();
        assert_eq!(tgd, back);
    }

    #[test]
    fn comma_is_a_conjunction() {
        let (s, t) = schemas();
        let a = parse_tgd(&s, &t, "P(x,y), T(x) -> S(x)").unwrap();
        let b = parse_tgd(&s, &t, "P(x,y) & T(x) -> S(x)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_disjunctive_with_guards() {
        let (s, t) = schemas();
        let d = parse_disj_tgd(
            &t,
            &s,
            "Q(x,z) & Q(z,y) & const(x) & const(y) & x != y -> P(x,y) | exists u . P(x,u) & T(u)",
        )
        .unwrap();
        assert_eq!(d.body.len(), 2);
        assert_eq!(d.constant.len(), 2);
        assert_eq!(d.neq.len(), 1);
        assert_eq!(d.disjuncts.len(), 2);
        let back = parse_disj_tgd(&t, &s, &d.to_string()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn tgd_rejects_disjunction_and_guards() {
        let (s, t) = schemas();
        assert!(parse_tgd(&s, &t, "P(x,y) -> S(x) | S(y)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) & const(x) -> S(x)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) & x != y -> S(x)").is_err());
    }

    #[test]
    fn lex_errors_are_reported() {
        let (s, t) = schemas();
        assert!(parse_tgd(&s, &t, "P(x,y) -> S(x) %").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) - S(x)").is_err());
        assert!(parse_tgd(&s, &t, "P(x,y) ! S(x)").is_err());
        assert!(parse_tgd(&s, &t, "").is_err());
    }

    #[test]
    fn unknown_relation_is_reported() {
        let (s, t) = schemas();
        let err = parse_tgd(&s, &t, "Z(x) -> S(x)").unwrap_err();
        assert!(err.to_string().contains("Z"));
    }

    #[test]
    fn constant_spelling_variants() {
        let (s, t) = schemas();
        for kw in ["const", "constant", "Constant"] {
            let d = parse_disj_tgd(&t, &s, &format!("Q(x,y) & {kw}(x) -> P(x,y)")).unwrap();
            assert!(d.has_constants());
        }
    }
}

//! Set partitions: *complete descriptions* (§4) and prime atoms (§5).
//!
//! A *complete description* `δ(x)` of a variable vector is a consistent,
//! complete specification of which variables are equal — i.e. a set
//! partition of the vector. The paper's `Σ*` construction enumerates all
//! complete descriptions of a tgd's frontier; the `Inverse` algorithm
//! enumerates *prime atoms*, which are exactly the restricted-growth
//! strings over an atom's positions.

use crate::atom::Var;
use std::collections::BTreeMap;

/// A set partition of `{0, …, n−1}` in restricted-growth form:
/// `block[i]` is the block index of element `i`, blocks numbered in order
/// of first appearance (`block[0] == 0`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Partition {
    block: Vec<usize>,
}

impl Partition {
    /// Wrap a restricted-growth string; panics in debug builds if it is
    /// not one (internal constructor; use [`restricted_growth_strings`]).
    pub fn new(block: Vec<usize>) -> Self {
        debug_assert!(is_rgs(&block), "not a restricted-growth string");
        Partition { block }
    }

    /// The identity (all-distinct) partition of size `n`.
    pub fn discrete(n: usize) -> Self {
        Partition {
            block: (0..n).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// True for the empty partition.
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// Number of blocks (equivalence classes).
    pub fn num_blocks(&self) -> usize {
        self.block.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Block index of element `i`.
    pub fn block_of(&self, i: usize) -> usize {
        self.block[i]
    }

    /// Are all elements in distinct blocks?
    pub fn is_discrete(&self) -> bool {
        self.block.iter().enumerate().all(|(i, &b)| i == b)
    }

    /// Map each variable of `vars` to the representative of its block —
    /// the block's first variable, matching the paper's "select a unique
    /// representative of each equivalence class determined by δ".
    pub fn representative_map(&self, vars: &[Var]) -> BTreeMap<Var, Var> {
        assert_eq!(
            vars.len(),
            self.block.len(),
            "partition/vector length mismatch"
        );
        let mut first_of_block: Vec<Option<&Var>> = vec![None; self.num_blocks()];
        for (i, v) in vars.iter().enumerate() {
            let b = self.block[i];
            if first_of_block[b].is_none() {
                first_of_block[b] = Some(v);
            }
        }
        vars.iter()
            .enumerate()
            .map(|(i, v)| {
                (
                    v.clone(),
                    first_of_block[self.block[i]]
                        .expect("block with no representative")
                        .clone(),
                )
            })
            .collect()
    }

    /// The underlying restricted-growth string.
    pub fn as_slice(&self) -> &[usize] {
        &self.block
    }
}

fn is_rgs(block: &[usize]) -> bool {
    let mut max = 0usize;
    for (i, &b) in block.iter().enumerate() {
        if i == 0 {
            if b != 0 {
                return false;
            }
        } else if b > max + 1 {
            return false;
        }
        max = max.max(b);
    }
    true
}

/// All set partitions of `{0,…,n−1}` as restricted-growth strings, in
/// lexicographic order. `n = 0` yields the single empty partition.
///
/// The count is the Bell number `B(n)` — the source of the exponential
/// factor in the paper's `QuasiInverse` (complete descriptions, §4) and
/// `Inverse` (prime atoms in lexicographic order, Step 2 of §5).
pub fn restricted_growth_strings(n: usize) -> Vec<Partition> {
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fn rec(current: &mut Vec<usize>, i: usize, max: usize, out: &mut Vec<Partition>) {
        let n = current.len();
        if i == n {
            out.push(Partition {
                block: current.clone(),
            });
            return;
        }
        for b in 0..=max + 1 {
            current[i] = b;
            rec(current, i + 1, max.max(b), out);
        }
    }
    if n == 0 {
        out.push(Partition { block: vec![] });
    } else {
        // First element is always block 0.
        rec(&mut current, 1, 0, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_numbers() {
        for (n, bell) in [(0usize, 1usize), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)] {
            assert_eq!(restricted_growth_strings(n).len(), bell, "B({n})");
        }
    }

    #[test]
    fn partitions_are_valid_and_distinct() {
        let parts = restricted_growth_strings(4);
        for p in &parts {
            assert!(is_rgs(p.as_slice()));
        }
        let mut seen = parts.clone();
        seen.dedup();
        assert_eq!(seen.len(), parts.len());
    }

    #[test]
    fn discrete_partition() {
        let p = Partition::discrete(3);
        assert!(p.is_discrete());
        assert_eq!(p.num_blocks(), 3);
        assert!(!Partition::new(vec![0, 0, 1]).is_discrete());
    }

    #[test]
    fn representative_map_uses_first_of_block() {
        let vars: Vec<Var> = ["x1", "x2", "x3"].iter().map(|s| Var::new(s)).collect();
        // x1 = x3, x2 alone: blocks [0,1,0]
        let p = Partition::new(vec![0, 1, 0]);
        let m = p.representative_map(&vars);
        assert_eq!(m[&Var::new("x1")], Var::new("x1"));
        assert_eq!(m[&Var::new("x2")], Var::new("x2"));
        assert_eq!(m[&Var::new("x3")], Var::new("x1"));
    }

    #[test]
    fn paper_example_partition() {
        // δ: (x1 = x3) ∧ (x1 ≠ x2) over (x1,x2,x3) — the §4 example.
        let vars: Vec<Var> = ["x1", "x2", "x3"].iter().map(|s| Var::new(s)).collect();
        let p = Partition::new(vec![0, 1, 0]);
        let m = p.representative_map(&vars);
        // {x1,x3} has representative x1; {x2} has representative x2.
        assert_eq!(m[&Var::new("x3")], Var::new("x1"));
        assert_eq!(p.num_blocks(), 2);
    }
}

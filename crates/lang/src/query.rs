//! Conjunctive queries.
//!
//! Data exchange's raison d'être (the paper's reference \[4\], FKMP TCS'05) is
//! answering queries over the target; *certain answers* of conjunctive
//! queries are computable by naive evaluation on any universal solution.
//! This module provides the query syntax; evaluation lives in
//! `qi-chase::query`.
//!
//! Text form: `q(x,y) :- P(x,z), Q(z,y)` — head variables must occur in
//! the body; body atoms are over one schema.

use crate::atom::{vars_of, Atom, Var};
use crate::error::LangError;
use qi_schema::Schema;
use std::fmt;

/// A conjunctive query `q(x̄) :- body`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConjunctiveQuery {
    /// The schema the body atoms are over.
    pub schema: Schema,
    /// Distinguished (answer) variables, in output order.
    pub head: Vec<Var>,
    /// Body atoms (nonempty).
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build and validate a query: body nonempty, arities match, every
    /// head variable occurs in the body (safety).
    pub fn new(schema: Schema, head: Vec<Var>, body: Vec<Atom>) -> Result<Self, LangError> {
        if body.is_empty() {
            return Err(LangError::Invalid("query body must be nonempty".into()));
        }
        for a in &body {
            if a.rel.index() >= schema.len() || a.args.len() != schema.arity(a.rel) {
                return Err(LangError::Invalid(
                    "query atom arity does not match the schema".into(),
                ));
            }
        }
        let body_vars = vars_of(&body);
        for v in &head {
            if !body_vars.contains(v) {
                return Err(LangError::Invalid(format!(
                    "head variable `{v}` does not occur in the body"
                )));
            }
        }
        Ok(ConjunctiveQuery { schema, head, body })
    }

    /// Parse `q(x,y) :- P(x,z), Q(z,y)` against a schema. The head
    /// predicate name is arbitrary and ignored; separators `,` or `&`.
    pub fn parse(schema: &Schema, text: &str) -> Result<Self, LangError> {
        let (head_text, body_text) = text
            .split_once(":-")
            .ok_or_else(|| LangError::Parse("expected `head :- body`".into()))?;
        let head_text = head_text.trim();
        let open = head_text
            .find('(')
            .ok_or_else(|| LangError::Parse("expected `(` in query head".into()))?;
        let close = head_text
            .rfind(')')
            .ok_or_else(|| LangError::Parse("expected `)` in query head".into()))?;
        if close < open {
            return Err(LangError::Parse("malformed query head".into()));
        }
        let inner = head_text[open + 1..close].trim();
        let head: Vec<Var> = if inner.is_empty() {
            Vec::new() // boolean query
        } else {
            inner
                .split(',')
                .map(|v| {
                    let v = v.trim();
                    if v.is_empty() {
                        Err(LangError::Parse("empty head variable".into()))
                    } else {
                        Ok(Var::new(v))
                    }
                })
                .collect::<Result<_, _>>()?
        };
        // Reuse the dependency parser: body atoms look like a premise.
        // Parse "body -> head-atom" is overkill; do a tiny scan instead.
        let mut body = Vec::new();
        let mut rest = body_text.trim();
        while !rest.is_empty() {
            if let Some(stripped) = rest.strip_prefix([',', '&']) {
                rest = stripped.trim_start();
                continue;
            }
            let open = rest
                .find('(')
                .ok_or_else(|| LangError::Parse(format!("expected `(` in `{rest}`").into()))?;
            let close = rest
                .find(')')
                .ok_or_else(|| LangError::Parse(format!("unclosed atom near `{rest}`").into()))?;
            if close < open {
                return Err(LangError::Parse(
                    format!("misplaced `)` in `{rest}`").into(),
                ));
            }
            let name = rest[..open].trim();
            let rel = schema
                .rel(name)
                .ok_or_else(|| LangError::Parse(format!("unknown relation `{name}`").into()))?;
            let args: Vec<Var> = rest[open + 1..close]
                .split(',')
                .map(|v| {
                    let v = v.trim();
                    if v.is_empty() {
                        Err(LangError::Parse("empty variable".into()))
                    } else {
                        Ok(Var::new(v))
                    }
                })
                .collect::<Result<_, _>>()?;
            body.push(Atom::new(rel, args));
            rest = rest[close + 1..].trim_start();
        }
        ConjunctiveQuery::new(schema.clone(), head, body)
    }

    /// Is this a boolean (0-ary) query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.display(&self.schema))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_roundtrip() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let q = ConjunctiveQuery::parse(&s, "q(x,y) :- P(x,y), Q(y)").unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.body.len(), 2);
        let back = ConjunctiveQuery::parse(&s, &q.to_string()).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn boolean_query() {
        let s = Schema::parse("P/2").unwrap();
        let q = ConjunctiveQuery::parse(&s, "q() :- P(x,y)").unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn safety_enforced() {
        let s = Schema::parse("P/2").unwrap();
        assert!(ConjunctiveQuery::parse(&s, "q(z) :- P(x,y)").is_err());
        assert!(ConjunctiveQuery::parse(&s, "q(x) :- ").is_err());
        assert!(ConjunctiveQuery::parse(&s, "q(x) :- R(x)").is_err());
        assert!(ConjunctiveQuery::parse(&s, "q(x) - P(x,y)").is_err());
    }

    #[test]
    fn arity_checked() {
        let s = Schema::parse("P/2").unwrap();
        assert!(ConjunctiveQuery::parse(&s, "q(x) :- P(x)").is_err());
    }
}

//! Second-order tgds (SO-tgds).
//!
//! The composition of two arbitrary s-t tgd mappings is in general not
//! expressible by (first-order) s-t tgds; the right language is the
//! *SO-tgds* of the paper's reference \[5\] (Fagin, Kolaitis, Popa, Tan,
//! *Composing Schema Mappings: Second-Order Dependencies to the Rescue*):
//!
//! ```text
//! ∃f₁…f_k ( ∀x̄₁ (φ₁ → ψ₁) ∧ … ∧ ∀x̄_n (φ_n → ψ_n) )
//! ```
//!
//! where each premise `φᵢ` is a conjunction of relational atoms over the
//! source plus equalities between terms built from the quantified
//! function symbols, and each conclusion `ψᵢ` is a conjunction of target
//! atoms whose arguments are such terms.
//!
//! This module provides the term/clause representation, Skolemization of
//! plain tgds into SO-tgds, and a displayer; the SO chase lives in
//! `qi-chase::sotgd_chase`, the composition algorithm in
//! `qi-core::so_compose`.

use crate::atom::{vars_of, Atom, Var};
use crate::dependency::Tgd;
use std::fmt;
use std::sync::Arc;

/// A Skolem function symbol.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SkFun(Arc<str>);

impl SkFun {
    /// Create a function symbol.
    pub fn new(name: &str) -> Self {
        SkFun(Arc::from(name))
    }

    /// The symbol's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SkFun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A term over variables and Skolem functions.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SkTerm {
    /// A first-order variable.
    Var(Var),
    /// A function application `f(t₁,…,t_m)`.
    App(SkFun, Vec<SkTerm>),
}

impl SkTerm {
    /// The variables occurring in the term, first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            SkTerm::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            SkTerm::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Substitute variables by terms.
    pub fn substitute(&self, map: &dyn Fn(&Var) -> Option<SkTerm>) -> SkTerm {
        match self {
            SkTerm::Var(v) => map(v).unwrap_or_else(|| SkTerm::Var(v.clone())),
            SkTerm::App(f, args) => {
                SkTerm::App(f.clone(), args.iter().map(|a| a.substitute(map)).collect())
            }
        }
    }
}

impl fmt::Display for SkTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkTerm::Var(v) => write!(f, "{v}"),
            SkTerm::App(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A target atom whose arguments are Skolem terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoAtom {
    /// Relation (over the SO-tgd's target schema).
    pub rel: qi_schema::RelId,
    /// Argument terms.
    pub args: Vec<SkTerm>,
}

/// One clause `∀x̄ (φ ∧ eqs → ψ)` of an SO-tgd.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoClause {
    /// Relational premise atoms over the source (plain variables).
    pub body: Vec<Atom>,
    /// Equalities among Skolem terms (side conditions).
    pub eqs: Vec<(SkTerm, SkTerm)>,
    /// Conclusion atoms over the target.
    pub head: Vec<SoAtom>,
}

impl SoClause {
    /// The distinct premise variables (the clause's universals).
    pub fn body_vars(&self) -> Vec<Var> {
        vars_of(&self.body)
    }
}

/// An SO-tgd: existentially quantified Skolem functions over a
/// conjunction of clauses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoTgd {
    /// Source schema of every clause premise.
    pub source: qi_schema::Schema,
    /// Target schema of every clause conclusion.
    pub target: qi_schema::Schema,
    /// The clauses.
    pub clauses: Vec<SoClause>,
}

impl fmt::Display for SoTgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (ci, c) in self.clauses.iter().enumerate() {
            if ci > 0 {
                writeln!(f)?;
            }
            for (i, a) in c.body.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "{}", a.display(&self.source))?;
            }
            for (l, r) in &c.eqs {
                write!(f, " & {l} = {r}")?;
            }
            write!(f, " -> ")?;
            for (i, a) in c.head.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "{}(", self.target.name(a.rel))?;
                for (j, t) in a.args.iter().enumerate() {
                    if j > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")?;
            }
        }
        Ok(())
    }
}

/// Skolemize a set of plain s-t tgds into one SO-tgd: each existential
/// variable `y` of each tgd becomes a function term `f_i_y(x̄)` over the
/// tgd's premise variables. Function names are made unique with the
/// `prefix` (composition renames the two sides apart).
pub fn skolemize(tgds: &[Tgd], prefix: &str) -> SoTgd {
    assert!(!tgds.is_empty(), "cannot skolemize an empty mapping");
    let source = tgds[0].source.clone();
    let target = tgds[0].target.clone();
    let clauses = tgds
        .iter()
        .enumerate()
        .map(|(i, tgd)| {
            let body_vars = tgd.body_vars();
            let head = tgd
                .head
                .iter()
                .map(|a| SoAtom {
                    rel: a.rel,
                    args: a
                        .args
                        .iter()
                        .map(|v| {
                            if tgd.exists.contains(v) {
                                SkTerm::App(
                                    SkFun::new(&format!("{prefix}f{i}_{v}")),
                                    body_vars.iter().cloned().map(SkTerm::Var).collect(),
                                )
                            } else {
                                SkTerm::Var(v.clone())
                            }
                        })
                        .collect(),
                })
                .collect();
            SoClause {
                body: tgd.body.clone(),
                eqs: Vec::new(),
                head,
            }
        })
        .collect();
    SoTgd {
        source,
        target,
        clauses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_tgd;
    use qi_schema::Schema;

    #[test]
    fn skolemization_introduces_function_terms() {
        let s = Schema::parse("Emp/1").unwrap();
        let t = Schema::parse("Mgr1/2").unwrap();
        let tgd = parse_tgd(&s, &t, "Emp(e) -> exists m . Mgr1(e,m)").unwrap();
        let so = skolemize(&[tgd], "a_");
        assert_eq!(so.clauses.len(), 1);
        assert_eq!(so.to_string(), "Emp(e) -> Mgr1(e,a_f0_m(e))");
    }

    #[test]
    fn full_tgds_skolemize_to_themselves() {
        let s = Schema::parse("P/2").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgd = parse_tgd(&s, &t, "P(x,y) -> Q(y,x)").unwrap();
        let so = skolemize(&[tgd], "");
        assert_eq!(so.to_string(), "P(x,y) -> Q(y,x)");
    }

    #[test]
    fn term_substitution_and_vars() {
        let f = SkFun::new("f");
        let t = SkTerm::App(
            f.clone(),
            vec![SkTerm::Var(Var::new("x")), SkTerm::Var(Var::new("y"))],
        );
        assert_eq!(t.vars(), vec![Var::new("x"), Var::new("y")]);
        let sub =
            t.substitute(&|v: &Var| (v == &Var::new("x")).then(|| SkTerm::Var(Var::new("z"))));
        assert_eq!(sub.to_string(), "f(z,y)");
    }

    #[test]
    fn shared_existential_uses_one_function() {
        let s = Schema::parse("P/1").unwrap();
        let t = Schema::parse("Q/2").unwrap();
        let tgd = parse_tgd(&s, &t, "P(x) -> exists y . Q(x,y) & Q(y,x)").unwrap();
        let so = skolemize(&[tgd], "");
        // Both occurrences of y become the same term.
        let c = &so.clauses[0];
        assert_eq!(c.head[0].args[1], c.head[1].args[0]);
    }
}

//! Variable substitution and fresh-variable generation.

use crate::atom::{Atom, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Apply a variable map to an atom (variables absent from the map are
/// left unchanged).
pub fn substitute_atom(atom: &Atom, map: &BTreeMap<Var, Var>) -> Atom {
    Atom {
        rel: atom.rel,
        args: atom
            .args
            .iter()
            .map(|v| map.get(v).cloned().unwrap_or_else(|| v.clone()))
            .collect(),
    }
}

/// Apply a variable map to a conjunction.
pub fn substitute_atoms(atoms: &[Atom], map: &BTreeMap<Var, Var>) -> Vec<Atom> {
    atoms.iter().map(|a| substitute_atom(a, map)).collect()
}

/// Generator of fresh variables `prefix0, prefix1, …` avoiding a set of
/// reserved names.
#[derive(Clone, Debug)]
pub struct VarGen {
    prefix: String,
    counter: usize,
    avoid: BTreeSet<Var>,
}

impl VarGen {
    /// Create a generator with the given prefix avoiding `avoid`.
    pub fn new(prefix: &str, avoid: impl IntoIterator<Item = Var>) -> Self {
        VarGen {
            prefix: prefix.to_owned(),
            counter: 0,
            avoid: avoid.into_iter().collect(),
        }
    }

    /// Produce the next fresh variable.
    pub fn fresh(&mut self) -> Var {
        loop {
            let v = Var::new(&format!("{}{}", self.prefix, self.counter));
            self.counter += 1;
            if !self.avoid.contains(&v) {
                self.avoid.insert(v.clone());
                return v;
            }
        }
    }

    /// Mark additional names as reserved.
    pub fn reserve(&mut self, vars: impl IntoIterator<Item = Var>) {
        self.avoid.extend(vars);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qi_schema::Schema;

    #[test]
    fn substitution_leaves_unmapped_vars() {
        let s = Schema::parse("P/3").unwrap();
        let a = Atom::parse_parts(&s, "P", &["x", "y", "x"]).unwrap();
        let mut m = BTreeMap::new();
        m.insert(Var::new("x"), Var::new("z"));
        let b = substitute_atom(&a, &m);
        assert_eq!(b.args, vec![Var::new("z"), Var::new("y"), Var::new("z")]);
    }

    #[test]
    fn vargen_avoids_collisions() {
        let mut g = VarGen::new("z", [Var::new("z0"), Var::new("z2")]);
        assert_eq!(g.fresh(), Var::new("z1"));
        assert_eq!(g.fresh(), Var::new("z3"));
        assert_eq!(g.fresh(), Var::new("z4"));
    }
}

//! Brute-force reference semantics for the pattern matcher.
//!
//! [`MatchEngine`] earns its keep with
//! fail-first ordering, candidate capping, and a lazily-built value index
//! — all of which are exactly the machinery that can silently change
//! *which* matches are found. This module spells out the intended
//! semantics with none of it: enumerate every assignment of the pattern
//! variables over the target's active domain and keep the ones where all
//! pattern facts and all side conditions hold. Exponential, deliberately
//! so — it exists to be obviously correct, as the oracle the differential
//! tests (`tests/match_oracle.rs`) compare the engine against.

use crate::hom::{Assignment, MatchConstraints, MatchEngine, PatFact, PatTerm, Pattern, VarIdx};
use crate::instance::Instance;
use crate::value::Value;
use std::collections::BTreeSet;

/// The slot vector of an assignment — `slots[v]` is the value of variable
/// `v`, or `None` when the variable occurs in no pattern fact and carries
/// no `fixed` constraint. This is the comparable form shared by
/// [`brute_force_matches`] and [`engine_matches`].
pub type Slots = Vec<Option<Value>>;

fn slots_of(a: &Assignment, nvars: usize) -> Slots {
    (0..nvars as VarIdx).map(|v| a.get(v)).collect()
}

/// Run [`MatchEngine::all`] and render the matches as sorted [`Slots`]
/// (the engine's enumeration order is its own business; the semantics is
/// the *set* of matches).
pub fn engine_matches(
    pattern: &Pattern,
    target: &Instance,
    constraints: &MatchConstraints,
) -> Vec<Slots> {
    let engine = MatchEngine::new(pattern, target, constraints);
    let mut out: Vec<Slots> = engine
        .all()
        .iter()
        .map(|a| slots_of(a, pattern.nvars))
        .collect();
    out.sort();
    out
}

/// Every satisfying assignment, found the slow, obvious way: try all
/// `|adom|^nvars` value vectors. Variables that occur in no fact (and are
/// not `fixed`) stay `None`, mirroring the engine. Returns sorted
/// [`Slots`], deduplicated (distinct full vectors are distinct matches).
pub fn brute_force_matches(
    pattern: &Pattern,
    target: &Instance,
    constraints: &MatchConstraints,
) -> Vec<Slots> {
    // Candidate values: the target's active domain plus any pre-fixed
    // values (a fixed value outside the domain can still satisfy a
    // pattern whose facts don't mention the variable).
    let mut domain: BTreeSet<Value> = (*target.active_domain()).clone();
    for &(_, v) in &constraints.fixed {
        domain.insert(v);
    }
    let domain: Vec<Value> = domain.into_iter().collect();
    let mut occurs = vec![false; pattern.nvars];
    for fact in &pattern.facts {
        for term in &fact.args {
            if let PatTerm::Var(v) = *term {
                occurs[v as usize] = true;
            }
        }
    }
    for &(v, _) in &constraints.fixed {
        occurs[v as usize] = true;
    }
    let mut slots: Slots = vec![None; pattern.nvars];
    let mut out: Vec<Slots> = Vec::new();
    enumerate(
        pattern,
        target,
        constraints,
        &domain,
        &occurs,
        0,
        &mut slots,
        &mut out,
    );
    out.sort();
    out.dedup();
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    pattern: &Pattern,
    target: &Instance,
    constraints: &MatchConstraints,
    domain: &[Value],
    occurs: &[bool],
    var: usize,
    slots: &mut Slots,
    out: &mut Vec<Slots>,
) {
    if var == pattern.nvars {
        if satisfies(pattern, target, constraints, slots) {
            out.push(slots.clone());
        }
        return;
    }
    if !occurs[var] {
        slots[var] = None;
        enumerate(
            pattern,
            target,
            constraints,
            domain,
            occurs,
            var + 1,
            slots,
            out,
        );
        return;
    }
    for &v in domain {
        slots[var] = Some(v);
        enumerate(
            pattern,
            target,
            constraints,
            domain,
            occurs,
            var + 1,
            slots,
            out,
        );
    }
    slots[var] = None;
}

fn fact_holds(fact: &PatFact, target: &Instance, slots: &Slots) -> bool {
    let image: Option<Vec<Value>> = fact
        .args
        .iter()
        .map(|term| match *term {
            PatTerm::Value(v) => Some(v),
            PatTerm::Var(var) => slots[var as usize],
        })
        .collect();
    match image {
        Some(tuple) => target.contains(fact.rel, &tuple),
        None => false,
    }
}

fn satisfies(
    pattern: &Pattern,
    target: &Instance,
    constraints: &MatchConstraints,
    slots: &Slots,
) -> bool {
    if !pattern.facts.iter().all(|f| fact_holds(f, target, slots)) {
        return false;
    }
    for slot in slots.iter().flatten() {
        if constraints.forbidden_values.contains(slot) {
            return false;
        }
    }
    for &(var, value) in &constraints.fixed {
        if slots[var as usize] != Some(value) {
            return false;
        }
    }
    for &(a, b) in &constraints.distinct {
        let (va, vb) = (slots[a as usize], slots[b as usize]);
        if va.is_some() && va == vb {
            return false;
        }
    }
    for &var in &constraints.constants_only {
        if let Some(v) = slots[var as usize] {
            if !v.is_const() {
                return false;
            }
        }
    }
    for &var in &constraints.nulls_only {
        if let Some(v) = slots[var as usize] {
            if !v.is_null() {
                return false;
            }
        }
    }
    if constraints.injective {
        let assigned: Vec<Value> = slots.iter().filter_map(|s| *s).collect();
        let distinct: BTreeSet<Value> = assigned.iter().copied().collect();
        if distinct.len() != assigned.len() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn brute_force_agrees_on_a_known_case() {
        let s = Schema::parse("P/2").unwrap();
        let b = Instance::parse(&s, "P(a,a) P(a,N1)").unwrap();
        let pattern = Pattern {
            facts: vec![PatFact {
                rel: s.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            }],
            nvars: 2,
        };
        let c = MatchConstraints::default();
        let brute = brute_force_matches(&pattern, &b, &c);
        assert_eq!(brute.len(), 2);
        assert_eq!(brute, engine_matches(&pattern, &b, &c));
    }

    #[test]
    fn unused_vars_stay_unassigned() {
        let s = Schema::parse("P/1").unwrap();
        let b = Instance::parse(&s, "P(a)").unwrap();
        let pattern = Pattern {
            facts: vec![PatFact {
                rel: s.rel("P").unwrap(),
                args: vec![PatTerm::Var(0)],
            }],
            nvars: 2,
        };
        let c = MatchConstraints::default();
        let brute = brute_force_matches(&pattern, &b, &c);
        assert_eq!(brute, vec![vec![Some(Value::constant("a")), None]]);
        assert_eq!(brute, engine_matches(&pattern, &b, &c));
    }
}

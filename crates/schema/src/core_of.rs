//! Cores of instances.
//!
//! The *core* of an instance `J` is a smallest subinstance of `J` to which
//! `J` retracts; it is unique up to isomorphism and homomorphically
//! equivalent to `J`. Cores are not used by the paper's algorithms
//! directly, but they give canonical representatives of the
//! hom-equivalence classes that `~M` and faithfulness (§6) reason about,
//! and the test-suite uses them to compare chase results structurally.
//!
//! # Retraction-based computation
//!
//! [`core_of`] is a FindCore-style fold rather than greedy fact
//! elimination. Per round it looks, for each null `n` of the current
//! instance, for a single *endomorphism whose image avoids `n`*
//! (a [`crate::MatchConstraints::forbidden_values`] search); applying
//! such a map through [`crate::Instance::map_values`] eliminates `n` —
//! and usually many other nulls in the same stroke, since nothing
//! restricts the endomorphism to move only `n`. The null count strictly
//! decreases with every fold, so the loop terminates after at most
//! `#nulls` folds.
//!
//! The stopping condition is exact: the result is a core *iff* no null
//! is avoidable. A non-core has an idempotent retraction `r` onto a
//! proper subinstance; `r` cannot be surjective on nulls (a null-
//! surjective endomorphism is injective on the finite null set, hence
//! maps distinct facts to distinct facts and cannot shrink anything), so
//! some null is absent from `r`'s entire image — exactly what the
//! per-null search looks for.
//!
//! The pre-v2 greedy loop (drop one fact at a time while a hom into the
//! remainder exists) is kept as [`core_of_greedy`] behind the
//! `greedy-core` feature: it is the reference implementation the
//! differential oracle (`tests/core_oracle.rs`) compares against.

use crate::hom::{MatchConstraints, MatchEngine, Pattern};
use crate::instance::Instance;
use crate::value::{NullId, Value};
use std::collections::BTreeMap;

/// Counters from one [`core_of_with_stats`] run, exported through the
/// `qimap` CLI `--stats` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Endomorphism searches attempted (one per candidate null per
    /// round, successful or not).
    pub endos_tried: u64,
    /// Nulls eliminated across all folds (a single fold may eliminate
    /// many nulls at once).
    pub nulls_folded: u64,
    /// Retraction rounds: pattern rebuilds after a successful fold, plus
    /// the final round that certifies no null is avoidable.
    pub rounds: u64,
}

/// Compute the core of `instance` (see the module docs for the
/// algorithm).
///
/// Ground instances are their own cores (constants are fixed by
/// homomorphisms), so the search is skipped entirely for them.
pub fn core_of(instance: &Instance) -> Instance {
    core_of_with_stats(instance).0
}

/// [`core_of`] plus the counters describing the computation.
pub fn core_of_with_stats(instance: &Instance) -> (Instance, CoreStats) {
    let mut stats = CoreStats::default();
    let mut current = instance.clone();
    'outer: loop {
        let nulls: Vec<NullId> = current.nulls().iter().copied().collect();
        if nulls.is_empty() {
            return (current, stats);
        }
        stats.rounds += 1;
        let (pattern, vars) = Pattern::from_instance(&current);
        for &n in &nulls {
            stats.endos_tried += 1;
            let constraints = MatchConstraints {
                forbidden_values: vec![Value::Null(n)],
                ..Default::default()
            };
            let engine = MatchEngine::new(&pattern, &current, &constraints);
            if let Some(h) = engine.any_match() {
                // h is an endomorphism of `current` whose image avoids
                // Null(n): the mapped instance is a subinstance missing
                // at least that null (h one way, inclusion back, so
                // hom-equivalence is preserved).
                let map: BTreeMap<Value, Value> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &m)| (Value::Null(m), h.value(i as u32)))
                    .collect();
                let before = current.nulls().len();
                current = current.map_values(|v| map.get(&v).copied().unwrap_or(v));
                stats.nulls_folded += (before - current.nulls().len()) as u64;
                continue 'outer;
            }
        }
        return (current, stats);
    }
}

/// The pre-v2 greedy core: repeatedly drop a fact `f` such that the
/// current instance still maps homomorphically into `current − f` (the
/// inclusion gives the other direction, so equivalence is preserved).
/// When no fact can be dropped, every endomorphism is surjective and the
/// remainder is a core.
///
/// Kept behind the `greedy-core` feature as the reference path for the
/// differential oracle (`tests/core_oracle.rs`); [`core_of`] supersedes
/// it everywhere else. Note on the old "candidate staleness" rescan:
/// dropping a fact removes only that fact, so the per-round candidate
/// snapshot never holds a dead fact — the `contains_fact` re-check the
/// original loop paid on every iteration was pure overhead and is gone.
#[cfg(any(test, feature = "greedy-core"))]
pub fn core_of_greedy(instance: &Instance) -> Instance {
    use crate::hom::has_hom;
    let mut current = instance.clone();
    if current.is_ground() {
        return current;
    }
    loop {
        let mut shrunk = false;
        // Try dropping facts that contain at least one null; a fact with
        // only constants can never be dropped (no hom can re-create it).
        let candidates: Vec<_> = current.facts().filter(|f| !f.is_ground()).collect();
        for fact in candidates {
            let smaller = current.without_fact(&fact);
            if has_hom(&current, &smaller) {
                current = smaller;
                shrunk = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_equivalent;
    use crate::iso::is_isomorphic;
    use crate::schema::Schema;

    fn inst(schema: &Schema, text: &str) -> Instance {
        Instance::parse(schema, text).unwrap()
    }

    #[test]
    fn ground_instance_is_its_own_core() {
        let s = Schema::parse("P/2").unwrap();
        let i = inst(&s, "P(a,b) P(b,c)");
        assert_eq!(core_of(&i), i);
        let (_, stats) = core_of_with_stats(&i);
        assert_eq!(stats.endos_tried, 0, "ground: no search at all");
    }

    #[test]
    fn redundant_null_fact_dropped() {
        let s = Schema::parse("P/2").unwrap();
        // P(a,N1) folds onto P(a,b).
        let i = inst(&s, "P(a,b) P(a,N1)");
        let c = core_of(&i);
        assert_eq!(c, inst(&s, "P(a,b)"));
        assert!(hom_equivalent(&i, &c));
    }

    #[test]
    fn chain_of_nulls_collapses_onto_loop() {
        let s = Schema::parse("E/2").unwrap();
        let i = inst(&s, "E(a,a) E(a,N1) E(N1,N2)");
        let c = core_of(&i);
        assert_eq!(c, inst(&s, "E(a,a)"));
        let (_, stats) = core_of_with_stats(&i);
        assert_eq!(stats.nulls_folded, 2, "one fold removes the chain");
    }

    #[test]
    fn rigid_instance_unchanged() {
        let s = Schema::parse("E/2").unwrap();
        // N1→N2 with different constant anchors: nothing folds.
        let i = inst(&s, "E(a,N1) E(b,N2)");
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 2);
        assert!(hom_equivalent(&i, &c));
    }

    #[test]
    fn core_is_idempotent() {
        let s = Schema::parse("E/2").unwrap();
        let i = inst(&s, "E(a,a) E(a,N1) E(N1,N2) E(N3,N3)");
        let once = core_of(&i);
        let twice = core_of(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn retraction_agrees_with_greedy_reference() {
        let s = Schema::parse("E/2 P/2").unwrap();
        for text in [
            "E(a,a) E(a,N1) E(N1,N2) E(N3,N3)",
            "E(a,b) E(b,c)",
            "E(a,N1) E(b,N2)",
            "E(N1,N2) E(N2,N1) P(N1,N1)",
            "P(a,b) P(a,N1) E(N2,N2)",
            "E(N1,N2) E(N2,N3) E(N3,N1)",
        ] {
            let i = inst(&s, text);
            let v2 = core_of(&i);
            let greedy = core_of_greedy(&i);
            assert!(
                is_isomorphic(&v2, &greedy),
                "cores of {text} differ: v2={v2} greedy={greedy}"
            );
            assert!(hom_equivalent(&i, &v2));
        }
    }
}

//! Cores of instances.
//!
//! The *core* of an instance `J` is a smallest subinstance of `J` to which
//! `J` retracts; it is unique up to isomorphism and homomorphically
//! equivalent to `J`. Cores are not used by the paper's algorithms
//! directly, but they give canonical representatives of the
//! hom-equivalence classes that `~M` and faithfulness (§6) reason about,
//! and the test-suite uses them to compare chase results structurally.

use crate::hom::has_hom;
use crate::instance::Instance;

/// Compute the core of `instance`.
///
/// Greedy fact elimination: repeatedly drop a fact `f` such that the
/// current instance still maps homomorphically into `instance − f`
/// (the inclusion gives the other direction, so equivalence is preserved).
/// When no fact can be dropped, every endomorphism is surjective and the
/// remainder is a core.
///
/// Ground instances are their own cores (constants are fixed by
/// homomorphisms), so the loop exits immediately for them.
pub fn core_of(instance: &Instance) -> Instance {
    let mut current = instance.clone();
    if current.is_ground() {
        return current;
    }
    loop {
        let mut shrunk = false;
        // Try dropping facts that contain at least one null; a fact with
        // only constants can never be dropped (no hom can re-create it).
        let candidates: Vec<_> = current.facts().filter(|f| !f.is_ground()).collect();
        for fact in candidates {
            if !current.contains_fact(&fact) {
                continue; // already removed this round
            }
            let smaller = current.without_fact(&fact);
            if has_hom(&current, &smaller) {
                current = smaller;
                shrunk = true;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::hom_equivalent;
    use crate::schema::Schema;

    fn inst(schema: &Schema, text: &str) -> Instance {
        Instance::parse(schema, text).unwrap()
    }

    #[test]
    fn ground_instance_is_its_own_core() {
        let s = Schema::parse("P/2").unwrap();
        let i = inst(&s, "P(a,b) P(b,c)");
        assert_eq!(core_of(&i), i);
    }

    #[test]
    fn redundant_null_fact_dropped() {
        let s = Schema::parse("P/2").unwrap();
        // P(a,N1) folds onto P(a,b).
        let i = inst(&s, "P(a,b) P(a,N1)");
        let c = core_of(&i);
        assert_eq!(c, inst(&s, "P(a,b)"));
        assert!(hom_equivalent(&i, &c));
    }

    #[test]
    fn chain_of_nulls_collapses_onto_loop() {
        let s = Schema::parse("E/2").unwrap();
        let i = inst(&s, "E(a,a) E(a,N1) E(N1,N2)");
        let c = core_of(&i);
        assert_eq!(c, inst(&s, "E(a,a)"));
    }

    #[test]
    fn rigid_instance_unchanged() {
        let s = Schema::parse("E/2").unwrap();
        // N1→N2 with different constant anchors: nothing folds.
        let i = inst(&s, "E(a,N1) E(b,N2)");
        let c = core_of(&i);
        assert_eq!(c.fact_count(), 2);
        assert!(hom_equivalent(&i, &c));
    }

    #[test]
    fn core_is_idempotent() {
        let s = Schema::parse("E/2").unwrap();
        let i = inst(&s, "E(a,a) E(a,N1) E(N1,N2) E(N3,N3)");
        let once = core_of(&i);
        let twice = core_of(&once);
        assert_eq!(once, twice);
    }
}

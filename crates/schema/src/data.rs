//! Plain-data mirror types.
//!
//! Interned ids are process-local, so instances are exchanged across
//! process boundaries through a plain-data mirror: relation names and
//! value spellings. Null values use the same `N<digits>` convention as
//! the textual instance format.

use crate::error::SchemaError;
use crate::instance::Instance;
use crate::schema::Schema;
use crate::value::Value;

/// Plain-data form of a [`Schema`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaData {
    /// `(name, arity)` pairs in declaration order.
    pub relations: Vec<(String, usize)>,
}

impl From<&Schema> for SchemaData {
    fn from(schema: &Schema) -> Self {
        SchemaData {
            relations: schema
                .iter()
                .map(|(_, sym)| (sym.name.clone(), sym.arity))
                .collect(),
        }
    }
}

impl SchemaData {
    /// Rebuild the interned schema.
    pub fn build(&self) -> Result<Schema, SchemaError> {
        Schema::new(&self.relations)
    }
}

/// Plain-data form of an [`Instance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceData {
    /// The schema the facts are over.
    pub schema: SchemaData,
    /// Facts as `(relation name, argument spellings)`.
    pub facts: Vec<(String, Vec<String>)>,
}

impl From<&Instance> for InstanceData {
    fn from(instance: &Instance) -> Self {
        let schema = instance.schema();
        InstanceData {
            schema: schema.into(),
            facts: instance
                .facts()
                .map(|f| {
                    (
                        schema.name(f.rel).to_owned(),
                        f.args
                            .iter()
                            .map(|v| match v {
                                Value::Const(c) => c.with_name(str::to_owned),
                                Value::Null(n) => format!("N{}", n.0),
                            })
                            .collect(),
                    )
                })
                .collect(),
        }
    }
}

impl InstanceData {
    /// Rebuild the interned instance.
    pub fn build(&self) -> Result<Instance, SchemaError> {
        let schema = self.schema.build()?;
        let mut out = Instance::new(schema.clone());
        for (name, args) in &self.facts {
            let rel = schema.rel_checked(name)?;
            let args: Result<Vec<Value>, SchemaError> = args
                .iter()
                .map(|tok| {
                    if let Some(digits) = tok.strip_prefix('N') {
                        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                            return digits
                                .parse()
                                .map(Value::null)
                                .map_err(|_| SchemaError::Parse(format!("bad null `{tok}`")));
                        }
                    }
                    Ok(Value::constant(tok))
                })
                .collect();
            out.insert(rel, args?)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_mirror_roundtrip() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let i = Instance::parse(&s, "P(a,N3) Q(b)").unwrap();
        let data: InstanceData = (&i).into();
        let back = data.build().unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn schema_mirror_roundtrip() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let data: SchemaData = (&s).into();
        let back = data.build().unwrap();
        assert!(s.same_as(&back));
    }
}

//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by schema and instance construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A relation name occurred twice in one schema.
    DuplicateRelation(String),
    /// A relation was declared with arity 0.
    ZeroArity(String),
    /// A relation name was not found in the schema.
    UnknownRelation(String),
    /// A fact's width does not match its relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Width of the offending tuple.
        got: usize,
    },
    /// Two instances over different schemas were combined.
    SchemaMismatch,
    /// Textual parse failure (schemas or instance literals).
    Parse(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateRelation(n) => write!(f, "duplicate relation `{n}`"),
            SchemaError::ZeroArity(n) => write!(f, "relation `{n}` has arity 0"),
            SchemaError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            SchemaError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for `{relation}`: expected {expected}, got {got}"
            ),
            SchemaError::SchemaMismatch => write!(f, "instances are over different schemas"),
            SchemaError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

//! Facts: a relation id together with a tuple of values.

use crate::schema::{RelId, Schema};
use crate::value::Value;
use std::fmt;

/// A single fact `R(v_1, …, v_m)` of an instance.
///
/// The relation is referenced by [`RelId`], so a `Fact` is only meaningful
/// relative to a schema; [`crate::Instance`] enforces arity on insertion.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fact {
    /// Relation symbol.
    pub rel: RelId,
    /// Tuple of values; length must equal the relation's arity.
    pub args: Vec<Value>,
}

impl Fact {
    /// Build a fact.
    pub fn new(rel: RelId, args: Vec<Value>) -> Self {
        Fact { rel, args }
    }

    /// True when every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|v| v.is_const())
    }

    /// Render against a schema (resolving the relation name).
    pub fn display<'a>(&'a self, schema: &'a Schema) -> FactDisplay<'a> {
        FactDisplay { fact: self, schema }
    }
}

/// Helper implementing `Display` for a fact in the context of a schema.
pub struct FactDisplay<'a> {
    fact: &'a Fact,
    schema: &'a Schema,
}

impl fmt::Display for FactDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name(self.fact.rel))?;
        for (i, v) in self.fact.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groundness_and_display() {
        let s = Schema::parse("P/2").unwrap();
        let p = s.rel("P").unwrap();
        let g = Fact::new(p, vec![Value::constant("a"), Value::constant("b")]);
        let n = Fact::new(p, vec![Value::constant("a"), Value::null(1)]);
        assert!(g.is_ground());
        assert!(!n.is_ground());
        assert_eq!(g.display(&s).to_string(), "P(a,b)");
        assert_eq!(n.display(&s).to_string(), "P(a,N1)");
    }
}

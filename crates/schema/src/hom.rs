//! Homomorphisms and a reusable backtracking pattern matcher.
//!
//! A *homomorphism* `h : Const ∪ Var → Const ∪ Var` from instance `J` to
//! instance `J'` fixes every constant and maps every fact of `J` to a fact
//! of `J'` (§2 of the paper). Finding one is a constraint-satisfaction
//! problem whose variables are the nulls of `J`.
//!
//! The same search also answers every other matching question in this
//! reproduction — chase-trigger enumeration (homomorphisms from a tgd
//! premise into an instance), the `Constant(x)` and `x ≠ x'` side
//! conditions of Definition 6.2, and injective matching for isomorphism
//! tests — so it is exposed generically: a [`Pattern`] is a conjunction of
//! [`PatFact`]s over match variables, a [`MatchConstraints`] bundle carries
//! the side conditions, and [`MatchEngine`] enumerates satisfying
//! [`Assignment`]s against a target [`Instance`].
//!
//! The search picks, at every step, the pattern fact with the fewest
//! consistent candidate tuples (fail-first). Candidate lookup uses the
//! target's incrementally-maintained per-`(relation, position)` posting
//! lists ([`crate::FactStore`]) whenever some position of the pattern
//! fact is bound; posting lists are kept in canonical tuple order, so the
//! indexed enumeration is byte-identical to a filtered relation scan.
//! An engine can additionally be restricted to one *delta atom*
//! ([`MatchEngine::with_delta_atom`]): that pattern fact then draws its
//! candidates from the facts inserted since the target's last
//! `begin_round()`, which is what semi-naive chase rounds use to
//! enumerate only triggers touching at least one new fact.

use crate::instance::Instance;
use crate::schema::RelId;
use crate::store::TupleId;
use crate::value::{NullId, Value};
use std::cell::Cell;
use std::collections::BTreeMap;

/// Index of a match variable within a [`Pattern`].
pub type VarIdx = u32;

/// A term of a pattern fact: a fixed value or a match variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PatTerm {
    /// A concrete value that candidate tuples must equal position-wise.
    Value(Value),
    /// A match variable to be assigned by the search.
    Var(VarIdx),
}

/// One atom of a pattern: a relation and a vector of pattern terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatFact {
    /// Relation the candidate tuples are drawn from.
    pub rel: RelId,
    /// Terms; length must match the relation's arity.
    pub args: Vec<PatTerm>,
}

/// A conjunction of pattern facts over variables `0..nvars`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pattern {
    /// The atoms to match simultaneously.
    pub facts: Vec<PatFact>,
    /// Number of match variables.
    pub nvars: usize,
}

impl Pattern {
    /// Pattern with no atoms (matched by the empty assignment).
    pub fn empty(nvars: usize) -> Self {
        Pattern {
            facts: Vec::new(),
            nvars,
        }
    }

    /// Turn an instance into a pattern by replacing each null with a match
    /// variable. Returns the pattern and the nulls in variable order, so
    /// `vars[i]` is the null represented by variable `i`.
    pub fn from_instance(instance: &Instance) -> (Pattern, Vec<NullId>) {
        let nulls: Vec<NullId> = instance.nulls().iter().copied().collect();
        let index: BTreeMap<NullId, VarIdx> = nulls
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i as VarIdx))
            .collect();
        let facts = instance
            .facts()
            .map(|f| PatFact {
                rel: f.rel,
                args: f
                    .args
                    .iter()
                    .map(|&v| match v {
                        Value::Null(n) => PatTerm::Var(index[&n]),
                        c => PatTerm::Value(c),
                    })
                    .collect(),
            })
            .collect();
        (
            Pattern {
                facts,
                nvars: nulls.len(),
            },
            nulls,
        )
    }
}

/// Side conditions on a match.
#[derive(Clone, Default, Debug)]
pub struct MatchConstraints {
    /// Pre-assignments `var ↦ value` (used to fix shared variables).
    pub fixed: Vec<(VarIdx, Value)>,
    /// Pairs that must receive distinct values (`x ≠ x'` of Def 2.1).
    pub distinct: Vec<(VarIdx, VarIdx)>,
    /// Variables that must be assigned constants (`Constant(x)`).
    pub constants_only: Vec<VarIdx>,
    /// Variables that must be assigned nulls (isomorphism search).
    pub nulls_only: Vec<VarIdx>,
    /// Require all variables to take pairwise-distinct values
    /// (isomorphism search).
    pub injective: bool,
    /// Values no variable may take. The retraction-based core search uses
    /// this to ask for an endomorphism whose image avoids a given null
    /// (applying such a map eliminates the null from the instance).
    pub forbidden_values: Vec<Value>,
}

/// A (possibly partial) assignment of match variables to values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Assignment {
    slots: Vec<Option<Value>>,
}

impl Assignment {
    fn new(nvars: usize) -> Self {
        Assignment {
            slots: vec![None; nvars],
        }
    }

    /// The value assigned to `var`, if any.
    pub fn get(&self, var: VarIdx) -> Option<Value> {
        self.slots[var as usize]
    }

    /// The value assigned to `var`; panics when unassigned (use only on
    /// complete assignments delivered by the engine).
    pub fn value(&self, var: VarIdx) -> Value {
        self.slots[var as usize].expect("variable unassigned in complete match")
    }

    /// All assigned values in variable order (complete assignments only).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.slots.iter().map(|s| s.expect("incomplete assignment"))
    }
}

/// Backtracking matcher of a [`Pattern`] against an [`Instance`].
pub struct MatchEngine<'a> {
    pattern: &'a Pattern,
    target: &'a Instance,
    constraints: &'a MatchConstraints,
    /// When set, this pattern fact draws candidates from the target's
    /// current delta instead of the whole relation (semi-naive rounds).
    delta_atom: Option<usize>,
    /// Candidate queries served from a posting list.
    postings_reused: Cell<u64>,
    /// Candidate queries that had to scan a whole relation (no position
    /// bound, so no posting list applies).
    postings_rebuilt: Cell<u64>,
}

impl<'a> MatchEngine<'a> {
    /// Create a matcher; validates nothing (arity mismatches simply never
    /// match, since candidate tuples have the relation's arity).
    pub fn new(
        pattern: &'a Pattern,
        target: &'a Instance,
        constraints: &'a MatchConstraints,
    ) -> Self {
        MatchEngine {
            pattern,
            target,
            constraints,
            delta_atom: None,
            postings_reused: Cell::new(0),
            postings_rebuilt: Cell::new(0),
        }
    }

    /// Restrict pattern fact `atom` (an index into `pattern.facts`) to
    /// candidates from the target's per-round delta. Matches found by
    /// this engine then all touch at least one delta fact at that atom.
    pub fn with_delta_atom(mut self, atom: Option<usize>) -> Self {
        self.delta_atom = atom;
        self
    }

    /// Index-usage counters: `(postings_reused, postings_rebuilt)` —
    /// candidate queries served by a store posting list vs. full
    /// relation scans (no position bound).
    pub fn posting_counters(&self) -> (u64, u64) {
        (self.postings_reused.get(), self.postings_rebuilt.get())
    }

    /// Does any complete match exist?
    ///
    /// When the pattern splits into independent connected components
    /// (facts linked by shared unfixed variables — see
    /// [`MatchEngine::count_matches`] for the contract), each component
    /// is solved separately: a match of the whole pattern exists iff
    /// every component has one, so the backtracking never crosses the
    /// product space. Large decompositions fan out through `qi-exec`;
    /// the answer is a conjunction of per-component booleans and thus
    /// independent of scheduling.
    pub fn exists(&self) -> bool {
        if let Some(comps) = self.decomposition() {
            return self.exists_decomposed(&comps);
        }
        let mut found = false;
        self.for_each(|_| {
            found = true;
            false
        });
        found
    }

    /// The first complete match in deterministic order, if any.
    pub fn first(&self) -> Option<Assignment> {
        let mut out = None;
        self.for_each(|a| {
            out = Some(a.clone());
            false
        });
        out
    }

    /// All complete matches.
    pub fn all(&self) -> Vec<Assignment> {
        let mut out = Vec::new();
        self.for_each(|a| {
            out.push(a.clone());
            true
        });
        out
    }

    /// Enumerate matches; the callback returns `false` to stop early.
    ///
    /// Enumeration order is part of the determinism contract (chase
    /// fresh-null assignment follows it), so this path never decomposes:
    /// only the order-insensitive entry points ([`MatchEngine::exists`],
    /// [`MatchEngine::count_matches`], [`MatchEngine::any_match`]) do.
    pub fn for_each(&self, mut f: impl FnMut(&Assignment) -> bool) {
        let Some(mut assignment) = self.base_assignment() else {
            return;
        };
        let mut remaining: Vec<usize> = (0..self.pattern.facts.len()).collect();
        self.search(&mut assignment, &mut remaining, &mut f);
    }

    /// Apply the `fixed` pre-assignments, checking the unary and binary
    /// constraints they trigger; `None` when they are contradictory (no
    /// match can exist).
    fn base_assignment(&self) -> Option<Assignment> {
        let mut assignment = Assignment::new(self.pattern.nvars);
        for &(var, value) in &self.constraints.fixed {
            match assignment.slots[var as usize] {
                Some(existing) if existing != value => return None,
                _ => {}
            }
            if !self.value_ok(var, value, &assignment) {
                return None;
            }
            assignment.slots[var as usize] = Some(value);
        }
        Some(assignment)
    }

    /// Check unary constraints and binary constraints against the current
    /// assignment for `var ↦ value`.
    fn value_ok(&self, var: VarIdx, value: Value, assignment: &Assignment) -> bool {
        if self.constraints.forbidden_values.contains(&value) {
            return false;
        }
        if self.constraints.constants_only.contains(&var) && !value.is_const() {
            return false;
        }
        if self.constraints.nulls_only.contains(&var) && !value.is_null() {
            return false;
        }
        for &(a, b) in &self.constraints.distinct {
            if a == b && a == var {
                // A reflexive pair `x ≠ x` is unsatisfiable; without this
                // arm the generic check below compares the candidate value
                // against the same (still unassigned) slot and lets it
                // through — found by the brute-force differential oracle.
                return false;
            }
            let other = if a == var {
                b
            } else if b == var {
                a
            } else {
                continue;
            };
            if assignment.get(other) == Some(value) {
                return false;
            }
        }
        if self.constraints.injective {
            for (i, slot) in assignment.slots.iter().enumerate() {
                if i as VarIdx != var && *slot == Some(value) {
                    return false;
                }
            }
        }
        true
    }

    /// Does `tuple` agree with `fact` under `assignment` (fixed terms,
    /// bound variables, repeated variables within the fact)?
    fn tuple_consistent(fact: &PatFact, assignment: &Assignment, tuple: &[Value]) -> bool {
        if tuple.len() != fact.args.len() {
            return false;
        }
        let mut local: Vec<(VarIdx, Value)> = Vec::new();
        for (term, &v) in fact.args.iter().zip(tuple.iter()) {
            match *term {
                PatTerm::Value(fixed) => {
                    if fixed != v {
                        return false;
                    }
                }
                PatTerm::Var(var) => {
                    if let Some(bound) = assignment.get(var) {
                        if bound != v {
                            return false;
                        }
                    } else if let Some(&(_, prev)) = local.iter().find(|(lv, _)| *lv == var) {
                        if prev != v {
                            return false;
                        }
                    } else {
                        local.push((var, v));
                    }
                }
            }
        }
        true
    }

    /// Candidate tuples of pattern fact `fact_idx` consistent with
    /// `assignment`, capped at `cap` (for fail-first counting). Consults
    /// the store's incrementally-maintained posting lists whenever some
    /// position is bound; posting lists are in canonical tuple order, so
    /// the result (set *and* order) equals a filtered scan of the
    /// relation. Falls back to scanning only when no position is bound.
    fn candidates(
        &self,
        fact_idx: usize,
        assignment: &Assignment,
        cap: usize,
    ) -> Vec<&'a Vec<Value>> {
        let fact = &self.pattern.facts[fact_idx];
        let store = self.target.store();
        let rel = fact.rel.index();
        let mut out = Vec::new();
        if self.target.schema().arity(fact.rel) != fact.args.len() {
            // Arity-mismatched pattern facts never match (and have no
            // valid posting position to consult).
            return out;
        }
        if self.delta_atom == Some(fact_idx) {
            // Semi-naive restriction: candidates come from the facts
            // inserted since the target's last `begin_round()`.
            for &id in store.delta_ids(rel) {
                let tuple = store.tuple(rel, id);
                if Self::tuple_consistent(fact, assignment, tuple) {
                    out.push(tuple);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
            return out;
        }
        // Narrowest posting list among the bound positions.
        let mut best: Option<&'a [TupleId]> = None;
        for (pos, term) in fact.args.iter().enumerate() {
            let bound = match *term {
                PatTerm::Value(v) => Some(v),
                PatTerm::Var(var) => assignment.get(var),
            };
            if let Some(v) = bound {
                let list = store.posting(rel, pos, v);
                if best.is_none_or(|b: &[_]| list.len() < b.len()) {
                    best = Some(list);
                }
            }
        }
        match best {
            Some(list) => {
                self.postings_reused.set(self.postings_reused.get() + 1);
                for &id in list {
                    let tuple = store.tuple(rel, id);
                    if Self::tuple_consistent(fact, assignment, tuple) {
                        out.push(tuple);
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
            }
            None => {
                self.postings_rebuilt.set(self.postings_rebuilt.get() + 1);
                for tuple in self.target.tuples(fact.rel) {
                    if Self::tuple_consistent(fact, assignment, tuple) {
                        out.push(tuple);
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    fn search(
        &self,
        assignment: &mut Assignment,
        remaining: &mut Vec<usize>,
        f: &mut impl FnMut(&Assignment) -> bool,
    ) -> bool {
        let Some(pick_pos) = self.pick(remaining, assignment) else {
            // All facts matched: assignment restricted to pattern vars may
            // still have unassigned vars (vars not occurring in any fact);
            // leave them unassigned only if truly absent — callers building
            // patterns from formulas guarantee every var occurs. For safety
            // we refuse matches with unassigned variables that carry
            // constraints.
            return f(assignment);
        };
        let fact_idx = remaining[pick_pos];
        remaining.swap_remove(pick_pos);
        let fact = &self.pattern.facts[fact_idx];
        let cands = self.candidates(fact_idx, assignment, usize::MAX);
        for tuple in cands {
            // Extend the assignment; record which vars we newly bind.
            let mut newly: Vec<VarIdx> = Vec::new();
            let mut ok = true;
            for (term, &v) in fact.args.iter().zip(tuple.iter()) {
                if let PatTerm::Var(var) = *term {
                    match assignment.get(var) {
                        Some(_) => {}
                        None => {
                            if !self.value_ok(var, v, assignment) {
                                ok = false;
                                break;
                            }
                            assignment.slots[var as usize] = Some(v);
                            newly.push(var);
                        }
                    }
                }
            }
            if ok && !self.search(assignment, remaining, f) {
                for var in newly {
                    assignment.slots[var as usize] = None;
                }
                remaining.push(fact_idx);
                let last = remaining.len() - 1;
                remaining.swap(pick_pos.min(last), last);
                return false;
            }
            for var in newly {
                assignment.slots[var as usize] = None;
            }
        }
        remaining.push(fact_idx);
        let last = remaining.len() - 1;
        remaining.swap(pick_pos.min(last), last);
        true
    }

    /// Fail-first heuristic: pick the remaining fact with the fewest
    /// candidates (counted up to a small cap to bound the cost).
    fn pick(&self, remaining: &[usize], assignment: &Assignment) -> Option<usize> {
        const COUNT_CAP: usize = 8;
        let mut best: Option<(usize, usize)> = None;
        for (pos, &idx) in remaining.iter().enumerate() {
            let n = self.candidates(idx, assignment, COUNT_CAP).len();
            match best {
                Some((_, bn)) if bn <= n => {}
                _ => best = Some((pos, n)),
            }
            if n == 0 {
                break;
            }
        }
        best.map(|(pos, _)| pos)
    }

    /// Split the pattern facts into connected components: facts linked by
    /// a shared *unfixed* variable end up in one component (a `fixed`
    /// variable is pre-assigned by [`MatchEngine::base_assignment`], so
    /// it does not couple the facts mentioning it). Returns `None` when
    /// decomposition does not apply: fewer than two components, a
    /// delta-restricted atom, `injective` matching (a global constraint),
    /// or a `distinct` pair whose two unfixed variables live in different
    /// components (independent searches could not see each other's
    /// choices). Components and the facts within them are ordered by
    /// first fact index, so the split is deterministic.
    fn decomposition(&self) -> Option<Vec<Vec<usize>>> {
        let nfacts = self.pattern.facts.len();
        if nfacts < 2 || self.delta_atom.is_some() || self.constraints.injective {
            return None;
        }
        let nvars = self.pattern.nvars;
        let mut is_fixed = vec![false; nvars];
        for &(var, _) in &self.constraints.fixed {
            is_fixed[var as usize] = true;
        }
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let mut parent: Vec<usize> = (0..nfacts).collect();
        // First fact mentioning each unfixed variable; later mentions
        // union their fact into that fact's component.
        let mut var_home: Vec<Option<usize>> = vec![None; nvars];
        for (i, fact) in self.pattern.facts.iter().enumerate() {
            for term in &fact.args {
                if let PatTerm::Var(var) = *term {
                    let v = var as usize;
                    if is_fixed[v] {
                        continue;
                    }
                    match var_home[v] {
                        None => var_home[v] = Some(i),
                        Some(home) => {
                            let (ri, rj) = (find(&mut parent, i), find(&mut parent, home));
                            if ri != rj {
                                parent[ri.max(rj)] = ri.min(rj);
                            }
                        }
                    }
                }
            }
        }
        let mut comp_of_root: Vec<Option<usize>> = vec![None; nfacts];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        let mut fact_comp = vec![0usize; nfacts];
        for (i, fc) in fact_comp.iter_mut().enumerate() {
            let root = find(&mut parent, i);
            let c = *comp_of_root[root].get_or_insert_with(|| {
                comps.push(Vec::new());
                comps.len() - 1
            });
            comps[c].push(i);
            *fc = c;
        }
        if comps.len() < 2 {
            return None;
        }
        let comp_of_var = |var: VarIdx| -> Option<usize> {
            let v = var as usize;
            if v >= nvars || is_fixed[v] {
                return None;
            }
            var_home[v].map(|home| fact_comp[home])
        };
        for &(a, b) in &self.constraints.distinct {
            if a == b {
                continue; // reflexive x ≠ x: value_ok rejects it anywhere
            }
            if let (Some(ca), Some(cb)) = (comp_of_var(a), comp_of_var(b)) {
                if ca != cb {
                    return None;
                }
            }
        }
        Some(comps)
    }

    /// Existence check for one component: the backtracking search
    /// restricted to the component's facts, starting from `base`.
    fn component_exists(&self, base: &Assignment, comp: &[usize]) -> bool {
        let mut assignment = base.clone();
        let mut remaining = comp.to_vec();
        let mut found = false;
        self.search(&mut assignment, &mut remaining, &mut |_| {
            found = true;
            false
        });
        found
    }

    fn exists_decomposed(&self, comps: &[Vec<usize>]) -> bool {
        let Some(base) = self.base_assignment() else {
            return false;
        };
        if self.parallel_worthwhile(comps) {
            // The engine itself is not `Sync` (posting counters are
            // `Cell`s), so each worker builds a private engine over the
            // shared pattern/target/constraints and reports its counters
            // back; summation order follows component order.
            let (pattern, target, constraints) = (self.pattern, self.target, self.constraints);
            let results = qi_exec::par_map(qi_exec::Parallelism::auto(), comps, |comp| {
                let engine = MatchEngine::new(pattern, target, constraints);
                let ok = engine.component_exists(&base, comp);
                let (reused, rebuilt) = engine.posting_counters();
                (ok, reused, rebuilt)
            });
            let mut all_ok = true;
            for (ok, reused, rebuilt) in results {
                all_ok &= ok;
                self.postings_reused
                    .set(self.postings_reused.get() + reused);
                self.postings_rebuilt
                    .set(self.postings_rebuilt.get() + rebuilt);
            }
            all_ok
        } else {
            comps.iter().all(|comp| self.component_exists(&base, comp))
        }
    }

    /// Fan components out through the deterministic executor only when
    /// there is enough work to amortize thread startup; the tiny hom
    /// checks dominating verification loops stay inline (where the
    /// sequential short-circuit across components also applies).
    fn parallel_worthwhile(&self, comps: &[Vec<usize>]) -> bool {
        const PAR_FACTS_MIN: usize = 8;
        comps.len() >= 2
            && self.pattern.facts.len() >= PAR_FACTS_MIN
            && qi_exec::Parallelism::auto().resolve() > 1
    }

    /// Number of complete matches.
    ///
    /// Over a decomposable pattern this multiplies per-component match
    /// counts — every complete match is exactly one independent choice
    /// of match per component, so the product equals the length of
    /// [`MatchEngine::all`] without materializing the cross product.
    /// Saturates at `u64::MAX`.
    pub fn count_matches(&self) -> u64 {
        let Some(comps) = self.decomposition() else {
            let mut n: u64 = 0;
            self.for_each(|_| {
                n = n.saturating_add(1);
                true
            });
            return n;
        };
        let Some(base) = self.base_assignment() else {
            return 0;
        };
        let mut total: u64 = 1;
        for comp in &comps {
            let mut n: u64 = 0;
            let mut assignment = base.clone();
            let mut remaining = comp.clone();
            self.search(&mut assignment, &mut remaining, &mut |_| {
                n = n.saturating_add(1);
                true
            });
            total = total.saturating_mul(n);
            if total == 0 {
                return 0;
            }
        }
        total
    }

    /// Some complete match, or `None` when there is none. Unlike
    /// [`MatchEngine::first`] the result is not necessarily the first
    /// match in enumeration order: over a decomposable pattern it is
    /// assembled from the first match of each component independently
    /// (still fully deterministic — per-component enumeration order is
    /// fixed). The retraction-based core ([`crate::core_of()`]) uses
    /// this: any endomorphism avoiding a null folds it, and solving
    /// components independently sidesteps the product-space backtrack.
    pub fn any_match(&self) -> Option<Assignment> {
        let Some(comps) = self.decomposition() else {
            return self.first();
        };
        let mut merged = self.base_assignment()?;
        for comp in &comps {
            let mut remaining = comp.clone();
            let mut snapshot: Option<Assignment> = None;
            self.search(&mut merged, &mut remaining, &mut |a| {
                snapshot = Some(a.clone());
                false
            });
            // The early-exit unwinding restored `merged`; adopt the
            // snapshot so later components extend this component's match.
            merged = snapshot?;
        }
        Some(merged)
    }
}

/// Find a homomorphism from `a` to `b` (constants fixed, nulls free).
///
/// Returns the null mapping when one exists. Instances over different
/// schemas never admit a homomorphism here (relation ids are matched
/// positionally), mirroring the paper where both instances are over the
/// target schema.
pub fn find_hom(a: &Instance, b: &Instance) -> Option<BTreeMap<NullId, Value>> {
    if hom_refuted_quick(a, b) {
        return None;
    }
    let (pattern, vars) = Pattern::from_instance(a);
    let constraints = MatchConstraints::default();
    let engine = MatchEngine::new(&pattern, b, &constraints);
    engine.first().map(|assignment| {
        vars.iter()
            .enumerate()
            .map(|(i, &n)| (n, assignment.value(i as VarIdx)))
            .collect()
    })
}

/// Refutation-sound fast rejection for `has_hom(a, b)`: `true` means *no*
/// homomorphism `a → b` can exist; `false` means "unknown, run the
/// search". Three filters, each a direct consequence of homomorphisms
/// fixing constants and mapping facts position-wise:
///
/// * a relation with facts in `a` but none in `b` (or a different arity
///   in `b`) leaves those facts nothing to map to;
/// * a constant occurring at `(relation, position)` in `a` must occur at
///   the same `(relation, position)` in `b` — the image tuple carries the
///   constant unchanged at that position — checked against `b`'s posting
///   lists in O(1) per constant;
/// * a fully ground fact of `a` is its own image, so it must be present
///   in `b` verbatim.
///
/// None of the filters can refute a pair that admits a homomorphism, so
/// wiring them in front of the search never changes an answer.
pub fn hom_refuted_quick(a: &Instance, b: &Instance) -> bool {
    let sa = a.store();
    let sb = b.store();
    if sa.num_rels() != sb.num_rels() {
        return false; // positional mismatch: let the engine decide
    }
    for rel in 0..sa.num_rels() {
        if sa.rel_len(rel) == 0 {
            continue;
        }
        if sb.rel_len(rel) == 0 || sa.arity(rel) != sb.arity(rel) {
            return true;
        }
        for pos in 0..sa.arity(rel) {
            for value in sa.position_values(rel, pos) {
                if value.is_const() && sb.posting(rel, pos, value).is_empty() {
                    return true;
                }
            }
        }
        for tuple in sa.tuples(rel) {
            if tuple.iter().all(|v| v.is_const()) && !sb.contains(rel, tuple) {
                return true;
            }
        }
    }
    false
}

/// Does a homomorphism from `a` to `b` exist?
pub fn has_hom(a: &Instance, b: &Instance) -> bool {
    if hom_refuted_quick(a, b) {
        return false;
    }
    let (pattern, _) = Pattern::from_instance(a);
    let constraints = MatchConstraints::default();
    MatchEngine::new(&pattern, b, &constraints).exists()
}

/// Are `a` and `b` homomorphically equivalent (§2)?
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    has_hom(a, b) && has_hom(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn inst(schema: &Schema, text: &str) -> Instance {
        Instance::parse(schema, text).unwrap()
    }

    #[test]
    fn ground_hom_is_containment() {
        let s = Schema::parse("P/2").unwrap();
        let a = inst(&s, "P(a,b)");
        let b = inst(&s, "P(a,b) P(b,c)");
        assert!(has_hom(&a, &b));
        assert!(!has_hom(&b, &a));
    }

    #[test]
    fn nulls_map_freely() {
        let s = Schema::parse("P/2").unwrap();
        let a = inst(&s, "P(a,N1)");
        let b = inst(&s, "P(a,b)");
        assert!(has_hom(&a, &b));
        assert!(!has_hom(&b, &a)); // constants are fixed
        let h = find_hom(&a, &b).unwrap();
        assert_eq!(h[&NullId(1)], Value::constant("b"));
    }

    #[test]
    fn repeated_null_consistency() {
        let s = Schema::parse("P/2").unwrap();
        let a = inst(&s, "P(N1,N1)");
        let b = inst(&s, "P(a,b)");
        let c = inst(&s, "P(c,c)");
        assert!(!has_hom(&a, &b));
        assert!(has_hom(&a, &c));
    }

    #[test]
    fn join_across_facts() {
        let s = Schema::parse("E/2").unwrap();
        let path2 = inst(&s, "E(N1,N2) E(N2,N3)");
        let edge_loop = inst(&s, "E(a,a)");
        let chain = inst(&s, "E(a,b) E(b,c)");
        let split = inst(&s, "E(a,b) E(c,d)");
        assert!(has_hom(&path2, &edge_loop));
        assert!(has_hom(&path2, &chain));
        assert!(!has_hom(&path2, &split));
    }

    #[test]
    fn hom_equivalence_of_paths_and_loops() {
        let s = Schema::parse("E/2").unwrap();
        // A null 2-cycle retracts onto... nothing smaller here, but it maps
        // into a constant loop and vice versa is false (constants fixed).
        let cyc = inst(&s, "E(N1,N2) E(N2,N1)");
        let lp = inst(&s, "E(a,a)");
        assert!(has_hom(&cyc, &lp));
        assert!(!hom_equivalent(&cyc, &lp));
        // Two isomorphic null chains are equivalent.
        let c1 = inst(&s, "E(N1,N2)");
        let c2 = inst(&s, "E(N7,N9)");
        assert!(hom_equivalent(&c1, &c2));
    }

    #[test]
    fn constraints_distinct_and_constant() {
        let s = Schema::parse("P/2").unwrap();
        let b = inst(&s, "P(a,a) P(a,N1)");
        let pattern = Pattern {
            facts: vec![PatFact {
                rel: s.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            }],
            nvars: 2,
        };
        let all = MatchConstraints::default();
        assert_eq!(MatchEngine::new(&pattern, &b, &all).all().len(), 2);
        let distinct = MatchConstraints {
            distinct: vec![(0, 1)],
            ..Default::default()
        };
        assert_eq!(MatchEngine::new(&pattern, &b, &distinct).all().len(), 1);
        let consts = MatchConstraints {
            constants_only: vec![0, 1],
            ..Default::default()
        };
        assert_eq!(MatchEngine::new(&pattern, &b, &consts).all().len(), 1);
        let fixed = MatchConstraints {
            fixed: vec![(1, Value::null(1))],
            ..Default::default()
        };
        assert_eq!(MatchEngine::new(&pattern, &b, &fixed).all().len(), 1);
    }

    #[test]
    fn injective_matching() {
        let s = Schema::parse("P/2").unwrap();
        let b = inst(&s, "P(a,a)");
        let pattern = Pattern {
            facts: vec![PatFact {
                rel: s.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            }],
            nvars: 2,
        };
        let inj = MatchConstraints {
            injective: true,
            ..Default::default()
        };
        assert!(MatchEngine::new(&pattern, &b, &inj).all().is_empty());
    }

    #[test]
    fn empty_pattern_matches_once() {
        let s = Schema::parse("P/2").unwrap();
        let b = inst(&s, "P(a,a)");
        let pattern = Pattern::empty(0);
        let c = MatchConstraints::default();
        assert_eq!(MatchEngine::new(&pattern, &b, &c).all().len(), 1);
    }

    #[test]
    fn engine_reuse_after_early_exit_is_stateless() {
        // `exists`/`first` stop the search mid-enumeration by returning
        // `false` from the callback; the unwinding at that early-exit
        // point must restore `assignment` and `remaining` exactly, so
        // repeated and partial enumerations on one engine instance all
        // agree with a fresh engine.
        let s = Schema::parse("E/2").unwrap();
        let mut text = String::new();
        for k in 0..20 {
            text.push_str(&format!("E(v{},v{}) ", k, k + 1));
        }
        let b = inst(&s, &text);
        let e = s.rel("E").unwrap();
        let pattern = Pattern {
            facts: vec![
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(0), PatTerm::Var(1)],
                },
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(1), PatTerm::Var(2)],
                },
            ],
            nvars: 3,
        };
        let c = MatchConstraints::default();
        let fresh = MatchEngine::new(&pattern, &b, &c).all();
        assert_eq!(fresh.len(), 19, "one match per interior vertex");

        let engine = MatchEngine::new(&pattern, &b, &c);
        assert!(engine.exists());
        assert_eq!(engine.first().as_ref(), fresh.first());
        // A partial enumeration stopped mid-stream is the general form of
        // the early exit; it must not perturb later full enumerations.
        let mut seen = 0;
        engine.for_each(|_| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5);
        for _ in 0..6 {
            assert_eq!(engine.first().as_ref(), fresh.first());
        }
        assert_eq!(engine.all(), fresh);
        assert!(engine.exists());
    }

    #[test]
    fn delta_atom_restricts_one_fact_to_the_round_delta() {
        let s = Schema::parse("E/2").unwrap();
        let mut b = inst(&s, "E(a,b) E(b,c)");
        b.begin_round();
        b.insert_consts("E", &["c", "d"]).unwrap();
        let e = s.rel("E").unwrap();
        // E(x,y) & E(y,z): with atom 1 delta-restricted only joins whose
        // *second* atom is the new fact E(c,d) survive.
        let pattern = Pattern {
            facts: vec![
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(0), PatTerm::Var(1)],
                },
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(1), PatTerm::Var(2)],
                },
            ],
            nvars: 3,
        };
        let c = MatchConstraints::default();
        let full = MatchEngine::new(&pattern, &b, &c).all();
        assert_eq!(full.len(), 2); // (a,b,c) and (b,c,d)
        let engine = MatchEngine::new(&pattern, &b, &c).with_delta_atom(Some(1));
        let delta = engine.all();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].value(0), Value::constant("b"));
        assert_eq!(delta[0].value(2), Value::constant("d"));
        // Atom 0 delta-restricted: only (c,d,?) joins, and none complete.
        let engine = MatchEngine::new(&pattern, &b, &c).with_delta_atom(Some(0));
        assert!(engine.all().is_empty());
        // After another begin_round the delta is empty: no matches at all.
        b.begin_round();
        let engine = MatchEngine::new(&pattern, &b, &c).with_delta_atom(Some(1));
        assert!(engine.all().is_empty());
    }

    #[test]
    fn posting_counters_track_index_usage() {
        let s = Schema::parse("E/2").unwrap();
        let b = inst(&s, "E(a,b) E(b,c) E(c,d)");
        let e = s.rel("E").unwrap();
        let pattern = Pattern {
            facts: vec![
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(0), PatTerm::Var(1)],
                },
                PatFact {
                    rel: e,
                    args: vec![PatTerm::Var(1), PatTerm::Var(2)],
                },
            ],
            nvars: 3,
        };
        let c = MatchConstraints::default();
        let engine = MatchEngine::new(&pattern, &b, &c);
        assert_eq!(engine.posting_counters(), (0, 0));
        engine.all();
        let (reused, rebuilt) = engine.posting_counters();
        // The join step always has a bound position, so posting lists
        // serve it; only the unbound first atom pays a relation scan.
        assert!(reused > 0);
        assert!(rebuilt > 0);
    }

    #[test]
    fn decomposed_entry_points_agree_with_enumeration() {
        let s = Schema::parse("P/2 Q/2").unwrap();
        let b = inst(&s, "P(a,b) P(a,c) Q(d,d) Q(d,e)");
        let (p, q) = (s.rel("P").unwrap(), s.rel("Q").unwrap());
        // P(x0,x1) & Q(x2,x3): two independent components.
        let pattern = Pattern {
            facts: vec![
                PatFact {
                    rel: p,
                    args: vec![PatTerm::Var(0), PatTerm::Var(1)],
                },
                PatFact {
                    rel: q,
                    args: vec![PatTerm::Var(2), PatTerm::Var(3)],
                },
            ],
            nvars: 4,
        };
        let free = MatchConstraints::default();
        let engine = MatchEngine::new(&pattern, &b, &free);
        assert!(engine.exists());
        assert_eq!(engine.count_matches(), engine.all().len() as u64);
        assert_eq!(engine.count_matches(), 4, "2 P-matches × 2 Q-matches");
        // A fixed variable does not couple components.
        let fixed = MatchConstraints {
            fixed: vec![(1, Value::constant("c"))],
            ..Default::default()
        };
        let engine = MatchEngine::new(&pattern, &b, &fixed);
        assert_eq!(engine.count_matches(), engine.all().len() as u64);
        assert_eq!(engine.count_matches(), 2);
        // A cross-component distinct pair forces the monolithic path —
        // the counts must still agree.
        let cross = MatchConstraints {
            distinct: vec![(1, 2)],
            ..Default::default()
        };
        let engine = MatchEngine::new(&pattern, &b, &cross);
        assert_eq!(engine.count_matches(), engine.all().len() as u64);
        // No Q(x,x) with x = b or c exists, so pinning x2 = x3 = b kills
        // only the Q component; existence must see that.
        let dead = MatchConstraints {
            fixed: vec![(2, Value::constant("b")), (3, Value::constant("b"))],
            ..Default::default()
        };
        let engine = MatchEngine::new(&pattern, &b, &dead);
        assert!(!engine.exists());
        assert_eq!(engine.count_matches(), 0);
    }

    #[test]
    fn any_match_is_a_complete_valid_match() {
        let s = Schema::parse("P/2 Q/2").unwrap();
        let b = inst(&s, "P(a,b) Q(c,d)");
        let (p, q) = (s.rel("P").unwrap(), s.rel("Q").unwrap());
        let pattern = Pattern {
            facts: vec![
                PatFact {
                    rel: p,
                    args: vec![PatTerm::Var(0), PatTerm::Var(1)],
                },
                PatFact {
                    rel: q,
                    args: vec![PatTerm::Var(2), PatTerm::Var(3)],
                },
            ],
            nvars: 4,
        };
        let c = MatchConstraints::default();
        let m = MatchEngine::new(&pattern, &b, &c).any_match().unwrap();
        for fact in &pattern.facts {
            let tuple: Vec<Value> = fact
                .args
                .iter()
                .map(|t| match *t {
                    PatTerm::Value(v) => v,
                    PatTerm::Var(v) => m.value(v),
                })
                .collect();
            assert!(b.contains(fact.rel, &tuple), "any_match image must hold");
        }
        // Monolithic fallback (single component) delegates to `first`.
        let joined = Pattern {
            facts: vec![PatFact {
                rel: p,
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            }],
            nvars: 2,
        };
        let engine = MatchEngine::new(&joined, &b, &c);
        assert_eq!(engine.any_match(), engine.first());
    }

    #[test]
    fn forbidden_values_exclude_assignments() {
        let s = Schema::parse("P/2").unwrap();
        let b = inst(&s, "P(a,b) P(a,c)");
        let pattern = Pattern {
            facts: vec![PatFact {
                rel: s.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            }],
            nvars: 2,
        };
        let forbid_b = MatchConstraints {
            forbidden_values: vec![Value::constant("b")],
            ..Default::default()
        };
        assert_eq!(MatchEngine::new(&pattern, &b, &forbid_b).all().len(), 1);
        let forbid_a = MatchConstraints {
            forbidden_values: vec![Value::constant("a")],
            ..Default::default()
        };
        assert!(!MatchEngine::new(&pattern, &b, &forbid_a).exists());
        // A fixed value that is forbidden is contradictory.
        let contradictory = MatchConstraints {
            fixed: vec![(0, Value::constant("a"))],
            forbidden_values: vec![Value::constant("a")],
            ..Default::default()
        };
        assert!(!MatchEngine::new(&pattern, &b, &contradictory).exists());
    }

    #[test]
    fn prefilter_is_refutation_sound() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let pairs = [
            // (a, b, expected has_hom)
            ("P(a,N1)", "P(a,b)", true),
            ("P(a,b)", "P(a,N1)", false),     // ground fact missing
            ("P(b,N1)", "P(a,b)", false),     // constant profile at pos 0
            ("P(a,b) Q(c)", "P(a,b)", false), // relation empty in target
            ("P(N1,N1)", "P(a,b)", false),    // prefilter can't see this one
        ];
        for (x, y, expect) in pairs {
            let a = Instance::parse(&s, x).unwrap();
            let b = Instance::parse(&s, y).unwrap();
            assert_eq!(has_hom(&a, &b), expect, "{x} → {y}");
            if hom_refuted_quick(&a, &b) {
                assert!(!expect, "prefilter refuted a true pair: {x} → {y}");
            }
        }
    }

    #[test]
    fn conflicting_fixed_yields_nothing() {
        let s = Schema::parse("P/2").unwrap();
        let b = inst(&s, "P(a,a)");
        let pattern = Pattern::empty(1);
        let c = MatchConstraints {
            fixed: vec![(0, Value::constant("a")), (0, Value::constant("b"))],
            ..Default::default()
        };
        assert!(MatchEngine::new(&pattern, &b, &c).all().is_empty());
    }
}

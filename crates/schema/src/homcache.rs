//! Cross-algorithm memoization of homomorphism checks.
//!
//! Verification workloads (`~M`-equivalence classes, MinGen coverage,
//! subsumption sweeps, faithfulness matrices) fire hundreds of
//! near-identical `has_hom`/`hom_equivalent` calls, frequently against
//! the same pair of instances up to null renaming. [`HomCache`] memoizes
//! the boolean answers, keyed by the canonical instance fingerprints of
//! [`crate::FactStore::fingerprint`].
//!
//! # Why the key is sound
//!
//! The fingerprint renames nulls by a bijection, so **equal fingerprints
//! imply isomorphic instances**, and the existence of a homomorphism is
//! invariant under isomorphism of either side. A fingerprint collision
//! between inequivalent instances is therefore impossible — the cache can
//! return stale-looking but never *wrong* booleans. (This is also why the
//! key is the full canonical string and not a 64-bit hash of it: a hash
//! collision *would* poison the cache with a wrong answer.) Isomorphic
//! instances that happen to render different fingerprints merely miss.
//!
//! The cache is `Sync` (a mutexed map plus atomic counters), so
//! `qi-exec` workers may share one: cached booleans are pure values, so
//! hitting the cache in any interleaving preserves the determinism
//! contract.

use crate::hom::{has_hom, hom_refuted_quick};
use crate::instance::Instance;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One probe's answer table, shared between the cache's outer map and any
/// [`ProbeSlot`] handles pointing at it.
type Slot = Arc<Mutex<HashMap<Arc<String>, bool>>>;

/// Memoized homomorphism checks keyed by canonical fingerprints (module
/// docs). One cache per algorithm run is the intended scope — MinGen,
/// disjunct minimization, and verification each create their own, so
/// memory stays bounded by the run's working set.
#[derive(Debug, Default)]
pub struct HomCache {
    /// `source fingerprint → (target fingerprint → answer)`, used only by
    /// [`HomCache::has_hom`]. Kept disjoint from `probes`: caller-chosen
    /// probe keys live in their own map, so no probe key — whatever its
    /// spelling — can alias a hom answer table.
    homs: Mutex<HashMap<String, Slot>>,
    /// `caller probe key → (target fingerprint → answer)`, used by
    /// [`HomCache::probe`] / [`HomCache::slot`].
    probes: Mutex<HashMap<String, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A pre-resolved handle on one probe key's answer table. Hot loops that
/// ask the same pattern question against many targets (MinGen coverage,
/// the Step-3 subsumption sweep, disjunct minimization) resolve the key
/// once via [`HomCache::slot`] and then pay only a fingerprint lookup per
/// probe — hashing a multi-hundred-byte probe key on every query is
/// measurable at the millions-of-probes scale MinGen reaches.
#[derive(Debug)]
pub struct ProbeSlot<'c> {
    cache: &'c HomCache,
    slot: Slot,
}

impl ProbeSlot<'_> {
    /// Memoized query against `target`; `run` computes the answer on a
    /// miss. Same contract as [`HomCache::probe`].
    pub fn probe(&self, target: &Instance, run: impl FnOnce() -> bool) -> bool {
        self.probe_keyed(target.store().fingerprint(), run)
    }

    /// [`ProbeSlot::probe`] with a caller-computed target key. The caller
    /// must guarantee the fingerprint property within this slot: equal
    /// keys only for targets the probe cannot distinguish (e.g. a
    /// canonical rendering that renames nulls bijectively). Lets hot
    /// paths answer hits without even *constructing* the target instance
    /// — MinGen coverage keys on the candidate's normal form and builds
    /// the instance only when a search actually runs.
    pub fn probe_keyed(&self, target_key: Arc<String>, run: impl FnOnce() -> bool) -> bool {
        {
            let m = self.slot.lock().expect("hom cache slot lock");
            if let Some(&answer) = m.get(&target_key) {
                self.cache.hits.fetch_add(1, Ordering::Relaxed);
                return answer;
            }
        }
        // Compute outside the lock (see `HomCache::lookup_or`).
        let answer = run();
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let mut m = self.slot.lock().expect("hom cache slot lock");
        m.insert(target_key, answer);
        answer
    }
}

impl HomCache {
    /// Fresh, empty cache with zeroed counters.
    pub fn new() -> Self {
        HomCache::default()
    }

    /// `(hits, misses)` so far. A hit is any answer served without
    /// running a search (including the equal-fingerprint shortcut).
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Memoized [`has_hom`]. The refutation prefilter runs before any
    /// fingerprinting (it is cheaper than rendering), and equal
    /// fingerprints short-circuit to `true` — isomorphic instances always
    /// admit the identity-up-to-renaming homomorphism.
    pub fn has_hom(&self, a: &Instance, b: &Instance) -> bool {
        if hom_refuted_quick(a, b) {
            return false;
        }
        let fa = a.store().fingerprint();
        let fb = b.store().fingerprint();
        if fa == fb {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        self.lookup_or(fa.as_str(), fb, || has_hom(a, b))
    }

    /// Memoized [`crate::hom_equivalent`].
    pub fn hom_equivalent(&self, a: &Instance, b: &Instance) -> bool {
        self.has_hom(a, b) && self.has_hom(b, a)
    }

    /// Memoize an arbitrary boolean pattern-vs-instance query: the caller
    /// supplies a key identifying the probe side (pattern + constraints,
    /// e.g. their `Debug` rendering) and the target instance; `run`
    /// computes the answer on a miss. MinGen coverage, the subsumption
    /// sweep, and disjunct minimization use this to reuse answers across
    /// targets that only differ by null renaming. The probe key must
    /// determine the query up to the target — two different probes must
    /// never share a key within one cache.
    pub fn probe(&self, probe_key: &str, target: &Instance, run: impl FnOnce() -> bool) -> bool {
        self.slot(probe_key).probe(target, run)
    }

    /// Resolve `probe_key` to its answer table once, for hot loops that
    /// probe the same key against many targets (see [`ProbeSlot`]).
    pub fn slot(&self, probe_key: &str) -> ProbeSlot<'_> {
        ProbeSlot {
            cache: self,
            slot: Self::resolve(&self.probes, probe_key),
        }
    }

    /// Find or create `key`'s answer table in `map`.
    fn resolve(map: &Mutex<HashMap<String, Slot>>, key: &str) -> Slot {
        let mut map = map.lock().expect("hom cache lock");
        match map.get(key) {
            Some(s) => Arc::clone(s),
            None => {
                let s = Slot::default();
                map.insert(key.to_owned(), Arc::clone(&s));
                s
            }
        }
    }

    fn lookup_or(&self, outer: &str, inner: Arc<String>, run: impl FnOnce() -> bool) -> bool {
        let slot = ProbeSlot {
            cache: self,
            slot: Self::resolve(&self.homs, outer),
        };
        {
            let m = slot.slot.lock().expect("hom cache slot lock");
            if let Some(&answer) = m.get(&inner) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return answer;
            }
        }
        // Compute outside the lock: `run` may itself be expensive, and
        // recursive search code must never deadlock on the cache. Two
        // workers racing on the same key both compute the same pure
        // boolean, so the double insert is harmless.
        let answer = run();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut m = slot.slot.lock().expect("hom cache slot lock");
        m.insert(inner, answer);
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn inst(schema: &Schema, text: &str) -> Instance {
        Instance::parse(schema, text).unwrap()
    }

    #[test]
    fn cached_answers_match_direct_ones() {
        let s = Schema::parse("E/2").unwrap();
        let cache = HomCache::new();
        let pairs = [
            ("E(a,N1)", "E(a,b)"),
            ("E(N1,N2) E(N2,N3)", "E(a,a)"),
            ("E(N1,N1)", "E(a,b)"), // false, but beyond the prefilter
        ];
        for (x, y) in pairs {
            let a = inst(&s, x);
            let b = inst(&s, y);
            assert_eq!(cache.has_hom(&a, &b), has_hom(&a, &b), "{x} → {y}");
            // Second query hits.
            let (hits_before, _) = cache.counters();
            assert_eq!(cache.has_hom(&a, &b), has_hom(&a, &b));
            assert!(cache.counters().0 > hits_before, "{x} → {y} should hit");
        }
        // A pair killed by the refutation prefilter never reaches the
        // cache: answered `false` for free, counters untouched.
        let (hits, misses) = cache.counters();
        let a = inst(&s, "E(a,b)");
        let b = inst(&s, "E(a,N1)");
        assert!(!cache.has_hom(&a, &b), "ground fact absent from target");
        assert_eq!(cache.counters(), (hits, misses));
    }

    #[test]
    fn null_renamed_instances_share_entries() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(a,N1) E(N1,N2)");
        let b = inst(&s, "E(a,N7) E(N7,N9)");
        let target = inst(&s, "E(a,a)");
        let cache = HomCache::new();
        assert!(cache.has_hom(&a, &target));
        let (_, misses) = cache.counters();
        // `b` is `a` up to null renaming: same fingerprint, so a hit.
        assert!(cache.has_hom(&b, &target));
        assert_eq!(cache.counters().1, misses, "renamed query must not miss");
    }

    #[test]
    fn equal_fingerprints_short_circuit() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(N1,N2)");
        let b = inst(&s, "E(N5,N6)");
        let cache = HomCache::new();
        assert!(cache.has_hom(&a, &b));
        assert_eq!(cache.counters(), (1, 0), "iso shortcut counts as a hit");
    }

    /// Regression: probe keys and `has_hom` fingerprints used to share
    /// one outer map, with `has_hom` entries stored under `"hom|{fa}"` —
    /// a caller probe key spelled exactly like that silently shared the
    /// hom answer table and returned its booleans. The namespaces are
    /// now disjoint maps, so the forged key must run its own closure.
    #[test]
    fn probe_keys_cannot_alias_the_hom_namespace() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(a,N1)");
        let b = inst(&s, "E(a,b)");
        let cache = HomCache::new();
        // Seed the hom namespace: a → b holds and is cached as `true`.
        assert!(cache.has_hom(&a, &b));
        // Forge a probe key colliding with the old hom spelling.
        let forged = format!("hom|{}", a.store().fingerprint());
        let mut ran = false;
        let answer = cache.probe(&forged, &b, || {
            ran = true;
            false
        });
        assert!(ran, "forged probe key must not hit the hom table");
        assert!(!answer, "probe must report its own closure's answer");
        // And the probe entry must not poison the hom table either.
        assert!(cache.has_hom(&a, &b), "hom answer survives the probe");
    }

    #[test]
    fn probe_memoizes_by_target_fingerprint() {
        let s = Schema::parse("E/2").unwrap();
        let t1 = inst(&s, "E(a,N1)");
        let t2 = inst(&s, "E(a,N4)"); // same fingerprint as t1
        let cache = HomCache::new();
        let mut runs = 0;
        let mut ask = |t: &Instance| {
            cache.probe("my-pattern", t, || {
                runs += 1;
                true
            })
        };
        assert!(ask(&t1));
        assert!(ask(&t2));
        assert_eq!(runs, 1, "renamed target must be served from cache");
        assert_eq!(cache.counters(), (1, 1));
    }
}

//! Instances: finite relational structures over `Const ∪ Var` (§2).
//!
//! Tuples live in a [`FactStore`], which keeps each relation in canonical
//! (lexicographic) tuple order, so iteration order is deterministic
//! (constants sort before nulls; see [`crate::Value`]). The store also
//! maintains per-position posting lists incrementally and tracks a
//! generation counter plus a per-round delta — see [`crate::store`]. An
//! instance always carries its [`Schema`] and validates arities on insert.
//!
//! ## Textual format
//!
//! [`Instance::parse`] and the `Display` impl use a round-trippable literal
//! syntax: facts like `P(a,b)` separated by whitespace, commas or
//! semicolons. An argument token consisting of `N` followed by digits
//! denotes the labeled null with that id (e.g. `N3`); every other token is
//! a constant. Constants spelled like `N3` are therefore not expressible —
//! the parser reserves that lexical space for nulls.

use crate::error::SchemaError;
use crate::fact::Fact;
use crate::schema::{RelId, Schema};
use crate::store::FactStore;
use crate::value::{NullId, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A finite instance over a schema, with values in `Const ∪ Var`.
///
/// ```
/// use qi_schema::{Instance, Schema};
///
/// let schema = Schema::parse("P/2 Q/1").unwrap();
/// let i = Instance::parse(&schema, "P(a,b) Q(a) P(a,N1)").unwrap();
/// assert_eq!(i.fact_count(), 3);
/// assert!(!i.is_ground());           // N1 is a labeled null
/// assert_eq!(i.active_domain().len(), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Instance {
    schema: Schema,
    store: FactStore,
}

impl Instance {
    /// The empty instance over `schema`.
    pub fn new(schema: Schema) -> Self {
        let arities: Vec<usize> = schema.rel_ids().map(|r| schema.arity(r)).collect();
        let store = FactStore::new(&arities);
        Instance { schema, store }
    }

    /// The underlying [`FactStore`] (posting lists, delta, generation).
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// The store generation: bumped on every successful insert/remove.
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Start a new chase round: facts inserted from now on form the new
    /// delta (see [`FactStore::begin_round`]).
    pub fn begin_round(&mut self) {
        self.store.begin_round();
    }

    /// Total number of facts inserted since the last
    /// [`begin_round`](Instance::begin_round).
    pub fn delta_len(&self) -> usize {
        self.store.delta_len()
    }

    /// The schema this instance is over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert the tuple `args` into relation `rel`.
    ///
    /// Returns `true` when the fact was new. Fails on arity mismatch.
    pub fn insert(&mut self, rel: RelId, args: Vec<Value>) -> Result<bool, SchemaError> {
        let expected = self.schema.arity(rel);
        if args.len() != expected {
            return Err(SchemaError::ArityMismatch {
                relation: self.schema.name(rel).to_owned(),
                expected,
                got: args.len(),
            });
        }
        Ok(self.store.insert(rel.index(), args))
    }

    /// Insert a [`Fact`].
    pub fn insert_fact(&mut self, fact: Fact) -> Result<bool, SchemaError> {
        self.insert(fact.rel, fact.args)
    }

    /// Convenience: insert a fact by relation name and constant names.
    pub fn insert_consts(&mut self, rel: &str, consts: &[&str]) -> Result<bool, SchemaError> {
        let rel = self.schema.rel_checked(rel)?;
        let args = consts.iter().map(|c| Value::constant(c)).collect();
        self.insert(rel, args)
    }

    /// Does the instance contain the given tuple in `rel`?
    pub fn contains(&self, rel: RelId, args: &[Value]) -> bool {
        self.store.contains(rel.index(), args)
    }

    /// Does the instance contain the fact?
    pub fn contains_fact(&self, fact: &Fact) -> bool {
        self.contains(fact.rel, &fact.args)
    }

    /// Remove a fact; returns whether it was present.
    pub fn remove_fact(&mut self, fact: &Fact) -> bool {
        self.store.remove(fact.rel.index(), &fact.args)
    }

    /// The tuples of one relation, in deterministic order.
    pub fn tuples(&self, rel: RelId) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.store.tuples(rel.index())
    }

    /// Number of tuples in `rel`.
    pub fn rel_len(&self, rel: RelId) -> usize {
        self.store.rel_len(rel.index())
    }

    /// All facts of the instance, grouped by relation, deterministic order.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.schema.rel_ids().flat_map(move |rel| {
            self.store
                .tuples(rel.index())
                .map(move |t| Fact::new(rel, t.clone()))
        })
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.store.len()
    }

    /// True when the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// True when the instance is *ground* (null-free), the property the
    /// paper requires of source instances.
    pub fn is_ground(&self) -> bool {
        self.values().all(|v| v.is_const())
    }

    /// Iterate over every value occurrence (with repetition).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.store.num_rels())
            .flat_map(|rel| self.store.tuples(rel))
            .flat_map(|t| t.iter().copied())
    }

    /// The active domain: the set of values occurring in the instance.
    ///
    /// Cached in the store, invalidated by the generation counter; a
    /// repeated call on an unchanged instance is a clone of an `Arc`.
    pub fn active_domain(&self) -> Arc<BTreeSet<Value>> {
        self.store.active_domain()
    }

    /// The nulls occurring in the instance (cached like
    /// [`active_domain`](Instance::active_domain)).
    pub fn nulls(&self) -> Arc<BTreeSet<NullId>> {
        self.store.nulls()
    }

    /// A null id strictly greater than every null in the instance
    /// (`0` when the instance is ground). Used to mint fresh nulls.
    pub fn fresh_null_floor(&self) -> u64 {
        self.nulls().iter().map(|n| n.0 + 1).max().unwrap_or(0)
    }

    /// Is `self` a subinstance of `other` (fact-wise inclusion)?
    pub fn is_subinstance_of(&self, other: &Instance) -> Result<bool, SchemaError> {
        if !self.schema.same_as(&other.schema) {
            return Err(SchemaError::SchemaMismatch);
        }
        Ok(self
            .schema
            .rel_ids()
            .all(|rel| self.tuples(rel).all(|t| other.contains(rel, t))))
    }

    /// The union `self ∪ other` (same schema required).
    ///
    /// This is the witness construction in the proofs of Example 3.10 and
    /// Proposition 3.11: `I₂' = I₁ ∪ I₂`.
    pub fn union(&self, other: &Instance) -> Result<Instance, SchemaError> {
        if !self.schema.same_as(&other.schema) {
            return Err(SchemaError::SchemaMismatch);
        }
        let mut out = self.clone();
        for rel in self.schema.rel_ids() {
            for t in other.tuples(rel) {
                out.store.insert(rel.index(), t.clone());
            }
        }
        Ok(out)
    }

    /// A copy of the instance without the given fact.
    pub fn without_fact(&self, fact: &Fact) -> Instance {
        let mut out = self.clone();
        out.remove_fact(fact);
        out
    }

    /// Apply a value map to every value of the instance. The map must be a
    /// function on values; constants are expected to be fixed by callers
    /// that intend `f` to be a homomorphism, but this is not enforced here
    /// (null renamings also use this hook).
    pub fn map_values(&self, mut f: impl FnMut(Value) -> Value) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for rel in self.schema.rel_ids() {
            for t in self.tuples(rel) {
                out.store
                    .insert(rel.index(), t.iter().map(|&v| f(v)).collect());
            }
        }
        out
    }

    /// Rename every null by adding `offset` to its id (fresh-null hygiene
    /// when combining instances from different chases).
    pub fn shift_nulls(&self, offset: u64) -> Instance {
        self.map_values(|v| match v {
            Value::Null(NullId(n)) => Value::Null(NullId(n + offset)),
            c => c,
        })
    }

    /// Parse an instance literal (see module docs for the format).
    pub fn parse(schema: &Schema, text: &str) -> Result<Instance, SchemaError> {
        let mut inst = Instance::new(schema.clone());
        let mut rest = text.trim();
        while !rest.is_empty() {
            // skip separators
            if let Some(stripped) = rest.strip_prefix([',', ';']) {
                rest = stripped.trim_start();
                continue;
            }
            let open = rest
                .find('(')
                .ok_or_else(|| SchemaError::Parse(format!("expected `(` in `{rest}`")))?;
            let name = rest[..open].trim();
            if name.is_empty() {
                return Err(SchemaError::Parse("missing relation name".into()));
            }
            let close = rest
                .find(')')
                .ok_or_else(|| SchemaError::Parse(format!("unclosed fact near `{rest}`")))?;
            if close < open {
                return Err(SchemaError::Parse(format!("misplaced `)` in `{rest}`")))?;
            }
            let rel = schema.rel_checked(name)?;
            let args: Result<Vec<Value>, SchemaError> = rest[open + 1..close]
                .split(',')
                .map(|tok| parse_value(tok.trim()))
                .collect();
            inst.insert(rel, args?)?;
            rest = rest[close + 1..].trim_start();
        }
        Ok(inst)
    }
}

fn parse_value(tok: &str) -> Result<Value, SchemaError> {
    if tok.is_empty() {
        return Err(SchemaError::Parse("empty value token".into()));
    }
    if let Some(digits) = tok.strip_prefix('N') {
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            let id: u64 = digits
                .parse()
                .map_err(|_| SchemaError::Parse(format!("bad null id `{tok}`")))?;
            return Ok(Value::null(id));
        }
    }
    if tok.chars().any(|c| "(),;".contains(c) || c.is_whitespace()) {
        return Err(SchemaError::Parse(format!("bad value token `{tok}`")));
    }
    Ok(Value::constant(tok))
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for fact in self.facts() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}", fact.display(&self.schema))?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::parse("P/2 Q/1").unwrap()
    }

    #[test]
    fn insert_and_query() {
        let s = schema();
        let mut i = Instance::new(s.clone());
        let p = s.rel("P").unwrap();
        assert!(i.insert_consts("P", &["a", "b"]).unwrap());
        assert!(!i.insert_consts("P", &["a", "b"]).unwrap());
        assert!(i.contains(p, &[Value::constant("a"), Value::constant("b")]));
        assert_eq!(i.fact_count(), 1);
        assert!(i.is_ground());
    }

    #[test]
    fn arity_checked() {
        let s = schema();
        let mut i = Instance::new(s.clone());
        let p = s.rel("P").unwrap();
        assert!(matches!(
            i.insert(p, vec![Value::constant("a")]),
            Err(SchemaError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn parse_roundtrip() {
        let s = schema();
        let i = Instance::parse(&s, "P(a,b); Q(a), P(a, N3)").unwrap();
        assert_eq!(i.fact_count(), 3);
        assert!(!i.is_ground());
        assert_eq!(i.nulls().len(), 1);
        let text = i.to_string();
        let j = Instance::parse(&s, &text).unwrap();
        assert_eq!(i, j);
    }

    #[test]
    fn parse_rejects_garbage() {
        let s = schema();
        assert!(Instance::parse(&s, "P a,b)").is_err());
        assert!(Instance::parse(&s, "R(a)").is_err());
        assert!(Instance::parse(&s, "P(a,b").is_err());
        assert!(Instance::parse(&s, "P(,b)").is_err());
    }

    #[test]
    fn union_and_subinstance() {
        let s = schema();
        let a = Instance::parse(&s, "P(a,b)").unwrap();
        let b = Instance::parse(&s, "Q(c)").unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.fact_count(), 2);
        assert!(a.is_subinstance_of(&u).unwrap());
        assert!(b.is_subinstance_of(&u).unwrap());
        assert!(!u.is_subinstance_of(&a).unwrap());
    }

    #[test]
    fn union_schema_mismatch() {
        let a = Instance::new(schema());
        let b = Instance::new(Schema::parse("Z/1").unwrap());
        assert!(a.union(&b).is_err());
        assert!(a.is_subinstance_of(&b).is_err());
    }

    #[test]
    fn active_domain_and_nulls() {
        let s = schema();
        let i = Instance::parse(&s, "P(a,N1) Q(N5)").unwrap();
        assert_eq!(i.active_domain().len(), 3);
        assert_eq!(i.fresh_null_floor(), 6);
        assert_eq!(Instance::new(s).fresh_null_floor(), 0);
    }

    #[test]
    fn shift_nulls_disjoint() {
        let s = schema();
        let i = Instance::parse(&s, "P(N0,N1)").unwrap();
        let j = i.shift_nulls(10);
        assert_eq!(j.nulls().iter().map(|n| n.0).collect::<Vec<_>>(), [10, 11]);
    }

    #[test]
    fn map_values_merges_tuples() {
        let s = schema();
        let i = Instance::parse(&s, "P(N1,N2) P(N3,N4)").unwrap();
        let j = i.map_values(|_| Value::constant("a"));
        assert_eq!(j.fact_count(), 1);
    }
}

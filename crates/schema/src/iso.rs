//! Isomorphism of instances.
//!
//! Two instances are isomorphic when some bijection of their active
//! domains that fixes constants maps the facts of one exactly onto the
//! facts of the other. Because homomorphisms fix constants, an isomorphism
//! necessarily maps nulls to nulls. This module is used to deduplicate
//! disjunctive-chase leaves and to compare cores (hom-equivalent instances
//! have isomorphic cores).

use crate::hom::{MatchConstraints, MatchEngine, Pattern};
use crate::instance::Instance;
use crate::value::Value;

/// Are `a` and `b` isomorphic (constants fixed, nulls bijectively renamed)?
pub fn is_isomorphic(a: &Instance, b: &Instance) -> bool {
    if !a.schema().same_as(b.schema()) {
        return false;
    }
    // Cheap invariants first.
    if a.fact_count() != b.fact_count() {
        return false;
    }
    for rel in a.schema().rel_ids() {
        if a.rel_len(rel) != b.rel_len(rel) {
            return false;
        }
    }
    let (a_consts, a_nulls): (Vec<Value>, Vec<Value>) = a
        .active_domain()
        .iter()
        .copied()
        .partition(|v| v.is_const());
    let (b_consts, b_nulls): (Vec<Value>, Vec<Value>) = b
        .active_domain()
        .iter()
        .copied()
        .partition(|v| v.is_const());
    if a_consts != b_consts || a_nulls.len() != b_nulls.len() {
        return false;
    }
    // Equal canonical fingerprints certify isomorphism outright (the
    // fingerprint's null renaming is a bijection), skipping the
    // injective search for the common case of null-renamed copies.
    if a.store().fingerprint() == b.store().fingerprint() {
        return true;
    }
    // An injective nulls-to-nulls homomorphism a → b with equal fact
    // counts is automatically surjective on facts, hence an isomorphism
    // (distinct tuples stay distinct under an injective value map).
    let (pattern, _) = Pattern::from_instance(a);
    let nvars = pattern.nvars;
    let constraints = MatchConstraints {
        injective: true,
        nulls_only: (0..nvars as u32).collect(),
        ..Default::default()
    };
    MatchEngine::new(&pattern, b, &constraints).exists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn inst(schema: &Schema, text: &str) -> Instance {
        Instance::parse(schema, text).unwrap()
    }

    #[test]
    fn null_renaming_is_isomorphism() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(a,N1) E(N1,N2)");
        let b = inst(&s, "E(a,N9) E(N9,N4)");
        assert!(is_isomorphic(&a, &b));
    }

    #[test]
    fn constants_must_match_exactly() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(a,N1)");
        let b = inst(&s, "E(b,N1)");
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn fact_counts_matter() {
        let s = Schema::parse("E/2").unwrap();
        let a = inst(&s, "E(a,N1) E(a,N2)");
        let b = inst(&s, "E(a,N1)");
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn folding_is_not_isomorphism() {
        let s = Schema::parse("E/2").unwrap();
        // Hom-equivalent but not isomorphic.
        let a = inst(&s, "E(N1,N1)");
        let b = inst(&s, "E(N1,N1) E(N2,N2)");
        assert!(!is_isomorphic(&a, &b));
    }

    #[test]
    fn structure_must_match() {
        let s = Schema::parse("E/2").unwrap();
        let path = inst(&s, "E(N1,N2) E(N2,N3)");
        let fork = inst(&s, "E(N1,N2) E(N1,N3)");
        assert!(!is_isomorphic(&path, &fork));
        assert!(is_isomorphic(&path, &path.shift_nulls(100)));
    }
}

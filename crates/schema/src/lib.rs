//! # qi-schema — relational substrate for schema-mapping research
//!
//! This crate implements the data model of *Quasi-inverses of Schema
//! Mappings* (Fagin, Kolaitis, Popa, Tan; PODS 2007), §2 "Preliminaries":
//!
//! * **Schemas** — finite sequences of relation symbols with fixed arities
//!   ([`Schema`], [`RelId`]).
//! * **Values** — the two disjoint infinite sorts of the paper: constants
//!   (`Const`) and labeled nulls (`Var` in the paper, [`Value::Null`] here).
//!   Constants are interned process-wide so equality is an integer compare.
//! * **Instances** — finite relational structures over `Const ∪ Var`
//!   ([`Instance`]), with *ground* instances (null-free) as the special case
//!   the paper focuses on for sources.
//! * **Homomorphisms** — functions `h : Const ∪ Var → Const ∪ Var` fixing
//!   every constant and mapping facts to facts ([`hom`]). Homomorphic
//!   equivalence, cores ([`core_of()`]), and isomorphism ([`iso`]) are built
//!   on a small backtracking pattern-matching engine that the chase crate
//!   reuses for trigger enumeration.
//!
//! The crate is deliberately free of any dependency-language or chase
//! machinery; those live in `qi-lang` and `qi-chase`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brute;
pub mod core_of;
pub mod data;
pub mod error;
pub mod fact;
pub mod hom;
pub mod homcache;
pub mod instance;
pub mod iso;
pub mod schema;
pub mod store;
pub mod value;

pub use brute::{brute_force_matches, engine_matches};
#[cfg(any(test, feature = "greedy-core"))]
pub use core_of::core_of_greedy;
pub use core_of::{core_of, core_of_with_stats, CoreStats};
pub use error::SchemaError;
pub use fact::Fact;
pub use hom::{
    find_hom, has_hom, hom_equivalent, hom_refuted_quick, Assignment, MatchConstraints,
    MatchEngine, PatFact, PatTerm, Pattern, VarIdx,
};
pub use homcache::{HomCache, ProbeSlot};
pub use instance::Instance;
pub use iso::is_isomorphic;
pub use schema::{RelId, RelSym, Schema};
pub use store::{FactStore, TupleId};
pub use value::{ConstId, NullId, Value};

//! Schemas: finite sequences of relation symbols with fixed arities (§2).

use crate::error::SchemaError;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of a relation symbol within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The relation's position in its schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation symbol: a name together with a fixed arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelSym {
    /// Symbol name, unique within its schema.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
}

/// A schema `R = (R_1, …, R_k)`: an ordered list of relation symbols.
///
/// Schemas are cheap to clone (`Arc` inside) and are attached to every
/// [`crate::Instance`] for arity validation and display.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    inner: Arc<SchemaInner>,
}

#[derive(PartialEq, Eq)]
struct SchemaInner {
    relations: Vec<RelSym>,
    by_name: HashMap<String, RelId>,
}

impl Schema {
    /// Build a schema from `(name, arity)` pairs.
    ///
    /// Fails if a name repeats or a relation has arity 0 (the paper's
    /// relations always have at least one column; nullary relations would
    /// make "active domain" arguments degenerate).
    pub fn new<S: AsRef<str>>(relations: &[(S, usize)]) -> Result<Self, SchemaError> {
        let mut rels = Vec::with_capacity(relations.len());
        let mut by_name = HashMap::with_capacity(relations.len());
        for (i, (name, arity)) in relations.iter().enumerate() {
            let name = name.as_ref();
            if *arity == 0 {
                return Err(SchemaError::ZeroArity(name.to_owned()));
            }
            if by_name.insert(name.to_owned(), RelId(i as u32)).is_some() {
                return Err(SchemaError::DuplicateRelation(name.to_owned()));
            }
            rels.push(RelSym {
                name: name.to_owned(),
                arity: *arity,
            });
        }
        Ok(Schema {
            inner: Arc::new(SchemaInner {
                relations: rels,
                by_name,
            }),
        })
    }

    /// Parse a compact schema description such as `"P/2 Q/1 R/3"`.
    pub fn parse(text: &str) -> Result<Self, SchemaError> {
        let mut pairs = Vec::new();
        for tok in text.split_whitespace() {
            let (name, arity) = tok
                .split_once('/')
                .ok_or_else(|| SchemaError::Parse(format!("expected NAME/ARITY, got `{tok}`")))?;
            let arity: usize = arity
                .parse()
                .map_err(|_| SchemaError::Parse(format!("bad arity in `{tok}`")))?;
            pairs.push((name.to_owned(), arity));
        }
        if pairs.is_empty() {
            return Err(SchemaError::Parse("empty schema description".into()));
        }
        Schema::new(&pairs)
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.inner.relations.len()
    }

    /// True when the schema has no relations (never produced by the
    /// constructors, but useful for defensive code).
    pub fn is_empty(&self) -> bool {
        self.inner.relations.is_empty()
    }

    /// Look up a relation by name.
    pub fn rel(&self, name: &str) -> Option<RelId> {
        self.inner.by_name.get(name).copied()
    }

    /// Look up a relation by name, erroring with context if absent.
    pub fn rel_checked(&self, name: &str) -> Result<RelId, SchemaError> {
        self.rel(name)
            .ok_or_else(|| SchemaError::UnknownRelation(name.to_owned()))
    }

    /// The symbol for `rel`.
    pub fn sym(&self, rel: RelId) -> &RelSym {
        &self.inner.relations[rel.index()]
    }

    /// Arity of `rel`.
    pub fn arity(&self, rel: RelId) -> usize {
        self.sym(rel).arity
    }

    /// Name of `rel`.
    pub fn name(&self, rel: RelId) -> &str {
        &self.sym(rel).name
    }

    /// Iterate over all relation ids in declaration order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.len() as u32).map(RelId)
    }

    /// Iterate over `(RelId, &RelSym)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &RelSym)> + '_ {
        self.inner
            .relations
            .iter()
            .enumerate()
            .map(|(i, s)| (RelId(i as u32), s))
    }

    /// The maximum arity over all relations.
    pub fn max_arity(&self) -> usize {
        self.inner
            .relations
            .iter()
            .map(|r| r.arity)
            .max()
            .unwrap_or(0)
    }

    /// A new schema extending `self` with the given extra relations
    /// (used by the robustness experiments of §1: augmenting the source
    /// schema with a fresh relation symbol).
    pub fn extend<S: AsRef<str>>(&self, extra: &[(S, usize)]) -> Result<Self, SchemaError> {
        let mut pairs: Vec<(String, usize)> = self
            .inner
            .relations
            .iter()
            .map(|r| (r.name.clone(), r.arity))
            .collect();
        for (name, arity) in extra {
            pairs.push((name.as_ref().to_owned(), *arity));
        }
        Schema::new(&pairs)
    }

    /// Pointer-or-structural equality used by instance validation.
    pub fn same_as(&self, other: &Schema) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for r in &self.inner.relations {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}/{}", r.name, r.arity)?;
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let s = Schema::new(&[("P", 2), ("Q", 1)]).unwrap();
        assert_eq!(s.len(), 2);
        let p = s.rel("P").unwrap();
        assert_eq!(s.arity(p), 2);
        assert_eq!(s.name(p), "P");
        assert!(s.rel("R").is_none());
        assert_eq!(s.max_arity(), 2);
    }

    #[test]
    fn parse_compact() {
        let s = Schema::parse("P/2 Q/1 R/3").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.arity(s.rel("R").unwrap()), 3);
        assert_eq!(s.to_string(), "P/2 Q/1 R/3");
    }

    #[test]
    fn duplicate_rejected() {
        assert!(matches!(
            Schema::new(&[("P", 2), ("P", 1)]),
            Err(SchemaError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn zero_arity_rejected() {
        assert!(matches!(
            Schema::new(&[("P", 0)]),
            Err(SchemaError::ZeroArity(_))
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(Schema::parse("").is_err());
        assert!(Schema::parse("P").is_err());
        assert!(Schema::parse("P/x").is_err());
    }

    #[test]
    fn extend_adds_relation() {
        let s = Schema::parse("P/2").unwrap();
        let s2 = s.extend(&[("R", 1)]).unwrap();
        assert_eq!(s2.len(), 2);
        assert!(s2.rel("R").is_some());
        assert!(!s.same_as(&s2));
        assert!(s.same_as(&s.clone()));
    }
}

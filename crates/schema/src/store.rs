//! Incremental fact storage: canonical tuple order, per-position posting
//! lists, and a per-round delta.
//!
//! [`FactStore`] is the tuple storage behind [`crate::Instance`]. Three
//! invariants make it more than a set of `BTreeSet`s:
//!
//! * **Canonical order** — each relation keeps its tuples in a
//!   `BTreeMap` keyed by the tuple itself, so iteration order is the
//!   lexicographic tuple order (constants before nulls, see
//!   [`crate::Value`]). This is the PR-1 determinism contract: every
//!   consumer that enumerates tuples sees the same order the old
//!   `BTreeSet` storage produced.
//! * **Incremental postings** — for every `(relation, position)` pair, a
//!   posting list maps a value to the tuples carrying it at that
//!   position, *maintained on insert/remove* rather than rebuilt by each
//!   `MatchEngine`. Posting lists store tuple ids kept sorted by the
//!   tuple order, so iterating a posting list visits the same tuples in
//!   the same order a filtered scan of the relation would — an indexed
//!   match enumeration is byte-identical to an unindexed one.
//! * **Generation + delta** — a monotone [`generation`](FactStore::generation)
//!   counter ticks on every successful insert or remove (cache
//!   invalidation for derived values such as the active domain), and
//!   each relation records the *delta*: the tuples inserted since the
//!   last [`begin_round`](FactStore::begin_round). Semi-naive chase
//!   rounds restrict trigger enumeration to matches that touch at least
//!   one delta tuple.

use crate::value::{NullId, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Identifier of a tuple within one relation's arena (stable across
/// inserts; never reused within a store's lifetime).
pub type TupleId = u32;

/// Storage of a single relation: arena + canonical index + postings +
/// delta.
#[derive(Clone, Debug, Default)]
struct RelStore {
    /// Append-only tuple arena; `None` marks a removed tuple (removal is
    /// rare — core computation and egd repair only).
    arena: Vec<Option<Vec<Value>>>,
    /// Canonical index: tuple → arena id, iterated in tuple order.
    sorted: BTreeMap<Vec<Value>, TupleId>,
    /// `postings[pos][value]` = ids of live tuples whose `pos`-th
    /// component is `value`, kept sorted by tuple order.
    postings: Vec<HashMap<Value, Vec<TupleId>>>,
    /// Ids inserted since the last `begin_round`, sorted by tuple order.
    delta: Vec<TupleId>,
}

impl RelStore {
    fn new(arity: usize) -> Self {
        RelStore {
            arena: Vec::new(),
            sorted: BTreeMap::new(),
            postings: vec![HashMap::new(); arity],
            delta: Vec::new(),
        }
    }

    fn tuple(&self, id: TupleId) -> &Vec<Value> {
        self.arena[id as usize].as_ref().expect("live tuple id")
    }

    fn insert(&mut self, tuple: Vec<Value>) -> bool {
        if self.sorted.contains_key(&tuple) {
            return false;
        }
        let id = TupleId::try_from(self.arena.len()).expect("tuple arena overflow");
        let arena = &self.arena;
        let by_tuple = |probe: &TupleId| arena[*probe as usize].as_ref().expect("live") < &tuple;
        for (pos, map) in self.postings.iter_mut().enumerate() {
            let list = map.entry(tuple[pos]).or_default();
            let at = list.partition_point(by_tuple);
            list.insert(at, id);
        }
        let at = self.delta.partition_point(by_tuple);
        self.delta.insert(at, id);
        self.sorted.insert(tuple.clone(), id);
        self.arena.push(Some(tuple));
        true
    }

    fn remove(&mut self, tuple: &[Value]) -> bool {
        let Some(id) = self.sorted.remove(tuple) else {
            return false;
        };
        for (pos, map) in self.postings.iter_mut().enumerate() {
            if let Some(list) = map.get_mut(&tuple[pos]) {
                list.retain(|&t| t != id);
                if list.is_empty() {
                    map.remove(&tuple[pos]);
                }
            }
        }
        self.delta.retain(|&t| t != id);
        self.arena[id as usize] = None;
        true
    }
}

/// Cached derived value, invalidated by the store generation.
type Cached<T> = Mutex<Option<(u64, Arc<T>)>>;

/// Incremental tuple storage for all relations of one schema (see the
/// module docs for the invariants).
///
/// The store knows only relation *arities*; names and `RelId` resolution
/// stay in [`crate::Schema`]. Relations are addressed by index.
#[derive(Debug, Default)]
pub struct FactStore {
    rels: Vec<RelStore>,
    generation: u64,
    adom_cache: Cached<BTreeSet<Value>>,
    nulls_cache: Cached<BTreeSet<NullId>>,
    fp_cache: Cached<String>,
}

impl Clone for FactStore {
    fn clone(&self) -> Self {
        FactStore {
            rels: self.rels.clone(),
            generation: self.generation,
            adom_cache: Mutex::new(self.adom_cache.lock().expect("cache lock").clone()),
            nulls_cache: Mutex::new(self.nulls_cache.lock().expect("cache lock").clone()),
            fp_cache: Mutex::new(self.fp_cache.lock().expect("cache lock").clone()),
        }
    }
}

impl PartialEq for FactStore {
    /// Equality is *fact-set* equality: tuple ids, postings, deltas and
    /// generations are evaluation state, not part of the value.
    fn eq(&self, other: &Self) -> bool {
        self.rels.len() == other.rels.len()
            && self.rels.iter().zip(&other.rels).all(|(a, b)| {
                a.sorted.len() == b.sorted.len() && a.sorted.keys().eq(b.sorted.keys())
            })
    }
}

impl Eq for FactStore {}

impl FactStore {
    /// Empty store for relations with the given arities.
    pub fn new(arities: &[usize]) -> Self {
        FactStore {
            rels: arities.iter().map(|&a| RelStore::new(a)).collect(),
            generation: 0,
            adom_cache: Mutex::new(None),
            nulls_cache: Mutex::new(None),
            fp_cache: Mutex::new(None),
        }
    }

    /// Monotone counter, bumped on every successful insert or remove.
    /// Lets derived-value caches (active domain, nulls) detect staleness.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Insert `tuple` into relation `rel`; returns `true` when new.
    /// The caller (i.e. [`crate::Instance`]) is responsible for arity
    /// checking.
    pub fn insert(&mut self, rel: usize, tuple: Vec<Value>) -> bool {
        let added = self.rels[rel].insert(tuple);
        if added {
            self.generation += 1;
        }
        added
    }

    /// Remove `tuple` from relation `rel`; returns whether it was present.
    pub fn remove(&mut self, rel: usize, tuple: &[Value]) -> bool {
        let removed = self.rels[rel].remove(tuple);
        if removed {
            self.generation += 1;
        }
        removed
    }

    /// Does relation `rel` contain `tuple`?
    pub fn contains(&self, rel: usize, tuple: &[Value]) -> bool {
        self.rels[rel].sorted.contains_key(tuple)
    }

    /// The tuples of relation `rel` in canonical (lexicographic) order.
    pub fn tuples(&self, rel: usize) -> impl Iterator<Item = &Vec<Value>> + '_ {
        self.rels[rel].sorted.keys()
    }

    /// Number of tuples in relation `rel`.
    pub fn rel_len(&self, rel: usize) -> usize {
        self.rels[rel].sorted.len()
    }

    /// Number of relations.
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Total number of tuples.
    pub fn len(&self) -> usize {
        self.rels.iter().map(|r| r.sorted.len()).sum()
    }

    /// True when no relation has tuples.
    pub fn is_empty(&self) -> bool {
        self.rels.iter().all(|r| r.sorted.is_empty())
    }

    /// The tuple behind an id from a posting or delta list.
    pub fn tuple(&self, rel: usize, id: TupleId) -> &Vec<Value> {
        self.rels[rel].tuple(id)
    }

    /// Arity of relation `rel` (the number of posting positions).
    pub fn arity(&self, rel: usize) -> usize {
        self.rels[rel].postings.len()
    }

    /// The distinct values occurring at `(rel, pos)`, from the posting
    /// map's key set. Iteration order is unspecified (hash order) —
    /// consumers must be order-insensitive, like the existence-of-a-
    /// refutation scan in `qi_schema::hom::hom_refuted_quick`.
    pub fn position_values(&self, rel: usize, pos: usize) -> impl Iterator<Item = Value> + '_ {
        self.rels[rel].postings[pos].keys().copied()
    }

    /// The posting list of `(rel, pos, value)`: ids of the tuples whose
    /// `pos`-th component is `value`, sorted by tuple order (so walking a
    /// posting list visits tuples in the same order a filtered relation
    /// scan would).
    pub fn posting(&self, rel: usize, pos: usize, value: Value) -> &[TupleId] {
        self.rels[rel].postings[pos]
            .get(&value)
            .map(|l| l.as_slice())
            .unwrap_or(&[])
    }

    /// Start a new round: clear every relation's delta. Facts inserted
    /// after this call form the next delta.
    pub fn begin_round(&mut self) {
        for r in &mut self.rels {
            r.delta.clear();
        }
    }

    /// Ids of relation `rel`'s tuples inserted since the last
    /// [`begin_round`](FactStore::begin_round), sorted by tuple order.
    pub fn delta_ids(&self, rel: usize) -> &[TupleId] {
        &self.rels[rel].delta
    }

    /// Total delta size across relations.
    pub fn delta_len(&self) -> usize {
        self.rels.iter().map(|r| r.delta.len()).sum()
    }

    /// The set of values occurring in the store, cached until the
    /// generation changes.
    pub fn active_domain(&self) -> Arc<BTreeSet<Value>> {
        let mut cache = self.adom_cache.lock().expect("cache lock");
        if let Some((gen, ref set)) = *cache {
            if gen == self.generation {
                return Arc::clone(set);
            }
        }
        let set: Arc<BTreeSet<Value>> = Arc::new(
            self.rels
                .iter()
                .flat_map(|r| r.sorted.keys())
                .flat_map(|t| t.iter().copied())
                .collect(),
        );
        *cache = Some((self.generation, Arc::clone(&set)));
        set
    }

    /// The set of nulls occurring in the store, cached until the
    /// generation changes.
    pub fn nulls(&self) -> Arc<BTreeSet<NullId>> {
        let mut cache = self.nulls_cache.lock().expect("cache lock");
        if let Some((gen, ref set)) = *cache {
            if gen == self.generation {
                return Arc::clone(set);
            }
        }
        let set: Arc<BTreeSet<NullId>> = Arc::new(
            self.active_domain()
                .iter()
                .filter_map(|v| match v {
                    Value::Null(n) => Some(*n),
                    Value::Const(_) => None,
                })
                .collect(),
        );
        *cache = Some((self.generation, Arc::clone(&set)));
        set
    }

    /// A canonical fingerprint of the fact set, cached until the
    /// generation changes. This is the hom-cache key
    /// (`qi_schema::HomCache`).
    ///
    /// Nulls are renamed by first occurrence over the canonical fact
    /// order, the renamed tuples re-sorted, and the rename+sort repeated
    /// once (a refinement round that normalizes the common case where
    /// renaming reorders tuples); the result is rendered per relation
    /// with interned-constant indices. The rename is a bijection on
    /// nulls, so **equal fingerprints imply isomorphic fact sets** —
    /// a fingerprint-keyed cache can never conflate inequivalent
    /// instances. The converse does not hold: isomorphic stores whose
    /// null order resists one refinement round render differently, which
    /// costs a consumer a cache miss, never a wrong answer.
    pub fn fingerprint(&self) -> Arc<String> {
        let mut cache = self.fp_cache.lock().expect("cache lock");
        if let Some((gen, ref fp)) = *cache {
            if gen == self.generation {
                return Arc::clone(fp);
            }
        }
        let fp = Arc::new(self.render_fingerprint());
        *cache = Some((self.generation, Arc::clone(&fp)));
        fp
    }

    fn render_fingerprint(&self) -> String {
        use std::fmt::Write;
        let mut rels: Vec<Vec<Vec<Value>>> = self
            .rels
            .iter()
            .map(|r| r.sorted.keys().cloned().collect())
            .collect();
        for _ in 0..2 {
            let mut map: HashMap<NullId, NullId> = HashMap::new();
            for tuples in &mut rels {
                for t in tuples.iter_mut() {
                    for v in t.iter_mut() {
                        if let Value::Null(n) = *v {
                            let fresh = NullId(map.len() as u64);
                            *v = Value::Null(*map.entry(n).or_insert(fresh));
                        }
                    }
                }
            }
            for tuples in &mut rels {
                // Renaming is injective, so sorting cannot merge tuples.
                tuples.sort();
            }
        }
        let mut out = String::new();
        for (rel, tuples) in rels.iter().enumerate() {
            let _ = write!(out, "r{rel}#{}:", self.arity(rel));
            for t in tuples {
                out.push('(');
                for v in t {
                    match v {
                        Value::Const(c) => {
                            let _ = write!(out, "c{},", c.index());
                        }
                        Value::Null(n) => {
                            let _ = write!(out, "~{},", n.0);
                        }
                    }
                }
                out.push(')');
            }
            out.push(';');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Value {
        Value::constant(name)
    }

    #[test]
    fn insert_dedup_and_canonical_order() {
        let mut s = FactStore::new(&[2]);
        assert!(s.insert(0, vec![v("b"), v("x")]));
        assert!(s.insert(0, vec![v("a"), v("y")]));
        assert!(!s.insert(0, vec![v("a"), v("y")]));
        let tuples: Vec<&Vec<Value>> = s.tuples(0).collect();
        assert_eq!(tuples, [&vec![v("a"), v("y")], &vec![v("b"), v("x")]]);
        assert_eq!(s.rel_len(0), 2);
    }

    #[test]
    fn postings_track_inserts_in_tuple_order() {
        let mut s = FactStore::new(&[2]);
        s.insert(0, vec![v("b"), v("m")]);
        s.insert(0, vec![v("a"), v("m")]);
        s.insert(0, vec![v("c"), v("n")]);
        let at_m: Vec<&Vec<Value>> = s
            .posting(0, 1, v("m"))
            .iter()
            .map(|&id| s.tuple(0, id))
            .collect();
        // Posting order equals a filtered scan of the canonical order.
        assert_eq!(at_m, [&vec![v("a"), v("m")], &vec![v("b"), v("m")]]);
        assert!(s.posting(0, 1, v("zzz")).is_empty());
    }

    #[test]
    fn remove_purges_postings_and_delta() {
        let mut s = FactStore::new(&[1]);
        s.insert(0, vec![v("a")]);
        s.insert(0, vec![v("b")]);
        assert!(s.remove(0, &[v("a")]));
        assert!(!s.remove(0, &[v("a")]));
        assert!(s.posting(0, 0, v("a")).is_empty());
        assert_eq!(s.delta_ids(0).len(), 1);
        assert!(!s.contains(0, &[v("a")]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delta_tracks_rounds() {
        let mut s = FactStore::new(&[1]);
        s.insert(0, vec![v("a")]);
        assert_eq!(s.delta_len(), 1);
        s.begin_round();
        assert_eq!(s.delta_len(), 0);
        s.insert(0, vec![v("b")]);
        s.insert(0, vec![v("a")]); // duplicate: not part of the delta
        assert_eq!(s.delta_len(), 1);
        assert_eq!(s.tuple(0, s.delta_ids(0)[0]), &vec![v("b")]);
    }

    #[test]
    fn generation_ticks_and_caches_invalidate() {
        let mut s = FactStore::new(&[1]);
        let g0 = s.generation();
        assert!(s.active_domain().is_empty());
        s.insert(0, vec![v("a")]);
        assert!(s.generation() > g0);
        assert_eq!(s.active_domain().len(), 1);
        // A cache hit returns the same Arc.
        assert!(Arc::ptr_eq(&s.active_domain(), &s.active_domain()));
        s.insert(0, vec![Value::null(3)]);
        assert_eq!(s.active_domain().len(), 2);
        assert_eq!(s.nulls().iter().map(|n| n.0).collect::<Vec<_>>(), [3]);
        s.remove(0, &[Value::null(3)]);
        assert!(s.nulls().is_empty());
    }

    #[test]
    fn equality_ignores_evaluation_state() {
        let mut a = FactStore::new(&[1]);
        let mut b = FactStore::new(&[1]);
        // Different insertion orders, different generations, different
        // deltas — equal fact sets.
        a.insert(0, vec![v("x")]);
        a.insert(0, vec![v("y")]);
        b.insert(0, vec![v("y")]);
        b.begin_round();
        b.insert(0, vec![v("x")]);
        b.insert(0, vec![v("z")]);
        b.remove(0, &[v("z")]);
        assert_eq!(a, b);
        b.remove(0, &[v("x")]);
        assert_ne!(a, b);
    }
}

//! Values: constants and labeled nulls.
//!
//! The paper fixes an infinite set `Const` of constants and an infinite set
//! `Var` of nulls, disjoint from `Const` (§2). Ground instances take values
//! from `Const` only; target instances produced by the chase may also
//! contain nulls.
//!
//! Constants are interned in a process-wide table so that [`ConstId`]
//! comparison and hashing are integer operations; the original spelling is
//! recoverable through [`ConstId::name`]. Nulls are plain numeric labels;
//! freshness is managed by the consumers (the chase keeps a counter above
//! the maximum null of the instances involved).

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// Process-wide constant interner.
struct Interner {
    names: Vec<String>,
    ids: HashMap<String, u32>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

/// An interned constant from the paper's infinite sort `Const`.
///
/// Two constants are equal iff they were interned from the same spelling.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstId(u32);

impl ConstId {
    /// Intern `name`, returning its (process-wide) constant id.
    pub fn new(name: &str) -> Self {
        let table = interner();
        if let Some(&id) = table.read().expect("interner lock").ids.get(name) {
            return ConstId(id);
        }
        let mut w = table.write().expect("interner lock");
        if let Some(&id) = w.ids.get(name) {
            return ConstId(id);
        }
        let id = u32::try_from(w.names.len()).expect("constant interner overflow");
        w.names.push(name.to_owned());
        w.ids.insert(name.to_owned(), id);
        ConstId(id)
    }

    /// The spelling this constant was interned from, as an owned `String`.
    ///
    /// Allocates; on hot paths (`Display`, sorting by spelling) prefer
    /// [`ConstId::with_name`], which borrows the interned slice.
    pub fn name(self) -> String {
        self.with_name(str::to_owned)
    }

    /// Run `f` on the interned spelling without allocating.
    ///
    /// Holds the interner read lock for the duration of `f`; do not call
    /// [`ConstId::new`] from inside `f`.
    pub fn with_name<R>(self, f: impl FnOnce(&str) -> R) -> R {
        f(&interner().read().expect("interner lock").names[self.0 as usize])
    }

    /// Raw interner index (stable within the process only).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|name| f.write_str(name))
    }
}

impl fmt::Display for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.with_name(|name| f.write_str(name))
    }
}

/// A labeled null from the paper's sort `Var`.
///
/// Nulls model incomplete information introduced by existential quantifiers
/// during the chase. Homomorphisms may map nulls to arbitrary values but
/// must fix constants.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A value of an instance: an element of `Const ∪ Var`.
///
/// The derived `Ord` places all constants before all nulls, which gives
/// instances a deterministic iteration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A constant (`Const`): fixed by every homomorphism.
    Const(ConstId),
    /// A labeled null (`Var`): may be remapped by homomorphisms.
    Null(NullId),
}

impl Value {
    /// Shorthand for interning a named constant.
    pub fn constant(name: &str) -> Self {
        Value::Const(ConstId::new(name))
    }

    /// Shorthand for a labeled null.
    pub fn null(id: u64) -> Self {
        Value::Null(NullId(id))
    }

    /// Is this value a constant?
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this value a null?
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "{c}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = ConstId::new("alpha");
        let b = ConstId::new("alpha");
        let c = ConstId::new("beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "alpha");
        assert_eq!(c.name(), "beta");
    }

    #[test]
    fn with_name_borrows_the_spelling() {
        let a = ConstId::new("gamma");
        assert_eq!(a.with_name(str::len), 5);
        assert!(a.with_name(|n| n == "gamma"));
    }

    #[test]
    fn value_kinds() {
        let c = Value::constant("a");
        let n = Value::null(7);
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(format!("{n}"), "N7");
    }

    #[test]
    fn constants_order_before_nulls() {
        let c = Value::constant("zzz");
        let n = Value::null(0);
        assert!(c < n);
    }

    #[test]
    fn interner_survives_many_symbols() {
        for i in 0..1000 {
            let name = format!("c{i}");
            let id = ConstId::new(&name);
            assert_eq!(id.name(), name);
        }
    }
}

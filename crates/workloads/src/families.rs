//! Scalable mapping and instance families for the benchmark suite.
//!
//! Each family isolates one of the paper's complexity sources:
//!
//! * [`copy_arity`] — `P/m → Q/m`: the Inverse algorithm enumerates
//!   `B(m)` prime atoms (Bell numbers) — Theorem 5.1's exponential;
//! * [`decomposition_k`] — `P/k → Q₁(x₁,x₂) ∧ … ∧ Q_{k-1}(x_{k-1},x_k)`:
//!   `Σ*` has `B(k)` complete descriptions — Theorem 4.1's first
//!   exponential;
//! * [`union_n`] — `P₁…P_n → S`: MinGen finds `n` generators per
//!   dependency (disjunction width);
//! * [`chain_join_j`] — a `j`-atom join premise: MinGen's search space
//!   over candidate conjunctions — Theorem 4.1's second exponential;
//! * instance builders for chase/round-trip scaling curves.

use qi_core::SchemaMapping;
use qi_schema::Instance;

/// The copy mapping `P/m → Q/m`.
pub fn copy_arity(m: usize) -> SchemaMapping {
    assert!(m >= 1);
    let vars: Vec<String> = (1..=m).map(|i| format!("x{i}")).collect();
    let dep = format!("P({0}) -> Q({0})", vars.join(","));
    SchemaMapping::parse(&format!("P/{m}"), &format!("Q/{m}"), &[dep.as_str()])
        .expect("generated mapping is valid")
}

/// The `k`-ary decomposition `P(x₁,…,x_k) → ⋀ᵢ Qᵢ(xᵢ,xᵢ₊₁)`.
pub fn decomposition_k(k: usize) -> SchemaMapping {
    assert!(k >= 2);
    let vars: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let target: Vec<String> = (1..k).map(|i| format!("Q{i}/2")).collect();
    let head: Vec<String> = (1..k)
        .map(|i| format!("Q{i}({},{})", vars[i - 1], vars[i]))
        .collect();
    let dep = format!("P({}) -> {}", vars.join(","), head.join(" & "));
    SchemaMapping::parse(&format!("P/{k}"), &target.join(" "), &[dep.as_str()])
        .expect("generated mapping is valid")
}

/// The `n`-way union `Pᵢ(x) → S(x)`.
pub fn union_n(n: usize) -> SchemaMapping {
    assert!(n >= 1);
    let source: Vec<String> = (1..=n).map(|i| format!("P{i}/1")).collect();
    let deps: Vec<String> = (1..=n).map(|i| format!("P{i}(x) -> S(x)")).collect();
    let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
    SchemaMapping::parse(&source.join(" "), "S/1", &dep_refs).expect("generated mapping is valid")
}

/// A `j`-atom join premise: `A₁(x₀,x₁) ∧ … ∧ A_j(x_{j-1},x_j) → T(x₀,x_j)`.
pub fn chain_join_j(j: usize) -> SchemaMapping {
    assert!(j >= 1);
    let source: Vec<String> = (1..=j).map(|i| format!("A{i}/2")).collect();
    let body: Vec<String> = (1..=j)
        .map(|i| format!("A{i}(x{},x{})", i - 1, i))
        .collect();
    let dep = format!("{} -> T(x0,x{j})", body.join(" & "));
    SchemaMapping::parse(&source.join(" "), "T/2", &[dep.as_str()])
        .expect("generated mapping is valid")
}

/// `n` distinct `P`-facts `P(aᵢ, b, cᵢ)` sharing the middle column — the
/// Figure 1 workload at scale (each pair of facts cross-multiplies in the
/// recovered instance).
pub fn decomposition_instance(m: &SchemaMapping, n: usize) -> Instance {
    let mut inst = Instance::new(m.source.clone());
    let k = m
        .source
        .arity(m.source.rel("P").expect("family schema has P"));
    for i in 0..n {
        let mut row: Vec<&str> = Vec::with_capacity(k);
        let first = format!("a{i}");
        let last = format!("c{i}");
        let mut owned: Vec<String> = Vec::new();
        owned.push(first);
        for _ in 1..k - 1 {
            owned.push("b".to_owned());
        }
        owned.push(last);
        for s in &owned {
            row.push(s);
        }
        inst.insert_consts("P", &row).expect("arity matches");
    }
    inst
}

/// A random-ish `E/2` path-plus-chords graph of `n` edges for chase and
/// homomorphism scaling (deterministic, no RNG needed).
pub fn graph_instance(m: &SchemaMapping, rel: &str, n: usize) -> Instance {
    let mut inst = Instance::new(m.source.clone());
    for i in 0..n {
        let a = format!("v{}", i % (n / 2 + 1));
        let b = format!("v{}", (i * 7 + 3) % (n / 2 + 1));
        inst.insert_consts(rel, &[&a, &b]).expect("arity matches");
    }
    inst
}

/// `n` facts spread round-robin over the `union_n` source relations.
pub fn union_instance(m: &SchemaMapping, n: usize) -> Instance {
    let mut inst = Instance::new(m.source.clone());
    let rels = m.source.len();
    for i in 0..n {
        let rel = format!("P{}", (i % rels) + 1);
        let c = format!("c{i}");
        inst.insert_consts(&rel, &[&c]).expect("arity matches");
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build_at_several_sizes() {
        for m in 1..=4 {
            assert!(copy_arity(m).is_full());
        }
        for k in 2..=5 {
            let d = decomposition_k(k);
            assert!(d.is_lav());
            assert_eq!(d.target.len(), k - 1);
        }
        for n in 1..=5 {
            assert_eq!(union_n(n).tgds.len(), n);
        }
        for j in 1..=4 {
            assert_eq!(chain_join_j(j).max_body_atoms(), j);
        }
    }

    #[test]
    fn decomposition_instance_chases() {
        let m = decomposition_k(3);
        let i = decomposition_instance(&m, 4);
        assert_eq!(i.fact_count(), 4);
        let u = m.chase(&i).unwrap();
        // shared middle column: Q1 has 4 facts, Q2 has 4 facts
        assert_eq!(u.fact_count(), 8);
    }

    #[test]
    fn union_instance_round_robin() {
        let m = union_n(3);
        let i = union_instance(&m, 7);
        assert_eq!(i.fact_count(), 7);
        let u = m.chase(&i).unwrap();
        assert_eq!(u.fact_count(), 7);
    }

    #[test]
    fn graph_instance_is_deterministic() {
        let m = SchemaMapping::parse("E/2", "F/2", &["E(x,y) -> F(x,y)"]).unwrap();
        let a = graph_instance(&m, "E", 20);
        let b = graph_instance(&m, "E", 20);
        assert_eq!(a, b);
        assert!(a.fact_count() <= 20);
    }
}

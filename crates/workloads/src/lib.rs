//! # qi-workloads — the paper's examples and generated workloads
//!
//! * [`paper`] — every named schema mapping of *Quasi-inverses of Schema
//!   Mappings* as a reusable constructor, with the paper's claimed
//!   verdicts (invertible? quasi-invertible?) attached — the raw material
//!   of experiment E1 (the catalogue) and the theorem-level tests;
//! * [`random`] — seeded random generators for ground instances and for
//!   LAV / full / general s-t tgd mappings, used by the property tests
//!   (experiments E4, E5);
//! * [`families`] — scalable parametric families (k-ary decomposition,
//!   n-way union, join chains, wide copies) that drive the benchmark
//!   suite's scaling curves (experiments E3, E10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod paper;
pub mod random;
pub mod rng;

pub use paper::{catalogue, mapping_file_text, CatalogueEntry, Verdict};

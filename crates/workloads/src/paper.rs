//! Every named schema mapping of the paper, with its claimed verdicts.
//!
//! The constructors below follow the paper's text verbatim; the
//! [`catalogue`] bundles them with the invertibility / quasi-invertibility
//! verdicts the paper proves, so the test-suite and the `paper_gallery`
//! example can confront claim and computation mapping by mapping.

use qi_core::{ReverseMapping, SchemaMapping};

/// The paper's verdict about a mapping (`None` = not discussed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Verdict {
    /// Does the mapping have an inverse?
    pub invertible: Option<bool>,
    /// Does it have a quasi-inverse?
    pub quasi_invertible: Option<bool>,
}

/// One entry of the paper catalogue.
pub struct CatalogueEntry {
    /// Short identifier (section / theorem it comes from).
    pub name: &'static str,
    /// Where in the paper it appears and what it demonstrates.
    pub role: &'static str,
    /// The mapping itself.
    pub mapping: SchemaMapping,
    /// The paper's claims.
    pub verdict: Verdict,
}

/// Render a mapping in the `qimap` mapping-file format (`source:` /
/// `target:` / `tgd:` lines) — the bridge from the programmatic
/// catalogue to the static analyzer (`qi_analyze::analyze_text`) and the
/// CLI, used by the golden lint tests and the analyzer benchmark.
pub fn mapping_file_text(m: &SchemaMapping) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "source: {}", m.source);
    let _ = writeln!(out, "target: {}", m.target);
    for t in &m.tgds {
        let _ = writeln!(out, "tgd: {t}");
    }
    out
}

/// §1 *Projection*: `P(x,y) → Q(x)`.
pub fn projection() -> SchemaMapping {
    SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).expect("paper mapping")
}

/// §1 *Union*: `P(x) → S(x)`, `Q(x) → S(x)`.
pub fn union_mapping() -> SchemaMapping {
    SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"])
        .expect("paper mapping")
}

/// §1 / Example 3.10 / Figure 1 *Decomposition*:
/// `P(x,y,z) → Q(x,y) ∧ R(y,z)`.
pub fn decomposition() -> SchemaMapping {
    SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).expect("paper mapping")
}

/// Example 3.10's first quasi-inverse `Σ' = {Q(x,y) ∧ R(y,z) → P(x,y,z)}`.
pub fn decomposition_quasi_inverse_join() -> ReverseMapping {
    ReverseMapping::parse(&decomposition(), &["Q(x,y) & R(y,z) -> P(x,y,z)"])
        .expect("paper reverse mapping")
}

/// Example 3.10's second quasi-inverse
/// `Σ'' = {Q(x,y) → ∃z P(x,y,z), R(y,z) → ∃x P(x,y,z)}`.
pub fn decomposition_quasi_inverse_lav() -> ReverseMapping {
    ReverseMapping::parse(
        &decomposition(),
        &[
            "Q(x,y) -> exists z . P(x,y,z)",
            "R(y,z) -> exists x . P(x,y,z)",
        ],
    )
    .expect("paper reverse mapping")
}

/// The plain copy mapping `P(x,y) → Q(x,y)` — the simplest invertible
/// mapping, used throughout §5.
pub fn copy() -> SchemaMapping {
    SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).expect("paper mapping")
}

/// Proposition 3.12: the full s-t tgd
/// `E(x,z) ∧ E(z,y) → F(x,y) ∧ M(z)` — a mapping with **no**
/// quasi-inverse.
pub fn prop_3_12() -> SchemaMapping {
    SchemaMapping::parse("E/2", "F/2 M/1", &["E(x,z) & E(z,y) -> F(x,y) & M(z)"])
        .expect("paper mapping")
}

/// Example 4.5's four-tgd mapping (the QuasiInverse walk-through).
pub fn example_4_5() -> SchemaMapping {
    SchemaMapping::parse(
        "P/3 U/1 T/2 R/3",
        "S/3 Q/2",
        &[
            "P(x1,x2,x3) -> exists y . S(x1,x2,y) & Q(y,y)",
            "U(x1) -> exists y . S(x1,x1,y) & Q(y,y) & Q(x1,y)",
            "T(x3,x4) -> S(x4,x4,x3)",
            "R(x1,x2,x4) -> Q(x1,x2)",
        ],
    )
    .expect("paper mapping")
}

/// Example 5.4's mapping (the Inverse walk-through).
pub fn example_5_4() -> SchemaMapping {
    SchemaMapping::parse(
        "R/2",
        "Q/2 S/3 U/1",
        &[
            "R(x1,x2) & R(x2,x1) -> exists y . Q(x1,y)",
            "R(x1,x2) -> exists y . S(x1,x2,y)",
            "R(x1,x1) -> U(x1)",
        ],
    )
    .expect("paper mapping")
}

/// Theorem 4.8 (necessity of constants): the LAV mapping
/// `P(x,y) → ∃z (Q(x,z) ∧ Q(z,y))`, invertible but with no inverse
/// expressible without `Constant`.
pub fn thm_4_8() -> SchemaMapping {
    SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z) & Q(z,y)"])
        .expect("paper mapping")
}

/// The inverse of [`thm_4_8`] given in the paper:
/// `Q(x,z) ∧ Q(z,y) ∧ Constant(x) ∧ Constant(y) → P(x,y)`.
pub fn thm_4_8_inverse() -> ReverseMapping {
    ReverseMapping::parse(
        &thm_4_8(),
        &["Q(x,z) & Q(z,y) & const(x) & const(y) -> P(x,y)"],
    )
    .expect("paper reverse mapping")
}

/// Theorem 4.9 (necessity of inequalities): full LAV mapping over
/// `S = {P/2, T/1}` with
/// `P(x,y) → P'(x,y)`, `P(x,x) → Q(x)`, `T(x) → T'(x)`,
/// `T(x) → P'(x,x)` — invertible, but every inverse needs `≠`.
pub fn thm_4_9() -> SchemaMapping {
    SchemaMapping::parse(
        "P/2 T/1",
        "Pp/2 Q/1 Tp/1",
        &[
            "P(x,y) -> Pp(x,y)",
            "P(x,x) -> Q(x)",
            "T(x) -> Tp(x)",
            "T(x) -> Pp(x,x)",
        ],
    )
    .expect("paper mapping")
}

/// Theorem 4.10 (necessity of disjunctions): full mapping over four unary
/// source relations with pairwise witnesses `R_ij`, quasi-invertible but
/// not with disjunction-free dependencies.
pub fn thm_4_10() -> SchemaMapping {
    SchemaMapping::parse(
        "P1/1 P2/1 P3/1 P4/1",
        "S1/1 S2/1 R13/1 R14/1 R23/1 R24/1",
        &[
            "P1(x) -> S1(x)",
            "P2(x) -> S1(x)",
            "P3(x) -> S2(x)",
            "P4(x) -> S2(x)",
            "P1(x) & P3(x) -> R13(x)",
            "P1(x) & P4(x) -> R14(x)",
            "P2(x) & P3(x) -> R23(x)",
            "P2(x) & P4(x) -> R24(x)",
        ],
    )
    .expect("paper mapping")
}

/// Theorem 4.11 (necessity of existential quantifiers): the full LAV
/// mapping `P(x,y) → R(x)`, `P(x,x) → S(x)`, quasi-invertible (LAV) but
/// not via full dependencies.
pub fn thm_4_11() -> SchemaMapping {
    SchemaMapping::parse("P/2", "R/1 S/1", &["P(x,y) -> R(x)", "P(x,x) -> S(x)"])
        .expect("paper mapping")
}

/// A mapping with the unique-solutions property but **without** the
/// `(=,=)`-subset property (hence not invertible) — the separation the
/// paper defers to its full version ("there is a schema mapping M that
/// … has the unique-solutions property, but does not have the
/// (=,=)-property"). Reconstructed here:
///
/// ```text
/// P(x) → A(x)            Q(x) → A(x) ∧ B(x)        P(x) ∧ Q(x) → C(x)
/// ```
///
/// The chase determines `(A,B,C) = (P∪Q, Q, P∩Q)`, from which `P` and
/// `Q` are recoverable (`Q = B`, `P = (A∖B) ∪ C`) — unique solutions.
/// But `chase({P(a)}) = {A(a)} ⊆ {A(a),B(a)} = chase({Q(a)})` while
/// `{P(a)} ⊄ {Q(a)}` — the `(=,=)`-subset property fails.
pub fn unique_solutions_without_subset_property() -> SchemaMapping {
    SchemaMapping::parse(
        "P/1 Q/1",
        "A/1 B/1 C/1",
        &["P(x) -> A(x)", "Q(x) -> A(x) & B(x)", "P(x) & Q(x) -> C(x)"],
    )
    .expect("paper mapping")
}

/// §4's two-tgd inequality illustration: `S(x,y) → P(x,y)`,
/// `T(x,y) → P(x,x)` (the generator discussion before Definition 4.2).
pub fn section_4_inequality_example() -> SchemaMapping {
    SchemaMapping::parse("S/2 T/2", "P/2", &["S(x,y) -> P(x,y)", "T(x,y) -> P(x,x)"])
        .expect("paper mapping")
}

/// The full catalogue, in paper order.
pub fn catalogue() -> Vec<CatalogueEntry> {
    vec![
        CatalogueEntry {
            name: "projection",
            role: "§1 — fails unique solutions; LAV ⇒ quasi-invertible",
            mapping: projection(),
            verdict: Verdict {
                invertible: Some(false),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "union",
            role: "§1 — fails unique solutions; quasi-inverse needs disjunction-or-choice",
            mapping: union_mapping(),
            verdict: Verdict {
                invertible: Some(false),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "decomposition",
            role: "§1 / Example 3.10 / Figure 1",
            mapping: decomposition(),
            verdict: Verdict {
                invertible: Some(false),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "copy",
            role: "baseline invertible mapping (§5)",
            mapping: copy(),
            verdict: Verdict {
                invertible: Some(true),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "prop-3.12",
            role: "full s-t tgd with NO quasi-inverse",
            mapping: prop_3_12(),
            verdict: Verdict {
                invertible: Some(false),
                quasi_invertible: Some(false),
            },
        },
        CatalogueEntry {
            name: "example-4.5",
            role: "QuasiInverse algorithm walk-through",
            mapping: example_4_5(),
            verdict: Verdict {
                invertible: None,
                quasi_invertible: None,
            },
        },
        CatalogueEntry {
            name: "example-5.4",
            role: "Inverse algorithm walk-through",
            mapping: example_5_4(),
            verdict: Verdict {
                invertible: None,
                quasi_invertible: None,
            },
        },
        CatalogueEntry {
            name: "thm-4.8",
            role: "necessity of Constant guards",
            mapping: thm_4_8(),
            verdict: Verdict {
                invertible: Some(true),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "thm-4.9",
            role: "necessity of inequalities",
            mapping: thm_4_9(),
            verdict: Verdict {
                invertible: Some(true),
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "thm-4.10",
            role: "necessity of disjunctions",
            mapping: thm_4_10(),
            verdict: Verdict {
                invertible: None,
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "thm-4.11",
            role: "necessity of existential quantifiers",
            mapping: thm_4_11(),
            verdict: Verdict {
                invertible: None,
                quasi_invertible: Some(true),
            },
        },
        CatalogueEntry {
            name: "section-4-neq",
            role: "generator discussion before Definition 4.2",
            mapping: section_4_inequality_example(),
            verdict: Verdict {
                invertible: None,
                quasi_invertible: Some(true),
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_builds_and_classifies() {
        let entries = catalogue();
        assert_eq!(entries.len(), 12);
        for e in &entries {
            assert!(!e.mapping.tgds.is_empty(), "{} has tgds", e.name);
        }
    }

    #[test]
    fn lav_and_full_flags_match_paper() {
        assert!(projection().is_lav() && projection().is_full());
        assert!(union_mapping().is_lav() && union_mapping().is_full());
        assert!(decomposition().is_lav() && decomposition().is_full());
        assert!(!prop_3_12().is_lav() && prop_3_12().is_full());
        assert!(thm_4_8().is_lav() && !thm_4_8().is_full());
        assert!(thm_4_9().is_lav() && thm_4_9().is_full());
        assert!(!thm_4_10().is_lav() && thm_4_10().is_full());
        assert!(thm_4_11().is_lav() && thm_4_11().is_full());
    }

    #[test]
    fn paper_reverse_mappings_build() {
        assert_eq!(decomposition_quasi_inverse_join().deps.len(), 1);
        assert_eq!(decomposition_quasi_inverse_lav().deps.len(), 2);
        let inv = thm_4_8_inverse();
        assert!(inv.deps[0].has_constants());
        assert!(!inv.deps[0].has_inequalities());
    }
}

//! Seeded random generators for instances and mappings.
//!
//! Used by the property tests (soundness/faithfulness of algorithm
//! outputs on random inputs, Prop 3.11 on random LAV mappings) and by the
//! chase benchmarks. All generators take an explicit RNG so runs are
//! reproducible from a seed.

use crate::rng::Rng64;
use qi_core::SchemaMapping;
use qi_lang::{Atom, Tgd, Var};
use qi_schema::{Instance, Schema, Value};

/// Parameters for random ground instances.
#[derive(Clone, Copy, Debug)]
pub struct InstanceParams {
    /// Size of the constant pool (`c0..c{n-1}`).
    pub n_consts: usize,
    /// Number of fact-insertion attempts (duplicates collapse, so the
    /// result has *at most* this many facts).
    pub n_facts: usize,
}

/// A random ground instance over `schema`.
pub fn random_ground_instance(
    schema: &Schema,
    rng: &mut Rng64,
    params: &InstanceParams,
) -> Instance {
    let consts: Vec<Value> = (0..params.n_consts.max(1))
        .map(|i| Value::constant(&format!("c{i}")))
        .collect();
    let mut inst = Instance::new(schema.clone());
    for _ in 0..params.n_facts {
        let rel = schema
            .rel_ids()
            .nth(rng.random_range(0..schema.len()))
            .expect("index in range");
        let args: Vec<Value> = (0..schema.arity(rel))
            .map(|_| consts[rng.random_range(0..consts.len())])
            .collect();
        inst.insert(rel, args).expect("arity matches");
    }
    inst
}

/// Parameters for random s-t tgd mappings.
#[derive(Clone, Copy, Debug)]
pub struct MappingParams {
    /// Number of source relations.
    pub n_source_rels: usize,
    /// Number of target relations.
    pub n_target_rels: usize,
    /// Maximum relation arity (min 1).
    pub max_arity: usize,
    /// Number of tgds.
    pub n_tgds: usize,
    /// Force single-atom premises (LAV).
    pub lav: bool,
    /// Forbid existential head variables (full tgds).
    pub full: bool,
    /// Maximum premise atoms (ignored when `lav`).
    pub max_body_atoms: usize,
    /// Maximum conclusion atoms.
    pub max_head_atoms: usize,
}

impl Default for MappingParams {
    fn default() -> Self {
        MappingParams {
            n_source_rels: 2,
            n_target_rels: 2,
            max_arity: 2,
            n_tgds: 2,
            lav: false,
            full: false,
            max_body_atoms: 2,
            max_head_atoms: 2,
        }
    }
}

/// A random schema mapping. Construction guarantees validity: head
/// variables are drawn from the premise variables plus (unless `full`) a
/// pool of existential variables; unused existentials are dropped.
pub fn random_mapping(rng: &mut Rng64, params: &MappingParams) -> SchemaMapping {
    let source_desc: Vec<(String, usize)> = (0..params.n_source_rels.max(1))
        .map(|i| {
            (
                format!("Src{i}"),
                rng.random_range(1..=params.max_arity.max(1)),
            )
        })
        .collect();
    let target_desc: Vec<(String, usize)> = (0..params.n_target_rels.max(1))
        .map(|i| {
            (
                format!("Tgt{i}"),
                rng.random_range(1..=params.max_arity.max(1)),
            )
        })
        .collect();
    let source = Schema::new(&source_desc).expect("valid generated schema");
    let target = Schema::new(&target_desc).expect("valid generated schema");
    let mut tgds = Vec::new();
    while tgds.len() < params.n_tgds {
        if let Some(tgd) = random_tgd(rng, &source, &target, params) {
            tgds.push(tgd);
        }
    }
    SchemaMapping::new(source, target, tgds).expect("schemas match by construction")
}

/// A random mapping between two *given* schemas (used e.g. to generate a
/// second mapping whose source is the first one's target, for
/// composition tests).
pub fn random_mapping_between(
    rng: &mut Rng64,
    source: &Schema,
    target: &Schema,
    params: &MappingParams,
) -> SchemaMapping {
    let mut tgds = Vec::new();
    while tgds.len() < params.n_tgds {
        if let Some(tgd) = random_tgd(rng, source, target, params) {
            tgds.push(tgd);
        }
    }
    SchemaMapping::new(source.clone(), target.clone(), tgds).expect("schemas match by construction")
}

fn random_tgd(
    rng: &mut Rng64,
    source: &Schema,
    target: &Schema,
    params: &MappingParams,
) -> Option<Tgd> {
    let n_body = if params.lav {
        1
    } else {
        rng.random_range(1..=params.max_body_atoms.max(1))
    };
    // Premise variable pool: a few shared names so joins happen.
    let pool: Vec<Var> = (0..4).map(|i| Var::new(&format!("x{i}"))).collect();
    let mut body = Vec::new();
    for _ in 0..n_body {
        let rel = source.rel_ids().nth(rng.random_range(0..source.len()))?;
        let args: Vec<Var> = (0..source.arity(rel))
            .map(|_| pool[rng.random_range(0..pool.len())].clone())
            .collect();
        body.push(Atom::new(rel, args));
    }
    let body_vars: Vec<Var> = qi_lang::atom::vars_of(&body);
    let e_pool: Vec<Var> = (0..2).map(|i| Var::new(&format!("e{i}"))).collect();
    let n_head = rng.random_range(1..=params.max_head_atoms.max(1));
    let mut head = Vec::new();
    for _ in 0..n_head {
        let rel = target.rel_ids().nth(rng.random_range(0..target.len()))?;
        let args: Vec<Var> = (0..target.arity(rel))
            .map(|_| {
                if !params.full && rng.random_bool(0.3) {
                    e_pool[rng.random_range(0..e_pool.len())].clone()
                } else {
                    body_vars[rng.random_range(0..body_vars.len())].clone()
                }
            })
            .collect();
        head.push(Atom::new(rel, args));
    }
    let head_vars = qi_lang::atom::vars_of(&head);
    let exists: Vec<Var> = e_pool
        .into_iter()
        .filter(|v| head_vars.contains(v))
        .collect();
    Tgd::new(source.clone(), target.clone(), body, exists, head).ok()
}

/// Convenience: a fresh seeded RNG.
pub fn rng(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_reproducible() {
        let s = Schema::parse("P/2 Q/1").unwrap();
        let p = InstanceParams {
            n_consts: 3,
            n_facts: 10,
        };
        let a = random_ground_instance(&s, &mut rng(7), &p);
        let b = random_ground_instance(&s, &mut rng(7), &p);
        assert_eq!(a, b);
        assert!(a.is_ground());
        assert!(a.fact_count() <= 10);
    }

    #[test]
    fn lav_flag_respected() {
        let p = MappingParams {
            lav: true,
            n_tgds: 5,
            ..Default::default()
        };
        for seed in 0..10 {
            let m = random_mapping(&mut rng(seed), &p);
            assert!(m.is_lav(), "seed {seed}");
            assert_eq!(m.tgds.len(), 5);
        }
    }

    #[test]
    fn full_flag_respected() {
        let p = MappingParams {
            full: true,
            n_tgds: 4,
            ..Default::default()
        };
        for seed in 0..10 {
            let m = random_mapping(&mut rng(seed), &p);
            assert!(m.is_full(), "seed {seed}");
        }
    }

    #[test]
    fn random_mappings_chase_their_random_instances() {
        let mp = MappingParams::default();
        let ip = InstanceParams {
            n_consts: 3,
            n_facts: 5,
        };
        for seed in 0..10 {
            let mut r = rng(seed);
            let m = random_mapping(&mut r, &mp);
            let i = random_ground_instance(&m.source, &mut r, &ip);
            let u = m.chase(&i).expect("chase succeeds");
            assert!(qi_chase::is_solution(&m.tgds, &i, &u));
        }
    }
}

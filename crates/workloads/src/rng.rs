//! A tiny deterministic PRNG for workload generation.
//!
//! The generators only need reproducible, reasonably-distributed draws —
//! not cryptographic quality — so a self-contained SplitMix64 keeps the
//! workspace dependency-free while preserving the explicit-seed contract:
//! the same seed always produces the same mapping/instance, across
//! platforms and releases.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw from `range` (uniform up to negligible modulo bias).
    /// Panics on an empty range.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> usize {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Integer ranges [`Rng64::random_range`] can sample from.
pub trait SampleRange {
    /// A uniform draw from the range.
    fn sample(self, rng: &mut Rng64) -> usize;
}

impl SampleRange for Range<usize> {
    fn sample(self, rng: &mut Rng64) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn sample(self, rng: &mut Rng64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + (rng.next_u64() % span) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            let x = r.random_range(2..7);
            assert!((2..7).contains(&x));
            let y = r.random_range(1..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn bool_respects_extremes() {
        let mut r = Rng64::new(9);
        assert!((0..50).all(|_| !r.random_bool(0.0)));
        assert!((0..50).all(|_| r.random_bool(1.0)));
        // p = 0.5 hits both sides over a reasonable sample.
        let heads = (0..200).filter(|_| r.random_bool(0.5)).count();
        assert!(heads > 40 && heads < 160, "{heads}");
    }
}

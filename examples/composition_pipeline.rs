//! Composing schema mappings, then quasi-inverting the composition —
//! the two fundamental operators of §1/§2 working together.
//!
//! Scenario: a two-hop ETL pipeline. A staging mapping (full tgds)
//! normalizes raw events, a publishing mapping exposes them to analysts.
//! We compute the one-hop composition `M13 = M12 ∘ M23`, validate it
//! behaviourally, and then use the QuasiInverse algorithm on `M13` to
//! pull analyst-level data back to raw form.
//!
//! ```sh
//! cargo run --release --example composition_pipeline
//! ```

use quasi_inverse::prelude::*;

fn main() {
    // Hop 1 (full): raw click events → normalized Session/Action tables.
    let m12 = SchemaMapping::parse(
        "Click/3",
        "Session/2 Action/2",
        &["Click(user,page,sess) -> Session(user,sess) & Action(sess,page)"],
    )
    .expect("valid mapping");
    // Hop 2: publish who-visited-what, dropping session ids.
    let m23 = SchemaMapping::parse(
        "Session/2 Action/2",
        "Visited/2",
        &["Session(user,sess) & Action(sess,page) -> Visited(user,page)"],
    )
    .expect("valid mapping");
    // Re-read m23 over m12's target schema object so they share it.
    let m23 = SchemaMapping::new(
        m12.target.clone(),
        m23.target.clone(),
        m23.tgds
            .iter()
            .map(|t| parse_tgd(&m12.target, &m23.target, &t.to_string()).expect("reparse"))
            .collect(),
    )
    .expect("schemas align");

    println!("Hop 1:\n{m12}");
    println!("Hop 2:\n{m23}");

    // Compose (m12 is full, so the composition is s-t tgd definable).
    let m13 = compose(&m12, &m23, &Default::default()).expect("composition succeeds");
    println!("Composed one-hop mapping M13 = M12 ∘ M23:\n{m13}");

    // Behavioural validation on concrete data: chasing I through both
    // hops or through M13 yields the same analyst view.
    let i = Instance::parse(
        &m12.source,
        "Click(ana,home,s1) Click(ana,docs,s1) Click(bo,home,s2)",
    )
    .expect("valid instance");
    let two_hop = m23.chase(&m12.chase(&i).expect("hop 1")).expect("hop 2");
    let one_hop = m13.chase(&i).expect("one hop");
    assert_eq!(two_hop, one_hop);
    println!("Analyst view (both routes agree):\n  {one_hop}\n");

    // Exact membership cross-check on a pair.
    assert!(composition_membership(&m12, &m23, &i, &one_hop).expect("membership"));

    // Now quasi-invert the composed mapping and recover raw-event-shaped
    // data from the analyst view.
    let rev = compute_quasi_inverse(&m13, &Default::default()).expect("algorithm succeeds");
    println!("Quasi-inverse of the composition:\n{rev}");
    let rt = round_trip(&m13, &rev, &i, Default::default()).expect("round trip");
    assert!(rt.is_sound() && rt.is_faithful());
    println!(
        "Recovered raw-shaped instance (data-exchange equivalent):\n  {}",
        rt.recovered_equivalent().expect("faithful")
    );
}

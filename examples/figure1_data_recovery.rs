//! Figure 1 of the paper, reproduced end to end (experiment E2).
//!
//! The Decomposition mapping `P(x,y,z) → Q(x,y) ∧ R(y,z)` is chased on
//! `I = {P(a,b,c), P(a',b,c')}`; the two quasi-inverses of Example 3.10,
//!
//! * `Σ'  = { Q(x,y) ∧ R(y,z) → P(x,y,z) }`
//! * `Σ'' = { Q(x,y) → ∃z P(x,y,z),  R(y,z) → ∃x P(x,y,z) }`
//!
//! are chased back and forward again, reproducing the figure's instances
//! `U, V₁, chase(V₁), V₂, U₂` and its two verdicts: `chase(V₁) = U`
//! (identical) and `U₂ ≡hom U` (homomorphically equivalent, faithful).
//!
//! ```sh
//! cargo run --example figure1_data_recovery
//! ```

use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn main() {
    let m = paper::decomposition();
    // Figure 1 writes a' and c' — our constant lexer spells them a2, c2.
    let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").expect("valid instance");
    banner("I (ground source)");
    println!("  {i}");

    let u = m.chase(&i).expect("chase");
    banner("U = chase_Σ(I)");
    println!("  {u}");
    assert_eq!(
        u,
        Instance::parse(&m.target, "Q(a,b) Q(a2,b) R(b,c) R(b,c2)").expect("valid")
    );

    // ---- left column of Figure 1: M' ----
    let m_prime = paper::decomposition_quasi_inverse_join();
    banner("M' (Σ' = Q(x,y) ∧ R(y,z) → P(x,y,z))");
    let rt1 = round_trip(&m, &m_prime, &i, Default::default()).expect("round trip");
    let v1 = &rt1.recovered[0];
    println!("  V1 = chase_Σ'(U) = {v1}");
    assert_eq!(
        *v1,
        Instance::parse(&m.source, "P(a,b,c) P(a,b,c2) P(a2,b,c) P(a2,b,c2)").expect("valid")
    );
    println!("  chase_Σ(V1)     = {}", rt1.rechased[0]);
    assert_eq!(rt1.rechased[0], u, "Figure 1: chase(V1) is identical to U");
    println!("  verdict: chase_Σ(V1) = U  →  M' is faithful on I");
    assert!(rt1.is_faithful());

    // ---- right column of Figure 1: M'' ----
    let m_dprime = paper::decomposition_quasi_inverse_lav();
    banner("M'' (Σ'' = Q(x,y) → ∃z P(x,y,z); R(y,z) → ∃x P(x,y,z))");
    let rt2 = round_trip(&m, &m_dprime, &i, Default::default()).expect("round trip");
    let v2 = &rt2.recovered[0];
    println!("  V2 = chase_Σ''(U) = {v2}");
    // Figure 1: V2 = { P(a,b,Z), P(a',b,Z'), P(X,b,c), P(X',b,c') }.
    assert_eq!(v2.fact_count(), 4);
    assert_eq!(v2.nulls().len(), 4);
    let u2 = &rt2.rechased[0];
    println!("  U2 = chase_Σ(V2)  = {u2}");
    assert_ne!(*u2, u, "U2 has extra null tuples, exactly as in the figure");
    assert!(hom_equivalent(u2, &u), "Figure 1: U2 ≡hom U");
    println!("  verdict: U2 ≠ U but U2 ≡hom U  →  M'' is faithful on I");
    assert!(rt2.is_faithful());

    banner("summary");
    println!("  Both quasi-inverses recover a source that is data-exchange");
    println!("  equivalent to I (Theorems 6.7/6.8) — Figure 1 reproduced.");
}

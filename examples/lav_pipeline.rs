//! LAV integration pipeline (experiment E5 — Proposition 3.11 /
//! Theorem 4.7 in action).
//!
//! A warehouse integrates three departmental sources through a LAV
//! mapping (each source table is a view over the warehouse). LAV
//! mappings *always* have quasi-inverses; this pipeline computes one,
//! uses it to re-derive department-local data from the warehouse, and
//! checks the paper's `(=, ~M)` union witness on an exhaustive universe.
//!
//! ```sh
//! cargo run --release --example lav_pipeline
//! ```

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;

fn main() {
    // Departmental sources → warehouse.
    //   Hires(person, dept)      → Staff(person, dept)
    //   Transfers(person, dept)  → Staff(person, dept)
    //   Badges(person)           → Person(person)
    //   Hires(person, dept)      → Person(person)
    let m = SchemaMapping::parse(
        "Hires/2 Transfers/2 Badges/1",
        "Staff/2 Person/1",
        &[
            "Hires(p,d) -> Staff(p,d)",
            "Transfers(p,d) -> Staff(p,d)",
            "Badges(p) -> Person(p)",
            "Hires(p,d) -> Person(p)",
        ],
    )
    .expect("valid mapping");
    assert!(m.is_lav());
    println!("LAV integration mapping:\n{m}");

    // Proposition 3.11: every LAV mapping is quasi-invertible — verified
    // constructively with the union witness on an exhaustive universe.
    let universe = ground_instances(&m.source, &["a", "b"], 3);
    assert!(
        union_witness_subset_property(&m, &universe)
            .expect("chase")
            .is_none(),
        "the (=, ~M) union witness validates (Prop 3.11)"
    );
    println!(
        "Union-witness subset property validated on {} exhaustive instances (Prop 3.11).\n",
        universe.len()
    );

    // Compute the quasi-inverse.
    let rev = compute_quasi_inverse(&m, &Default::default()).expect("algorithm succeeds");
    println!("Quasi-inverse (QuasiInverse algorithm):\n{rev}");

    // Integrate some data and recover department-equivalent sources.
    let i = Instance::parse(
        &m.source,
        "Hires(ana,sales) Transfers(bo,eng) Badges(cy) Badges(ana)",
    )
    .expect("valid");
    let rt = round_trip(&m, &rev, &i, Default::default()).expect("round trip");
    println!(
        "\nWarehouse U: {}\nRecovered {} candidate source instance(s); faithful: {}",
        rt.u,
        rt.recovered.len(),
        rt.is_faithful()
    );
    assert!(rt.is_sound() && rt.is_faithful());
    let v = rt.recovered_equivalent().expect("faithful");
    println!("A data-exchange-equivalent source:\n  {v}");

    // Every fact the recovery asserts is justified: chasing it produces
    // nothing beyond U (soundness, Theorem 6.7).
    let u_again = m.chase(v).expect("chase");
    assert!(has_hom(&u_again, &rt.u));
    println!("\nRe-chasing the recovery stays within U (Theorem 6.7 soundness).");
}

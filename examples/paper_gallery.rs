//! The paper catalogue (experiment E1): every named mapping of the paper,
//! confronted with the algorithms and the bounded verifiers.
//!
//! For each mapping the gallery reports:
//! * its syntactic class (LAV / full),
//! * the constant-propagation property (Definition 5.2 — necessary for
//!   invertibility, Proposition 5.3),
//! * the language features the computed quasi-inverse actually uses,
//! * bounded verification verdicts (quasi-inverse / inverse over a small
//!   exhaustive universe of ground instances), and
//! * the paper's claimed verdicts for comparison.
//!
//! ```sh
//! cargo run --release --example paper_gallery
//! ```

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::catalogue;

fn yesno(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

fn claimed(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "yes",
        Some(false) => "no",
        None => "—",
    }
}

fn main() {
    println!(
        "{:<14} {:>4} {:>4} {:>6} {:<28} {:>8} {:>8}   {:<18}",
        "mapping",
        "LAV",
        "full",
        "c-prop",
        "quasi-inverse language",
        "QI ok?",
        "inv ok?",
        "paper claims (inv/qi)"
    );
    println!("{}", "-".repeat(110));
    for entry in catalogue() {
        let m = &entry.mapping;
        let cprop = constant_propagation_property(m).expect("chase succeeds");
        // Run the QuasiInverse algorithm (budgeted).
        let qi = compute_quasi_inverse(m, &Default::default()).expect("algorithm succeeds");
        let features = qi.language_features().to_string();
        // Bounded verification over the exhaustive two-constant universe,
        // taken *union-closed* (every subset of the tuple universe):
        // Definition 3.8's witnesses for these mappings are unions and
        // subinstances over the same constants, so closure keeps the check
        // honest. Skipped when the tuple universe is too large (2^22
        // instances for example-4.5).
        let tuple_universe: usize = m
            .source
            .rel_ids()
            .map(|r| 2usize.pow(m.source.arity(r) as u32))
            .sum();
        let (qi_ok, inv_ok) = if tuple_universe <= 8 {
            let universe = ground_instances(&m.source, &["a", "b"], tuple_universe);
            let q = is_quasi_inverse_bounded(m, &qi, &universe).expect("verification");
            let inv = inverse(m).expect("algorithm succeeds");
            let i_ok = match inv {
                Some(rev) => {
                    is_inverse_bounded(m, &rev, &universe)
                        .expect("verification")
                        .holds
                }
                None => false,
            };
            (yesno(q.holds), yesno(i_ok))
        } else {
            ("(skip)", "(skip)")
        };
        println!(
            "{:<14} {:>4} {:>4} {:>6} {:<28} {:>8} {:>8}   {}/{}",
            entry.name,
            yesno(m.is_lav()),
            yesno(m.is_full()),
            yesno(cprop),
            features,
            qi_ok,
            inv_ok,
            claimed(entry.verdict.invertible),
            claimed(entry.verdict.quasi_invertible),
        );
    }
    println!("{}", "-".repeat(110));
    println!("QI ok?  = the QuasiInverse algorithm's output verifies as a quasi-inverse");
    println!("          on the exhaustive two-constant universe (Definition 3.8, bounded).");
    println!("inv ok? = the Inverse algorithm produced output that verifies as an inverse");
    println!("          on the same universe (Definition 3.3, bounded).");
    println!("paper   = the verdicts claimed in the paper (invertible / quasi-invertible).");
}

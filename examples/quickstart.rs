//! Quickstart: define a schema mapping, compute a quasi-inverse with the
//! paper's algorithm, and recover exported data.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use quasi_inverse::prelude::*;

fn main() {
    // A mapping that exports employee rows into two target tables —
    // the paper's Decomposition pattern (§1).
    //
    //   Emp(name, dept, city)  →  WorksIn(name, dept) ∧ LocatedIn(dept, city)
    let m = SchemaMapping::parse(
        "Emp/3",
        "WorksIn/2 LocatedIn/2",
        &["Emp(n,d,c) -> WorksIn(n,d) & LocatedIn(d,c)"],
    )
    .expect("valid mapping");
    println!("Schema mapping:\n{m}");

    // Source data.
    let i = Instance::parse(
        &m.source,
        "Emp(alice,sales,nyc) Emp(bob,sales,sfo) Emp(carol,eng,sfo)",
    )
    .expect("valid instance");
    println!("Source instance I:\n  {i}\n");

    // Forward exchange: the chase produces the canonical universal solution.
    let u = m.chase(&i).expect("chase succeeds");
    println!("Exported target U = chase_Σ(I):\n  {u}\n");

    // The mapping is NOT invertible: distinct sources can have identical
    // solution spaces (the unique-solutions property fails, §1).
    let i2 = i
        .union(&Instance::parse(&m.source, "Emp(bob,sales,nyc)").expect("valid"))
        .expect("same schema");
    assert!(equivalent(&m, &i, &i2).expect("chase succeeds"));
    println!("Non-invertibility witness: I ~M I ∪ {{Emp(bob,sales,nyc)}}\n");

    // But the QuasiInverse algorithm (§4, Theorem 4.1) produces a
    // quasi-inverse: disjunctive tgds with constants and inequalities.
    let rev = compute_quasi_inverse(&m, &Default::default()).expect("algorithm succeeds");
    println!("Computed quasi-inverse:\n{rev}");

    // Reverse exchange (§6): disjunctive-chase U back to source instances,
    // re-chase them, and compare with U.
    let rt = round_trip(&m, &rev, &i, Default::default()).expect("round trip succeeds");
    println!(
        "Reverse exchange recovered {} candidate source instance(s).",
        rt.recovered.len()
    );
    let v = rt
        .recovered_equivalent()
        .expect("Theorem 6.8: the algorithm's output is faithful");
    println!("Data-exchange-equivalent recovery V:\n  {v}\n");
    assert!(rt.is_sound() && rt.is_faithful());
    println!("Soundness and faithfulness certified: chase_Σ(V) ≡hom U  (Definitions 6.5(1,2)).");
}

//! Schema evolution with inverses and quasi-inverses (experiment E6).
//!
//! Scenario: a customer table is migrated to a new schema; later the
//! organization wants to roll data back. While the migration mapping is
//! invertible, the Inverse algorithm (§5) provides an exact rollback.
//! When the *source* schema is then extended with a new audit relation —
//! the robustness construction of §1 — the mapping stops being
//! invertible, yet the old inverse keeps working **as a quasi-inverse**
//! of the augmented mapping.
//!
//! ```sh
//! cargo run --release --example schema_evolution
//! ```

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;

fn main() {
    // v1 → v2 migration: split the customer name out of the order row.
    let m = SchemaMapping::parse(
        "Order/2",
        "OrderV2/2",
        &["Order(id,cust) -> OrderV2(id,cust)"],
    )
    .expect("valid mapping");
    println!("Migration mapping:\n{m}");

    // The mapping propagates constants, so the Inverse algorithm runs.
    assert!(constant_propagation_property(&m).expect("chase"));
    let rollback = inverse(&m)
        .expect("algorithm succeeds")
        .expect("constant propagation holds");
    println!("Computed rollback (Inverse algorithm, §5):\n{rollback}");

    // Exact rollback on real data.
    let i = Instance::parse(&m.source, "Order(o1,alice) Order(o2,bob)").expect("valid");
    let rt = round_trip(&m, &rollback, &i, Default::default()).expect("round trip");
    assert_eq!(rt.recovered.len(), 1);
    assert_eq!(rt.recovered[0], i, "an inverse recovers I exactly here");
    println!("Rollback of {{Order(o1,alice), Order(o2,bob)}} recovered the instance exactly.\n");

    // Verify inverse-ness exhaustively on a small closed universe.
    let universe = ground_instances(&m.source, &["a", "b"], 4);
    let report = is_inverse_bounded(&m, &rollback, &universe).expect("verification");
    assert!(report.holds);
    println!(
        "Bounded Definition 3.3 check: {} pairs over a {}-instance universe — inverse confirmed.\n",
        report.checked,
        universe.len()
    );

    // ---- schema evolution: add an audit table to the SOURCE ----
    // §1: augmenting the source schema destroys invertibility (the audit
    // relation is not propagated at all), but every inverse of M remains
    // a QUASI-inverse of the augmented mapping.
    let m_aug = m
        .augment_source(&[("Audit", 1)])
        .expect("augmentation succeeds");
    println!("Augmented mapping (audit table added to the source):\n{m_aug}");
    assert!(
        !constant_propagation_property(&m_aug).expect("chase"),
        "audit values never reach the target ⇒ no inverse (Prop 5.3)"
    );

    // The old rollback, re-read over the augmented source schema.
    let rollback_aug = ReverseMapping::parse(
        &m_aug,
        &rollback
            .deps
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    )
    .expect("same dependencies over the augmented schemas");

    // It is no longer an inverse … but it verifies as a quasi-inverse.
    let universe_aug = ground_instances(&m_aug.source, &["a", "b"], 6);
    let inv_report =
        is_inverse_bounded(&m_aug, &rollback_aug, &universe_aug).expect("verification");
    assert!(!inv_report.holds, "invertibility is destroyed");
    let qi_report =
        is_quasi_inverse_bounded(&m_aug, &rollback_aug, &universe_aug).expect("verification");
    assert!(qi_report.holds, "…but quasi-invertibility survives (§1)");
    println!(
        "After evolution: inverse check fails ({} mismatches), quasi-inverse check holds\n\
         ({} pairs over a {}-instance universe) — the §1 robustness claim, observed.",
        inv_report.mismatches.len(),
        qi_report.checked,
        universe_aug.len()
    );
}

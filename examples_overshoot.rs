fn main() {
    use qi_exec::{par_map_budgeted, Budget, Parallelism};
    let items: Vec<u64> = (0..8).collect();
    let mut ok = 0; let mut err = 0;
    for _ in 0..200 {
        let budget = Budget::unlimited().with_max_tasks(2);
        match par_map_budgeted(Parallelism::fixed(8), &items, &budget, |&x| x) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    println!("cap=2, items=8, threads=8: Ok(completed all 8) = {ok}, Err = {err}");
}

//! # quasi-inverse — *Quasi-inverses of Schema Mappings*, in Rust
//!
//! A complete, from-scratch reproduction of Fagin, Kolaitis, Popa and
//! Tan's PODS 2007 paper: schema mappings specified by source-to-target
//! tgds, the data-exchange chase, the disjunctive chase with constants
//! and inequalities, the `(~1,~2)`-inverse framework, and the paper's
//! three algorithms — **MinGen**, **QuasiInverse**, **Inverse** —
//! together with the soundness / faithfulness machinery of §6.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable paths.
//!
//! ```
//! use quasi_inverse::prelude::{
//!     compute_quasi_inverse, equivalent, round_trip, Instance, SchemaMapping,
//! };
//!
//! // The paper's Decomposition mapping (§1, Example 3.10, Figure 1).
//! let m = SchemaMapping::parse("P/3", "Q/2 R/2",
//!     &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
//!
//! // It has no inverse — the unique-solutions property fails: the two
//! // instances of Example 3.10 share their whole solution space …
//! let i1 = Instance::parse(&m.source, "P(c0,c0,c0) P(c0,c0,c1) P(c1,c0,c0)").unwrap();
//! let i2 = i1.union(&Instance::parse(&m.source, "P(c1,c0,c1)").unwrap()).unwrap();
//! assert!(equivalent(&m, &i1, &i2).unwrap());
//!
//! // … but the QuasiInverse algorithm produces a quasi-inverse:
//! let rev = compute_quasi_inverse(&m, &Default::default()).unwrap();
//!
//! // which recovers data-exchange-equivalent sources (Theorem 6.8):
//! let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
//! let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
//! assert!(rt.is_faithful());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use qi_analyze as analyze;
pub use qi_chase as chase;
pub use qi_core as core;
pub use qi_exec as exec;
pub use qi_lang as lang;
pub use qi_schema as schema;
pub use qi_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use qi_analyze::{
        analyze_text, is_weakly_acyclic, Diagnostic, Diagnostics, TerminationCertificate,
    };
    pub use qi_chase::{
        chase, chase_with_guards, chase_with_target_deps, chase_with_target_deps_stats,
        disjunctive_chase, is_generator, is_solution, is_universal_solution, so_chase,
        ChaseStrategy, DisjChaseOptions, ExchangeSetting, TargetChaseOptions, TargetChaseResult,
        TargetChaseStats,
    };
    // `quasi_inverse` (the function) is re-exported as
    // `compute_quasi_inverse` so that a glob import of this prelude does
    // not shadow the `quasi_inverse` crate name itself.
    pub use qi_chase::{ChasePartial, ResourceError};
    pub use qi_core::quasi_inverse as compute_quasi_inverse;
    pub use qi_core::{
        compose, composition_contains, composition_membership, constant_propagation_property,
        equivalent, inverse, is_inverse_bounded, is_quasi_inverse_bounded, min_gen,
        minimize_disjuncts, round_trip, sigma_star, solutions_subset, subset_property_bounded,
        union_witness_subset_property, unique_solutions_bounded, CoreError, CorePartial,
        CoreResourceError, MinGenOptions, QuasiInverseOptions, Relation, ReverseMapping, RoundTrip,
        SchemaMapping,
    };
    pub use qi_core::{
        is_maximum_recovery_bounded, is_recovery_bounded, is_recovery_on, mapping_contains,
        mapping_equivalent, maximum_recovery, reverse_contains, reverse_equivalent,
        ContainmentVerdict, ContainmentWitness, RecoveryReport,
    };
    pub use qi_core::{quasi_inverse_full, quasi_inverse_lav, so_compose};
    pub use qi_exec::{set_global_threads, Budget, Exceeded, ExecStats, Parallelism};
    pub use qi_lang::{
        parse_disj_tgd, parse_egd, parse_tgd, skolemize, Atom, DisjTgd, Egd, SoTgd, Tgd, Var,
    };
    pub use qi_schema::{
        core_of, find_hom, has_hom, hom_equivalent, is_isomorphic, Instance, Schema, Value,
    };
}

//! Ablations: removing individual steps of the paper's algorithms breaks
//! them in exactly the ways the paper's design anticipates.

use quasi_inverse::core::{quasi_inverse as qi_algo, QuasiInverseOptions};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

#[test]
fn sigma_star_is_necessary() {
    // The copy mapping P(x,y) → Q(x,y): without Σ*, the only reverse
    // dependency handles Q(x,y) with x ≠ y, so the target fact Q(a,a)
    // triggers nothing and the round trip recovers the empty instance:
    // faithfulness fails.
    let m = paper::copy();
    let ablated = qi_algo(
        &m,
        &QuasiInverseOptions {
            skip_sigma_star: true,
            ..Default::default()
        },
    )
    .unwrap();
    let full = qi_algo(&m, &QuasiInverseOptions::default()).unwrap();
    assert!(full.deps.len() > ablated.deps.len());

    let i = Instance::parse(&m.source, "P(a,a)").unwrap(); // chases to Q(a,a)
    let rt_ablated = round_trip(&m, &ablated, &i, Default::default()).unwrap();
    assert!(
        !rt_ablated.is_faithful(),
        "without Σ* the identified-frontier case is lost"
    );
    let rt_full = round_trip(&m, &full, &i, Default::default()).unwrap();
    assert!(rt_full.is_faithful());
}

#[test]
fn sigma_star_ablation_detected_by_bounded_verification() {
    let m = paper::copy();
    let ablated = qi_algo(
        &m,
        &QuasiInverseOptions {
            skip_sigma_star: true,
            ..Default::default()
        },
    )
    .unwrap();
    let universe = quasi_inverse::core::enumerate::ground_instances(&m.source, &["a", "b"], 3);
    let report = is_quasi_inverse_bounded(&m, &ablated, &universe).unwrap();
    assert!(!report.holds, "the ablated output is not a quasi-inverse");
}

#[test]
fn constant_guards_are_necessary_for_soundness_of_sigma_prime_style_mappings() {
    // Strip the Constant guards from the algorithm's output for
    // Theorem 4.8's mapping (whose chase produces nulls): the unguarded
    // premises fire on null-carrying facts and the recovered instance
    // invents source rows, breaking exact inverse behaviour.
    let m = paper::thm_4_8();
    let guarded = inverse(&m).unwrap().unwrap();
    let mut texts = Vec::new();
    for d in &guarded.deps {
        let mut c = d.clone();
        c.constant.clear();
        c.neq.clear(); // inequalities were among constants
        texts.push(c.to_string());
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let stripped = ReverseMapping::parse(&m, &refs).unwrap();
    let i = Instance::parse(&m.source, "P(a,b) P(b,c)").unwrap();
    // U = {Q(a,N0), Q(N0,b), Q(b,N1), Q(N1,c)}. The guarded inverse
    // recovers exactly I; the stripped variant also fires on the pure
    // null chain Q(N0,b) ∧ Q(b,N1), inventing the row P(N0,N1) — not the
    // identity behaviour.
    let rt_guarded = round_trip(&m, &guarded, &i, Default::default()).unwrap();
    assert_eq!(rt_guarded.recovered[0], i);
    let rt_stripped = round_trip(&m, &stripped, &i, Default::default()).unwrap();
    assert_ne!(rt_stripped.recovered[0], i);
    assert!(rt_stripped.recovered[0].fact_count() > i.fact_count());
}

#[test]
fn lemma_4_4_bound_is_tight_enough() {
    // Capping MinGen below Lemma 4.4's s1·s2 bound loses generators: the
    // chain-join premise needs 2 atoms, a cap of 1 finds nothing.
    use quasi_inverse::core::{min_gen, MinGenOptions};
    let m = SchemaMapping::parse("A/2 B/2", "T/2", &["A(x,y) & B(y,z) -> T(x,z)"]).unwrap();
    let psi = vec![Atom::parse_parts(&m.target, "T", &["x", "z"]).unwrap()];
    let x = vec![Var::new("x"), Var::new("z")];
    let full = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
    assert!(!full.is_empty());
    let capped = min_gen(
        &m,
        &psi,
        &x,
        &MinGenOptions {
            max_atoms: Some(1),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(capped.is_empty(), "a 1-atom cap cannot express the join");
}

#[test]
fn restricted_chase_avoids_oblivious_blowup() {
    // The restricted chase's satisfaction probe is not an optimization
    // nicety: on premises whose conclusions overlap, the oblivious chase
    // materializes strictly more (hom-equivalent) facts.
    let m = SchemaMapping::parse(
        "P/1 Q/1",
        "S/2",
        &["P(x) -> exists y . S(x,y)", "Q(x) -> exists z . S(x,z)"],
    )
    .unwrap();
    let mut i = Instance::new(m.source.clone());
    for k in 0..5 {
        i.insert_consts("P", &[&format!("c{k}")]).unwrap();
        i.insert_consts("Q", &[&format!("c{k}")]).unwrap();
    }
    let restricted = m.chase(&i).unwrap();
    let oblivious = quasi_inverse::chase::chase_oblivious(&m.tgds, &i, &m.target)
        .unwrap()
        .instance;
    assert_eq!(restricted.fact_count(), 5);
    assert_eq!(oblivious.fact_count(), 10);
    assert!(hom_equivalent(&restricted, &oblivious));
}

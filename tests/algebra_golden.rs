//! Golden-file tests for the mapping-algebra subcommands: the rendered
//! `qimap recover` output (text, and JSON for every example) and the
//! `qimap contains` verdicts over the shipped example pair are pinned
//! byte-for-byte, through the real argument dispatcher.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test algebra_golden`.

use qi_cli::{run, CliError};
use std::fs;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, actual: &str) {
    let path = repo_root().join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; run with UPDATE_GOLDEN=1 to regenerate"
    );
}

/// Dispatch `qimap` against the real example files on disk.
fn qimap(args: &[&str]) -> Result<String, CliError> {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    run(&argv, |path| {
        fs::read_to_string(repo_root().join(path)).map_err(|e| CliError(format!("{path}: {e}")))
    })
}

fn example_files() -> Vec<PathBuf> {
    let dir = repo_root().join("examples/mappings");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qim"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 9,
        "expected the full example set, found {}",
        files.len()
    );
    files
}

#[test]
fn recover_output_is_pinned_for_every_example() {
    for f in example_files() {
        let stem = f.file_stem().unwrap().to_str().unwrap().to_owned();
        let rel = format!("examples/mappings/{stem}.qim");
        let text = qimap(&["recover", &rel]).unwrap();
        check_golden(&format!("{stem}.recover.txt"), &text);
        let json = qimap(&["recover", "--json", &rel]).unwrap();
        check_golden(&format!("{stem}.recover.json"), &json);
    }
}

#[test]
fn contains_verdicts_are_pinned_for_the_union_pair() {
    // `union_weak` drops the Q-side tgd of `union`, so it constrains a
    // superset of instance pairs: weak ⊇ union holds, union ⊇ weak is
    // refuted with a concrete witness (a Q-fact the weak side ignores).
    let weak = "examples/mappings/union_weak.qim";
    let full = "examples/mappings/union.qim";
    let mut out = String::new();
    for (outer, inner, tag) in [
        (weak, full, "weak_contains_union"),
        (full, weak, "union_contains_weak"),
    ] {
        out.push_str(&format!("== {tag} ==\n"));
        out.push_str(&qimap(&["contains", outer, inner]).unwrap());
    }
    check_golden("union_pair.contains.txt", &out);
    let mut js = String::new();
    for (outer, inner) in [(weak, full), (full, weak)] {
        js.push_str(&qimap(&["contains", "--json", outer, inner]).unwrap());
    }
    check_golden("union_pair.contains.json", &js);
}

#[test]
fn stats_flag_appends_without_changing_the_pinned_output() {
    // `--stats` counters vary with executor internals, so they stay out
    // of the goldens — but the flag must strictly extend the pinned
    // rendering, never perturb it.
    let rel = "examples/mappings/projection.qim";
    let plain = qimap(&["recover", rel]).unwrap();
    let with = qimap(&["--stats", "recover", rel]).unwrap();
    assert!(with.starts_with(&plain), "stats must only append lines");
    assert!(with.contains("stats:"), "{with}");
    let weak = "examples/mappings/union_weak.qim";
    let full = "examples/mappings/union.qim";
    let plain = qimap(&["contains", full, weak]).unwrap();
    let with = qimap(&["--stats", "contains", full, weak]).unwrap();
    assert!(with.starts_with(&plain), "stats must only append lines");
    assert!(with.contains("stats:"), "{with}");
}

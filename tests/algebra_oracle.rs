//! Theorem-oracle property harness for the mapping algebra: maximum
//! recoveries ([`quasi_inverse::core::recovery`]) and containment
//! ([`quasi_inverse::core::containment`]) checked against each other and
//! against brute-force referees over random s-t tgd mappings.
//!
//! Every property is a differential oracle — two independent routes to
//! the same truth value must agree:
//!
//! * the maximum-recovery construction vs the *exact* per-instance
//!   recovery check and the bounded sol-containment characterization;
//! * the QuasiInverse output vs the maximum recovery, compared by the
//!   disjunctive containment decision procedure (not syntactically);
//! * the containment engine vs exhaustive enumeration of small ground
//!   instance pairs, with every `NotContained` witness re-validated by
//!   the plain satisfaction checkers;
//! * seeded non-recovery / non-maximum candidates, which must be
//!   rejected with conclusive structured witnesses.
//!
//! Mappings come from the seeded generators of `qi-workloads` over a
//! fixed seed schedule, so every failure reproduces from the seed in the
//! assertion message. The case count defaults to 256 and is raised (the
//! nightly-style CI variant) or lowered via `PROPTEST_CASES`.

use std::sync::OnceLock;

use quasi_inverse::chase::{satisfies_all_disj_tgds, satisfies_all_tgds};
use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, random_mapping_between, rng, InstanceParams,
    MappingParams,
};
use quasi_inverse::workloads::rng::Rng64;

/// Cases per property: 256 by default, overridden by `PROPTEST_CASES`.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Small mapping shapes: arity ≤ 2 and at most two tgds with two atoms
/// per side keeps one case cheap enough to afford hundreds, while still
/// covering copies, projections, unions, joins and existential heads.
fn any_params(r: &mut Rng64) -> MappingParams {
    MappingParams {
        n_source_rels: r.random_range(1..=2),
        n_target_rels: r.random_range(1..=2),
        max_arity: 2,
        n_tgds: r.random_range(1..=2),
        lav: r.random_bool(0.3),
        full: r.random_bool(0.5),
        max_body_atoms: 2,
        max_head_atoms: 2,
    }
}

const IP: InstanceParams = InstanceParams {
    n_consts: 2,
    n_facts: 3,
};

/// Universe for the bounded verifiers: every ground instance over
/// `{a, b}` with at most one fact (≤ 9 instances at these shapes) —
/// small enough for hundreds of composition matrices, rich enough to
/// reject every seeded counterexample below.
fn tiny_universe(schema: &Schema) -> Vec<Instance> {
    ground_instances(schema, &["a", "b"], 1)
}

/// Construction options for the whole harness. A handful of seeds draw
/// mappings whose MinGen search space is pathological (tens of seconds
/// each for shapes this small); the candidate cap cuts them off with a
/// *bit-identical* trip point at every thread count — unlike a deadline
/// — so which seeds are skipped is deterministic, and [`corpus`] just
/// walks further down the seed schedule to fill the quota.
fn oracle_options() -> QuasiInverseOptions {
    QuasiInverseOptions {
        mingen: MinGenOptions {
            max_candidates: 5_000,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The shared corpus: `cases()` random mappings with their maximum
/// recoveries, computed once for the whole binary (the construction is
/// the dominant per-case cost and is itself deterministic). Entries
/// carry the generating seed for reproducible assertion messages.
fn corpus() -> &'static [(u64, SchemaMapping, ReverseMapping)] {
    static CORPUS: OnceLock<Vec<(u64, SchemaMapping, ReverseMapping)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let opts = oracle_options();
        let mut out = Vec::with_capacity(cases() as usize);
        let mut seed = 0u64;
        while (out.len() as u64) < cases() {
            let mut r = rng(seed);
            let params = any_params(&mut r);
            let m = random_mapping(&mut r, &params);
            match maximum_recovery(&m, &opts) {
                Ok(mr) => out.push((seed, m, mr)),
                // Skips must be the typed budget trip, never a panic or
                // a mangled partial surfacing as success.
                Err(CoreError::Budget(_) | CoreError::Resource(_)) => {}
                Err(e) => panic!("seed {seed}: unexpected construction error {e:?}"),
            }
            seed += 1;
            assert!(
                seed < 64 * cases().max(8),
                "runaway skip rate: {} kept after {seed} seeds",
                out.len()
            );
        }
        out
    })
}

/// An RNG stream for per-case instances, decorrelated from the stream
/// that drew the mapping shape.
fn instance_rng(seed: u64) -> Rng64 {
    rng(0x5eed_0000 ^ seed)
}

#[test]
fn maximum_recovery_is_a_recovery() {
    // (I, I) ∈ Inst(m ∘ mr) for every source instance — checked by the
    // exact Proposition 6.6 membership test on random ground instances
    // larger than the bounded universes below.
    for (seed, m, mr) in corpus() {
        let mut r = instance_rng(*seed);
        for _ in 0..2 {
            let i = random_ground_instance(&m.source, &mut r, &IP);
            assert!(
                is_recovery_on(m, mr, &i).unwrap(),
                "seed {seed}: (I, I) ∉ Inst(m ∘ mr) at I = {i}"
            );
        }
    }
}

#[test]
fn maximum_recovery_satisfies_the_sol_containment_characterization() {
    // Maximality: (I₁, I₂) ∈ Inst(m ∘ mr) ⟺ Sol(m, I₂) ⊆ Sol(m, I₁) —
    // exhaustively over the tiny universe, then on a random pair beyond
    // it (both sides of the comparison are exact per pair).
    for (seed, m, mr) in corpus() {
        let universe = tiny_universe(&m.source);
        let rec = is_recovery_bounded(m, mr, &universe).unwrap();
        assert!(
            rec.holds,
            "seed {seed}: recovery failures {:?}",
            rec.failures
        );
        let max = is_maximum_recovery_bounded(m, mr, &universe).unwrap();
        assert!(max.holds, "seed {seed}: mismatches {:?}", max.mismatches);
        let mut r = instance_rng(*seed);
        let i1 = random_ground_instance(&m.source, &mut r, &IP);
        let i2 = random_ground_instance(&m.source, &mut r, &IP);
        assert_eq!(
            composition_contains(m, mr, &i1, &i2).unwrap(),
            solutions_subset(m, &i2, &i1).unwrap(),
            "seed {seed}: characterization fails at ({i1}; {i2})"
        );
    }
}

#[test]
fn quasi_inverse_output_is_contained_in_the_maximum_recovery() {
    // The QuasiInverse construction *is* the maximum-recovery
    // construction, so containment must hold in both directions — and
    // the check is a genuine run of the disjunctive decision procedure
    // (equality-type enumeration plus disjunctive chases), which makes
    // this a self-consistency oracle for `reverse_contains` on exactly
    // the dependency shapes the algorithms emit.
    for (seed, m, mr) in corpus() {
        let qi = compute_quasi_inverse(m, &oracle_options()).unwrap();
        assert!(
            reverse_contains(mr, &qi).unwrap().holds(),
            "seed {seed}: Inst(qi) ⊄ Inst(mr)"
        );
        assert!(
            reverse_contains(&qi, mr).unwrap().holds(),
            "seed {seed}: Inst(mr) ⊄ Inst(qi)"
        );
    }
}

#[test]
fn forward_containment_is_reflexive_monotone_and_transitive() {
    for (seed, m, _mr) in corpus() {
        let mut r = instance_rng(*seed);
        let params = any_params(&mut r);
        assert!(
            mapping_contains(m, m).unwrap().holds(),
            "seed {seed}: reflexivity"
        );
        // Adding tgds strengthens a mapping — Inst shrinks — so the
        // original contains every extension, and extension chains give
        // guaranteed-true instances of transitivity.
        let extra = random_mapping_between(&mut r, &m.source, &m.target, &params);
        let stronger = SchemaMapping::new(
            m.source.clone(),
            m.target.clone(),
            [m.tgds.clone(), extra.tgds.clone()].concat(),
        )
        .unwrap();
        let more = random_mapping_between(&mut r, &m.source, &m.target, &params);
        let strongest = SchemaMapping::new(
            m.source.clone(),
            m.target.clone(),
            [stronger.tgds.clone(), more.tgds.clone()].concat(),
        )
        .unwrap();
        assert!(
            mapping_contains(m, &stronger).unwrap().holds(),
            "seed {seed}: strengthening"
        );
        assert!(
            mapping_contains(&stronger, &strongest).unwrap().holds(),
            "seed {seed}: strengthening"
        );
        assert!(
            mapping_contains(m, &strongest).unwrap().holds(),
            "seed {seed}: transitivity along the chain"
        );
        // Generic transitivity over an unconstrained triple: every
        // ordered pair is decided, then the closure must be consistent.
        let ms = [m, &extra, &more];
        let mut holds = [[false; 3]; 3];
        for (i, a) in ms.iter().enumerate() {
            for (j, b) in ms.iter().enumerate() {
                holds[i][j] = mapping_contains(a, b).unwrap().holds();
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    if holds[i][j] && holds[j][k] {
                        assert!(holds[i][k], "seed {seed}: transitivity {i}->{j}->{k}");
                    }
                }
            }
        }
    }
}

#[test]
fn forward_containment_agrees_with_the_brute_force_referee() {
    // The referee enumerates every pair of ground instances with ≤ 2
    // facts per side and checks satisfaction directly. Any ground
    // counterexample forces `NotContained`; `Contained` forbids ground
    // counterexamples; and a `NotContained` witness (which may involve
    // nulls the referee cannot see) must self-validate.
    for (seed, m, _mr) in corpus() {
        let mut r = instance_rng(*seed);
        let params = any_params(&mut r);
        let other = random_mapping_between(&mut r, &m.source, &m.target, &params);
        let src_u = ground_instances(&m.source, &["a", "b"], 2);
        let tgt_u = ground_instances(&m.target, &["a", "b"], 2);
        for (outer, inner) in [(m, &other), (&other, m)] {
            let verdict = mapping_contains(outer, inner).unwrap();
            let ground = src_u.iter().enumerate().find_map(|(i, s)| {
                tgt_u
                    .iter()
                    .position(|t| {
                        satisfies_all_tgds(s, t, &inner.tgds)
                            && !satisfies_all_tgds(s, t, &outer.tgds)
                    })
                    .map(|j| (i, j))
            });
            match &verdict {
                ContainmentVerdict::Contained => assert!(
                    ground.is_none(),
                    "seed {seed}: engine says contained, referee found pair {ground:?}"
                ),
                ContainmentVerdict::NotContained(w) => {
                    assert!(
                        satisfies_all_tgds(&w.premise, &w.solution, &inner.tgds),
                        "seed {seed}: witness does not satisfy the inner mapping"
                    );
                    assert!(
                        !satisfies_all_tgds(&w.premise, &w.solution, &outer.tgds),
                        "seed {seed}: witness does not violate the outer mapping"
                    );
                }
            }
            if ground.is_some() {
                assert!(
                    !verdict.holds(),
                    "seed {seed}: referee counterexample {ground:?} but engine disagrees"
                );
            }
        }
    }
}

#[test]
fn sigma_star_is_containment_equivalent_to_sigma() {
    // Σ* consists of logical consequences of Σ that in turn imply Σ (the
    // equality-type instances of Σ are members), so the containment
    // engine must declare Σ and Σ* equivalent — a cross-oracle between
    // the Σ* construction and the chase-based decision procedure.
    for (seed, m, _mr) in corpus() {
        let star = SchemaMapping::new(
            m.source.clone(),
            m.target.clone(),
            sigma_star(&m.tgds).unwrap(),
        )
        .unwrap();
        assert!(
            mapping_equivalent(m, &star).unwrap(),
            "seed {seed}: Σ* is not containment-equivalent to Σ"
        );
    }
}

#[test]
fn reverse_containment_agrees_with_the_brute_force_referee() {
    // Dropping disjuncts from a dependency strengthens a reverse
    // mapping, so the original must contain the truncation; both
    // directions are then replayed against exhaustive enumeration of
    // small ground pairs, with witnesses re-validated.
    let mut exercised = 0u64;
    for (seed, m, mr) in corpus() {
        let Some(k) = mr.deps.iter().position(|d| d.disjuncts.len() > 1) else {
            continue;
        };
        exercised += 1;
        let mut deps = mr.deps.clone();
        deps[k].disjuncts.truncate(1);
        let stronger = ReverseMapping::new(m.target.clone(), m.source.clone(), deps).unwrap();
        assert!(
            reverse_contains(mr, &stronger).unwrap().holds(),
            "seed {seed}: truncation is not contained in the original"
        );
        let from_u = tiny_universe(&m.target);
        let to_u = tiny_universe(&m.source);
        for (outer, inner) in [(mr, &stronger), (&stronger, mr)] {
            let verdict = reverse_contains(outer, inner).unwrap();
            let ground = from_u.iter().enumerate().find_map(|(i, j)| {
                to_u.iter()
                    .position(|s| {
                        satisfies_all_disj_tgds(j, s, &inner.deps)
                            && !satisfies_all_disj_tgds(j, s, &outer.deps)
                    })
                    .map(|jj| (i, jj))
            });
            match &verdict {
                ContainmentVerdict::Contained => assert!(
                    ground.is_none(),
                    "seed {seed}: engine says contained, referee found pair {ground:?}"
                ),
                ContainmentVerdict::NotContained(w) => {
                    assert!(
                        satisfies_all_disj_tgds(&w.premise, &w.solution, &inner.deps),
                        "seed {seed}: witness does not satisfy the inner mapping"
                    );
                    assert!(
                        !satisfies_all_disj_tgds(&w.premise, &w.solution, &outer.deps),
                        "seed {seed}: witness does not violate the outer mapping"
                    );
                }
            }
            if ground.is_some() {
                assert!(!verdict.holds(), "seed {seed}: referee beats the engine");
            }
        }
    }
    assert!(
        exercised >= cases() / 8,
        "generator drift: only {exercised} multi-disjunct cases"
    );
}

#[test]
fn non_recovery_and_non_maximum_candidates_are_rejected() {
    // A fixed counterexample first: the transposed copy is not a
    // recovery, and the containment engine separates it from the true
    // maximum recovery with a self-validating witness.
    let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
    let wrong = ReverseMapping::parse(&m, &["Q(x,y) & const(x) & const(y) -> P(y,x)"]).unwrap();
    let universe = tiny_universe(&m.source);
    let rec = is_recovery_bounded(&m, &wrong, &universe).unwrap();
    assert!(!rec.holds);
    for &i in &rec.failures {
        // Each reported failure is confirmed by the exact check.
        assert!(!is_recovery_on(&m, &wrong, &universe[i]).unwrap());
    }
    let mr = maximum_recovery(&m, &QuasiInverseOptions::default()).unwrap();
    let verdict = reverse_contains(&wrong, &mr).unwrap();
    let w = verdict.witness().expect("Inst(mr) ⊄ Inst(transposed copy)");
    assert!(satisfies_all_disj_tgds(&w.premise, &w.solution, &mr.deps));
    assert!(!satisfies_all_disj_tgds(
        &w.premise,
        &w.solution,
        &wrong.deps
    ));

    // Then per seed: the empty reverse mapping is always a recovery
    // (Inst(m ∘ ∅) is the full relation) and is a *maximum* recovery
    // exactly when the mapping's solution spaces cannot distinguish any
    // universe pair — so rejection must coincide with distinguishability
    // and every mismatch must be conclusively confirmed.
    let mut rejected = 0u64;
    for (seed, m, _mr) in corpus() {
        let universe = tiny_universe(&m.source);
        let empty = ReverseMapping::new(m.target.clone(), m.source.clone(), vec![]).unwrap();
        let rec = is_recovery_bounded(m, &empty, &universe).unwrap();
        assert!(rec.holds, "seed {seed}: ∅ must recover everything");
        let distinguishes = universe
            .iter()
            .any(|a| universe.iter().any(|b| !solutions_subset(m, b, a).unwrap()));
        let max = is_maximum_recovery_bounded(m, &empty, &universe).unwrap();
        assert_eq!(
            max.holds, !distinguishes,
            "seed {seed}: rejection must coincide with sol-space distinguishability"
        );
        if !max.holds {
            rejected += 1;
            let (i1, i2) = max.mismatches[0];
            assert!(
                !solutions_subset(m, &universe[i2], &universe[i1]).unwrap(),
                "seed {seed}: mismatch ({i1}, {i2}) is not a real witness"
            );
        }
    }
    assert!(
        rejected >= cases() / 4,
        "generator drift: only {rejected} distinguishing mappings"
    );
}

#[test]
fn verdicts_are_identical_across_thread_counts() {
    // The determinism contract extends to the new algebra: recoveries,
    // containment verdicts and bounded reports are byte-identical at
    // threads 1, 4 and auto. (The CI matrix additionally reruns the
    // whole harness under `QI_THREADS=1/4`; this test flips the
    // in-process override, which takes precedence over the variable.)
    let n = (cases() as usize).min(16);
    let signature = |threads: usize| -> String {
        set_global_threads(threads);
        let mut out = String::new();
        for (seed, _, _) in &corpus()[..n] {
            let mut r = rng(*seed);
            let params = any_params(&mut r);
            let m = random_mapping(&mut r, &params);
            // Recomputed from scratch at each setting — the candidate
            // cap's trip point is part of the determinism contract too.
            let mr = maximum_recovery(&m, &oracle_options()).unwrap();
            for d in &mr.deps {
                out.push_str(&d.to_string());
                out.push('\n');
            }
            let params2 = any_params(&mut r);
            let other = random_mapping_between(&mut r, &m.source, &m.target, &params2);
            out.push_str(&format!("{:?}\n", mapping_contains(&m, &other).unwrap()));
            let max = is_maximum_recovery_bounded(&m, &mr, &tiny_universe(&m.source)).unwrap();
            out.push_str(&format!("{} {:?}\n", max.holds, max.mismatches));
        }
        out
    };
    let base = signature(1);
    for threads in [4, 0] {
        assert_eq!(signature(threads), base, "threads {threads}");
    }
    set_global_threads(0);
}

//! The static analyzer end to end: termination certificates really
//! bound the target chase, witness cycles are named in QI011, and the
//! core algorithms reject out-of-fragment inputs through the same
//! diagnostic vocabulary.

use quasi_inverse::analyze::{analyze_text, weak_acyclicity_diagnostic, Code, Severity};
use quasi_inverse::chase::{
    ExchangeSetting, TargetChaseOptions, TargetChaseResult, FALLBACK_MAX_STEPS,
};
use quasi_inverse::core::CoreError;
use quasi_inverse::lang::{parse_egd, parse_tgd};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};

/// Run the target chase with the default (certificate-derived) budget
/// and assert the certified bound was honoured with room to spare.
fn assert_certified_run(setting: &ExchangeSetting, i: &Instance, t: &Schema, ctx: &str) {
    let (result, stats) =
        chase_with_target_deps_stats(setting, i, t, TargetChaseOptions::default()).unwrap();
    assert!(
        matches!(result, TargetChaseResult::Solution(_)),
        "{ctx}: expected a solution"
    );
    assert!(
        stats.certified,
        "{ctx}: budget should come from a certificate"
    );
    assert!(
        stats.steps <= stats.budget,
        "{ctx}: certified budget exceeded ({} > {})",
        stats.steps,
        stats.budget
    );
}

#[test]
fn certified_budget_is_never_exceeded_on_transitive_closure() {
    let s = Schema::parse("E0/2").unwrap();
    let t = Schema::parse("E/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "E0(x,y) -> E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "E(x,y) & E(y,z) -> E(x,z)").unwrap()],
        egds: vec![],
    };
    // A chain maximises closure work relative to the input size.
    let i = Instance::parse(&s, "E0(a,b) E0(b,c) E0(c,d) E0(d,e) E0(e,f)").unwrap();
    assert_certified_run(&setting, &i, &t, "closure chain");
}

#[test]
fn certified_budget_is_never_exceeded_on_the_employee_setting() {
    // Mirror of tests/target_dependencies.rs: existential st-tgd, a
    // closure target tgd, and a key egd.
    let s = Schema::parse("EmpSrc/2 Boss/2").unwrap();
    let t = Schema::parse("Emp/2 Reports/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![
            parse_tgd(&s, &t, "EmpSrc(id,name) -> Emp(id,name)").unwrap(),
            parse_tgd(&s, &t, "Boss(e,b) -> Reports(e,b)").unwrap(),
            parse_tgd(&s, &t, "Boss(e,b) -> exists n . Emp(b,n)").unwrap(),
        ],
        target_tgds: vec![
            parse_tgd(&t, &t, "Reports(e,b) & Reports(b,c) -> Reports(e,c)").unwrap(),
        ],
        egds: vec![parse_egd(&t, "Emp(id,n1) & Emp(id,n2) -> n1 = n2").unwrap()],
    };
    let i = Instance::parse(
        &s,
        "EmpSrc(e1,ana) EmpSrc(e2,bo) EmpSrc(e3,cy) Boss(e1,e2) Boss(e2,e3)",
    )
    .unwrap();
    assert_certified_run(&setting, &i, &t, "employee setting");
}

#[test]
fn certified_budget_is_never_exceeded_on_random_settings() {
    // Random s-t mappings with copy-closure target tgds per binary
    // target relation (the same construction the substrate property
    // tests use); every weakly acyclic draw must chase within its
    // certificate-derived budget.
    let ip = InstanceParams {
        n_consts: 3,
        n_facts: 4,
    };
    for seed in 0..16 {
        let mut r = rng(seed);
        let m = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                ..Default::default()
            },
        );
        let binary: Vec<_> = m
            .target
            .rel_ids()
            .filter(|&rel| m.target.arity(rel) == 2)
            .collect();
        let mut target_tgds = Vec::new();
        for rel in binary {
            let name = m.target.name(rel).to_owned();
            target_tgds.push(
                parse_tgd(
                    &m.target,
                    &m.target,
                    &format!("{name}(x,y) & {name}(y,z) -> {name}(x,z)"),
                )
                .unwrap(),
            );
        }
        let setting = ExchangeSetting {
            st_tgds: m.tgds.clone(),
            target_tgds,
            egds: vec![],
        };
        let i = random_ground_instance(&m.source, &mut r, &ip);
        assert_certified_run(&setting, &i, &m.target, &format!("seed {seed}"));
    }
}

#[test]
fn non_weakly_acyclic_tgds_fall_back_to_the_fixed_budget() {
    // `B.2 ~> B.2` is a special-edge cycle (not weakly acyclic, so no
    // certificate), yet this particular chase terminates at once: the
    // s-t tgds never produce a `B` fact, so the runaway tgd is vacuous.
    // The stats must still show the uncertified fallback budget.
    let s = Schema::parse("S0/1").unwrap();
    let t = Schema::parse("A/1 B/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "S0(x) -> A(x)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "B(x,y) -> exists z . B(y,z)").unwrap()],
        egds: vec![],
    };
    let i = Instance::parse(&s, "S0(a)").unwrap();
    let (result, stats) =
        chase_with_target_deps_stats(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    assert!(matches!(result, TargetChaseResult::Solution(_)));
    assert!(!stats.certified);
    assert_eq!(stats.budget, FALLBACK_MAX_STEPS);

    // A genuinely non-terminating tgd trips an explicit budget.
    let t2 = Schema::parse("E/2").unwrap();
    let runaway = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t2, "S0(x) -> exists y . E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t2, &t2, "E(x,y) -> exists z . E(y,z)").unwrap()],
        egds: vec![],
    };
    let err = chase_with_target_deps_stats(
        &runaway,
        &i,
        &t2,
        TargetChaseOptions {
            max_steps: Some(200),
            ..Default::default()
        },
    )
    .expect_err("the non-terminating tgd must exhaust the budget");
    assert!(err.to_string().contains("200"), "error: {err}");
}

#[test]
fn qi011_names_the_paper_cycle() {
    // The canonical non-terminating target tgd: E.2 feeds a fresh
    // existential back into E.2 through a special edge.
    let t = Schema::parse("E/2").unwrap();
    let tgd = parse_tgd(&t, &t, "E(x,y) -> exists z . E(y,z)").unwrap();
    let d = weak_acyclicity_diagnostic(std::slice::from_ref(&tgd)).expect("not weakly acyclic");
    assert_eq!(d.code, Code::Qi011);
    assert_eq!(d.code.severity(), Severity::Warning);
    assert!(d.message.contains("E.2 ~> E.2"), "message: {}", d.message);

    // And through the file front end, where it also gets a span.
    let analysis = analyze_text(
        "source: S0/1\n\
         target: E/2\n\
         tgd: S0(x) -> exists y . E(x,y)\n\
         target-tgd: E(x,y) -> exists z . E(y,z)\n",
    );
    let qi011 = analysis
        .diagnostics
        .items
        .iter()
        .find(|d| d.code == Code::Qi011)
        .expect("QI011 fires via analyze_text");
    assert!(qi011.message.contains("E.2 ~> E.2"));
    assert!(
        analysis.certificate.is_none(),
        "no certificate without weak acyclicity"
    );
}

#[test]
fn quasi_inverse_lav_rejects_with_qi012() {
    let m = SchemaMapping::parse("P/2 R/2", "Q/2", &["P(x,y) & R(y,z) -> Q(x,z)"]).unwrap();
    let err = quasi_inverse_lav(&m).expect_err("not LAV");
    let CoreError::Rejected(d) = &err else {
        panic!("expected Rejected, got {err:?}");
    };
    assert_eq!(d.code, Code::Qi012);
    assert!(d.message.contains("R(y,z)"), "message: {}", d.message);
    assert!(err.to_string().starts_with("rejected [QI012]"));
}

#[test]
fn quasi_inverse_full_rejects_with_qi013() {
    let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> exists z . Q(x,z)"]).unwrap();
    let err = quasi_inverse_full(&m, &QuasiInverseOptions::default()).expect_err("not full");
    let CoreError::Rejected(d) = &err else {
        panic!("expected Rejected, got {err:?}");
    };
    assert_eq!(d.code, Code::Qi013);
    assert!(d.message.contains('z'), "message: {}", d.message);
    assert!(err.to_string().starts_with("rejected [QI013]"));
}

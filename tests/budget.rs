//! Resource budgets and cooperative cancellation: the exponential search
//! paths (chase, disjunctive chase, MinGen, QuasiInverse) stop at the
//! next checkpoint when a wall-clock deadline, task cap, fact cap, or
//! cancellation flag trips — surfacing a structured `ResourceError`
//! carrying a *sound* partial artifact, never a panic or a hang — while
//! runs that complete under budget stay byte-identical to unbudgeted
//! runs at every thread count (see DESIGN.md, "Resource budgets and
//! graceful degradation").
//!
//! Also home to the regression tests for the two latent bugs found in
//! the same audit: the `HomCache` probe-key namespace collision and
//! `ExecStats::absorb` conflating unrelated worker indexes.

use quasi_inverse::chase::{
    chase_with_target_deps, ChaseError, ChasePartial, ExchangeSetting, TargetChaseOptions,
};
use quasi_inverse::core::CoreError;
use quasi_inverse::exec::{Budget, Exceeded};
use quasi_inverse::prelude::*;
use quasi_inverse::schema::HomCache;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A non-weakly-acyclic setting whose target chase never terminates:
/// every `E`-edge demands a fresh successor, so the chase grows a chain
/// of nulls forever. The analyzer rightly refuses a termination
/// certificate for it; only a resource budget can stop it.
fn adversarial_setting() -> (ExchangeSetting, Schema, Instance) {
    let s = Schema::parse("S0/1").unwrap();
    let t = Schema::parse("E/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "S0(x) -> exists y . E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "E(x,y) -> exists z . E(y,z)").unwrap()],
        egds: vec![],
    };
    let i = Instance::parse(&s, "S0(a)").unwrap();
    (setting, t, i)
}

/// A terminating closure workload with a known resource shape: the
/// transitive closure of a 6-node chain (5 copied edges + 10 derived).
fn closure_setting() -> (ExchangeSetting, Schema, Instance) {
    let s = Schema::parse("E0/2").unwrap();
    let t = Schema::parse("E/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "E0(x,y) -> E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "E(x,y) & E(y,z) -> E(x,z)").unwrap()],
        egds: vec![],
    };
    let i = Instance::parse(&s, "E0(a,b) E0(b,c) E0(c,d) E0(d,e) E0(e,f)").unwrap();
    (setting, t, i)
}

fn options_with(parallelism: Parallelism, budget: Budget) -> TargetChaseOptions {
    TargetChaseOptions {
        // Lift the analyzer's step-count safety net well out of the way
        // so the *resource* budget is what stops the chase.
        max_steps: Some(100_000_000),
        parallelism,
        budget,
        ..Default::default()
    }
}

fn expect_resource(err: ChaseError) -> quasi_inverse::chase::ResourceError {
    match err {
        ChaseError::Resource(r) => *r,
        other => panic!("expected a structured resource error, got: {other}"),
    }
}

#[test]
fn adversarial_deadline_returns_structured_error_in_bounded_time() {
    let (setting, t, i) = adversarial_setting();
    let deadline = Duration::from_millis(100);
    for (label, par) in [
        ("1", Parallelism::sequential()),
        ("4", Parallelism::fixed(4)),
        ("auto", Parallelism::auto()),
    ] {
        let budget = Budget::unlimited().with_deadline(deadline);
        let start = Instant::now();
        let err = chase_with_target_deps(&setting, &i, &t, options_with(par, budget.clone()))
            .unwrap_err();
        let elapsed = start.elapsed();
        // The acceptance bound: checks are per round and per trigger, so
        // the chase must notice the expired deadline promptly.
        assert!(
            elapsed < deadline * 2,
            "threads {label}: took {elapsed:?} against a {deadline:?} deadline"
        );
        let r = expect_resource(err);
        assert_eq!(r.exceeded, Exceeded::Deadline, "threads {label}");
        match &r.partial {
            ChasePartial::Instance(inst) => {
                // The partial is the chain built so far — the st-stage
                // fact at minimum, every fact a genuine chase step.
                assert!(inst.fact_count() >= 1, "threads {label}");
            }
            other => panic!("threads {label}: expected a partial instance, got {other:?}"),
        }
        assert!(budget.tasks_charged() > 0, "threads {label}");
    }
}

#[test]
fn cancellation_flag_stops_the_chase_promptly() {
    let (setting, t, i) = adversarial_setting();
    // Pre-cancelled: the very first checkpoint must surface it.
    let flag = Arc::new(AtomicBool::new(true));
    let budget = Budget::unlimited().with_cancel(Arc::clone(&flag));
    let start = Instant::now();
    let err = chase_with_target_deps(&setting, &i, &t, options_with(Parallelism::auto(), budget))
        .unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5));
    assert_eq!(expect_resource(err).exceeded, Exceeded::Cancelled);
}

#[test]
fn max_facts_boundary_exactly_at_and_one_below_the_true_count() {
    let (setting, t, i) = closure_setting();
    // Measure the true resource shape with a never-tripping budget (the
    // pool is charged end-to-end across the s-t stage and every round).
    let probe = Budget::unlimited().with_max_facts(1_000_000);
    let full = match chase_with_target_deps(
        &setting,
        &i,
        &t,
        options_with(Parallelism::auto(), probe.clone()),
    )
    .unwrap()
    {
        quasi_inverse::chase::TargetChaseResult::Solution(u) => u,
        other => panic!("unexpected: {other:?}"),
    };
    let true_count = probe.facts_charged();
    assert_eq!(true_count, 15, "5 copied edges + 10 closure edges");

    // Exactly at the true count: the cap is inclusive, so the chase
    // completes — byte-identically to the unbudgeted run.
    let at = Budget::unlimited().with_max_facts(true_count);
    let out =
        chase_with_target_deps(&setting, &i, &t, options_with(Parallelism::auto(), at)).unwrap();
    match out {
        quasi_inverse::chase::TargetChaseResult::Solution(u) => {
            assert_eq!(u.to_string(), full.to_string())
        }
        other => panic!("unexpected: {other:?}"),
    }

    // One below: a structured trip whose partial is a sound subset of
    // the full run's facts (the final step may overshoot the cap by its
    // delta, so the subset need not be strict — but nothing unsound is
    // ever committed).
    let below = Budget::unlimited().with_max_facts(true_count - 1);
    let err = chase_with_target_deps(&setting, &i, &t, options_with(Parallelism::auto(), below))
        .unwrap_err();
    let r = expect_resource(err);
    assert_eq!(r.exceeded, Exceeded::Facts);
    match &r.partial {
        ChasePartial::Instance(inst) => {
            assert!(inst.is_subinstance_of(&full).unwrap());
        }
        other => panic!("expected a partial instance, got {other:?}"),
    }

    // A genuinely tight cap trips mid-run with a strict subset.
    let tight = Budget::unlimited().with_max_facts(7);
    let err = chase_with_target_deps(&setting, &i, &t, options_with(Parallelism::auto(), tight))
        .unwrap_err();
    let r = expect_resource(err);
    assert_eq!(r.exceeded, Exceeded::Facts);
    match &r.partial {
        ChasePartial::Instance(inst) => {
            assert!(inst.fact_count() < full.fact_count());
            assert!(inst.is_subinstance_of(&full).unwrap());
        }
        other => panic!("expected a partial instance, got {other:?}"),
    }
}

#[test]
fn under_budget_runs_are_byte_identical_at_every_thread_count() {
    let (setting, t, i) = closure_setting();
    let unbudgeted =
        chase_with_target_deps(&setting, &i, &t, TargetChaseOptions::default()).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let ample = Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .with_max_tasks(1_000_000)
            .with_max_facts(1_000_000);
        let out = chase_with_target_deps(
            &setting,
            &i,
            &t,
            options_with(Parallelism::fixed(threads), ample),
        )
        .unwrap();
        assert_eq!(out, unbudgeted, "threads {threads}");
    }
}

#[test]
fn task_budget_trips_the_standard_chase_without_panicking() {
    let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
    let i = Instance::parse(&m.source, "P(a,b,c) P(d,e,f)").unwrap();
    // A zero-task budget trips before the first enumeration task.
    let budget = Budget::unlimited().with_max_tasks(0);
    let err = m.chase_budgeted(&i, &budget).unwrap_err();
    assert_eq!(expect_resource(err).exceeded, Exceeded::Tasks);
    // An ample budget is transparent.
    let ample = Budget::unlimited().with_max_tasks(1_000_000);
    assert_eq!(
        m.chase_budgeted(&i, &ample).unwrap().to_string(),
        m.chase(&i).unwrap().to_string()
    );
}

#[test]
fn quasi_inverse_inherits_the_entry_point_budget() {
    let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
    // An already-expired deadline: the whole pipeline (MinGen candidate
    // loop included) must surface a structured resource error.
    let options = QuasiInverseOptions {
        budget: Budget::unlimited().with_deadline(Duration::ZERO),
        ..Default::default()
    };
    let start = Instant::now();
    let err = quasi_inverse::core::quasi_inverse(&m, &options).unwrap_err();
    assert!(start.elapsed() < Duration::from_secs(5));
    match err {
        CoreError::Resource(r) => assert_eq!(r.exceeded, Exceeded::Deadline),
        other => panic!("expected a resource error, got: {other}"),
    }
    // Unlimited budget: unchanged output.
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    assert!(!rev.deps.is_empty());
}

#[test]
fn bounded_verification_is_interruptible() {
    let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let universe = quasi_inverse::core::enumerate::ground_instances(&m.source, &["a", "b"], 2);
    let budget = Budget::unlimited().with_deadline(Duration::ZERO);
    let err = quasi_inverse::core::is_quasi_inverse_bounded_budgeted(&m, &rev, &universe, &budget)
        .unwrap_err();
    match err {
        CoreError::Resource(r) => assert_eq!(r.exceeded, Exceeded::Deadline),
        other => panic!("expected a resource error, got: {other}"),
    }
    // The budgeted entry point with no limits agrees with the plain one.
    let a = quasi_inverse::core::is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
    let b = quasi_inverse::core::is_quasi_inverse_bounded_budgeted(
        &m,
        &rev,
        &universe,
        &Budget::unlimited(),
    )
    .unwrap();
    assert_eq!(a.holds, b.holds);
    assert_eq!(a.mismatches, b.mismatches);
}

/// Regression: `HomCache` probe keys used to share one answer table
/// with the hom-membership cache, whose keys were `"hom|{fingerprint}"`
/// strings — a caller-chosen probe key of that shape silently read the
/// hom cache's booleans. Pre-fix, the forged probe below never ran its
/// closure and returned the hom cache's `true`.
#[test]
fn homcache_probe_keys_cannot_alias_hom_entries() {
    let s = Schema::parse("P/1").unwrap();
    let a = Instance::parse(&s, "P(c)").unwrap();
    let cache = HomCache::new();
    assert!(cache.has_hom(&a, &a), "identity hom exists");
    let forged = format!("hom|{}", a.store().fingerprint());
    let ran = AtomicBool::new(false);
    let answer = cache.probe(&forged, &a, || {
        ran.store(true, Ordering::Relaxed);
        false
    });
    assert!(ran.load(Ordering::Relaxed), "the probe closure must run");
    assert!(!answer, "the probe must report its own answer");
    // The hom entry itself is unharmed.
    assert!(cache.has_hom(&a, &a));
}

/// Regression: `ExecStats::absorb` used to sum `per_worker` loads
/// element-wise across runs with different worker counts, crediting a
/// sequential run's whole load to worker 0 of a wider layout —
/// `utilization()` after such a merge reported ≈ 0.28 for two perfectly
/// balanced runs.
#[test]
fn execstats_absorb_reports_meaningful_utilization_across_layouts() {
    let mut wide = ExecStats {
        workers: 4,
        tasks: 12,
        max_load: 3,
        capacity: 12,
        ..Default::default()
    };
    let sequential = ExecStats {
        workers: 1,
        tasks: 100,
        max_load: 100,
        capacity: 100,
        ..Default::default()
    };
    wide.absorb(&sequential);
    assert_eq!(wide.workers, 4);
    assert_eq!(wide.tasks, 112);
    assert_eq!(
        wide.utilization(),
        1.0,
        "two balanced runs must merge balanced"
    );
}

//! Property-level validation of the composition operator (experiment
//! E12): on random (full, arbitrary) mapping pairs, the syntactic
//! composition produced by `compose` agrees with chase-based membership
//! in `Inst(M12 ∘ M23)` on random instance pairs. Seed-scheduled random
//! inputs; failures reproduce from the seed in the assertion message.

use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, random_mapping_between, rng, InstanceParams,
    MappingParams,
};

const CASES: u64 = 20;

#[test]
fn compose_agrees_with_membership() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                n_tgds: 2,
                max_arity: 2,
                ..Default::default()
            },
        );
        let composed = compose(&m12, &m23, &Default::default()).unwrap();
        let ip = InstanceParams {
            n_consts: 2,
            n_facts: 3,
        };
        for _ in 0..4 {
            let i = random_ground_instance(&m12.source, &mut r, &ip);
            let k = random_ground_instance(&m23.target, &mut r, &ip);
            let direct = quasi_inverse::chase::satisfies_all_tgds(&i, &k, &composed.tgds);
            let via_chase = composition_membership(&m12, &m23, &i, &k).unwrap();
            assert_eq!(
                direct, via_chase,
                "seed {seed}: I = {i}, K = {k}\n{composed}"
            );
        }
    }
}

#[test]
fn composed_chase_equals_two_hop_chase_up_to_hom() {
    for seed in 0..CASES {
        // chase_{M13}(I) and chase_{M23}(chase_{M12}(I)) are both
        // universal solutions of the composition, hence hom-equivalent.
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                n_tgds: 2,
                max_arity: 2,
                ..Default::default()
            },
        );
        let composed = compose(&m12, &m23, &Default::default()).unwrap();
        let i = random_ground_instance(
            &m12.source,
            &mut r,
            &InstanceParams {
                n_consts: 2,
                n_facts: 4,
            },
        );
        let one_hop = composed.chase(&i).unwrap();
        let two_hop = m23.chase(&m12.chase(&i).unwrap()).unwrap();
        assert!(
            hom_equivalent(&one_hop, &two_hop),
            "seed {seed}: I = {i}\none: {one_hop}\ntwo: {two_hop}"
        );
    }
}

/// Composition is associative up to logical equivalence:
/// `(M12 ∘ M23) ∘ M34 ≡ M12 ∘ (M23 ∘ M34)`, checked by the containment
/// engine rather than on sampled instances. The two full prefixes keep
/// every `compose` call inside the supported (full, arbitrary) fragment.
/// Swept over worker counts: containment chases must not depend on the
/// executor's parallelism.
#[test]
fn composition_is_associative_under_containment() {
    // A hard candidate cap makes the skip set deterministic: the trip
    // point is bit-identical at every worker count, unlike a deadline.
    let opts = MinGenOptions {
        max_candidates: 20_000,
        ..Default::default()
    };
    // Pre-select the seeds whose three-way composition fits the budget
    // so every thread setting exercises the identical corpus.
    let triple = |seed: u64| {
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                n_tgds: 2,
                max_head_atoms: 1,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Mid0/2 Mid1/1").unwrap(),
            &MappingParams {
                full: true,
                n_tgds: 1,
                max_arity: 2,
                max_head_atoms: 1,
                ..Default::default()
            },
        );
        let m34 = random_mapping_between(
            &mut r,
            &m23.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                n_tgds: 1,
                max_arity: 2,
                ..Default::default()
            },
        );
        (m12, m23, m34)
    };
    for &threads in &[1usize, 4, 0] {
        set_global_threads(threads);
        let mut exercised = 0u64;
        for seed in 0..2 * CASES {
            let (m12, m23, m34) = triple(seed);
            let left = match compose(&m12, &m23, &opts).and_then(|m13| compose(&m13, &m34, &opts)) {
                Ok(m) => m,
                Err(CoreError::Budget(_)) => continue,
                Err(e) => panic!("seed {seed}: {e}"),
            };
            let right = match compose(&m23, &m34, &opts).and_then(|m24| compose(&m12, &m24, &opts))
            {
                Ok(m) => m,
                Err(CoreError::Budget(_)) => continue,
                Err(e) => panic!("seed {seed}: {e}"),
            };
            assert!(
                mapping_equivalent(&left, &right).unwrap(),
                "seed {seed}, threads {threads}:\nleft: {left}\nright: {right}"
            );
            exercised += 1;
        }
        assert!(
            exercised >= CASES,
            "budget skips starved the associativity property: {exercised} cases"
        );
    }
    set_global_threads(0);
}

/// The identity mapping is a two-sided unit for composition up to
/// logical equivalence: `id ∘ M ≡ M ≡ M ∘ id`, decided by the
/// containment checker (both directions of each equivalence). Swept over
/// worker counts like the associativity property.
#[test]
fn identity_is_a_unit_for_composition_under_containment() {
    for &threads in &[1usize, 4, 0] {
        set_global_threads(threads);
        for seed in 0..CASES {
            let mut r = rng(seed);
            let m = random_mapping(
                &mut r,
                &MappingParams {
                    full: true,
                    max_arity: 2,
                    n_tgds: 2,
                    ..Default::default()
                },
            );
            let id_src = SchemaMapping::identity(&m.source).unwrap();
            let id_tgt = SchemaMapping::identity(&m.target).unwrap();
            let opts = MinGenOptions::default();
            // The replica schemas produced by `identity` are `same_as`
            // the originals, so both compositions type-check directly.
            let left = compose(&id_src, &m, &opts).unwrap();
            let right = compose(&m, &id_tgt, &opts).unwrap();
            assert!(
                mapping_equivalent(&left, &m).unwrap(),
                "seed {seed}, threads {threads}: id ∘ M ≢ M\n{left}"
            );
            assert!(
                mapping_equivalent(&right, &m).unwrap(),
                "seed {seed}, threads {threads}: M ∘ id ≢ M\n{right}"
            );
        }
    }
    set_global_threads(0);
}

#[test]
fn composing_with_identity_preserves_behaviour() {
    let m = quasi_inverse::workloads::paper::copy();
    let id = SchemaMapping::identity(&m.source).unwrap();
    // M over the replica schema as its source.
    let m2 = SchemaMapping::new(
        id.target.clone(),
        m.target.clone(),
        m.tgds
            .iter()
            .map(|t| parse_tgd(&id.target, &m.target, &t.to_string()).unwrap())
            .collect(),
    )
    .unwrap();
    let composed = compose(&id, &m2, &Default::default()).unwrap();
    // Behaviour equal to m itself on concrete data.
    let i = Instance::parse(&m.source, "P(a,b) P(b,a)").unwrap();
    let via_m = m.chase(&i).unwrap();
    let via_composed = composed.chase(&i).unwrap();
    assert!(hom_equivalent(&via_m, &via_composed));
}

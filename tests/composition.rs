//! Property-level validation of the composition operator (experiment
//! E12): on random (full, arbitrary) mapping pairs, the syntactic
//! composition produced by `compose` agrees with chase-based membership
//! in `Inst(M12 ∘ M23)` on random instance pairs. Seed-scheduled random
//! inputs; failures reproduce from the seed in the assertion message.

use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, random_mapping_between, rng, InstanceParams,
    MappingParams,
};

const CASES: u64 = 20;

#[test]
fn compose_agrees_with_membership() {
    for seed in 0..CASES {
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                n_tgds: 2,
                max_arity: 2,
                ..Default::default()
            },
        );
        let composed = compose(&m12, &m23, &Default::default()).unwrap();
        let ip = InstanceParams {
            n_consts: 2,
            n_facts: 3,
        };
        for _ in 0..4 {
            let i = random_ground_instance(&m12.source, &mut r, &ip);
            let k = random_ground_instance(&m23.target, &mut r, &ip);
            let direct = quasi_inverse::chase::satisfies_all_tgds(&i, &k, &composed.tgds);
            let via_chase = composition_membership(&m12, &m23, &i, &k).unwrap();
            assert_eq!(
                direct, via_chase,
                "seed {seed}: I = {i}, K = {k}\n{composed}"
            );
        }
    }
}

#[test]
fn composed_chase_equals_two_hop_chase_up_to_hom() {
    for seed in 0..CASES {
        // chase_{M13}(I) and chase_{M23}(chase_{M12}(I)) are both
        // universal solutions of the composition, hence hom-equivalent.
        let mut r = rng(seed);
        let m12 = random_mapping(
            &mut r,
            &MappingParams {
                full: true,
                max_arity: 2,
                n_tgds: 2,
                ..Default::default()
            },
        );
        let m23 = random_mapping_between(
            &mut r,
            &m12.target,
            &Schema::parse("Out0/2 Out1/1").unwrap(),
            &MappingParams {
                n_tgds: 2,
                max_arity: 2,
                ..Default::default()
            },
        );
        let composed = compose(&m12, &m23, &Default::default()).unwrap();
        let i = random_ground_instance(
            &m12.source,
            &mut r,
            &InstanceParams {
                n_consts: 2,
                n_facts: 4,
            },
        );
        let one_hop = composed.chase(&i).unwrap();
        let two_hop = m23.chase(&m12.chase(&i).unwrap()).unwrap();
        assert!(
            hom_equivalent(&one_hop, &two_hop),
            "seed {seed}: I = {i}\none: {one_hop}\ntwo: {two_hop}"
        );
    }
}

#[test]
fn composing_with_identity_preserves_behaviour() {
    let m = quasi_inverse::workloads::paper::copy();
    let id = SchemaMapping::identity(&m.source).unwrap();
    // M over the replica schema as its source.
    let m2 = SchemaMapping::new(
        id.target.clone(),
        m.target.clone(),
        m.tgds
            .iter()
            .map(|t| parse_tgd(&id.target, &m.target, &t.to_string()).unwrap())
            .collect(),
    )
    .unwrap();
    let composed = compose(&id, &m2, &Default::default()).unwrap();
    // Behaviour equal to m itself on concrete data.
    let i = Instance::parse(&m.source, "P(a,b) P(b,a)").unwrap();
    let via_m = m.chase(&i).unwrap();
    let via_composed = composed.chase(&i).unwrap();
    assert!(hom_equivalent(&via_m, &via_composed));
}

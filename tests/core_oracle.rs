//! Differential oracle for the homomorphism engine v2 core computation.
//!
//! `core_of` is a retraction-based fold: per round it searches, for each
//! null, for an endomorphism whose image avoids that null, and applies it
//! through `map_values`. This file pins that algorithm against three
//! independent referees on seed-scheduled random instances:
//!
//! * the **greedy reference** (`core_of_greedy`, the pre-v2 fact-dropping
//!   loop, kept behind the `greedy-core` feature) — the two must agree up
//!   to isomorphism, since cores are unique up to isomorphism;
//! * **hom-equivalence with the input** — a core that is not equivalent
//!   to its instance is not a retract at all;
//! * **brute-force minimality** — no single fact of the result may be
//!   droppable (a homomorphism from the core into the core minus one
//!   fact would contradict core-ness), checked fact by fact with the
//!   plain `has_hom` search.
//!
//! The final test sweeps the executor thread counts (1 and 4): `core_of`
//! sits on top of `exists`/`any_match`, whose component decomposition may
//! fan out through `qi-exec`, and the rendered core must stay
//! byte-identical at every setting — same contract `tests/match_oracle.rs`
//! enforces for the chase.

use quasi_inverse::exec::set_global_threads;
use quasi_inverse::schema::{
    core_of, core_of_greedy, core_of_with_stats, has_hom, hom_equivalent, is_isomorphic, Instance,
    Schema, Value,
};
use quasi_inverse::workloads::random::rng;
use quasi_inverse::workloads::rng::Rng64;

const CASES: u64 = 40;

/// A random instance mixing constants and nulls; null-heavy (60%) so the
/// cores are non-trivial more often than not.
fn random_instance(schema: &Schema, r: &mut Rng64, n_facts: usize, n_vals: usize) -> Instance {
    let mut inst = Instance::new(schema.clone());
    for _ in 0..n_facts {
        let rel = schema
            .rel_ids()
            .nth(r.random_range(0..schema.len()))
            .unwrap();
        let args: Vec<Value> = (0..schema.arity(rel))
            .map(|_| {
                let k = r.random_range(0..n_vals);
                if r.random_bool(0.6) {
                    Value::null(k as u64)
                } else {
                    Value::constant(&format!("c{k}"))
                }
            })
            .collect();
        inst.insert(rel, args).unwrap();
    }
    inst
}

/// All the per-instance core invariants; returns the v2 core.
fn check_core(i: &Instance, ctx: &str) -> Instance {
    let (v2, stats) = core_of_with_stats(i);
    let greedy = core_of_greedy(i);
    assert!(
        is_isomorphic(&v2, &greedy),
        "{ctx}: cores differ: v2 = {v2} / greedy = {greedy} (input {i})"
    );
    assert!(
        hom_equivalent(i, &v2),
        "{ctx}: core {v2} not equivalent to input {i}"
    );
    // Brute-force minimality: no fact of a core is droppable.
    for fact in v2.facts() {
        let smaller = v2.without_fact(&fact);
        assert!(
            !has_hom(&v2, &smaller),
            "{ctx}: core {v2} retracts further into {smaller}"
        );
    }
    // Idempotence is exact (not just up to isomorphism): a core has no
    // avoidable null, so the fold returns it unchanged.
    assert_eq!(core_of(&v2), v2, "{ctx}: core_of not idempotent");
    // The fold counters must account for exactly the nulls that vanished.
    assert_eq!(
        stats.nulls_folded as usize,
        i.nulls().len() - v2.nulls().len(),
        "{ctx}: nulls_folded out of balance"
    );
    v2
}

#[test]
fn retraction_core_agrees_with_greedy_and_brute_minimality() {
    let schema = Schema::parse("E/2 P/2 Q/1").unwrap();
    for seed in 0..CASES {
        let mut r = rng(7_000 + seed);
        let n_facts = 2 + r.random_range(0..8);
        let n_vals = 2 + r.random_range(0..4);
        let i = random_instance(&schema, &mut r, n_facts, n_vals);
        check_core(&i, &format!("seed {seed}"));
    }
}

#[test]
fn wide_instances_with_many_null_chains() {
    // Chains anchored on a constant loop: the shape the chase produces
    // for closure-style mappings, and the one where retraction folding
    // collapses many nulls per round.
    let schema = Schema::parse("E/2").unwrap();
    for k in [1usize, 3, 6] {
        let mut text = String::from("E(a,a)");
        for c in 0..3 {
            let base = (c * (k + 1)) as u64;
            text.push_str(&format!(" E(a,N{})", base + 1));
            for j in 1..k {
                let n = base + j as u64;
                text.push_str(&format!(" E(N{},N{})", n, n + 1));
            }
        }
        let i = Instance::parse(&schema, &text).unwrap();
        let core = check_core(&i, &format!("chains k={k}"));
        assert_eq!(
            core,
            Instance::parse(&schema, "E(a,a)").unwrap(),
            "chains k={k}: everything must fold onto the constant loop"
        );
    }
}

#[test]
fn core_is_byte_identical_across_thread_counts() {
    let schema = Schema::parse("E/2 P/2 Q/1").unwrap();
    let mut inputs = Vec::new();
    for seed in 0..12 {
        let mut r = rng(8_000 + seed);
        inputs.push(random_instance(&schema, &mut r, 9, 4));
    }
    let render = |threads: usize| -> Vec<String> {
        set_global_threads(threads);
        let out = inputs.iter().map(|i| core_of(i).to_string()).collect();
        set_global_threads(0);
        out
    };
    let at_one = render(1);
    let at_four = render(4);
    assert_eq!(at_one, at_four, "core_of diverged across thread counts");
    // And both agree with the auto setting (whatever this host resolves).
    assert_eq!(
        at_one,
        inputs
            .iter()
            .map(|i| core_of(i).to_string())
            .collect::<Vec<_>>()
    );
}

//! Determinism guarantees: every algorithm in the stack is a pure
//! function of its inputs — re-running yields identical (not merely
//! equivalent) artifacts, and running on more threads yields the *same
//! bytes* as running on one. This is what makes the examples, the CLI
//! and EXPERIMENTS.md reproducible byte-for-byte, and what lets the
//! parallel executor be on by default (see DESIGN.md, "The determinism
//! contract").

use quasi_inverse::chase::{
    chase_with_options, disjunctive_chase_with_stats, ChaseOptions, DisjChaseOptions,
};
use quasi_inverse::core::min_gen_with_stats;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::families::{chain_join_j, union_instance, union_n};
use quasi_inverse::workloads::paper;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};

/// The parallel side of every sweep; threads = 1 is the baseline.
const SWEEP: [usize; 3] = [2, 4, 8];

#[test]
fn chase_is_deterministic() {
    for seed in 0..8 {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let i = random_ground_instance(
            &m.source,
            &mut r,
            &InstanceParams {
                n_consts: 3,
                n_facts: 6,
            },
        );
        let a = m.chase(&i).unwrap();
        let b = m.chase(&i).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn quasi_inverse_algorithm_is_deterministic() {
    for m in [
        paper::decomposition(),
        paper::example_4_5(),
        paper::thm_4_10(),
    ] {
        let a = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let b = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        assert_eq!(a.deps.len(), b.deps.len());
        for (da, db) in a.deps.iter().zip(&b.deps) {
            assert_eq!(da.to_string(), db.to_string());
        }
    }
}

#[test]
fn inverse_algorithm_is_deterministic() {
    for m in [paper::copy(), paper::example_5_4(), paper::thm_4_9()] {
        let a = inverse(&m).unwrap().unwrap();
        let b = inverse(&m).unwrap().unwrap();
        assert_eq!(
            a.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
            b.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn disjunctive_chase_leaf_order_is_stable() {
    let m = paper::union_mapping();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let i = Instance::parse(&m.source, "P(a) Q(b)").unwrap();
    let a = round_trip(&m, &rev, &i, Default::default()).unwrap();
    let b = round_trip(&m, &rev, &i, Default::default()).unwrap();
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.faithful_witness, b.faithful_witness);
}

#[test]
fn fresh_nulls_are_deterministic_and_disjoint_from_input() {
    let m = paper::thm_4_8();
    let i = Instance::parse(&m.source, "P(a,b) P(c,d)").unwrap();
    let u = m.chase(&i).unwrap();
    // Exactly one fresh null per P-fact (the ∃z), numbered from 0.
    assert_eq!(u.nulls().len(), 2);
    let i2 = Instance::parse(&m.source, "P(a,b)").unwrap();
    let u2 = m.chase(&i2).unwrap();
    // A subinstance chases to a subinstance here (same trigger order).
    assert!(u2.is_subinstance_of(&u).unwrap());
}

#[test]
fn parallel_chase_is_byte_identical_to_sequential() {
    // threads ∈ {2,4,8} vs threads = 1, compared on rendered output —
    // `Display` serializes every fact and null id, so byte equality is
    // the strongest observable form of "same instance".
    for seed in 0..8 {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let i = random_ground_instance(
            &m.source,
            &mut r,
            &InstanceParams {
                n_consts: 3,
                n_facts: 8,
            },
        );
        let seq = chase_with_options(
            &m.tgds,
            &i,
            &m.target,
            ChaseOptions {
                parallelism: Parallelism::sequential(),
                ..Default::default()
            },
        )
        .unwrap();
        for threads in SWEEP {
            let par = chase_with_options(
                &m.tgds,
                &i,
                &m.target,
                ChaseOptions {
                    parallelism: Parallelism::fixed(threads),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                par.instance.to_string(),
                seq.instance.to_string(),
                "seed {seed}, threads {threads}"
            );
            assert_eq!(par.triggers, seq.triggers, "seed {seed}, threads {threads}");
            assert_eq!(par.fired, seq.fired, "seed {seed}, threads {threads}");
        }
    }
}

#[test]
fn parallel_mapping_chase_is_byte_identical_to_sequential() {
    // The same sweep through the `SchemaMapping::with_parallelism`
    // surface the CLI and examples use.
    let m = paper::decomposition();
    let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2) P(a,b2,c)").unwrap();
    let seq = m
        .clone()
        .with_parallelism(Parallelism::sequential())
        .chase(&i)
        .unwrap();
    for threads in SWEEP {
        let par = m
            .clone()
            .with_parallelism(Parallelism::fixed(threads))
            .chase(&i)
            .unwrap();
        assert_eq!(par.to_string(), seq.to_string(), "threads {threads}");
    }
}

#[test]
fn parallel_disjunctive_chase_is_byte_identical_to_sequential() {
    // Leaves in chase-tree order, rendered — order and content both
    // locked across the sweep. The union quasi-inverse gives a genuinely
    // branching tree (2^k leaves).
    let m = union_n(2);
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let u = m.chase(&union_instance(&m, 5)).unwrap();
    let empty = Instance::new(m.source.clone());
    let seq = disjunctive_chase_with_stats(
        &rev.deps,
        &u,
        &empty,
        DisjChaseOptions {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(seq.leaves.len(), 32);
    let render = |leaves: &[Instance]| {
        leaves
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
            .join("\n---\n")
    };
    for threads in SWEEP {
        let par = disjunctive_chase_with_stats(
            &rev.deps,
            &u,
            &empty,
            DisjChaseOptions {
                parallelism: Parallelism::fixed(threads),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            render(&par.leaves),
            render(&seq.leaves),
            "threads {threads}"
        );
        assert_eq!(par.nodes_visited, seq.nodes_visited, "threads {threads}");
        assert_eq!(par.waves, seq.waves, "threads {threads}");
    }
}

#[test]
fn parallel_mingen_is_byte_identical_to_sequential() {
    // Candidate enumeration order, pruning decisions and the budget
    // counter must all survive batching: same generators, same strings,
    // same `candidates_tested` at every thread count.
    let m = chain_join_j(2);
    let psi = vec![quasi_inverse::lang::Atom::parse_parts(&m.target, "T", &["x0", "x2"]).unwrap()];
    let x = vec![Var::new("x0"), Var::new("x2")];
    let seq = min_gen_with_stats(
        &m,
        &psi,
        &x,
        &MinGenOptions {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!seq.generators.is_empty());
    let render = |g: &[quasi_inverse::core::Generator]| {
        g.iter()
            .map(|g| format!("{g:?}"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for threads in SWEEP {
        let par = min_gen_with_stats(
            &m,
            &psi,
            &x,
            &MinGenOptions {
                parallelism: Parallelism::fixed(threads),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            render(&par.generators),
            render(&seq.generators),
            "threads {threads}"
        );
        assert_eq!(
            par.candidates_tested, seq.candidates_tested,
            "threads {threads}"
        );
    }
}

#[test]
fn parallel_quasi_inverse_is_byte_identical_to_sequential() {
    // End-to-end: the QuasiInverse algorithm runs MinGen per complete
    // description; the mapping-level parallelism knob must not change a
    // single rendered dependency.
    let m = paper::decomposition().with_parallelism(Parallelism::sequential());
    let seq = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let seq_text: Vec<String> = seq.deps.iter().map(|d| d.to_string()).collect();
    for threads in SWEEP {
        let mp = paper::decomposition().with_parallelism(Parallelism::fixed(threads));
        let par = quasi_inverse::core::quasi_inverse(&mp, &Default::default()).unwrap();
        let par_text: Vec<String> = par.deps.iter().map(|d| d.to_string()).collect();
        assert_eq!(par_text, seq_text, "threads {threads}");
    }
}

#[test]
fn workload_generators_are_seed_stable() {
    // A pinned seed must keep producing the same mapping across releases
    // (bench comparability). If this test fails after an intentional
    // generator change, update the pinned strings.
    let m = random_mapping(&mut rng(42), &MappingParams::default());
    let rendered: Vec<String> = m.tgds.iter().map(|t| t.to_string()).collect();
    let again: Vec<String> = random_mapping(&mut rng(42), &MappingParams::default())
        .tgds
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert_eq!(rendered, again);
}

#[test]
fn budgeted_runs_under_budget_are_byte_identical_across_the_sweep() {
    // The determinism contract extends to budgeted runs: an ample
    // (never-tripping) budget may only decide *whether* a search
    // finishes, never *what* it returns — so a run that completes under
    // budget is byte-identical to the unbudgeted sequential baseline at
    // every thread count, budget present or not.
    use quasi_inverse::exec::Budget;
    use std::time::Duration;
    let ample = || {
        Budget::unlimited()
            .with_deadline(Duration::from_secs(3600))
            .with_max_tasks(10_000_000)
            .with_max_facts(10_000_000)
    };
    // Standard chase.
    let m = chain_join_j(3);
    let mut i = Instance::new(m.source.clone());
    for rel in ["A1", "A2", "A3"] {
        for k in 0..6u32 {
            let r = m.source.rel(rel).unwrap();
            i.insert(
                r,
                vec![
                    Value::constant(&format!("v{k}")),
                    Value::constant(&format!("v{}", (k + 1) % 6)),
                ],
            )
            .unwrap();
        }
    }
    let baseline = chase_with_options(
        &m.tgds,
        &i,
        &m.target,
        ChaseOptions {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        },
    )
    .unwrap();
    for threads in SWEEP {
        let budgeted = chase_with_options(
            &m.tgds,
            &i,
            &m.target,
            ChaseOptions {
                parallelism: Parallelism::fixed(threads),
                budget: ample(),
            },
        )
        .unwrap();
        assert_eq!(
            budgeted.instance.to_string(),
            baseline.instance.to_string(),
            "threads {threads}"
        );
    }
    // Disjunctive chase: leaves locked in order and content.
    let um = union_n(2);
    let rev = quasi_inverse::core::quasi_inverse(&um, &Default::default()).unwrap();
    let u = um.chase(&union_instance(&um, 4)).unwrap();
    let empty = Instance::new(um.source.clone());
    let base = disjunctive_chase_with_stats(
        &rev.deps,
        &u,
        &empty,
        DisjChaseOptions {
            parallelism: Parallelism::sequential(),
            ..Default::default()
        },
    )
    .unwrap();
    for threads in SWEEP {
        let budgeted = disjunctive_chase_with_stats(
            &rev.deps,
            &u,
            &empty,
            DisjChaseOptions {
                parallelism: Parallelism::fixed(threads),
                budget: ample(),
                ..Default::default()
            },
        )
        .unwrap();
        let render = |ls: &[Instance]| {
            ls.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("\n---\n")
        };
        assert_eq!(
            render(&budgeted.leaves),
            render(&base.leaves),
            "threads {threads}"
        );
    }
}

//! Determinism guarantees: every algorithm in the stack is a pure
//! function of its inputs — re-running yields identical (not merely
//! equivalent) artifacts. This is what makes the examples, the CLI and
//! EXPERIMENTS.md reproducible byte-for-byte.

use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};

#[test]
fn chase_is_deterministic() {
    for seed in 0..8 {
        let mut r = rng(seed);
        let m = random_mapping(&mut r, &MappingParams::default());
        let i = random_ground_instance(
            &m.source,
            &mut r,
            &InstanceParams {
                n_consts: 3,
                n_facts: 6,
            },
        );
        let a = m.chase(&i).unwrap();
        let b = m.chase(&i).unwrap();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn quasi_inverse_algorithm_is_deterministic() {
    for m in [paper::decomposition(), paper::example_4_5(), paper::thm_4_10()] {
        let a = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let b = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        assert_eq!(a.deps.len(), b.deps.len());
        for (da, db) in a.deps.iter().zip(&b.deps) {
            assert_eq!(da.to_string(), db.to_string());
        }
    }
}

#[test]
fn inverse_algorithm_is_deterministic() {
    for m in [paper::copy(), paper::example_5_4(), paper::thm_4_9()] {
        let a = inverse(&m).unwrap().unwrap();
        let b = inverse(&m).unwrap().unwrap();
        assert_eq!(a.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
                   b.deps.iter().map(|d| d.to_string()).collect::<Vec<_>>());
    }
}

#[test]
fn disjunctive_chase_leaf_order_is_stable() {
    let m = paper::union_mapping();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let i = Instance::parse(&m.source, "P(a) Q(b)").unwrap();
    let a = round_trip(&m, &rev, &i, Default::default()).unwrap();
    let b = round_trip(&m, &rev, &i, Default::default()).unwrap();
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.faithful_witness, b.faithful_witness);
}

#[test]
fn fresh_nulls_are_deterministic_and_disjoint_from_input() {
    let m = paper::thm_4_8();
    let i = Instance::parse(&m.source, "P(a,b) P(c,d)").unwrap();
    let u = m.chase(&i).unwrap();
    // Exactly one fresh null per P-fact (the ∃z), numbered from 0.
    assert_eq!(u.nulls().len(), 2);
    let i2 = Instance::parse(&m.source, "P(a,b)").unwrap();
    let u2 = m.chase(&i2).unwrap();
    // A subinstance chases to a subinstance here (same trigger order).
    assert!(u2.is_subinstance_of(&u).unwrap());
}

#[test]
fn workload_generators_are_seed_stable() {
    // A pinned seed must keep producing the same mapping across releases
    // (bench comparability). If this test fails after an intentional
    // generator change, update the pinned strings.
    let m = random_mapping(&mut rng(42), &MappingParams::default());
    let rendered: Vec<String> = m.tgds.iter().map(|t| t.to_string()).collect();
    let again: Vec<String> = random_mapping(&mut rng(42), &MappingParams::default())
        .tgds
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert_eq!(rendered, again);
}

//! End-to-end scenario: a realistic three-table export pipeline driven
//! entirely through the public API — the "downstream user" path.
//!
//! A CRM system exports customers, orders and a denormalized contact
//! view to a partner schema; the mapping mixes joins, projections and
//! existentials. We compute the quasi-inverse, round-trip real data,
//! verify the §6 guarantees, and check query-level behaviour.

use quasi_inverse::chase::certain_answers;
use quasi_inverse::lang::ConjunctiveQuery;
use quasi_inverse::prelude::*;

fn crm_mapping() -> SchemaMapping {
    SchemaMapping::parse(
        "Customer/2 Order/3 Phone/2",
        "Contact/2 Purchase/2 Reachable/1",
        &[
            // customer(id, name) → contact(id, name)
            "Customer(id,name) -> Contact(id,name)",
            // order(oid, cust, item): partner sees purchases by customer
            "Order(oid,cust,item) -> Purchase(cust,item)",
            // join: customers with a phone are reachable
            "Customer(id,name) & Phone(id,num) -> Reachable(id)",
            // every order implies the customer exists as a contact with
            // *some* name
            "Order(oid,cust,item) -> exists n . Contact(cust,n)",
        ],
    )
    .unwrap()
}

fn crm_data(m: &SchemaMapping) -> Instance {
    Instance::parse(
        &m.source,
        "Customer(c1,ana) Customer(c2,bo) \
         Order(o1,c1,book) Order(o2,c1,pen) Order(o3,c3,ink) \
         Phone(c1,p555)",
    )
    .unwrap()
}

#[test]
fn pipeline_runs_and_certifies() {
    let m = crm_mapping();
    let i = crm_data(&m);
    let u = m.chase(&i).unwrap();
    // Exported: contacts for c1, c2 (named), c3 (unnamed, via order);
    // purchases; reachability of c1.
    assert!(u.contains_fact(&fact(&m.target, "Contact", &["c1", "ana"])));
    assert!(u.contains_fact(&fact(&m.target, "Reachable", &["c1"])));
    assert!(u.contains_fact(&fact(&m.target, "Purchase", &["c3", "ink"])));
    // c3's contact name is a null.
    let contact = m.target.rel("Contact").unwrap();
    assert!(u
        .tuples(contact)
        .any(|t| t[0] == Value::constant("c3") && t[1].is_null()));

    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    assert!(rt.is_sound(), "Theorem 6.7");
    assert!(rt.is_faithful(), "Theorem 6.8");
    let v = rt.recovered_equivalent().unwrap();
    // The recovery re-chases to something equivalent to U.
    assert!(hom_equivalent(&m.chase(v).unwrap(), &rt.u));
}

#[test]
fn queries_survive_the_round_trip() {
    let m = crm_mapping();
    let i = crm_data(&m);
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    let v = rt.recovered_equivalent().unwrap();
    for q_text in [
        "q(c,item) :- Purchase(c,item)",
        "q(c,n) :- Contact(c,n)",
        "q(c) :- Reachable(c)",
        "q(n,item) :- Contact(c,n), Purchase(c,item)",
        "q() :- Reachable(c), Purchase(c,i)",
    ] {
        let q = ConjunctiveQuery::parse(&m.target, q_text).unwrap();
        let on_original = certain_answers(&m.tgds, &i, &m.target, &q).unwrap();
        let on_recovered = certain_answers(&m.tgds, v, &m.target, &q).unwrap();
        assert_eq!(on_original, on_recovered, "{q_text}");
    }
}

#[test]
fn the_mapping_is_not_invertible_but_that_is_fine() {
    let m = crm_mapping();
    // Order ids are dropped (projection) ⇒ no constant propagation ⇒ no
    // inverse; the quasi-inverse machinery is exactly what this pipeline
    // needs.
    assert!(!constant_propagation_property(&m).unwrap());
    assert!(inverse(&m).unwrap().is_none());
}

#[test]
fn lost_detail_is_reported_honestly() {
    // Order ids are unrecoverable: the recovered instance has an Order
    // row per purchase, with a null id. The round trip must not invent a
    // concrete id.
    let m = crm_mapping();
    let i = crm_data(&m);
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    let v = rt.recovered_equivalent().unwrap();
    let order = m.source.rel("Order").unwrap();
    for t in v.tuples(order) {
        assert!(
            t[0].is_null(),
            "order id must come back as a null, got {:?}",
            t[0]
        );
    }
}

fn fact(schema: &Schema, rel: &str, args: &[&str]) -> quasi_inverse::schema::Fact {
    quasi_inverse::schema::Fact::new(
        schema.rel(rel).unwrap(),
        args.iter().map(|a| Value::constant(a)).collect(),
    )
}

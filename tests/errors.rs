//! Failure-path coverage: every fallible API surfaces a typed error (or
//! a documented refusal) instead of panicking, misbehaving, or silently
//! truncating.

use quasi_inverse::chase::{disjunctive_chase, ChaseError, DisjChaseOptions};
use quasi_inverse::core::{min_gen, CoreError, MinGenOptions};
use quasi_inverse::lang::{parse_disj_tgd, parse_tgd, ConjunctiveQuery, LangError};
use quasi_inverse::prelude::*;
use quasi_inverse::schema::SchemaError;

#[test]
fn schema_errors() {
    assert!(matches!(
        Schema::new(&[("P", 2), ("P", 3)]),
        Err(SchemaError::DuplicateRelation(_))
    ));
    assert!(matches!(Schema::parse("P"), Err(SchemaError::Parse(_))));
    let s = Schema::parse("P/2").unwrap();
    assert!(matches!(
        s.rel_checked("Q"),
        Err(SchemaError::UnknownRelation(_))
    ));
}

#[test]
fn instance_errors() {
    let s = Schema::parse("P/2").unwrap();
    let mut i = Instance::new(s.clone());
    assert!(matches!(
        i.insert(s.rel("P").unwrap(), vec![Value::constant("a")]),
        Err(SchemaError::ArityMismatch { .. })
    ));
    let other = Instance::new(Schema::parse("Q/1").unwrap());
    assert!(matches!(i.union(&other), Err(SchemaError::SchemaMismatch)));
    assert!(Instance::parse(&s, "P(a").is_err());
    assert!(Instance::parse(&s, "P()").is_err());
}

#[test]
fn dependency_language_errors() {
    let s = Schema::parse("P/2").unwrap();
    let t = Schema::parse("Q/1").unwrap();
    assert!(matches!(
        parse_tgd(&s, &t, "P(x,y) ->"),
        Err(LangError::Parse(_))
    ));
    assert!(matches!(
        parse_tgd(&s, &t, "P(x,y) -> Q(w)"),
        Err(LangError::Invalid(_))
    ));
    assert!(matches!(
        parse_disj_tgd(&t, &s, "Q(x) -> P(x,y) | "),
        Err(LangError::Parse(_))
    ));
    assert!(ConjunctiveQuery::parse(&t, "no arrow here").is_err());
}

#[test]
fn mapping_construction_errors() {
    // tgds over foreign schemas rejected.
    let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
    let foreign = SchemaMapping::parse("Z/1", "W/1", &["Z(x) -> W(x)"]).unwrap();
    assert!(matches!(
        SchemaMapping::new(m.source.clone(), m.target.clone(), foreign.tgds.clone()),
        Err(CoreError::Precondition(_))
    ));
    assert!(matches!(
        ReverseMapping::new(m.target.clone(), m.source.clone(), {
            let r = ReverseMapping::parse(&foreign, &["W(x) -> Z(x)"]).unwrap();
            r.deps
        }),
        Err(CoreError::Precondition(_))
    ));
}

#[test]
fn chase_budget_is_a_typed_error() {
    let t = Schema::parse("S/1").unwrap();
    let s = Schema::parse("P/1 Q/1").unwrap();
    let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
    let mut u = Instance::new(t);
    for k in 0..30 {
        u.insert_consts("S", &[&format!("c{k}")]).unwrap();
    }
    let result = disjunctive_chase(
        &[dep],
        &u,
        &Instance::new(s),
        DisjChaseOptions {
            max_nodes: 50,
            ..Default::default()
        },
    );
    assert!(matches!(result, Err(ChaseError::Budget { max_nodes: 50 })));
}

#[test]
fn mingen_budget_and_preconditions() {
    let m = SchemaMapping::parse("A/2 B/2", "T/2", &["A(x,y) & B(y,z) -> T(x,z)"]).unwrap();
    let psi = vec![Atom::parse_parts(&m.target, "T", &["x", "z"]).unwrap()];
    // Empty ψ.
    assert!(matches!(
        min_gen(&m, &[], &[], &MinGenOptions::default()),
        Err(CoreError::Precondition(_))
    ));
    // Frontier variable absent from ψ.
    assert!(matches!(
        min_gen(&m, &psi, &[Var::new("nope")], &MinGenOptions::default()),
        Err(CoreError::Precondition(_))
    ));
    // Budget.
    assert!(matches!(
        min_gen(
            &m,
            &psi,
            &[Var::new("x"), Var::new("z")],
            &MinGenOptions {
                max_candidates: 1,
                ..Default::default()
            }
        ),
        Err(CoreError::Budget(_))
    ));
}

#[test]
fn composition_preconditions() {
    let non_full = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
    let m23 = SchemaMapping::parse("Q/2", "T/1", &["Q(x,y) -> T(x)"]).unwrap();
    assert!(matches!(
        compose(&non_full, &m23, &Default::default()),
        Err(CoreError::Precondition(_))
    ));
}

#[test]
fn composition_contains_requires_guard_completeness() {
    let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
    let unguarded = ReverseMapping::parse(&m, &["Q(x,y) -> P(x,y)"]).unwrap();
    let i = Instance::new(m.source.clone());
    assert!(matches!(
        composition_contains(&m, &unguarded, &i, &i),
        Err(CoreError::Precondition(_))
    ));
    // And the bounded verifiers refuse the same way.
    let universe = quasi_inverse::core::enumerate::ground_instances(&m.source, &["a"], 1);
    assert!(is_inverse_bounded(&m, &unguarded, &universe).is_err());
}

#[test]
fn roundtrip_budget_propagates() {
    // A wide disjunction on a large U must surface the chase budget.
    let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let mut i = Instance::new(m.source.clone());
    for k in 0..25 {
        i.insert_consts("P", &[&format!("c{k}")]).unwrap();
    }
    let tight = DisjChaseOptions {
        max_nodes: 10,
        ..Default::default()
    };
    assert!(matches!(
        round_trip(&m, &rev, &i, tight),
        Err(CoreError::Chase(ChaseError::Budget { .. }))
    ));
}

#[test]
fn quasi_inverse_full_propagates_resource_errors() {
    use quasi_inverse::core::CorePartial;
    use quasi_inverse::exec::Exceeded;
    use std::time::Duration;
    // Full mapping, expired deadline: the structured resource error from
    // the underlying search must surface through `quasi_inverse_full`
    // unchanged — not be swallowed into an `Ok` with a guard-stripped
    // half result.
    let m = SchemaMapping::parse("P/3", "Q/2 R/2", &["P(x,y,z) -> Q(x,y) & R(y,z)"]).unwrap();
    let tight = QuasiInverseOptions {
        budget: Budget::unlimited().with_deadline(Duration::ZERO),
        ..Default::default()
    };
    match quasi_inverse_full(&m, &tight) {
        Err(CoreError::Resource(r)) => {
            assert_eq!(r.exceeded, Exceeded::Deadline);
            // Whatever partial rode along stays well-formed: generators
            // carry source-schema atoms, never an empty conjunction.
            if let CorePartial::Generators(gs) = &r.partial {
                for g in gs {
                    assert!(!g.atoms.is_empty());
                }
            }
            assert!(r.to_string().contains("resource budget exhausted"));
        }
        other => panic!("expected a structured resource error, got {other:?}"),
    }
    // The fragment rejection is decided before any search runs, so it
    // wins even over an already-expired budget.
    let non_full = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
    assert!(matches!(
        quasi_inverse_full(&non_full, &tight),
        Err(CoreError::Rejected(_))
    ));
    // And an unlimited budget still yields the guard-free output.
    let rev = quasi_inverse_full(&m, &QuasiInverseOptions::default()).unwrap();
    assert!(rev.deps.iter().all(|d| d.constant.is_empty()));
}

#[test]
fn quasi_inverse_lav_budget_is_a_structured_resource_error() {
    use quasi_inverse::exec::Exceeded;
    use std::time::Duration;
    let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
    let tight = QuasiInverseOptions {
        budget: Budget::unlimited().with_deadline(Duration::ZERO),
        ..Default::default()
    };
    match quasi_inverse::core::quasi_inverse_lav_with(&m, &tight) {
        Err(CoreError::Resource(r)) => assert_eq!(r.exceeded, Exceeded::Deadline),
        other => panic!("expected a structured resource error, got {other:?}"),
    }
}

#[test]
fn containment_budget_trips_are_structured_resource_errors() {
    use quasi_inverse::core::{mapping_contains_with_stats, reverse_contains_with_stats};
    use std::time::Duration;
    let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
    let expired = Budget::unlimited().with_deadline(Duration::ZERO);
    assert!(matches!(
        mapping_contains_with_stats(&m, &m, &expired),
        Err(CoreError::Resource(_))
    ));
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    assert!(matches!(
        reverse_contains_with_stats(&rev, &rev, &expired),
        Err(CoreError::Resource(_))
    ));
    // An unlimited budget decides both, and both directions hold.
    let (verdict, _) = mapping_contains_with_stats(&m, &m, &Budget::unlimited()).unwrap();
    assert!(verdict.holds());
    let (verdict, _) = reverse_contains_with_stats(&rev, &rev, &Budget::unlimited()).unwrap();
    assert!(verdict.holds());
}

#[test]
fn errors_format_reasonably() {
    let e = CoreError::Precondition("something".into());
    assert!(e.to_string().contains("something"));
    let e: CoreError = ChaseError::Budget { max_nodes: 7 }.into();
    assert!(e.to_string().contains('7'));
    let e: CoreError = SchemaError::SchemaMismatch.into();
    assert!(!e.to_string().is_empty());
    let e: CoreError = LangError::Parse("x".into()).into();
    assert!(e.to_string().contains('x'));
}

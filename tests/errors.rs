//! Failure-path coverage: every fallible API surfaces a typed error (or
//! a documented refusal) instead of panicking, misbehaving, or silently
//! truncating.

use quasi_inverse::chase::{disjunctive_chase, ChaseError, DisjChaseOptions};
use quasi_inverse::core::{min_gen, CoreError, MinGenOptions};
use quasi_inverse::lang::{parse_disj_tgd, parse_tgd, ConjunctiveQuery, LangError};
use quasi_inverse::prelude::*;
use quasi_inverse::schema::SchemaError;

#[test]
fn schema_errors() {
    assert!(matches!(
        Schema::new(&[("P", 2), ("P", 3)]),
        Err(SchemaError::DuplicateRelation(_))
    ));
    assert!(matches!(Schema::parse("P"), Err(SchemaError::Parse(_))));
    let s = Schema::parse("P/2").unwrap();
    assert!(matches!(
        s.rel_checked("Q"),
        Err(SchemaError::UnknownRelation(_))
    ));
}

#[test]
fn instance_errors() {
    let s = Schema::parse("P/2").unwrap();
    let mut i = Instance::new(s.clone());
    assert!(matches!(
        i.insert(s.rel("P").unwrap(), vec![Value::constant("a")]),
        Err(SchemaError::ArityMismatch { .. })
    ));
    let other = Instance::new(Schema::parse("Q/1").unwrap());
    assert!(matches!(i.union(&other), Err(SchemaError::SchemaMismatch)));
    assert!(Instance::parse(&s, "P(a").is_err());
    assert!(Instance::parse(&s, "P()").is_err());
}

#[test]
fn dependency_language_errors() {
    let s = Schema::parse("P/2").unwrap();
    let t = Schema::parse("Q/1").unwrap();
    assert!(matches!(
        parse_tgd(&s, &t, "P(x,y) ->"),
        Err(LangError::Parse(_))
    ));
    assert!(matches!(
        parse_tgd(&s, &t, "P(x,y) -> Q(w)"),
        Err(LangError::Invalid(_))
    ));
    assert!(matches!(
        parse_disj_tgd(&t, &s, "Q(x) -> P(x,y) | "),
        Err(LangError::Parse(_))
    ));
    assert!(ConjunctiveQuery::parse(&t, "no arrow here").is_err());
}

#[test]
fn mapping_construction_errors() {
    // tgds over foreign schemas rejected.
    let m = SchemaMapping::parse("P/2", "Q/1", &["P(x,y) -> Q(x)"]).unwrap();
    let foreign = SchemaMapping::parse("Z/1", "W/1", &["Z(x) -> W(x)"]).unwrap();
    assert!(matches!(
        SchemaMapping::new(m.source.clone(), m.target.clone(), foreign.tgds.clone()),
        Err(CoreError::Precondition(_))
    ));
    assert!(matches!(
        ReverseMapping::new(m.target.clone(), m.source.clone(), {
            let r = ReverseMapping::parse(&foreign, &["W(x) -> Z(x)"]).unwrap();
            r.deps
        }),
        Err(CoreError::Precondition(_))
    ));
}

#[test]
fn chase_budget_is_a_typed_error() {
    let t = Schema::parse("S/1").unwrap();
    let s = Schema::parse("P/1 Q/1").unwrap();
    let dep = parse_disj_tgd(&t, &s, "S(x) -> P(x) | Q(x)").unwrap();
    let mut u = Instance::new(t);
    for k in 0..30 {
        u.insert_consts("S", &[&format!("c{k}")]).unwrap();
    }
    let result = disjunctive_chase(
        &[dep],
        &u,
        &Instance::new(s),
        DisjChaseOptions {
            max_nodes: 50,
            ..Default::default()
        },
    );
    assert!(matches!(result, Err(ChaseError::Budget { max_nodes: 50 })));
}

#[test]
fn mingen_budget_and_preconditions() {
    let m = SchemaMapping::parse("A/2 B/2", "T/2", &["A(x,y) & B(y,z) -> T(x,z)"]).unwrap();
    let psi = vec![Atom::parse_parts(&m.target, "T", &["x", "z"]).unwrap()];
    // Empty ψ.
    assert!(matches!(
        min_gen(&m, &[], &[], &MinGenOptions::default()),
        Err(CoreError::Precondition(_))
    ));
    // Frontier variable absent from ψ.
    assert!(matches!(
        min_gen(&m, &psi, &[Var::new("nope")], &MinGenOptions::default()),
        Err(CoreError::Precondition(_))
    ));
    // Budget.
    assert!(matches!(
        min_gen(
            &m,
            &psi,
            &[Var::new("x"), Var::new("z")],
            &MinGenOptions {
                max_candidates: 1,
                ..Default::default()
            }
        ),
        Err(CoreError::Budget(_))
    ));
}

#[test]
fn composition_preconditions() {
    let non_full = SchemaMapping::parse("P/1", "Q/2", &["P(x) -> exists y . Q(x,y)"]).unwrap();
    let m23 = SchemaMapping::parse("Q/2", "T/1", &["Q(x,y) -> T(x)"]).unwrap();
    assert!(matches!(
        compose(&non_full, &m23, &Default::default()),
        Err(CoreError::Precondition(_))
    ));
}

#[test]
fn composition_contains_requires_guard_completeness() {
    let m = SchemaMapping::parse("P/2", "Q/2", &["P(x,y) -> Q(x,y)"]).unwrap();
    let unguarded = ReverseMapping::parse(&m, &["Q(x,y) -> P(x,y)"]).unwrap();
    let i = Instance::new(m.source.clone());
    assert!(matches!(
        composition_contains(&m, &unguarded, &i, &i),
        Err(CoreError::Precondition(_))
    ));
    // And the bounded verifiers refuse the same way.
    let universe = quasi_inverse::core::enumerate::ground_instances(&m.source, &["a"], 1);
    assert!(is_inverse_bounded(&m, &unguarded, &universe).is_err());
}

#[test]
fn roundtrip_budget_propagates() {
    // A wide disjunction on a large U must surface the chase budget.
    let m = SchemaMapping::parse("P/1 Q/1", "S/1", &["P(x) -> S(x)", "Q(x) -> S(x)"]).unwrap();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let mut i = Instance::new(m.source.clone());
    for k in 0..25 {
        i.insert_consts("P", &[&format!("c{k}")]).unwrap();
    }
    let tight = DisjChaseOptions {
        max_nodes: 10,
        ..Default::default()
    };
    assert!(matches!(
        round_trip(&m, &rev, &i, tight),
        Err(CoreError::Chase(ChaseError::Budget { .. }))
    ));
}

#[test]
fn errors_format_reasonably() {
    let e = CoreError::Precondition("something".into());
    assert!(e.to_string().contains("something"));
    let e: CoreError = ChaseError::Budget { max_nodes: 7 }.into();
    assert!(e.to_string().contains('7'));
    let e: CoreError = SchemaError::SchemaMismatch.into();
    assert!(!e.to_string().is_empty());
    let e: CoreError = LangError::Parse("x".into()).into();
    assert!(e.to_string().contains('x'));
}

//! Experiment E8: the QuasiInverse walk-through of Example 4.5.
//!
//! The paper computes, for
//!
//! ```text
//! σ2 = P(x1,x1,x3) → ∃y (S(x1,x1,y) ∧ Q(y,y))        (f(σ1, x1=x2))
//! ```
//!
//! four minimal generators — `P(x1,x1,x3)`, `U(x1)`,
//! `T(x1,x1) ∧ R(x1,x1,x4)`, `T(x3,x1) ∧ R(x3,x3,x4)` — and then remarks
//! that the third is implied by the fourth (`x3 ↦ x1`) "since we need
//! only keep the more general disjunct". Our MinGen folds that remark
//! into its minimization, so the expected generator set is the paper's
//! final three.

use quasi_inverse::core::{min_gen, MinGenOptions};
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn sigma2_head(m: &SchemaMapping) -> Vec<Atom> {
    vec![
        Atom::parse_parts(&m.target, "S", &["x1", "x1", "y"]).unwrap(),
        Atom::parse_parts(&m.target, "Q", &["y", "y"]).unwrap(),
    ]
}

/// Render a generator as `rel(args) & rel(args)` with source names.
fn render(m: &SchemaMapping, atoms: &[Atom]) -> String {
    atoms
        .iter()
        .map(|a| a.display(&m.source).to_string())
        .collect::<Vec<_>>()
        .join(" & ")
}

#[test]
fn sigma1_has_the_single_generator_p() {
    // "The only generator of ∃y(S(x1,x2,y) ∧ Q(y,y)) … is P(x1,x2,x3)".
    let m = paper::example_4_5();
    let psi = vec![
        Atom::parse_parts(&m.target, "S", &["x1", "x2", "y"]).unwrap(),
        Atom::parse_parts(&m.target, "Q", &["y", "y"]).unwrap(),
    ];
    let x = vec![Var::new("x1"), Var::new("x2")];
    let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
    assert_eq!(gens.len(), 1, "{gens:?}");
    assert_eq!(render(&m, &gens[0].atoms), "P(x1,x2,z0)");
}

#[test]
fn sigma2_has_the_papers_three_surviving_generators() {
    let m = paper::example_4_5();
    let psi = sigma2_head(&m);
    let x = vec![Var::new("x1")];
    let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
    let rendered: Vec<String> = gens.iter().map(|g| render(&m, &g.atoms)).collect();
    assert_eq!(gens.len(), 3, "{rendered:?}");
    // P(x1,x1,·) with an existential third column.
    assert!(rendered.contains(&"P(x1,x1,z0)".to_owned()), "{rendered:?}");
    // U(x1).
    assert!(rendered.contains(&"U(x1)".to_owned()), "{rendered:?}");
    // The paper's fourth (most general) T/R generator:
    // T(x3,x1) ∧ R(x3,x3,x4) with both x3, x4 existential.
    let tr = gens
        .iter()
        .find(|g| g.atoms.len() == 2)
        .expect("two-atom generator present");
    let t_atom = &tr.atoms[0];
    let r_atom = &tr.atoms[1];
    assert_eq!(m.source.name(t_atom.rel), "T");
    assert_eq!(m.source.name(r_atom.rel), "R");
    // T(z, x1) — existential first column.
    assert_eq!(t_atom.args[1], Var::new("x1"));
    assert!(tr.exists.contains(&t_atom.args[0]));
    // R(z, z, z') sharing T's existential in its first two columns.
    assert_eq!(r_atom.args[0], t_atom.args[0]);
    assert_eq!(r_atom.args[1], t_atom.args[0]);
    assert!(tr.exists.contains(&r_atom.args[2]));
    // The subsumed T(x1,x1) ∧ R(x1,x1,x4) variant is NOT in the output.
    assert!(
        !rendered.iter().any(|r| r.contains("T(x1,x1)")),
        "implied generator must be dropped: {rendered:?}"
    );
}

#[test]
fn quasi_inverse_contains_sigma1_and_sigma2_dependencies() {
    let m = paper::example_4_5();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    // σ1': S(x1,x2,y) ∧ Q(y,y) ∧ Constant(x1) ∧ Constant(x2) ∧ x1 ≠ x2
    //        → ∃x3 P(x1,x2,x3)
    let sigma1p = rev
        .deps
        .iter()
        .find(|d| d.neq.len() == 1 && d.body.len() == 2 && d.constant.len() == 2)
        .expect("σ1' present");
    assert_eq!(sigma1p.disjuncts.len(), 1);
    assert_eq!(
        sigma1p.disjuncts[0].atoms[0].display(&m.source).to_string(),
        "P(x1,x2,z0)"
    );
    // σ2': S(x1,x1,y) ∧ Q(y,y) ∧ Constant(x1) → three disjuncts.
    let sigma2p = rev
        .deps
        .iter()
        .find(|d| {
            d.neq.is_empty()
                && d.constant.len() == 1
                && d.body.len() == 2
                && d.body
                    .iter()
                    .any(|a| m.target.name(a.rel) == "S" && a.args[0] == a.args[1])
        })
        .expect("σ2' present");
    assert_eq!(sigma2p.disjuncts.len(), 3, "{sigma2p}");
}

#[test]
fn generators_are_certified_by_the_chase() {
    // Each returned generator must pass Definition 4.2's chase test, and
    // the non-generators the paper rules out must fail it.
    let m = paper::example_4_5();
    let psi = sigma2_head(&m);
    let x = vec![Var::new("x1")];
    let gens = min_gen(&m, &psi, &x, &MinGenOptions::default()).unwrap();
    for g in &gens {
        assert!(
            is_generator(&m.tgds, &m.source, &m.target, &g.atoms, &psi, &x).unwrap(),
            "{:?}",
            g
        );
    }
    // R alone does not generate ∃y(S(x1,x1,y) ∧ Q(y,y)).
    let r_only = vec![Atom::parse_parts(&m.source, "R", &["x1", "x1", "z"]).unwrap()];
    assert!(!is_generator(&m.tgds, &m.source, &m.target, &r_only, &psi, &x).unwrap());
}

//! Experiment E9: the Inverse walk-through of Example 5.4.
//!
//! The paper computes, for the mapping over `S = {R/2}`,
//!
//! ```text
//! R(x1,x2) ∧ R(x2,x1) → ∃y Q(x1,y)
//! R(x1,x2) → ∃y S(x1,x2,y)
//! R(x1,x1) → U(x1)
//! ```
//!
//! the output `Σ'` consisting of exactly
//!
//! ```text
//! (1) Q(x1,y1) ∧ S(x1,x1,y2) ∧ U(x1) ∧ Constant(x1) → R(x1,x1)
//! (2) S(x1,x2,y) ∧ Constant(x1) ∧ Constant(x2) ∧ x1 ≠ x2 → R(x1,x2)
//! ```

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

#[test]
fn constant_propagation_holds_as_the_paper_argues() {
    // "the chase of R(x1,x2) is S(x1,x2,y), which contains both
    // variables".
    let m = paper::example_5_4();
    assert!(constant_propagation_property(&m).unwrap());
}

#[test]
fn inverse_output_matches_the_paper() {
    let m = paper::example_5_4();
    let rev = inverse(&m).unwrap().expect("constant propagation holds");
    assert_eq!(rev.deps.len(), 2, "two prime atoms for R/2");

    // Dependency (1): ω(Σ, I_{R(x1,x1)}).
    let d1 = &rev.deps[0];
    assert_eq!(
        d1.to_string(),
        "Q(x1,y1) & S(x1,x1,y2) & U(x1) & const(x1) -> R(x1,x1)"
    );

    // Dependency (2): ω(Σ, I_{R(x1,x2)}).
    let d2 = &rev.deps[1];
    assert_eq!(
        d2.to_string(),
        "S(x1,x2,y1) & const(x1) & const(x2) & x1 != x2 -> R(x1,x2)"
    );

    // Language classification: full tgds with constants and inequalities
    // among constants (Theorem 5.1's exact language).
    for d in &rev.deps {
        assert!(d.is_full());
        assert!(!d.has_disjunction());
    }
    assert!(rev.inequalities_among_constants());
}

#[test]
fn output_verifies_as_an_inverse_on_a_closed_universe() {
    let m = paper::example_5_4();
    let rev = inverse(&m).unwrap().unwrap();
    // All subsets of the 4 possible R-tuples over two constants.
    let universe = ground_instances(&m.source, &["a", "b"], 4);
    assert_eq!(universe.len(), 16);
    let report = is_inverse_bounded(&m, &rev, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
}

#[test]
fn inverse_round_trips_exactly() {
    // An inverse recovers the original ground instance itself on these
    // inputs (not merely an equivalent one).
    let m = paper::example_5_4();
    let rev = inverse(&m).unwrap().unwrap();
    for text in ["R(a,a)", "R(a,b)", "R(a,b) R(b,a)", "R(a,a) R(a,b) R(b,b)"] {
        let i = Instance::parse(&m.source, text).unwrap();
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        assert_eq!(rt.recovered.len(), 1);
        assert_eq!(rt.recovered[0], i, "exact recovery of {text}");
        assert!(rt.is_faithful());
    }
}

#[test]
fn weakest_inverse_is_implied_by_the_join_inverse() {
    // §5: the algorithm's M' is the weakest inverse — any other inverse
    // logically implies it. Spot-check via the copy mapping: its
    // hand-written inverse Q(x,y)∧const(x)∧const(y) → P(x,y) implies the
    // algorithm output on every instance pair we can test.
    let m = paper::copy();
    let algo = inverse(&m).unwrap().unwrap();
    let hand = ReverseMapping::parse(&m, &["Q(x,y) & const(x) & const(y) -> P(x,y)"]).unwrap();
    let universe = ground_instances(&m.source, &["a", "b"], 4);
    for i in &universe {
        let u = m.chase(i).unwrap();
        for k in &universe {
            // hand ⊨ algo: whenever (U, K) satisfies the hand-written
            // dependencies it satisfies the algorithm's.
            if quasi_inverse::chase::satisfies_all_disj_tgds(&u, k, &hand.deps) {
                assert!(
                    quasi_inverse::chase::satisfies_all_disj_tgds(&u, k, &algo.deps),
                    "hand-written inverse fails to imply the weakest one on ({i}, {k})"
                );
            }
        }
    }
}

//! Experiment E2: exact reproduction of Figure 1 / Example 6.1.
//!
//! Every instance drawn in the figure — `I, U, V₁, chase(V₁), V₂, U₂` —
//! is recomputed and compared against the paper's data, and the two
//! verdicts (identity for `M'`, homomorphic equivalence for `M''`) are
//! asserted.

use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn figure_instance() -> (SchemaMapping, Instance) {
    let m = paper::decomposition();
    let i = Instance::parse(&m.source, "P(a,b,c) P(a2,b,c2)").unwrap();
    (m, i)
}

#[test]
fn u_matches_the_figure() {
    let (m, i) = figure_instance();
    let u = m.chase(&i).unwrap();
    assert_eq!(
        u,
        Instance::parse(&m.target, "Q(a,b) Q(a2,b) R(b,c) R(b,c2)").unwrap()
    );
}

#[test]
fn v1_and_its_chase_match_the_figure() {
    let (m, i) = figure_instance();
    let rev = paper::decomposition_quasi_inverse_join();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    assert_eq!(rt.recovered.len(), 1, "Σ' is disjunction-free");
    // V1: the 2×2 combination of first/last columns through mid b.
    assert_eq!(
        rt.recovered[0],
        Instance::parse(&m.source, "P(a,b,c) P(a,b,c2) P(a2,b,c) P(a2,b,c2)").unwrap()
    );
    // "the result is identical to U"
    assert_eq!(rt.rechased[0], rt.u);
    assert!(rt.is_sound() && rt.is_faithful());
}

#[test]
fn v2_and_u2_match_the_figure() {
    let (m, i) = figure_instance();
    let rev = paper::decomposition_quasi_inverse_lav();
    let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
    assert_eq!(rt.recovered.len(), 1, "Σ'' is disjunction-free");
    let v2 = &rt.recovered[0];
    // V2 = { P(a,b,Z), P(a',b,Z'), P(X,b,c), P(X',b,c') }: four facts,
    // four distinct nulls, first/last columns as in the figure.
    assert_eq!(v2.fact_count(), 4);
    assert_eq!(v2.nulls().len(), 4);
    let p = m.source.rel("P").unwrap();
    let firsts: Vec<Value> = v2.tuples(p).map(|t| t[0]).collect();
    let mids: Vec<Value> = v2.tuples(p).map(|t| t[1]).collect();
    assert!(mids.iter().all(|&v| v == Value::constant("b")));
    assert_eq!(
        firsts.iter().filter(|v| v.is_const()).count(),
        2,
        "a and a2 rows"
    );
    // U2 strictly extends U with null tuples but stays hom-equivalent.
    let u2 = &rt.rechased[0];
    assert!(u2.fact_count() > rt.u.fact_count());
    assert!(rt.u.is_subinstance_of(u2).unwrap());
    assert!(hom_equivalent(u2, &rt.u));
    assert!(rt.is_sound() && rt.is_faithful());
}

#[test]
fn faithfulness_holds_for_every_ground_instance_sampled() {
    // "It can be shown that this is true for every ground instance I":
    // spot-check the claim across an exhaustive small universe.
    let m = paper::decomposition();
    let universe = quasi_inverse::core::enumerate::ground_instances(&m.source, &["a", "b"], 3);
    for rev in [
        paper::decomposition_quasi_inverse_join(),
        paper::decomposition_quasi_inverse_lav(),
    ] {
        for i in &universe {
            let rt = round_trip(&m, &rev, i, Default::default()).unwrap();
            assert!(rt.is_faithful(), "unfaithful on {i}");
        }
    }
}

#[test]
fn m_prime_rechase_identity_is_specific_to_m_prime() {
    // The figure shows chase(V1) = U exactly, while U2 ≠ U — i.e. the two
    // quasi-inverses are genuinely different reverse mappings.
    let (m, i) = figure_instance();
    let join = paper::decomposition_quasi_inverse_join();
    let lav = paper::decomposition_quasi_inverse_lav();
    let rt_join = round_trip(&m, &join, &i, Default::default()).unwrap();
    let rt_lav = round_trip(&m, &lav, &i, Default::default()).unwrap();
    assert_eq!(rt_join.rechased[0], rt_join.u);
    assert_ne!(rt_lav.rechased[0], rt_lav.u);
    assert_ne!(rt_join.recovered[0], rt_lav.recovered[0]);
}

//! Experiment E7: the unifying framework of §3 — unique solutions,
//! `(~1,~2)`-subset properties, and Theorem 3.5's equivalence, observed
//! on the paper's mappings over exhaustive bounded universes.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

/// Universe closed under unions/subsets: all subsets of the two-constant
/// tuple universe.
fn closed_universe(m: &SchemaMapping) -> Vec<Instance> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    ground_instances(&m.source, &["a", "b"], tuples)
}

#[test]
fn section_1_mappings_fail_unique_solutions() {
    // "none of them has the unique-solutions property" (§1).
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
    ] {
        let universe = closed_universe(&m);
        let violation = unique_solutions_bounded(&m, &universe).unwrap();
        assert!(
            violation.is_some(),
            "expected a unique-solutions violation for {m}"
        );
    }
}

#[test]
fn example_3_10_unique_solutions_witness() {
    // The paper's explicit witness pair for Decomposition.
    let m = paper::decomposition();
    let i1 = Instance::parse(&m.source, "P(c0,c0,c0) P(c0,c0,c1) P(c1,c0,c0)").unwrap();
    let i2 = i1
        .union(&Instance::parse(&m.source, "P(c1,c0,c1)").unwrap())
        .unwrap();
    assert_ne!(i1, i2);
    assert!(equivalent(&m, &i1, &i2).unwrap());
}

#[test]
fn equality_subset_property_fails_exactly_where_inverses_fail() {
    // Corollary 3.6: invertible ⟺ (=,=)-subset property. The three §1
    // mappings fail it; the copy mapping has it.
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
    ] {
        let universe = closed_universe(&m);
        let r =
            subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
        assert!(!r.holds, "(=,=) must fail for {m}");
    }
    let m = paper::copy();
    let universe = closed_universe(&m);
    let r = subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
    assert!(r.holds);
}

#[test]
fn solution_equiv_subset_property_holds_for_section_1_mappings() {
    // Theorem 3.5 + Prop 3.11: the three §1 LAV mappings have the
    // (~M,~M)-subset property, hence quasi-inverses.
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
    ] {
        let universe = closed_universe(&m);
        let r = subset_property_bounded(
            &m,
            Relation::SolutionEquiv,
            Relation::SolutionEquiv,
            &universe,
        )
        .unwrap();
        assert!(r.holds, "(~M,~M) must hold for {m}: {:?}", r.failures);
        assert!(r.checked_pairs > 0);
    }
}

#[test]
fn mixed_relations_interpolate() {
    // Proposition 3.7 (monotonicity in the equivalence relations): a
    // (=,~M)-subset witness is also a (~M,~M) one — Example 3.10 even
    // proves the stronger (=,~M) property for Decomposition. Check the
    // implication chain on the bounded universe.
    let m = paper::decomposition();
    let universe = ground_instances(&m.source, &["a", "b"], 8);
    let strong =
        subset_property_bounded(&m, Relation::Equality, Relation::SolutionEquiv, &universe)
            .unwrap();
    assert!(strong.holds, "(=,~M) holds (Example 3.10's proof)");
    let weak = subset_property_bounded(
        &m,
        Relation::SolutionEquiv,
        Relation::SolutionEquiv,
        &universe,
    )
    .unwrap();
    assert!(weak.holds, "hence (~M,~M) holds too (Prop 3.7)");
}

#[test]
fn subset_property_implies_unique_solutions_on_copy() {
    // §3: the (=,=)-subset property implies the unique-solutions
    // property ("by applying the (=,=)-subset property twice").
    let m = paper::copy();
    let universe = closed_universe(&m);
    let subset =
        subset_property_bounded(&m, Relation::Equality, Relation::Equality, &universe).unwrap();
    let unique = unique_solutions_bounded(&m, &universe).unwrap();
    assert!(subset.holds);
    assert!(unique.is_none());
}

#[test]
fn monotonicity_of_solution_spaces() {
    // §3's starting observation: I1 ⊆ I2 ⇒ Sol(I2) ⊆ Sol(I1),
    // exhaustively on a closed universe.
    let m = paper::decomposition();
    let universe = ground_instances(&m.source, &["a", "b"], 8);
    for a in &universe {
        for b in &universe {
            if a.is_subinstance_of(b).unwrap() {
                assert!(solutions_subset(&m, b, a).unwrap());
            }
        }
    }
}

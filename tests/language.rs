//! The language theorems of §§4–5 (experiment E1's language column):
//! Theorems 4.6, 4.7, 4.8, 4.9, 4.10, 4.11 and 5.1 — the positive
//! artifacts the paper exhibits, recomputed and verified.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::paper;

fn closed_universe(m: &SchemaMapping) -> Vec<Instance> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    ground_instances(&m.source, &["a", "b"], tuples)
}

#[test]
fn thm_4_8_papers_inverse_verifies_and_uses_constants() {
    // M: P(x,y) → ∃z (Q(x,z) ∧ Q(z,y)); the paper's inverse uses
    // Constant guards (and provably cannot avoid them).
    let m = paper::thm_4_8();
    let inv = paper::thm_4_8_inverse();
    assert!(inv.deps[0].has_constants());
    let universe = closed_universe(&m);
    let report = is_inverse_bounded(&m, &inv, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
    // Dropping the guards breaks it: Q(x,z) ∧ Q(z,y) → P(x,y) without
    // Constant would fire on the nulls of U and invent facts.
    let unguarded = ReverseMapping::parse(&m, &["Q(x,z) & Q(z,y) -> P(x,y)"]).unwrap();
    let i = Instance::parse(&m.source, "P(a,b)").unwrap();
    let rt = round_trip(&m, &unguarded, &i, Default::default()).unwrap();
    // U = {Q(a,N), Q(N,b)}: the unguarded premise matches x=a,z=N,y=b …
    // recovering P(a,b) — plus nothing wrong here; the failure shows up
    // as non-inverse behaviour on pairs, which the bounded check sees:
    let report = is_inverse_bounded(&m, &unguarded, &universe);
    // (the unguarded mapping is not guard-complete, so the exact checker
    // refuses it — itself evidence that it leaves the language)
    assert!(report.is_err());
    assert!(rt.is_sound());
}

#[test]
fn thm_4_8_algorithms_inverse_agrees_with_papers() {
    let m = paper::thm_4_8();
    let algo = inverse(&m).unwrap().expect("constant propagation holds");
    // ω(Σ, I_{P(x1,x2)}) = Q(x1,y1) ∧ Q(y1,x2) ∧ guards → P(x1,x2):
    // the same join as the paper's inverse, with the all-distinct guard.
    let universe = closed_universe(&m);
    let report = is_inverse_bounded(&m, &algo, &universe).unwrap();
    assert!(report.holds);
    let f = algo.language_features();
    assert!(f.constants && f.inequalities && !f.disjunction && !f.existentials);
}

#[test]
fn thm_4_9_inverse_needs_inequalities_and_verifies() {
    let m = paper::thm_4_9();
    let algo = inverse(&m).unwrap().expect("constant propagation holds");
    assert!(algo.language_features().inequalities);
    let universe = closed_universe(&m);
    let report = is_inverse_bounded(&m, &algo, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
}

#[test]
fn thm_4_10_quasi_inverse_uses_disjunction() {
    // The mapping is quasi-invertible but needs disjunction; the
    // algorithm output indeed has a genuinely disjunctive dependency.
    let m = paper::thm_4_10();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    assert!(rev.language_features().disjunction);
    let universe = closed_universe(&m);
    let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
}

#[test]
fn thm_4_11_quasi_inverse_uses_existentials() {
    // P(x,y) → R(x), P(x,x) → S(x): full mapping, yet its quasi-inverse
    // needs an existential (R(x) can only be explained by ∃z P(x,z)).
    let m = paper::thm_4_11();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    assert!(rev.language_features().existentials);
    let universe = closed_universe(&m);
    let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
    assert!(report.holds, "mismatches: {:?}", report.mismatches);
}

#[test]
fn thm_4_7_lav_quasi_inverse_without_disjunction_exists() {
    // Theorem 4.7: LAV mappings have disjunction-free quasi-inverses.
    // Example 3.10's Σ'' (two plain tgds) witnesses this for
    // Decomposition; it round-trips faithfully on an exhaustive sample.
    let m = paper::decomposition();
    let rev = paper::decomposition_quasi_inverse_lav();
    assert!(!rev.language_features().disjunction);
    for i in ground_instances(&m.source, &["a", "b"], 3) {
        let rt = round_trip(&m, &rev, &i, Default::default()).unwrap();
        assert!(rt.is_sound() && rt.is_faithful(), "on {i}");
    }
}

#[test]
fn thm_4_6_full_mappings_get_quasi_inverses_without_constant_on_nulls() {
    // Theorem 4.6: for FULL mappings Constant is dispensable. Our
    // algorithm still emits the guards, but for a full mapping the chase
    // produces no nulls, so stripping every Constant guard from the
    // output leaves its behaviour on chase results unchanged — verified
    // semantically on thm 4.10's full mapping.
    let m = paper::thm_4_10();
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let stripped_texts: Vec<String> = rev
        .deps
        .iter()
        .map(|d| {
            let mut clone = d.clone();
            clone.constant.clear();
            clone.to_string()
        })
        .collect();
    let refs: Vec<&str> = stripped_texts.iter().map(String::as_str).collect();
    let stripped = ReverseMapping::parse(&m, &refs).unwrap();
    assert!(!stripped.language_features().constants);
    // Same recovery behaviour on every chase result of the universe.
    for i in ground_instances(&m.source, &["a", "b"], 2) {
        let a = quasi_inverse::core::exchange::recovery_leaves(&m, &rev, &i, Default::default())
            .unwrap();
        let b =
            quasi_inverse::core::exchange::recovery_leaves(&m, &stripped, &i, Default::default())
                .unwrap();
        assert_eq!(a, b, "guard-free behaviour differs on {i}");
    }
}

#[test]
fn thm_5_1_language_of_inverses() {
    // Wherever the Inverse algorithm produces output, that output is in
    // Theorem 5.1's language: FULL tgds with constants and inequalities
    // among constants.
    for m in [
        paper::copy(),
        paper::thm_4_8(),
        paper::thm_4_9(),
        paper::example_5_4(),
    ] {
        let rev = inverse(&m).unwrap().expect("constant propagation holds");
        for d in &rev.deps {
            assert!(d.is_full(), "{d}");
        }
        assert!(rev.inequalities_among_constants());
    }
}

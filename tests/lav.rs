//! Experiment E5: Proposition 3.11 / Theorem 4.7 — every LAV schema
//! mapping has a quasi-inverse — exercised on random LAV mappings.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::random::{
    random_ground_instance, random_mapping, rng, InstanceParams, MappingParams,
};

fn lav_params() -> MappingParams {
    MappingParams {
        n_source_rels: 2,
        n_target_rels: 2,
        max_arity: 2,
        n_tgds: 3,
        lav: true,
        full: false,
        max_body_atoms: 1,
        max_head_atoms: 2,
    }
}

/// Closed two-constant universe over a random mapping's source schema.
fn closed_universe(m: &SchemaMapping) -> Vec<Instance> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    ground_instances(&m.source, &["a", "b"], tuples)
}

#[test]
fn union_witness_validates_on_random_lav_mappings() {
    // Prop 3.11's proof: I2 ~M I1 ∪ I2 whenever Sol(I2) ⊆ Sol(I1).
    for seed in 0..12 {
        let m = random_mapping(&mut rng(seed), &lav_params());
        let universe = closed_universe(&m);
        assert!(
            union_witness_subset_property(&m, &universe)
                .unwrap()
                .is_none(),
            "union witness failed for seed {seed}: {m}"
        );
    }
}

#[test]
fn subset_property_holds_on_random_lav_mappings() {
    for seed in 0..8 {
        let m = random_mapping(&mut rng(100 + seed), &lav_params());
        let universe = closed_universe(&m);
        let r = subset_property_bounded(
            &m,
            Relation::SolutionEquiv,
            Relation::SolutionEquiv,
            &universe,
        )
        .unwrap();
        assert!(r.holds, "seed {seed}: {m}");
    }
}

#[test]
fn quasi_inverse_outputs_round_trip_soundly_and_faithfully() {
    // Theorems 6.7/6.8 on random LAV mappings (which are always
    // quasi-invertible, so the algorithm output is a quasi-inverse and
    // must be sound + faithful).
    let ip = InstanceParams {
        n_consts: 3,
        n_facts: 4,
    };
    for seed in 0..10 {
        let mut r = rng(1000 + seed);
        let m = random_mapping(&mut r, &lav_params());
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{m}"));
        for _ in 0..3 {
            let i = random_ground_instance(&m.source, &mut r, &ip);
            let rt = round_trip(&m, &rev, &i, Default::default())
                .unwrap_or_else(|e| panic!("seed {seed} on {i}: {e}"));
            assert!(rt.is_sound(), "unsound: seed {seed}, I = {i}, M = {m}");
            assert!(
                rt.is_faithful(),
                "unfaithful: seed {seed}, I = {i}, M = {m}"
            );
        }
    }
}

#[test]
fn nullary_head_variables_are_not_a_thing_but_unary_lav_works() {
    // Degenerate LAV shapes: single unary relation each side.
    let m = SchemaMapping::parse("P/1", "Q/1", &["P(x) -> Q(x)"]).unwrap();
    let universe = closed_universe(&m);
    assert!(union_witness_subset_property(&m, &universe)
        .unwrap()
        .is_none());
    let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
    let report = is_quasi_inverse_bounded(&m, &rev, &universe).unwrap();
    assert!(report.holds);
}

#[test]
fn non_lav_mapping_can_fail_the_union_witness() {
    // Sanity: the union witness is a LAV phenomenon — Prop 3.12's GAV
    // mapping breaks it (so the test above is not vacuous).
    let m = quasi_inverse::workloads::paper::prop_3_12();
    let universe = ground_instances(&m.source, &["a", "b", "c"], 4);
    assert!(union_witness_subset_property(&m, &universe)
        .unwrap()
        .is_some());
}

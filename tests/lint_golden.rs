//! Golden-file tests for the static analyzer: the rendered lint output
//! (text, and JSON for representative cases) over every example mapping
//! file and every paper-catalogue mapping is pinned byte-for-byte.
//!
//! Regenerate after an intentional change with
//! `UPDATE_GOLDEN=1 cargo test --test lint_golden`.

use quasi_inverse::analyze::analyze_text;
use quasi_inverse::workloads::{catalogue, mapping_file_text};
use std::fs;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, actual: &str) {
    let path = repo_root().join("tests/golden").join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; run with UPDATE_GOLDEN=1 to regenerate"
    );
}

fn example_files() -> Vec<PathBuf> {
    let dir = repo_root().join("examples/mappings");
    let mut files: Vec<_> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "qim"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 8,
        "expected the full example set, found {}",
        files.len()
    );
    files
}

#[test]
fn example_mappings_text_output_is_pinned() {
    for f in example_files() {
        let stem = f.file_stem().unwrap().to_str().unwrap().to_owned();
        let text = fs::read_to_string(&f).unwrap();
        let analysis = analyze_text(&text);
        // Every shipped example must be usable: lint-clean of errors
        // (warnings and infos are expected and pinned below).
        assert!(
            !analysis.diagnostics.has_errors(),
            "example {stem}.qim has analyzer errors"
        );
        let rendered = analysis.diagnostics.render_text(&format!("{stem}.qim"));
        check_golden(&format!("{stem}.lint.txt"), &rendered);
    }
}

#[test]
fn example_mappings_json_output_is_pinned() {
    // One file with findings (the non-terminating target tgd) and one
    // whose findings are info-only, to pin both shapes of the JSON.
    for stem in ["nonterminating", "example_5_4"] {
        let path = repo_root().join(format!("examples/mappings/{stem}.qim"));
        let text = fs::read_to_string(&path).unwrap();
        let analysis = analyze_text(&text);
        let rendered = analysis.diagnostics.render_json(&format!("{stem}.qim"));
        check_golden(&format!("{stem}.lint.json"), &rendered);
    }
}

#[test]
fn paper_catalogue_lint_output_is_pinned() {
    // The paper workloads (Examples 3.10, 4.5, 5.4, Figure 1, …) run
    // through the same front end via their mapping-file rendering; all
    // outputs are concatenated into a single golden file so a new
    // catalogue entry forces a conscious regeneration.
    let mut out = String::new();
    for entry in catalogue() {
        let text = mapping_file_text(&entry.mapping);
        let analysis = analyze_text(&text);
        assert!(
            !analysis.diagnostics.has_errors(),
            "catalogue entry {} has analyzer errors",
            entry.name
        );
        out.push_str(&format!("== {} ==\n", entry.name));
        out.push_str(&analysis.diagnostics.render_text(entry.name));
    }
    check_golden("paper_catalogue.lint.txt", &out);
}

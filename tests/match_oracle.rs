//! Differential oracle for the pattern matcher.
//!
//! `MatchEngine` is the hot core of the whole stack (trigger enumeration,
//! generator tests, `~M`), and it carries real machinery: fail-first fact
//! ordering, candidate caps, and a lazily-built per-position value index
//! that kicks in only after `INDEX_SCAN_THRESHOLD` scans of a relation
//! with at least `INDEX_MIN_TUPLES` tuples. Any of those can silently
//! change *which* matches come back. These tests pin the semantics to the
//! brute-force reference (`qi_schema::brute`): on seed-scheduled random
//! patterns, instances and constraint bundles, the engine's match *set*
//! must equal the oracle's exactly — on the pure scan path and on
//! workloads big and join-heavy enough to cross into the indexed path.

use quasi_inverse::schema::{
    brute_force_matches, engine_matches, Instance, MatchConstraints, PatFact, PatTerm, Pattern,
    Schema, Value,
};
use quasi_inverse::workloads::random::rng;
use quasi_inverse::workloads::rng::Rng64;

const CASES: u64 = 40;

/// A random instance over `schema` mixing constants and nulls.
fn random_instance(schema: &Schema, r: &mut Rng64, n_facts: usize, n_vals: usize) -> Instance {
    let mut inst = Instance::new(schema.clone());
    for _ in 0..n_facts {
        let rel = schema
            .rel_ids()
            .nth(r.random_range(0..schema.len()))
            .unwrap();
        let args: Vec<Value> = (0..schema.arity(rel))
            .map(|_| {
                let k = r.random_range(0..n_vals);
                if r.random_bool(0.4) {
                    Value::null(k as u64)
                } else {
                    Value::constant(&format!("c{k}"))
                }
            })
            .collect();
        inst.insert(rel, args).unwrap();
    }
    inst
}

/// A random pattern over `schema` with `nvars` variables; every variable
/// index may occur in several facts (joins) or, occasionally, none.
fn random_pattern(schema: &Schema, r: &mut Rng64, n_facts: usize, nvars: usize) -> Pattern {
    let facts = (0..n_facts)
        .map(|_| {
            let rel = schema
                .rel_ids()
                .nth(r.random_range(0..schema.len()))
                .unwrap();
            let args = (0..schema.arity(rel))
                .map(|_| {
                    if r.random_bool(0.15) {
                        PatTerm::Value(Value::constant(&format!("c{}", r.random_range(0..3))))
                    } else {
                        PatTerm::Var(r.random_range(0..nvars) as u32)
                    }
                })
                .collect();
            PatFact { rel, args }
        })
        .collect();
    Pattern { facts, nvars }
}

/// A random constraint bundle exercising every kind the engine supports.
fn random_constraints(r: &mut Rng64, nvars: usize, target: &Instance) -> MatchConstraints {
    let mut c = MatchConstraints::default();
    let pick = |r: &mut Rng64| r.random_range(0..nvars) as u32;
    if r.random_bool(0.3) {
        let domain: Vec<Value> = target.active_domain().into_iter().collect();
        if !domain.is_empty() {
            let var = pick(r);
            let value = domain[r.random_range(0..domain.len())];
            c.fixed.push((var, value));
        }
    }
    if r.random_bool(0.4) && nvars >= 2 {
        let a = pick(r);
        let b = pick(r);
        c.distinct.push((a, b));
        // A reflexive pair (v,v) would be unsatisfiable by construction;
        // the engine and oracle must agree on that too, so keep it.
    }
    if r.random_bool(0.3) {
        c.constants_only.push(pick(r));
    }
    if r.random_bool(0.2) {
        c.nulls_only.push(pick(r));
    }
    c.injective = r.random_bool(0.2);
    c
}

#[test]
fn engine_agrees_with_brute_force_on_scan_path() {
    // Small instances (< INDEX_MIN_TUPLES) — the index never builds, so
    // this pins the plain scanning search.
    let schema = Schema::parse("P/2 Q/1 R/3").unwrap();
    for seed in 0..CASES {
        let mut r = rng(seed);
        let target = random_instance(&schema, &mut r, 6, 4);
        let nvars = 1 + r.random_range(0..3);
        let n_facts = 1 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, n_facts, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        assert_eq!(
            engine_matches(&pattern, &target, &constraints),
            brute_force_matches(&pattern, &target, &constraints),
            "seed {seed}"
        );
    }
}

#[test]
fn engine_agrees_with_brute_force_on_indexed_path() {
    // Large single relation (≥ INDEX_MIN_TUPLES = 16 tuples) and a
    // multi-fact join pattern: the fail-first pick re-counts candidates
    // for every remaining fact at every search node, so the relation is
    // scanned far past INDEX_SCAN_THRESHOLD = 4 and the posting lists
    // kick in mid-search. The match set must not change when they do.
    let schema = Schema::parse("E/2").unwrap();
    for seed in 0..CASES {
        let mut r = rng(1_000 + seed);
        let target = random_instance(&schema, &mut r, 24, 5);
        assert!(target.fact_count() >= 16, "seed {seed}: workload too small");
        let nvars = 2 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, 3, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        assert_eq!(
            engine_matches(&pattern, &target, &constraints),
            brute_force_matches(&pattern, &target, &constraints),
            "seed {seed}"
        );
    }
}

#[test]
fn engine_agrees_with_brute_force_under_each_constraint_alone() {
    // One bundle per constraint kind, deterministic pattern, so a failure
    // names the guilty constraint directly.
    let schema = Schema::parse("P/2").unwrap();
    let mut r = rng(77);
    let target = random_instance(&schema, &mut r, 20, 4);
    let pattern = Pattern {
        facts: vec![
            PatFact {
                rel: schema.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            },
            PatFact {
                rel: schema.rel("P").unwrap(),
                args: vec![PatTerm::Var(1), PatTerm::Var(2)],
            },
        ],
        nvars: 3,
    };
    let bundles: Vec<(&str, MatchConstraints)> = vec![
        ("none", MatchConstraints::default()),
        (
            "fixed",
            MatchConstraints {
                fixed: vec![(0, Value::constant("c0"))],
                ..Default::default()
            },
        ),
        (
            "distinct",
            MatchConstraints {
                distinct: vec![(0, 2)],
                ..Default::default()
            },
        ),
        (
            "constants_only",
            MatchConstraints {
                constants_only: vec![1],
                ..Default::default()
            },
        ),
        (
            "nulls_only",
            MatchConstraints {
                nulls_only: vec![1],
                ..Default::default()
            },
        ),
        (
            "injective",
            MatchConstraints {
                injective: true,
                ..Default::default()
            },
        ),
    ];
    for (name, constraints) in &bundles {
        assert_eq!(
            engine_matches(&pattern, &target, constraints),
            brute_force_matches(&pattern, &target, constraints),
            "constraint kind {name}"
        );
    }
}

#[test]
fn first_and_exists_agree_with_all() {
    // The early-exit entry points must answer consistently with the full
    // enumeration (this is the observable contract of the backtracking
    // state restoration in `MatchEngine::search`).
    let schema = Schema::parse("P/2 Q/1").unwrap();
    for seed in 0..CASES {
        let mut r = rng(2_000 + seed);
        let target = random_instance(&schema, &mut r, 18, 4);
        let nvars = 1 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, 2, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        let engine = quasi_inverse::schema::MatchEngine::new(&pattern, &target, &constraints);
        let all = engine.all();
        assert_eq!(engine.exists(), !all.is_empty(), "seed {seed}");
        assert_eq!(engine.first(), all.first().cloned(), "seed {seed}");
    }
}

//! Differential oracles for the pattern matcher and the chase strategies.
//!
//! `MatchEngine` is the hot core of the whole stack (trigger enumeration,
//! generator tests, `~M`), and it carries real machinery: fail-first fact
//! ordering, candidate caps, and the `FactStore`'s incrementally
//! maintained per-`(relation, position)` posting lists. Any of those can
//! silently change *which* matches come back. These tests pin the
//! semantics to the brute-force reference (`qi_schema::brute`): on
//! seed-scheduled random patterns, instances and constraint bundles, the
//! engine's match *set* must equal the oracle's exactly — on scan-served
//! and posting-served workloads alike.
//!
//! The second half of the file is the chase-strategy oracle: the
//! semi-naive iterated chase (delta-restricted trigger rounds, see
//! DESIGN.md) must be **byte-identical** to the naive reference on paper
//! and randomized workloads, across thread counts — while enumerating
//! strictly fewer triggers on workloads that iterate.

use quasi_inverse::chase::{
    chase_with_target_deps_stats, disjunctive_chase_with_stats, ChaseStrategy, DisjChaseOptions,
    ExchangeSetting, TargetChaseOptions, TargetChaseResult,
};
use quasi_inverse::exec::Parallelism;
use quasi_inverse::lang::{parse_egd, parse_tgd};
use quasi_inverse::schema::{
    brute_force_matches, engine_matches, Instance, MatchConstraints, PatFact, PatTerm, Pattern,
    Schema, Value,
};
use quasi_inverse::workloads::paper;
use quasi_inverse::workloads::random::{random_ground_instance, rng, InstanceParams};
use quasi_inverse::workloads::rng::Rng64;

const CASES: u64 = 40;

/// A random instance over `schema` mixing constants and nulls.
fn random_instance(schema: &Schema, r: &mut Rng64, n_facts: usize, n_vals: usize) -> Instance {
    let mut inst = Instance::new(schema.clone());
    for _ in 0..n_facts {
        let rel = schema
            .rel_ids()
            .nth(r.random_range(0..schema.len()))
            .unwrap();
        let args: Vec<Value> = (0..schema.arity(rel))
            .map(|_| {
                let k = r.random_range(0..n_vals);
                if r.random_bool(0.4) {
                    Value::null(k as u64)
                } else {
                    Value::constant(&format!("c{k}"))
                }
            })
            .collect();
        inst.insert(rel, args).unwrap();
    }
    inst
}

/// A random pattern over `schema` with `nvars` variables; every variable
/// index may occur in several facts (joins) or, occasionally, none.
fn random_pattern(schema: &Schema, r: &mut Rng64, n_facts: usize, nvars: usize) -> Pattern {
    let facts = (0..n_facts)
        .map(|_| {
            let rel = schema
                .rel_ids()
                .nth(r.random_range(0..schema.len()))
                .unwrap();
            let args = (0..schema.arity(rel))
                .map(|_| {
                    if r.random_bool(0.15) {
                        PatTerm::Value(Value::constant(&format!("c{}", r.random_range(0..3))))
                    } else {
                        PatTerm::Var(r.random_range(0..nvars) as u32)
                    }
                })
                .collect();
            PatFact { rel, args }
        })
        .collect();
    Pattern { facts, nvars }
}

/// A random constraint bundle exercising every kind the engine supports.
fn random_constraints(r: &mut Rng64, nvars: usize, target: &Instance) -> MatchConstraints {
    let mut c = MatchConstraints::default();
    let pick = |r: &mut Rng64| r.random_range(0..nvars) as u32;
    if r.random_bool(0.3) {
        let domain: Vec<Value> = target.active_domain().iter().copied().collect();
        if !domain.is_empty() {
            let var = pick(r);
            let value = domain[r.random_range(0..domain.len())];
            c.fixed.push((var, value));
        }
    }
    if r.random_bool(0.4) && nvars >= 2 {
        let a = pick(r);
        let b = pick(r);
        c.distinct.push((a, b));
        // A reflexive pair (v,v) would be unsatisfiable by construction;
        // the engine and oracle must agree on that too, so keep it.
    }
    if r.random_bool(0.3) {
        c.constants_only.push(pick(r));
    }
    if r.random_bool(0.2) {
        c.nulls_only.push(pick(r));
    }
    c.injective = r.random_bool(0.2);
    c
}

#[test]
fn engine_agrees_with_brute_force_on_scan_path() {
    // Small instances with join-light patterns: most candidate requests
    // have no bound position yet, so this pins the full-scan search.
    let schema = Schema::parse("P/2 Q/1 R/3").unwrap();
    for seed in 0..CASES {
        let mut r = rng(seed);
        let target = random_instance(&schema, &mut r, 6, 4);
        let nvars = 1 + r.random_range(0..3);
        let n_facts = 1 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, n_facts, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        assert_eq!(
            engine_matches(&pattern, &target, &constraints),
            brute_force_matches(&pattern, &target, &constraints),
            "seed {seed}"
        );
    }
}

#[test]
fn engine_agrees_with_brute_force_on_indexed_path() {
    // Large single relation and a multi-fact join pattern: once a fact's
    // pattern gains a bound position, its candidates come from the
    // store's posting lists instead of a relation scan. The match set
    // must not change when they do.
    let schema = Schema::parse("E/2").unwrap();
    for seed in 0..CASES {
        let mut r = rng(1_000 + seed);
        let target = random_instance(&schema, &mut r, 24, 5);
        assert!(target.fact_count() >= 16, "seed {seed}: workload too small");
        let nvars = 2 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, 3, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        assert_eq!(
            engine_matches(&pattern, &target, &constraints),
            brute_force_matches(&pattern, &target, &constraints),
            "seed {seed}"
        );
    }
}

#[test]
fn engine_agrees_with_brute_force_under_each_constraint_alone() {
    // One bundle per constraint kind, deterministic pattern, so a failure
    // names the guilty constraint directly.
    let schema = Schema::parse("P/2").unwrap();
    let mut r = rng(77);
    let target = random_instance(&schema, &mut r, 20, 4);
    let pattern = Pattern {
        facts: vec![
            PatFact {
                rel: schema.rel("P").unwrap(),
                args: vec![PatTerm::Var(0), PatTerm::Var(1)],
            },
            PatFact {
                rel: schema.rel("P").unwrap(),
                args: vec![PatTerm::Var(1), PatTerm::Var(2)],
            },
        ],
        nvars: 3,
    };
    let bundles: Vec<(&str, MatchConstraints)> = vec![
        ("none", MatchConstraints::default()),
        (
            "fixed",
            MatchConstraints {
                fixed: vec![(0, Value::constant("c0"))],
                ..Default::default()
            },
        ),
        (
            "distinct",
            MatchConstraints {
                distinct: vec![(0, 2)],
                ..Default::default()
            },
        ),
        (
            "constants_only",
            MatchConstraints {
                constants_only: vec![1],
                ..Default::default()
            },
        ),
        (
            "nulls_only",
            MatchConstraints {
                nulls_only: vec![1],
                ..Default::default()
            },
        ),
        (
            "injective",
            MatchConstraints {
                injective: true,
                ..Default::default()
            },
        ),
    ];
    for (name, constraints) in &bundles {
        assert_eq!(
            engine_matches(&pattern, &target, constraints),
            brute_force_matches(&pattern, &target, constraints),
            "constraint kind {name}"
        );
    }
}

#[test]
fn first_and_exists_agree_with_all() {
    // The early-exit entry points must answer consistently with the full
    // enumeration (this is the observable contract of the backtracking
    // state restoration in `MatchEngine::search`).
    let schema = Schema::parse("P/2 Q/1").unwrap();
    for seed in 0..CASES {
        let mut r = rng(2_000 + seed);
        let target = random_instance(&schema, &mut r, 18, 4);
        let nvars = 1 + r.random_range(0..3);
        let pattern = random_pattern(&schema, &mut r, 2, nvars);
        let constraints = random_constraints(&mut r, nvars, &target);
        let engine = quasi_inverse::schema::MatchEngine::new(&pattern, &target, &constraints);
        let all = engine.all();
        assert_eq!(engine.exists(), !all.is_empty(), "seed {seed}");
        assert_eq!(engine.first(), all.first().cloned(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------
// Chase-strategy oracle: semi-naive vs. naive, byte for byte.
// ---------------------------------------------------------------------

/// The strategy × thread-count grid every sweep runs over; the naive
/// single-threaded cell is the reference.
const GRID: [(ChaseStrategy, usize); 4] = [
    (ChaseStrategy::Naive, 1),
    (ChaseStrategy::Naive, 4),
    (ChaseStrategy::SemiNaive, 1),
    (ChaseStrategy::SemiNaive, 4),
];

/// Run the target chase over the whole grid and assert every cell's
/// rendered result (and step count) equals the naive sequential
/// reference. Returns `(naive, semi_naive)` trigger-enumeration counts.
fn sweep_target_chase(
    setting: &ExchangeSetting,
    source: &Instance,
    target: &Schema,
    ctx: &str,
) -> (u64, u64) {
    let mut reference: Option<(String, usize)> = None;
    let mut enumerated = [0u64; 2];
    for (strategy, threads) in GRID {
        let (result, stats) = chase_with_target_deps_stats(
            setting,
            source,
            target,
            TargetChaseOptions {
                strategy,
                parallelism: Parallelism::fixed(threads),
                ..Default::default()
            },
        )
        .unwrap();
        let rendered = match &result {
            TargetChaseResult::Solution(u) => format!("{u}"),
            TargetChaseResult::Failed { left, right } => format!("failed {left} {right}"),
        };
        match &reference {
            None => reference = Some((rendered, stats.steps)),
            Some((r, steps)) => {
                assert_eq!(&rendered, r, "{ctx}: {strategy:?} × {threads} diverged");
                assert_eq!(stats.steps, *steps, "{ctx}: {strategy:?} × {threads} steps");
            }
        }
        enumerated[matches!(strategy, ChaseStrategy::SemiNaive) as usize] =
            stats.exec.triggers_enumerated;
    }
    (enumerated[0], enumerated[1])
}

/// Transitive closure over a chain: the canonical iterating workload —
/// every round derives a new frontier of edges from the previous delta.
fn closure_setting() -> (ExchangeSetting, Schema, Schema) {
    let s = Schema::parse("E0/2").unwrap();
    let t = Schema::parse("E/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![parse_tgd(&s, &t, "E0(x,y) -> E(x,y)").unwrap()],
        target_tgds: vec![parse_tgd(&t, &t, "E(x,y) & E(y,z) -> E(x,z)").unwrap()],
        egds: vec![],
    };
    (setting, s, t)
}

#[test]
fn strategies_agree_on_iterating_paper_style_settings() {
    // Closure chain: several delta rounds, no repairs.
    let (setting, s, t) = closure_setting();
    let chain = Instance::parse(&s, "E0(a,b) E0(b,c) E0(c,d) E0(d,e) E0(e,f) E0(f,g)").unwrap();
    let (naive, semi) = sweep_target_chase(&setting, &chain, &t, "closure chain");
    assert!(
        naive >= 2 * semi,
        "closure chain: semi-naive should enumerate ≤ half the triggers (naive {naive}, semi {semi})"
    );

    // Employee setting: existential st-tgd, a closure target tgd and a
    // key egd — the repair forces a full re-enumeration round, which
    // must not break byte identity.
    let s = Schema::parse("EmpSrc/2 Boss/2").unwrap();
    let t = Schema::parse("Emp/2 Reports/2").unwrap();
    let setting = ExchangeSetting {
        st_tgds: vec![
            parse_tgd(&s, &t, "EmpSrc(id,name) -> Emp(id,name)").unwrap(),
            parse_tgd(&s, &t, "Boss(e,b) -> Reports(e,b)").unwrap(),
        ],
        target_tgds: vec![
            parse_tgd(&t, &t, "Reports(x,y) & Reports(y,z) -> Reports(x,z)").unwrap(),
        ],
        egds: vec![parse_egd(&t, "Emp(id,n1) & Emp(id,n2) -> n1 = n2").unwrap()],
    };
    let i = Instance::parse(
        &s,
        "EmpSrc(e1,ann) EmpSrc(e1,anne) EmpSrc(e2,bo) Boss(e1,e2) Boss(e2,e3) Boss(e3,e4)",
    )
    .unwrap();
    let (naive, semi) = sweep_target_chase(&setting, &i, &t, "employee");
    assert!(naive >= semi, "employee: naive {naive} < semi {semi}");
}

#[test]
fn strategies_agree_on_randomized_closure_workloads() {
    let (setting, s, t) = closure_setting();
    for seed in 0..12 {
        let mut r = rng(5_000 + seed);
        let mut i = Instance::new(s.clone());
        let rel = s.rel("E0").unwrap();
        for _ in 0..10 {
            let a = r.random_range(0..6);
            let b = r.random_range(0..6);
            i.insert(
                rel,
                vec![
                    Value::constant(&format!("v{a}")),
                    Value::constant(&format!("v{b}")),
                ],
            )
            .unwrap();
        }
        sweep_target_chase(&setting, &i, &t, &format!("random edges, seed {seed}"));
    }
}

#[test]
fn strategies_agree_on_disjunctive_round_trips() {
    // Paper mappings whose quasi-inverses are disjunctive: chase a
    // source forward, then sweep the disjunctive back-chase over the
    // strategy × threads grid and compare the leaf lists byte for byte.
    for (name, m) in [
        ("union", paper::union_mapping()),
        ("decomposition", paper::decomposition()),
        ("example 4.5", paper::example_4_5()),
    ] {
        let rev = quasi_inverse::core::quasi_inverse(&m, &Default::default()).unwrap();
        let mut r = rng(97);
        let i = random_ground_instance(
            &m.source,
            &mut r,
            &InstanceParams {
                n_consts: 3,
                n_facts: 4,
            },
        );
        let u = m.chase(&i).unwrap();
        let empty = Instance::new(m.source.clone());
        let mut reference: Option<String> = None;
        let mut enumerated = [0u64; 2];
        for (strategy, threads) in GRID {
            let outcome = disjunctive_chase_with_stats(
                &rev.deps,
                &u,
                &empty,
                DisjChaseOptions {
                    strategy,
                    parallelism: Parallelism::fixed(threads),
                    ..Default::default()
                },
            )
            .unwrap();
            let rendered = outcome
                .leaves
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("\n---\n");
            match &reference {
                None => reference = Some(rendered),
                Some(r) => {
                    assert_eq!(&rendered, r, "{name}: {strategy:?} × {threads} diverged")
                }
            }
            enumerated[matches!(strategy, ChaseStrategy::SemiNaive) as usize] =
                outcome.stats.triggers_enumerated;
        }
        assert!(
            enumerated[0] >= enumerated[1],
            "{name}: naive probed {} < semi-naive {}",
            enumerated[0],
            enumerated[1]
        );
    }
}

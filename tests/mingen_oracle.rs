//! Differential test of MinGen against a brute-force oracle.
//!
//! The oracle enumerates *every* conjunction over the full atom universe
//! (no canonical ordering, no subsumption pruning, no relation
//! filtering) up to Lemma 4.4's size bound, and keeps those passing the
//! chase test of Definition 4.2. MinGen's output must then be
//!
//! * **sound** — every returned conjunction is a generator and has no
//!   generating strict sub-conjunction (Definition 4.3), and
//! * **complete as a minimal set** — every oracle generator is
//!   θ-subsumed by some returned generator (which is what the
//!   QuasiInverse algorithm's disjunction needs: firing the more general
//!   disjunct covers every instantiation of the subsumed one).

use quasi_inverse::core::{min_gen, MinGenOptions};
use quasi_inverse::lang::{canonical_instance, FrozenVars};
use quasi_inverse::prelude::*;
use quasi_inverse::schema::{MatchConstraints, MatchEngine, Pattern};
use quasi_inverse::workloads::paper;

/// θ-subsumption: a substitution fixing `x` maps `sub`'s atoms into
/// `sup`'s conjunct set.
fn subsumes(m: &SchemaMapping, x: &[Var], sub: &[Atom], sup: &[Atom]) -> bool {
    let frozen = FrozenVars::freeze(x.iter().cloned());
    let mut frozen_sup = frozen.clone();
    let inst = canonical_instance(&m.source, sup, &mut frozen_sup);
    let mut vars: Vec<Var> = Vec::new();
    let facts = quasi_inverse::lang::compile_atoms(sub, &mut vars);
    let pattern = Pattern {
        facts,
        nvars: vars.len(),
    };
    // Fix exactly the x-variables; other variables stay free.
    let fixed: Vec<(u32, Value)> = vars
        .iter()
        .enumerate()
        .filter(|(_, v)| x.contains(v))
        .map(|(k, v)| (k as u32, frozen.value(v)))
        .collect();
    let constraints = MatchConstraints {
        fixed,
        ..Default::default()
    };
    MatchEngine::new(&pattern, &inst, &constraints).exists()
}

/// Brute-force oracle: all generating conjunctions of ≤ `cap` atoms over
/// terms `x ∪ {w1..w_zmax}` (w-names chosen to avoid MinGen's z-names).
fn oracle_generators(
    m: &SchemaMapping,
    psi: &[Atom],
    x: &[Var],
    cap: usize,
    zmax: usize,
) -> Vec<Vec<Atom>> {
    let mut terms: Vec<Var> = x.to_vec();
    for k in 1..=zmax {
        terms.push(Var::new(&format!("w{k}")));
    }
    // Full atom universe.
    let mut atoms: Vec<Atom> = Vec::new();
    for rel in m.source.rel_ids() {
        let arity = m.source.arity(rel);
        let mut stack: Vec<Vec<Var>> = vec![Vec::new()];
        for _ in 0..arity {
            let mut next = Vec::new();
            for partial in &stack {
                for t in &terms {
                    let mut p = partial.clone();
                    p.push(t.clone());
                    next.push(p);
                }
            }
            stack = next;
        }
        for args in stack {
            atoms.push(Atom::new(rel, args));
        }
    }
    // All sub-multisets (as index combinations with repetition) of size ≤ cap.
    let mut out = Vec::new();
    let mut combo: Vec<usize> = Vec::new();
    #[allow(clippy::too_many_arguments)] // recursive enumerator, test-only
    fn rec(
        m: &SchemaMapping,
        psi: &[Atom],
        x: &[Var],
        atoms: &[Atom],
        cap: usize,
        start: usize,
        combo: &mut Vec<usize>,
        out: &mut Vec<Vec<Atom>>,
    ) {
        if !combo.is_empty() {
            let beta: Vec<Atom> = combo.iter().map(|&i| atoms[i].clone()).collect();
            // Skip candidates missing an x (cannot be safe tgds).
            let vars = quasi_inverse::lang::atom::vars_of(&beta);
            if x.iter().all(|v| vars.contains(v))
                && is_generator(&m.tgds, &m.source, &m.target, &beta, psi, x).unwrap()
            {
                out.push(beta);
            }
        }
        if combo.len() == cap {
            return;
        }
        for i in start..atoms.len() {
            combo.push(i);
            rec(m, psi, x, atoms, cap, i, combo, out);
            combo.pop();
        }
    }
    rec(m, psi, x, &atoms, cap, 0, &mut combo, &mut out);
    out
}

fn check(m: &SchemaMapping, psi: &[Atom], x: &[Var], cap: usize, zmax: usize) {
    let found = min_gen(m, psi, x, &MinGenOptions::default()).unwrap();
    // Soundness: each output is a generator with no generating strict
    // sub-conjunction.
    for g in &found {
        assert!(
            is_generator(&m.tgds, &m.source, &m.target, &g.atoms, psi, x).unwrap(),
            "non-generator output {:?}",
            g
        );
        for drop in 0..g.atoms.len() {
            if g.atoms.len() == 1 {
                break;
            }
            let mut smaller = g.atoms.clone();
            smaller.remove(drop);
            assert!(
                !is_generator(&m.tgds, &m.source, &m.target, &smaller, psi, x).unwrap(),
                "non-minimal output {:?} (drop {drop})",
                g
            );
        }
    }
    // Completeness: every oracle generator is θ-subsumed by some output.
    let oracle = oracle_generators(m, psi, x, cap, zmax);
    assert!(!oracle.is_empty(), "oracle found no generators — weak test");
    for og in &oracle {
        assert!(
            found.iter().any(|g| subsumes(m, x, &g.atoms, og)),
            "oracle generator not covered: {:?}\nfound: {:?}",
            og,
            found
        );
    }
}

#[test]
fn oracle_agrees_on_the_union_mapping() {
    let m = paper::union_mapping();
    let psi = vec![Atom::parse_parts(&m.target, "S", &["x"]).unwrap()];
    check(&m, &psi, &[Var::new("x")], 1, 2);
}

#[test]
fn oracle_agrees_on_the_inequality_example() {
    let m = paper::section_4_inequality_example();
    // ψ = P(x1,x1): the paper's two-generator case.
    let psi = vec![Atom::parse_parts(&m.target, "P", &["x1", "x1"]).unwrap()];
    check(&m, &psi, &[Var::new("x1")], 2, 2);
    // ψ = P(x1,x2), distinct: only S generates it.
    let psi = vec![Atom::parse_parts(&m.target, "P", &["x1", "x2"]).unwrap()];
    check(&m, &psi, &[Var::new("x1"), Var::new("x2")], 2, 2);
}

#[test]
fn oracle_agrees_on_the_decomposition_pair() {
    let m = paper::decomposition();
    let psi = vec![
        Atom::parse_parts(&m.target, "Q", &["x", "y"]).unwrap(),
        Atom::parse_parts(&m.target, "R", &["y", "z"]).unwrap(),
    ];
    check(
        &m,
        &psi,
        &[Var::new("x"), Var::new("y"), Var::new("z")],
        2,
        2,
    );
}

#[test]
fn oracle_agrees_on_example_4_5_sigma2() {
    let m = paper::example_4_5();
    let psi = vec![
        Atom::parse_parts(&m.target, "S", &["x1", "x1", "y"]).unwrap(),
        Atom::parse_parts(&m.target, "Q", &["y", "y"]).unwrap(),
    ];
    check(&m, &psi, &[Var::new("x1")], 2, 2);
}

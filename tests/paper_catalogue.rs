//! Experiment E1: the catalogue — every named mapping of the paper is
//! pushed through the algorithms, and the computed verdicts are compared
//! with the paper's claims.

use quasi_inverse::core::enumerate::ground_instances;
use quasi_inverse::prelude::*;
use quasi_inverse::workloads::{catalogue, paper};

/// Union/subset-closed two-constant universe for mappings with a small
/// tuple universe.
fn closed_universe(m: &SchemaMapping) -> Option<Vec<Instance>> {
    let tuples: usize = m
        .source
        .rel_ids()
        .map(|r| 2usize.pow(m.source.arity(r) as u32))
        .sum();
    (tuples <= 8).then(|| ground_instances(&m.source, &["a", "b"], tuples))
}

#[test]
fn algorithms_run_on_every_catalogue_entry() {
    for entry in catalogue() {
        let qi = quasi_inverse::core::quasi_inverse(&entry.mapping, &Default::default())
            .unwrap_or_else(|e| panic!("QuasiInverse failed on {}: {e}", entry.name));
        assert!(!qi.deps.is_empty(), "{}", entry.name);
        // The algorithm's output is always guard-complete and uses
        // inequalities only among constants — the exact language of
        // Theorems 4.1 / 6.7.
        assert!(qi.inequalities_among_constants(), "{}", entry.name);
        // Inverse either halts without output (constant propagation
        // fails) or produces full tgds with constants and inequalities.
        if let Some(inv) = inverse(&entry.mapping).unwrap() {
            for d in &inv.deps {
                assert!(d.is_full(), "{}", entry.name);
            }
            assert!(inv.inequalities_among_constants(), "{}", entry.name);
        }
    }
}

#[test]
fn invertibility_claims_match_bounded_verification() {
    for entry in catalogue() {
        let Some(universe) = closed_universe(&entry.mapping) else {
            continue;
        };
        let computed = match inverse(&entry.mapping).unwrap() {
            None => false, // Prop 5.3: no constant propagation ⇒ no inverse
            Some(rev) => {
                is_inverse_bounded(&entry.mapping, &rev, &universe)
                    .unwrap()
                    .holds
            }
        };
        if let Some(claimed) = entry.verdict.invertible {
            assert_eq!(
                computed, claimed,
                "invertibility verdict mismatch for {}",
                entry.name
            );
        }
    }
}

#[test]
fn quasi_invertibility_claims_match_bounded_verification() {
    for entry in catalogue() {
        // prop-3.12's refutation needs three constants — covered
        // conclusively in tests/prop_3_12.rs; the two-constant universe
        // here cannot see it.
        if entry.name == "prop-3.12" {
            continue;
        }
        let Some(universe) = closed_universe(&entry.mapping) else {
            continue;
        };
        let qi = quasi_inverse::core::quasi_inverse(&entry.mapping, &Default::default()).unwrap();
        let computed = is_quasi_inverse_bounded(&entry.mapping, &qi, &universe)
            .unwrap()
            .holds;
        if let Some(claimed) = entry.verdict.quasi_invertible {
            assert_eq!(
                computed, claimed,
                "quasi-invertibility verdict mismatch for {}",
                entry.name
            );
        }
    }
}

#[test]
fn non_invertibility_follows_from_unique_solutions_failures() {
    // §1's argument: projection, union, decomposition all fail the
    // unique-solutions property, hence have no inverse.
    for m in [
        paper::projection(),
        paper::union_mapping(),
        paper::decomposition(),
    ] {
        let universe = closed_universe(&m).expect("small universes");
        assert!(unique_solutions_bounded(&m, &universe).unwrap().is_some());
    }
}

#[test]
fn lav_entries_have_quasi_inverses_with_union_witness() {
    // Prop 3.11 across every LAV mapping of the catalogue.
    for entry in catalogue() {
        if !entry.mapping.is_lav() {
            continue;
        }
        let Some(universe) = closed_universe(&entry.mapping) else {
            continue;
        };
        assert!(
            union_witness_subset_property(&entry.mapping, &universe)
                .unwrap()
                .is_none(),
            "union witness fails for LAV mapping {}",
            entry.name
        );
    }
}
